//! CI bench-regression gate.
//!
//! Compares a criterion run (the vendored shim's `CRITERION_JSON` line
//! output) against the recorded baselines in `BENCH_datapath.json` and
//! fails when any *fast-group* benchmark regressed by more than the
//! threshold (default 25%, absorbing the box-to-box variance the
//! baseline file documents at ~15–20%).
//!
//! ```text
//! bench_check <BENCH_datapath.json> <criterion-results.json> [--threshold 25]
//! ```
//!
//! Gated groups (cheap enough to run timed on every push):
//!
//! * `datapath/suite_rx` — the batched cipher-suite receive pipeline;
//! * `window/in_order` — the anti-replay window fast path;
//! * `datapath/telemetry_overhead` — the same sealed drain with and
//!   without a `Telemetry` attached (the observability-cost sentinel);
//! * `gateway_shard/recover_storm_256sa` — the pooled reset-storm
//!   recovery (the spawn-overhead sentinel);
//! * `store_save/fleet_save_1024sa` — the fleet-wide SAVE round on the
//!   durable backends (file-per-slot vs shard-shared WAL);
//! * `gateway_fleet_1m/tick_idle` — the idle control-plane tick at 10^3
//!   and 10^6 SAs (the timer-wheel sentinel): beyond the absolute
//!   threshold, a `RATIO_CEILINGS` entry holds the million-SA tick
//!   within 2x of the thousand-SA one in the same run, so a
//!   reintroduced fleet-proportional sweep (which would show up as
//!   ~1000x, not 2x) trips the gate on any host.
//!
//! Noise-floor awareness: a relative regression must also exceed an
//! absolute `NOISE_FLOOR_NS` (25 ns) delta to fail. The single-digit-ns
//! tick sentinels sit at the clock's own granularity — ±25% there is
//! one timer quantum and 2x swings on identical code are routine —
//! while the failure they guard against (a reintroduced
//! fleet-proportional sweep) lands 1000x over the floor.
//!
//! Disk-bound awareness: `store_save/` timings are dominated by the
//! container's filesystem and vary >2x run-to-run on identical code, so
//! their absolute numbers are compared **advisorily** (reported, never
//! failing). What gates instead is the *relative* claim, which is
//! stable across that noise: the shared WAL must stay at least 5x
//! cheaper per slot than file-per-slot in the same run (the
//! `RATIO_FLOORS` table). The same-run trick also bounds *added* cost:
//! `RATIO_CEILINGS` holds the telemetry-attached drain within 1.5x of
//! the bare one regardless of how noisy the box is.
//!
//! Backend awareness: baseline entries carrying a `backend` field
//! (`"lanes4"`, `"avx2"` — the advisory SIMD groups
//! `datapath/suite_rx_<backend>`) are never gated: their numbers are
//! CPU-feature-dependent, so they are compared **advisorily** when the
//! runner produced a measurement and skipped with a notice when it did
//! not (the runner lacks the feature, or the bench emitted nothing).
//! Skipped backend entries are exempt from the completeness check —
//! the scalar `datapath/suite_rx` group is the gated path and must
//! always report.
//!
//! Core-count awareness: baseline entries record the `cores` of the
//! host that produced them. Multi-shard entries of the
//! parallelism-sensitive `gateway_shard/` group are compared
//! **advisorily** (reported, never failing) when the runner's core
//! count differs from the baseline's — a 4-shard time measured on one
//! core is not comparable to one measured on four. The group's
//! single-threaded members (`/plain_gateway`, the inline `/1`) and
//! all other groups gate regardless of cores.
//!
//! Escape hatch: set `BENCH_REGRESSION_OK=1` to report regressions
//! without failing the lane — for intentional re-records, with the new
//! numbers landing in `BENCH_datapath.json` in the same change.
//!
//! No dependencies: both inputs are line-oriented enough for the tiny
//! field extractors below (unit-tested), keeping this tool buildable
//! in the offline container.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Benchmark-id prefixes the gate enforces.
const FAST_GROUPS: [&str; 6] = [
    "datapath/suite_rx",
    "window/in_order",
    "datapath/telemetry_overhead",
    "gateway_shard/recover_storm_256sa",
    "store_save/fleet_save_1024sa",
    "gateway_fleet_1m/tick_idle",
];

/// Groups whose timings depend on the host's parallelism: advisory
/// when baseline and runner core counts differ. The single-threaded
/// members of the group — the `plain_gateway` baseline and the
/// inline zero-thread `1`-shard variant — are carved out below and
/// gate on any host: a reintroduced per-verb spawn or a slowed
/// recovery path must not hide behind the multi-shard advisory.
const CORE_SENSITIVE: [&str; 2] = ["gateway_shard/", "gateway_fleet_1m/"];

/// Benchmark-id suffixes that are single-threaded even inside a
/// core-sensitive group.
const SINGLE_THREADED_SUFFIXES: [&str; 2] = ["/plain_gateway", "/1"];

/// Groups whose absolute timings are disk-bound (>2x run-to-run noise
/// in CI containers): always advisory against their recorded baseline.
/// Their gating story is the `RATIO_FLOORS` table instead.
const IO_BOUND: [&str; 1] = ["store_save/"];

/// Same-run relative floors: `slow` must be at least `floor` times the
/// measured time of `fast`, or the gate fails. Ratios cancel the
/// filesystem noise that makes `IO_BOUND` absolutes ungateable.
const RATIO_FLOORS: [(&str, &str, f64); 1] = [(
    "store_save/fleet_save_1024sa/file_per_slot",
    "store_save/fleet_save_1024sa/wal_shared",
    5.0,
)];

/// Same-run relative ceilings: `candidate` must stay within `ceiling`
/// times the measured time of `reference`, or the gate fails. The
/// inverse of `RATIO_FLOORS`: these bound *added* cost rather than
/// prove a speedup. Two contracts today: attaching a `Telemetry` must
/// never cost more than 50% over the bare drain, and an idle tick over
/// a million SAs must stay within 2x of one over a thousand (the timer
/// wheel's O(due) claim — the pre-wheel sweep visited every DPD
/// detector and SA per tick, so its cost scaled with the fleet).
const RATIO_CEILINGS: [(&str, &str, f64); 2] = [
    (
        "datapath/telemetry_overhead/on/512",
        "datapath/telemetry_overhead/off/512",
        1.5,
    ),
    (
        "gateway_fleet_1m/tick_idle_1m/plain_gateway",
        "gateway_fleet_1m/tick_idle_1k/plain_gateway",
        2.0,
    ),
];

#[derive(Debug, Clone, PartialEq)]
struct Baseline {
    mean_ns: f64,
    cores: Option<u64>,
    /// SIMD backend this entry was measured on (`"lanes4"`, `"avx2"`).
    /// Tagged entries never gate: they are advisory when measured and
    /// skipped (with a notice) when the runner lacks the feature.
    backend: Option<String>,
}

/// Extracts `"key": <number>` from a JSON-ish line (the shim and the
/// baseline file both keep one entry per line).
fn field_f64(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": "value"` from a JSON-ish line.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line[start..].trim_start().strip_prefix('"')?;
    rest.split('"').next()
}

/// Parses the `"benchmarks": { ... }` block of `BENCH_datapath.json`:
/// one `"group/bench/param": { "mean_ns": N, ..., "cores": C }` entry
/// per line. Entries outside that block (acceptance records, the
/// pre-change reference) are ignored.
fn parse_baseline(text: &str) -> BTreeMap<String, Baseline> {
    let mut out = BTreeMap::new();
    let mut in_block = false;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("\"benchmarks\"") {
            in_block = true;
            continue;
        }
        if in_block {
            if trimmed == "}," || trimmed == "}" {
                break;
            }
            let Some(id) = trimmed.strip_prefix('"').and_then(|r| r.split('"').next()) else {
                continue;
            };
            let Some(mean_ns) = field_f64(trimmed, "mean_ns") else {
                continue;
            };
            out.insert(
                id.to_string(),
                Baseline {
                    mean_ns,
                    cores: field_f64(trimmed, "cores").map(|c| c as u64),
                    backend: field_str(trimmed, "backend").map(str::to_string),
                },
            );
        }
    }
    out
}

/// Parses the shim's `CRITERION_JSON` output: one
/// `{"id":"...","mean_ns":N,...}` line per benchmark. A re-run appends,
/// so later lines win.
fn parse_results(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        if let (Some(id), Some(mean)) = (field_str(line, "id"), field_f64(line, "mean_ns")) {
            out.insert(id.to_string(), mean);
        }
    }
    out
}

fn in_fast_groups(id: &str) -> bool {
    FAST_GROUPS.iter().any(|g| id.starts_with(g))
}

fn core_sensitive(id: &str) -> bool {
    CORE_SENSITIVE.iter().any(|g| id.starts_with(g))
        && !SINGLE_THREADED_SUFFIXES.iter().any(|s| id.ends_with(s))
}

fn io_bound(id: &str) -> bool {
    IO_BOUND.iter().any(|g| id.starts_with(g))
}

#[derive(Debug, PartialEq)]
enum Verdict {
    Ok,
    Improved,
    Regressed,
    Advisory,
    /// Relatively over threshold but absolutely inside
    /// [`NOISE_FLOOR_NS`] — timer-granularity jitter, not a regression.
    WithinNoise,
}

/// Absolute slack under the relative threshold: a regression must also
/// exceed this many nanoseconds over its baseline to fail the gate.
/// Single-digit-ns benchmarks (the ~4 ns idle-tick sentinels) sit at
/// the clock's own granularity, where ±25% is one timer quantum and
/// run-to-run swings of 2x on identical code are routine; the failures
/// those sentinels exist to catch (a reintroduced fleet-proportional
/// sweep) land 1000x over, far beyond any floor. Microsecond-scale
/// groups are unaffected — 25 ns is below their threshold anyway.
const NOISE_FLOOR_NS: f64 = 25.0;

/// Judges one benchmark against its baseline.
fn judge(id: &str, measured: f64, base: &Baseline, threshold_pct: f64, cores: u64) -> Verdict {
    let ratio = measured / base.mean_ns;
    let mismatched_cores = base.cores.is_some_and(|c| c != cores);
    if ratio > 1.0 + threshold_pct / 100.0 {
        if measured - base.mean_ns <= NOISE_FLOOR_NS {
            Verdict::WithinNoise
        } else if base.backend.is_some() || io_bound(id) || (core_sensitive(id) && mismatched_cores)
        {
            Verdict::Advisory
        } else {
            Verdict::Regressed
        }
    } else if ratio < 1.0 - threshold_pct / 100.0 {
        Verdict::Improved
    } else {
        Verdict::Ok
    }
}

fn run(baseline_path: &str, results_path: &str, threshold_pct: f64) -> Result<ExitCode, String> {
    let baseline_text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
    let results_text = std::fs::read_to_string(results_path)
        .map_err(|e| format!("cannot read results {results_path}: {e}"))?;
    let baselines = parse_baseline(&baseline_text);
    let results = parse_results(&results_text);
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get()) as u64;
    let allow = std::env::var("BENCH_REGRESSION_OK").is_ok();

    let mut regressions = 0usize;
    let mut compared = 0usize;
    let mut seen_groups = vec![false; FAST_GROUPS.len()];
    for (id, measured) in results.iter().filter(|(id, _)| in_fast_groups(id)) {
        for (i, g) in FAST_GROUPS.iter().enumerate() {
            if id.starts_with(g) {
                seen_groups[i] = true;
            }
        }
        let Some(base) = baselines.get(id) else {
            println!("NEW        {id}: {measured:.0} ns (no baseline recorded)");
            continue;
        };
        compared += 1;
        let ratio = measured / base.mean_ns;
        match judge(id, *measured, base, threshold_pct, cores) {
            Verdict::Regressed => {
                regressions += 1;
                println!(
                    "REGRESSED  {id}: {measured:.0} ns vs baseline {:.0} ns ({:+.1}%)",
                    base.mean_ns,
                    (ratio - 1.0) * 100.0
                );
            }
            Verdict::Advisory if base.backend.is_some() => println!(
                "ADVISORY   {id}: {measured:.0} ns vs baseline {:.0} ns ({:+.1}%) — \
                 {} backend entry, CPU-feature-dependent, not gated",
                base.mean_ns,
                (ratio - 1.0) * 100.0,
                base.backend.as_deref().unwrap_or("?")
            ),
            Verdict::Advisory if io_bound(id) => println!(
                "ADVISORY   {id}: {measured:.0} ns vs baseline {:.0} ns ({:+.1}%) — \
                 disk-bound group, absolute time not gated (the ratio floor is)",
                base.mean_ns,
                (ratio - 1.0) * 100.0
            ),
            Verdict::Advisory => println!(
                "ADVISORY   {id}: {measured:.0} ns vs baseline {:.0} ns ({:+.1}%) — \
                 baseline recorded on {} core(s), runner has {cores}; not gating",
                base.mean_ns,
                (ratio - 1.0) * 100.0,
                base.cores.unwrap_or(0)
            ),
            Verdict::Improved => println!(
                "IMPROVED   {id}: {measured:.0} ns vs baseline {:.0} ns ({:+.1}%)",
                base.mean_ns,
                (ratio - 1.0) * 100.0
            ),
            Verdict::WithinNoise => println!(
                "OK         {id}: {measured:.1} ns vs baseline {:.1} ns ({:+.1}%) — \
                 within the {NOISE_FLOOR_NS} ns noise floor, not gated",
                base.mean_ns,
                (ratio - 1.0) * 100.0
            ),
            Verdict::Ok => println!(
                "OK         {id}: {measured:.0} ns vs baseline {:.0} ns ({:+.1}%)",
                base.mean_ns,
                (ratio - 1.0) * 100.0
            ),
        }
    }
    // Backend-tagged baselines the runner produced no measurement for:
    // the runner lacks the CPU feature (the bench self-skips), so the
    // entry is reported and exempt from every gate — including the
    // group-completeness check below, which only counts gated paths.
    for (id, base) in baselines.iter().filter(|(id, _)| in_fast_groups(id)) {
        if let Some(backend) = &base.backend {
            if !results.contains_key(id) {
                println!(
                    "SKIPPED    {id}: baseline {:.0} ns needs the {backend} backend, \
                     which this runner did not produce (feature not supported here)",
                    base.mean_ns
                );
            }
        }
    }
    // Every gated group must have contributed: a renamed group or a
    // drifted ci.yml filter silently losing coverage is itself a
    // failure, not a pass.
    for (i, g) in FAST_GROUPS.iter().enumerate() {
        if !seen_groups[i] {
            return Err(format!(
                "gated group {g:?} produced no results in {results_path} — did its \
                 bench filter in ci.yml drift, or the group get renamed? (run with \
                 CRITERION_JSON set to an absolute path)"
            ));
        }
    }
    if compared == 0 {
        return Err(format!(
            "no fast-group benchmarks matched a recorded baseline in {results_path}"
        ));
    }
    // Same-run relative floors: immune to the noise that makes the
    // IO_BOUND absolutes advisory, so these fail hard.
    for (slow_id, fast_id, floor) in RATIO_FLOORS {
        let (Some(slow), Some(fast)) = (results.get(slow_id), results.get(fast_id)) else {
            return Err(format!(
                "ratio floor {slow_id:?} / {fast_id:?} is missing a measurement in \
                 {results_path} — did a bench get renamed or filtered out in ci.yml?"
            ));
        };
        let ratio = slow / fast;
        if ratio < floor {
            regressions += 1;
            println!(
                "REGRESSED  {fast_id}: only {ratio:.1}x cheaper than {slow_id} \
                 (floor {floor}x)"
            );
        } else {
            println!("OK         {fast_id}: {ratio:.1}x cheaper than {slow_id} (floor {floor}x)");
        }
    }
    // Same-run relative ceilings: bound added cost (e.g. telemetry on
    // vs off) with the same noise immunity as the floors.
    for (candidate_id, reference_id, ceiling) in RATIO_CEILINGS {
        let (Some(candidate), Some(reference)) =
            (results.get(candidate_id), results.get(reference_id))
        else {
            return Err(format!(
                "ratio ceiling {candidate_id:?} / {reference_id:?} is missing a measurement \
                 in {results_path} — did a bench get renamed or filtered out in ci.yml?"
            ));
        };
        let ratio = candidate / reference;
        if ratio > ceiling {
            regressions += 1;
            println!(
                "REGRESSED  {candidate_id}: {ratio:.2}x the cost of {reference_id} \
                 (ceiling {ceiling}x)"
            );
        } else {
            println!(
                "OK         {candidate_id}: {ratio:.2}x the cost of {reference_id} \
                 (ceiling {ceiling}x)"
            );
        }
    }
    println!(
        "bench_check: {compared} compared, {regressions} regression(s), threshold {threshold_pct}%"
    );
    if regressions > 0 {
        if allow {
            println!(
                "BENCH_REGRESSION_OK is set: letting {regressions} regression(s) through \
                 (intentional re-record — update BENCH_datapath.json in this change)"
            );
            return Ok(ExitCode::SUCCESS);
        }
        println!(
            "bench gate FAILED; if this change intentionally trades this performance, \
             re-record BENCH_datapath.json and set BENCH_REGRESSION_OK=1 on the lane"
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 25.0f64;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold" {
            threshold = it.next().and_then(|v| v.parse().ok()).unwrap_or(threshold);
        } else {
            paths.push(a.clone());
        }
    }
    if paths.len() != 2 {
        eprintln!(
            "usage: bench_check <BENCH_datapath.json> <criterion-results.json> [--threshold PCT]"
        );
        return ExitCode::FAILURE;
    }
    match run(&paths[0], &paths[1], threshold) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("bench_check: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
  "description": "x",
  "acceptance": {
    "thing": { "before_ns": 10.0, "after_ns": 5.0 }
  },
  "benchmarks": {
    "datapath/suite_rx/process_batch_64B/chacha20-poly1305": { "mean_ns": 500000.0, "cores": 1 },
    "datapath/suite_rx_avx2/process_batch_64B/chacha20-poly1305": { "mean_ns": 200000.0, "cores": 1, "backend": "avx2" },
    "window/in_order/1024": { "mean_ns": 24000.0, "cores": 1 },
    "gateway_shard/recover_storm_256sa/4": { "mean_ns": 40000.0, "cores": 1 },
    "datapath/wire_64B/seal": { "mean_ns": 1590.0, "cores": 1 }
  },
  "pre_change_reference": {
    "window/in_order/1024": { "mean_ns": 53860.0 }
  }
}"#;

    #[test]
    fn baseline_parser_scopes_to_the_benchmarks_block() {
        let b = parse_baseline(BASELINE);
        assert_eq!(b.len(), 5);
        assert_eq!(b["window/in_order/1024"].mean_ns, 24000.0);
        assert_eq!(b["window/in_order/1024"].cores, Some(1));
        assert_eq!(b["window/in_order/1024"].backend, None);
        assert_eq!(
            b["datapath/suite_rx_avx2/process_batch_64B/chacha20-poly1305"].backend,
            Some("avx2".to_string())
        );
        // The pre-change reference's identically named entry must not
        // clobber the live baseline.
        assert_ne!(b["window/in_order/1024"].mean_ns, 53860.0);
    }

    #[test]
    fn backend_tagged_baselines_never_gate() {
        // A SIMD-backend entry over threshold is advisory on any host:
        // its absolute time depends on the CPU feature set, and its
        // correctness story is the scalar differential, not the gate.
        let base = Baseline {
            mean_ns: 1000.0,
            cores: Some(1),
            backend: Some("avx2".to_string()),
        };
        assert_eq!(
            judge(
                "datapath/suite_rx_avx2/process_batch_64B/chacha20-poly1305",
                2000.0,
                &base,
                25.0,
                1
            ),
            Verdict::Advisory
        );
        // The untagged scalar entry of the same group still gates.
        let scalar = Baseline {
            mean_ns: 1000.0,
            cores: Some(1),
            backend: None,
        };
        assert_eq!(
            judge(
                "datapath/suite_rx/process_batch_64B/chacha20-poly1305",
                2000.0,
                &scalar,
                25.0,
                1
            ),
            Verdict::Regressed
        );
    }

    #[test]
    fn results_parser_takes_the_last_line_per_id() {
        let text = "\
{\"id\":\"window/in_order/1024\",\"mean_ns\":25000.00,\"median_ns\":24900.00,\"elements\":10000}\n\
not json at all\n\
{\"id\":\"window/in_order/1024\",\"mean_ns\":23000.00,\"median_ns\":22900.00}\n";
        let r = parse_results(text);
        assert_eq!(r.len(), 1);
        assert_eq!(r["window/in_order/1024"], 23000.0);
    }

    #[test]
    fn fast_group_filter() {
        assert!(in_fast_groups("window/in_order/64"));
        assert!(in_fast_groups(
            "gateway_shard/recover_storm_256sa/plain_gateway"
        ));
        assert!(!in_fast_groups("gateway_shard/rx_fresh_4096f_256sa/4"));
        assert!(!in_fast_groups("datapath/wire_64B/seal"));
        assert!(in_fast_groups("store_save/fleet_save_1024sa/wal_shared"));
        assert!(in_fast_groups("store_save/fleet_save_1024sa/file_per_slot"));
        assert!(in_fast_groups(
            "gateway_fleet_1m/tick_idle_1k/plain_gateway"
        ));
        assert!(in_fast_groups(
            "gateway_fleet_1m/tick_idle_1m/plain_gateway"
        ));
        // The fleet-scale drain sweep is too heavy for the per-push
        // lane; it is recorded for reference, not gated.
        assert!(!in_fast_groups("gateway_fleet_1m/drain_4096f_1m/4"));
    }

    #[test]
    fn regression_vs_improvement_vs_ok() {
        let base = Baseline {
            mean_ns: 1000.0,
            cores: Some(1),
            backend: None,
        };
        let id = "window/in_order/64";
        assert_eq!(judge(id, 1400.0, &base, 25.0, 1), Verdict::Regressed);
        assert_eq!(judge(id, 1200.0, &base, 25.0, 1), Verdict::Ok);
        assert_eq!(judge(id, 700.0, &base, 25.0, 1), Verdict::Improved);
    }

    #[test]
    fn nanosecond_scale_regressions_inside_the_noise_floor_pass() {
        // A ~4 ns sentinel doubling is one timer quantum, not a
        // regression — the absolute delta is what gates it.
        let base = Baseline {
            mean_ns: 4.0,
            cores: Some(1),
            backend: None,
        };
        let id = "gateway_fleet_1m/tick_idle_1k/plain_gateway";
        assert_eq!(judge(id, 8.0, &base, 25.0, 1), Verdict::WithinNoise);
        assert_eq!(judge(id, 29.0, &base, 25.0, 1), Verdict::WithinNoise);
        // A reintroduced fleet-proportional sweep lands far beyond any
        // noise floor and still fails.
        assert_eq!(judge(id, 4000.0, &base, 25.0, 1), Verdict::Regressed);
        // Microsecond-scale groups are unaffected: their 25% threshold
        // already dwarfs the floor.
        let base_us = Baseline {
            mean_ns: 100_000.0,
            cores: Some(1),
            backend: None,
        };
        assert_eq!(
            judge("window/in_order/64", 130_000.0, &base_us, 25.0, 1),
            Verdict::Regressed
        );
    }

    #[test]
    fn core_sensitive_groups_go_advisory_on_core_mismatch() {
        let base = Baseline {
            mean_ns: 1000.0,
            cores: Some(1),
            backend: None,
        };
        // Parallelism-sensitive id on a 4-core runner vs 1-core record.
        assert_eq!(
            judge(
                "gateway_shard/recover_storm_256sa/4",
                1500.0,
                &base,
                25.0,
                4
            ),
            Verdict::Advisory
        );
        // Same mismatch still gates a single-threaded group.
        assert_eq!(
            judge("window/in_order/64", 1500.0, &base, 25.0, 4),
            Verdict::Regressed
        );
        // ...and the single-threaded members of the sensitive group:
        // the plain-Gateway baseline and the inline 1-shard variant
        // run no pool thread, so core count is irrelevant to them.
        assert_eq!(
            judge(
                "gateway_shard/recover_storm_256sa/plain_gateway",
                1500.0,
                &base,
                25.0,
                4
            ),
            Verdict::Regressed
        );
        assert_eq!(
            judge(
                "gateway_shard/recover_storm_256sa/1",
                1500.0,
                &base,
                25.0,
                4
            ),
            Verdict::Regressed
        );
        // Matching cores gate everything.
        assert_eq!(
            judge(
                "gateway_shard/recover_storm_256sa/4",
                1500.0,
                &base,
                25.0,
                1
            ),
            Verdict::Regressed
        );
        // The fleet group follows the same carve-out: multi-shard drain
        // entries go advisory on a core mismatch, the single-threaded
        // tick sentinels gate on any host.
        assert_eq!(
            judge("gateway_fleet_1m/drain_4096f_1m/4", 1500.0, &base, 25.0, 4),
            Verdict::Advisory
        );
        assert_eq!(
            judge(
                "gateway_fleet_1m/tick_idle_1m/plain_gateway",
                1500.0,
                &base,
                25.0,
                4
            ),
            Verdict::Regressed
        );
    }

    #[test]
    fn io_bound_groups_are_always_advisory_on_absolute_time() {
        let base = Baseline {
            mean_ns: 1000.0,
            cores: Some(1),
            backend: None,
        };
        // A 3x blowup in a disk-bound group: reported, never failing —
        // container filesystems move absolute times >2x run-to-run.
        assert_eq!(
            judge(
                "store_save/fleet_save_1024sa/file_per_slot",
                3000.0,
                &base,
                25.0,
                1
            ),
            Verdict::Advisory
        );
        // Improvements still report as improvements.
        assert_eq!(
            judge(
                "store_save/fleet_save_1024sa/wal_shared",
                500.0,
                &base,
                25.0,
                1
            ),
            Verdict::Improved
        );
    }

    #[test]
    fn ratio_floor_table_points_at_measured_benchmarks() {
        // The floor pair must stay inside the gated fast groups, or the
        // lane could drop the measurements the ratio needs.
        for (slow, fast, floor) in RATIO_FLOORS {
            assert!(in_fast_groups(slow), "{slow} not in FAST_GROUPS");
            assert!(in_fast_groups(fast), "{fast} not in FAST_GROUPS");
            assert!(floor >= 1.0);
        }
        for (candidate, reference, ceiling) in RATIO_CEILINGS {
            assert!(in_fast_groups(candidate), "{candidate} not in FAST_GROUPS");
            assert!(in_fast_groups(reference), "{reference} not in FAST_GROUPS");
            assert!(ceiling >= 1.0);
        }
    }

    #[test]
    fn field_extractors() {
        let line = r#"{"id":"a/b","mean_ns":123.45,"elements":10}"#;
        assert_eq!(field_str(line, "id"), Some("a/b"));
        assert_eq!(field_f64(line, "mean_ns"), Some(123.45));
        assert_eq!(field_f64(line, "elements"), Some(10.0));
        assert_eq!(field_f64(line, "missing"), None);
    }
}

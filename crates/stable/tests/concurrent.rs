//! Concurrency stress: a single saver thread owns the store while
//! datapath threads stream counter updates at it — the deployment shape
//! a real IPsec stack would use (the paper's background SAVE must not
//! block the datapath). Built on std channels and scoped threads; the
//! offline build has no crossbeam.

use std::sync::mpsc;

use reset_stable::{BackgroundSaver, MemStable, SlotId, StableStore};

#[derive(Debug)]
enum Op {
    Issue { slot: SlotId, value: u64 },
    Complete,
    Crash,
    Done,
}

#[test]
fn saver_thread_serializes_concurrent_sa_updates() {
    let (tx, rx) = mpsc::channel::<Op>();
    let n_sas = 8u32;
    let updates_per_sa = 500u64;

    let saver_thread = std::thread::spawn(move || {
        let mut saver = BackgroundSaver::new(MemStable::new());
        let mut done = 0;
        loop {
            match rx.recv().expect("channel open") {
                Op::Issue { slot, value } => {
                    saver.issue(slot, value);
                }
                Op::Complete => {
                    saver.complete().expect("mem store");
                }
                Op::Crash => saver.crash(),
                Op::Done => {
                    done += 1;
                    if done == n_sas {
                        // Flush the last pending save before reporting.
                        saver.complete().expect("mem store");
                        return saver.into_inner();
                    }
                }
            }
        }
    });

    std::thread::scope(|scope| {
        for sa in 0..n_sas {
            let tx = tx.clone();
            scope.spawn(move || {
                let slot = SlotId::sender(sa);
                for v in 1..=updates_per_sa {
                    tx.send(Op::Issue { slot, value: v }).expect("send");
                    if v % 25 == 0 {
                        tx.send(Op::Complete).expect("send");
                    }
                    if v % 181 == 0 {
                        tx.send(Op::Crash).expect("send");
                    }
                }
                tx.send(Op::Done).expect("send");
            });
        }
    });

    let store = saver_thread.join().expect("saver thread clean");
    // Every slot holds SOME durable value ≤ its final counter, and at
    // least one slot made real progress. (Interleaving is nondeterministic
    // across SAs; monotonicity per slot is what matters.)
    let mut populated = 0;
    for sa in 0..n_sas {
        if let Some(v) = store.load(SlotId::sender(sa)).expect("load") {
            assert!(v <= updates_per_sa, "slot {sa} overshot: {v}");
            populated += 1;
        }
    }
    assert!(populated >= 1, "no slot was ever persisted");
}

#[test]
fn file_store_parallel_writers_distinct_slots() {
    use reset_stable::{Durability, FileStable};
    let dir = std::env::temp_dir().join(format!(
        "stable-concurrent-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::thread::scope(|scope| {
        for t in 0..6u32 {
            let dir = dir.clone();
            scope.spawn(move || {
                let mut store = FileStable::open(&dir, Durability::ProcessCrash).expect("open");
                for v in 1..=100u64 {
                    store.store(SlotId::receiver(t), v).expect("store");
                }
            });
        }
    });
    let store = reset_stable::FileStable::open(&dir, Durability::ProcessCrash).expect("open");
    for t in 0..6u32 {
        assert_eq!(store.load(SlotId::receiver(t)).expect("load"), Some(100));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Error type for persistent-memory operations.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors returned by [`StableStore`](crate::StableStore) operations.
#[derive(Debug)]
pub enum StableError {
    /// The underlying device rejected the operation (injected or real I/O).
    Io(io::Error),
    /// A stored record failed its integrity check (torn or corrupted write).
    Corrupt {
        /// Which slot held the bad record.
        slot: crate::SlotId,
        /// What the integrity check found.
        reason: &'static str,
    },
    /// The store served an *older* generation than the caller had already
    /// witnessed as durable — a stale-snapshot rollback. Accepting the
    /// served value would resurrect a replayable anti-replay window, so
    /// recovery must fail closed instead.
    Rollback {
        /// Which slot rolled back.
        slot: crate::SlotId,
        /// Generation the store served (`0` when it served nothing).
        served: u64,
        /// Newest generation the caller had witnessed as durable.
        acked: u64,
    },
    /// A fault injector deliberately failed the operation.
    Injected(&'static str),
}

impl fmt::Display for StableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StableError::Io(e) => write!(f, "stable store i/o failure: {e}"),
            StableError::Corrupt { slot, reason } => {
                write!(f, "corrupt record in slot {slot}: {reason}")
            }
            StableError::Rollback {
                slot,
                served,
                acked,
            } => {
                write!(
                    f,
                    "rollback in slot {slot}: store served generation {served} \
                     but generation {acked} was already durable"
                )
            }
            StableError::Injected(what) => write!(f, "injected fault: {what}"),
        }
    }
}

impl Error for StableError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StableError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StableError {
    fn from(e: io::Error) -> Self {
        StableError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SlotId;

    #[test]
    fn display_is_informative() {
        let e = StableError::Corrupt {
            slot: SlotId::raw(3),
            reason: "bad checksum",
        };
        let s = e.to_string();
        assert!(s.contains("corrupt"));
        assert!(s.contains("bad checksum"));
    }

    #[test]
    fn io_source_is_chained() {
        let e = StableError::from(io::Error::other("disk on fire"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("disk on fire"));
    }

    #[test]
    fn rollback_display_names_generations() {
        let e = StableError::Rollback {
            slot: SlotId::raw(7),
            served: 3,
            acked: 9,
        };
        let s = e.to_string();
        assert!(s.contains("rollback"));
        assert!(s.contains('3') && s.contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StableError>();
    }
}

//! # reset-stable — the paper's persistent memory (SAVE / FETCH substrate)
//!
//! *Convergence of IPsec in Presence of Resets* rescues an IPsec security
//! association across resets by periodically **SAVE**-ing the current
//! sequence number to persistent memory and **FETCH**-ing it on wake-up.
//! This crate supplies that persistent memory:
//!
//! * [`StableStore`] — the trait: durable `u64` counters keyed by
//!   [`SlotId`] (one per SA direction).
//! * [`MemStable`] — simulation store; survives resets because the harness
//!   owns it.
//! * [`FileStable`] — real write-to-file SAVE with atomic rename and
//!   checksummed records (the paper suggests exactly "write-to-file and
//!   read-from-file operations in an operating system").
//! * [`BackgroundSaver`] — models the in-flight SAVE whose completion
//!   races with resets; this race is why the paper leaps by `2K`.
//! * [`SaveLatencyModel`] — how long a SAVE takes
//!   ([`SaveLatencyModel::paper_disk`] is the paper's 100 µs device).
//! * [`FaultyStable`] — scripted fault injection for recovery tests.
//!
//! # Examples
//!
//! The Fig 1 race in five lines — a reset during an in-flight SAVE
//! recovers the *previous* saved counter:
//!
//! ```
//! use reset_stable::{BackgroundSaver, MemStable, SlotId};
//!
//! let slot = SlotId::sender(0x22);
//! let mut disk = BackgroundSaver::new(MemStable::new());
//! disk.save_now(slot, 100)?;   // SAVE(100) completed earlier
//! disk.issue(slot, 125);       // SAVE(125) still in flight...
//! disk.crash();                // ...when the reset strikes
//! assert_eq!(disk.fetch(slot)?, Some(100)); // FETCH sees the stale value
//! # Ok::<(), reset_stable::StableError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod faulty;
mod file;
mod mem;
mod record;
mod saver;
mod store;

pub use error::StableError;
pub use faulty::{Fault, FaultyStable};
pub use file::{Durability, FileStable};
pub use mem::MemStable;
pub use record::{decode_record, encode_record, RECORD_LEN};
pub use saver::{BackgroundSaver, PendingSave, SaveLatencyModel};
pub use store::{SlotId, StableStore};

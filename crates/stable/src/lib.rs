//! # reset-stable — the paper's persistent memory (SAVE / FETCH substrate)
//!
//! *Convergence of IPsec in Presence of Resets* rescues an IPsec security
//! association across resets by periodically **SAVE**-ing the current
//! sequence number to persistent memory and **FETCH**-ing it on wake-up.
//! The paper assumes that memory is perfect — never corrupted, never
//! rolled back. This crate supplies the persistent memory *and* the
//! machinery to survive the cases where that assumption breaks.
//!
//! ## Store backends
//!
//! | backend | durability | cost per SAVE | when to use |
//! |---|---|---|---|
//! | [`MemStable`] | process lifetime (harness owns it) | ~ns | simulation, tests |
//! | [`FileStable`] | one atomic file per slot | 1 create + write + rename (+ 2 fsync) | few SAs, simple ops |
//! | [`WalStable`] | one shared append-only log | 1 append (+ 1 fsync), amortised compaction | fleets — a whole shard's slots coalesce into sequential appends |
//!
//! [`FileStable`] is the paper's literal "write-to-file" device: atomic
//! rename per slot, checksummed records, `O(slots)` files. [`WalStable`]
//! batches an entire fleet's counter SAVEs into sequential appends on a
//! single log — the layout that makes 1k+ SA gateways cheap — with CRC-
//! protected records, periodic compaction, and crash-recoverable replay
//! (a torn tail is truncated to the last good record on open). Handles are
//! cheaply cloneable, so one WAL can serve every slot of a shard.
//!
//! ## Generations and failing closed
//!
//! Every [`WalStable`] record carries a **monotonic generation number**.
//! [`BackgroundSaver`] witnesses the generation of each acknowledged SAVE
//! and [`BackgroundSaver::fetch_checked`] compares it against what the
//! store serves on FETCH: if the store answers with an *older* generation
//! than the caller saw durably acknowledged — a restored-from-backup
//! rollback, exactly the state that would resurrect replayable counters —
//! the FETCH fails with [`StableError::Rollback`]. Torn or corrupt records
//! likewise surface as [`StableError::Corrupt`]. Either way the recovery
//! path **fails closed**: the gateway above abandons the window and
//! replaces the SA instead of guessing.
//!
//! Plain backends report generation `0` on both sides, making the check
//! vacuous — no false alarms when there is nothing to witness.
//!
//! ## Fault model
//!
//! [`FaultyStable`] wraps any backend and injects scripted or seeded
//! faults: clean SAVE failures, torn writes that persist garbage behind a
//! successful return, stale-generation rollbacks on FETCH, erase failures.
//! [`WalStable::crash_next_compaction`] adds power-loss-mid-compaction
//! schedules. Together these drive the fault-injection campaign in the
//! harness crate.
//!
//! # Examples
//!
//! The Fig 1 race in five lines — a reset during an in-flight SAVE
//! recovers the *previous* saved counter:
//!
//! ```
//! use reset_stable::{BackgroundSaver, MemStable, SlotId};
//!
//! let slot = SlotId::sender(0x22);
//! let mut disk = BackgroundSaver::new(MemStable::new());
//! disk.save_now(slot, 100)?;   // SAVE(100) completed earlier
//! disk.issue(slot, 125);       // SAVE(125) still in flight...
//! disk.crash();                // ...when the reset strikes
//! assert_eq!(disk.fetch(slot)?, Some(100)); // FETCH sees the stale value
//! # Ok::<(), reset_stable::StableError>(())
//! ```
//!
//! And the rollback the paper's assumption rules out, caught by the
//! generation witness:
//!
//! ```
//! use reset_stable::{BackgroundSaver, Fault, FaultyStable, MemStable, SlotId, StableError};
//!
//! let slot = SlotId::receiver(0x22);
//! let mut disk = BackgroundSaver::new(FaultyStable::new(MemStable::new()));
//! disk.save_now(slot, 100)?;
//! disk.save_now(slot, 125)?;   // both SAVEs acknowledged durable
//! disk.store_mut().push_fault(Fault::RollbackLoad); // ...but the disk was restored
//! assert!(matches!(
//!     disk.fetch_checked(slot),
//!     Err(StableError::Rollback { .. })  // FETCH fails closed
//! ));
//! # Ok::<(), reset_stable::StableError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod faulty;
mod file;
mod mem;
mod record;
mod saver;
mod store;
mod wal;

pub use error::StableError;
pub use faulty::{Fault, FaultyStable};
pub use file::{Durability, FileStable};
pub use mem::MemStable;
pub use record::{
    decode_record, decode_wal_record, encode_record, encode_wal_record, WalRecord, RECORD_LEN,
    WAL_RECORD_LEN,
};
pub use saver::{BackgroundSaver, PendingSave, SaveLatencyModel};
pub use store::{SlotId, StableStore};
pub use wal::{CompactionCrash, WalStable};

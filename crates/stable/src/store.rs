//! The `StableStore` abstraction: the paper's persistent memory.
//!
//! The paper assumes "the content of the persistent memory of a computer
//! will not be corrupted or erased by a reset of that computer". A
//! [`StableStore`] is exactly that contract: values written with
//! [`StableStore::store`] survive process resets; everything else (the
//! protocol's volatile variables) is reconstructed from scratch on wake-up
//! via [`StableStore::load`] — the paper's FETCH.

use std::fmt;

use crate::StableError;

/// Identifies one persisted counter.
///
/// The paper needs one slot per process; the IPsec substrate needs one per
/// (SA, direction), so slots are an SPI plus a direction tag packed into a
/// single id.
///
/// # Examples
///
/// ```
/// use reset_stable::SlotId;
///
/// let tx = SlotId::sender(0x1234);
/// let rx = SlotId::receiver(0x1234);
/// assert_ne!(tx, rx);
/// assert_eq!(tx.spi(), 0x1234);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(u64);

impl SlotId {
    const DIR_BIT: u64 = 1 << 63;

    /// Slot for a sender-side counter of the SA identified by `spi`.
    pub const fn sender(spi: u32) -> SlotId {
        SlotId(spi as u64)
    }

    /// Slot for a receiver-side counter of the SA identified by `spi`.
    pub const fn receiver(spi: u32) -> SlotId {
        SlotId(spi as u64 | Self::DIR_BIT)
    }

    /// An arbitrary raw slot (tests, single-process experiments).
    pub const fn raw(id: u64) -> SlotId {
        SlotId(id)
    }

    /// The SPI component.
    pub const fn spi(self) -> u32 {
        (self.0 & !Self::DIR_BIT) as u32
    }

    /// True iff this is a receiver-side slot.
    pub const fn is_receiver(self) -> bool {
        self.0 & Self::DIR_BIT != 0
    }

    /// The packed 64-bit representation.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_receiver() {
            write!(f, "rx:{:#x}", self.spi())
        } else {
            write!(f, "tx:{:#x}", self.spi())
        }
    }
}

/// Persistent memory holding one `u64` counter per slot.
///
/// Implementations must guarantee that a successful [`store`] is visible to
/// every later [`load`] of the same slot, *including after a process
/// reset*. This is the paper's SAVE (store) / FETCH (load) pair.
///
/// The *duration* of a SAVE — the window during which the old value is
/// still what a crash would recover — is modelled separately by
/// [`BackgroundSaver`](crate::BackgroundSaver), keeping implementations of
/// this trait simple and synchronous.
///
/// [`store`]: StableStore::store
/// [`load`]: StableStore::load
pub trait StableStore {
    /// Durably records `value` in `slot`, replacing any previous value.
    ///
    /// # Errors
    ///
    /// Returns [`StableError`] if the device fails or a fault was injected;
    /// in that case the previous value of the slot must be unchanged.
    fn store(&mut self, slot: SlotId, value: u64) -> Result<(), StableError>;

    /// Reads the last durably stored value of `slot`, or `None` if the slot
    /// has never been written.
    ///
    /// # Errors
    ///
    /// Returns [`StableError::Corrupt`] if the stored record fails its
    /// integrity check.
    fn load(&self, slot: SlotId) -> Result<Option<u64>, StableError>;

    /// Removes a slot (used when an SA is torn down). Removing an absent
    /// slot is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`StableError`] if the device fails.
    fn erase(&mut self, slot: SlotId) -> Result<(), StableError>;

    /// Like [`store`](StableStore::store), but additionally returns the
    /// **generation number** under which the store durably recorded the
    /// write. Generation-aware backends ([`WalStable`](crate::WalStable))
    /// return a per-store monotonically increasing value; plain backends
    /// keep the default, which returns `0` — making the rollback check in
    /// [`BackgroundSaver::fetch_checked`](crate::BackgroundSaver::fetch_checked)
    /// vacuous for them.
    ///
    /// # Errors
    ///
    /// Same contract as [`store`](StableStore::store).
    fn store_witnessed(&mut self, slot: SlotId, value: u64) -> Result<u64, StableError> {
        self.store(slot, value)?;
        Ok(0)
    }

    /// Like [`load`](StableStore::load), but pairs the value with the
    /// generation it was recorded under (`0` for backends without
    /// generation tracking). A caller holding a newer witnessed generation
    /// than the one served has observed a **rollback** and must fail
    /// closed.
    ///
    /// # Errors
    ///
    /// Same contract as [`load`](StableStore::load).
    fn load_witnessed(&self, slot: SlotId) -> Result<Option<(u64, u64)>, StableError> {
        Ok(self.load(slot)?.map(|v| (v, 0)))
    }
}

impl<S: StableStore + ?Sized> StableStore for &mut S {
    fn store(&mut self, slot: SlotId, value: u64) -> Result<(), StableError> {
        (**self).store(slot, value)
    }
    fn load(&self, slot: SlotId) -> Result<Option<u64>, StableError> {
        (**self).load(slot)
    }
    fn erase(&mut self, slot: SlotId) -> Result<(), StableError> {
        (**self).erase(slot)
    }
    fn store_witnessed(&mut self, slot: SlotId, value: u64) -> Result<u64, StableError> {
        (**self).store_witnessed(slot, value)
    }
    fn load_witnessed(&self, slot: SlotId) -> Result<Option<(u64, u64)>, StableError> {
        (**self).load_witnessed(slot)
    }
}

impl<S: StableStore + ?Sized> StableStore for Box<S> {
    fn store(&mut self, slot: SlotId, value: u64) -> Result<(), StableError> {
        (**self).store(slot, value)
    }
    fn load(&self, slot: SlotId) -> Result<Option<u64>, StableError> {
        (**self).load(slot)
    }
    fn erase(&mut self, slot: SlotId) -> Result<(), StableError> {
        (**self).erase(slot)
    }
    fn store_witnessed(&mut self, slot: SlotId, value: u64) -> Result<u64, StableError> {
        (**self).store_witnessed(slot, value)
    }
    fn load_witnessed(&self, slot: SlotId) -> Result<Option<(u64, u64)>, StableError> {
        (**self).load_witnessed(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sender_receiver_slots_are_distinct() {
        for spi in [0u32, 1, 0xdead_beef, u32::MAX] {
            let s = SlotId::sender(spi);
            let r = SlotId::receiver(spi);
            assert_ne!(s, r);
            assert_eq!(s.spi(), spi);
            assert_eq!(r.spi(), spi);
            assert!(!s.is_receiver());
            assert!(r.is_receiver());
        }
    }

    #[test]
    fn display_shows_direction() {
        assert_eq!(SlotId::sender(0x10).to_string(), "tx:0x10");
        assert_eq!(SlotId::receiver(0x10).to_string(), "rx:0x10");
    }

    #[test]
    fn trait_object_usable_through_box() {
        let mut store: Box<dyn StableStore> = Box::new(crate::MemStable::new());
        store.store(SlotId::raw(1), 99).unwrap();
        assert_eq!(store.load(SlotId::raw(1)).unwrap(), Some(99));
    }

    #[test]
    fn plain_stores_witness_generation_zero() {
        // Backends without generation tracking must report generation 0 on
        // both sides, which makes the rollback comparison vacuous.
        let mut store: Box<dyn StableStore> = Box::new(crate::MemStable::new());
        assert_eq!(store.store_witnessed(SlotId::raw(2), 5).unwrap(), 0);
        assert_eq!(store.load_witnessed(SlotId::raw(2)).unwrap(), Some((5, 0)));
        assert_eq!(store.load_witnessed(SlotId::raw(3)).unwrap(), None);
    }
}

//! Background SAVE semantics — the race at the heart of the paper.
//!
//! Section 4: *"the execution of SAVE takes some time, during which the
//! computer can still send (or receive) messages"*. A SAVE issued at
//! counter value `c` only becomes durable when the write completes; a
//! reset in between recovers the **previous** saved value. That staleness
//! is what forces the `2K` leap (Figs 1 and 2).
//!
//! [`BackgroundSaver`] models this honestly: [`issue`] records a pending
//! write (volatile!), [`complete`] commits it to the wrapped
//! [`StableStore`], and [`crash`] — a reset — discards whatever was in
//! flight. The completion *instant* is chosen by the driver (simulator or
//! real clock) using a [`SaveLatencyModel`].
//!
//! [`issue`]: BackgroundSaver::issue
//! [`complete`]: BackgroundSaver::complete
//! [`crash`]: BackgroundSaver::crash

use crate::{SlotId, StableError, StableStore};

/// A SAVE that has been issued but has not yet reached persistent memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingSave {
    /// Destination slot.
    pub slot: SlotId,
    /// Value that will become durable on completion.
    pub value: u64,
}

/// Latency model for one SAVE, in nanoseconds.
///
/// The paper's running example: a write-to-file takes 100 µs on a
/// Pentium III 730 MHz running Linux 2.4.18, while sending a 1000-byte
/// message takes 4 µs — hence a save interval of at least 25 messages.
/// `SaveLatencyModel::paper_disk()` encodes exactly that device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaveLatencyModel {
    /// Minimum duration of a SAVE.
    pub base_ns: u64,
    /// Maximum extra duration (uniform jitter; the paper notes the time
    /// "can be different according to the current load of CPU").
    pub jitter_ns: u64,
}

impl SaveLatencyModel {
    /// A SAVE that completes instantaneously (APN-style untimed runs).
    pub const fn instant() -> Self {
        SaveLatencyModel {
            base_ns: 0,
            jitter_ns: 0,
        }
    }

    /// Fixed-duration SAVE.
    pub const fn fixed_ns(ns: u64) -> Self {
        SaveLatencyModel {
            base_ns: ns,
            jitter_ns: 0,
        }
    }

    /// The paper's disk: 100 µs per write-to-file.
    pub const fn paper_disk() -> Self {
        SaveLatencyModel {
            base_ns: 100_000,
            jitter_ns: 0,
        }
    }

    /// Duration of one SAVE given a raw 64-bit random draw.
    pub fn sample_ns(&self, raw: u64) -> u64 {
        if self.jitter_ns == 0 {
            self.base_ns
        } else {
            self.base_ns + raw % (self.jitter_ns + 1)
        }
    }

    /// Worst-case duration (base + full jitter) — the "reasonable upper
    /// bound of the execution time of SAVE" the paper uses to pick `K`.
    pub const fn worst_case_ns(&self) -> u64 {
        self.base_ns + self.jitter_ns
    }
}

/// Wraps a [`StableStore`] with in-flight SAVE semantics.
///
/// # Examples
///
/// ```
/// use reset_stable::{BackgroundSaver, MemStable, SlotId};
///
/// let slot = SlotId::sender(1);
/// let mut saver = BackgroundSaver::new(MemStable::new());
/// saver.issue(slot, 100);          // SAVE(100) begins...
/// saver.crash();                    // ...reset strikes first
/// assert_eq!(saver.fetch(slot)?, None); // nothing was ever durable
///
/// saver.issue(slot, 200);
/// saver.complete()?;                // SAVE finished
/// saver.crash();
/// assert_eq!(saver.fetch(slot)?, Some(200));
/// # Ok::<(), reset_stable::StableError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BackgroundSaver<S> {
    store: S,
    pending: Option<PendingSave>,
    issued: u64,
    completed: u64,
    superseded: u64,
    /// Newest store generation witnessed as durable, per slot. This is
    /// the rollback witness: it survives [`crash`](BackgroundSaver::crash)
    /// the same way the store handle itself does (think TPM-style
    /// monotonic counter living next to the persistent memory), so a
    /// FETCH served an older generation is caught by
    /// [`fetch_checked`](BackgroundSaver::fetch_checked). Plain stores
    /// witness generation 0 and the check is vacuous.
    acked: std::collections::HashMap<SlotId, u64>,
}

impl<S: StableStore> BackgroundSaver<S> {
    /// Wraps `store` with no SAVE in flight.
    pub fn new(store: S) -> Self {
        BackgroundSaver {
            store,
            pending: None,
            issued: 0,
            completed: 0,
            superseded: 0,
            acked: std::collections::HashMap::new(),
        }
    }

    fn note_acked(&mut self, slot: SlotId, generation: u64) {
        if generation == 0 {
            return;
        }
        let e = self.acked.entry(slot).or_insert(0);
        if generation > *e {
            *e = generation;
        }
    }

    /// Begins a background SAVE of `value` into `slot`. If a SAVE was
    /// already in flight it is superseded (the disk queue collapses to the
    /// newest value) and `true` is returned.
    pub fn issue(&mut self, slot: SlotId, value: u64) -> bool {
        self.issued += 1;
        let had_pending = self.pending.is_some();
        if had_pending {
            self.superseded += 1;
        }
        self.pending = Some(PendingSave { slot, value });
        had_pending
    }

    /// Completes the in-flight SAVE, making it durable. Returns the
    /// committed record, or `None` if nothing was pending (e.g. the save
    /// was wiped by a crash before its completion event fired).
    ///
    /// # Errors
    ///
    /// Propagates the underlying store error; the pending save is kept so
    /// the caller may retry.
    pub fn complete(&mut self) -> Result<Option<PendingSave>, StableError> {
        let Some(p) = self.pending else {
            return Ok(None);
        };
        let generation = self.store.store_witnessed(p.slot, p.value)?;
        self.note_acked(p.slot, generation);
        self.pending = None;
        self.completed += 1;
        Ok(Some(p))
    }

    /// A reset: the in-flight SAVE (volatile) is lost; durable state is
    /// untouched.
    pub fn crash(&mut self) {
        self.pending = None;
    }

    /// Synchronous SAVE — used on wake-up, where the paper requires the
    /// process to *wait* for `SAVE(fetched + 2K)` before resuming.
    ///
    /// # Errors
    ///
    /// Propagates the underlying store error.
    pub fn save_now(&mut self, slot: SlotId, value: u64) -> Result<(), StableError> {
        let generation = self.store.store_witnessed(slot, value)?;
        self.note_acked(slot, generation);
        self.issued += 1;
        self.completed += 1;
        Ok(())
    }

    /// FETCH: the last durable value of `slot` (pending saves invisible).
    ///
    /// # Errors
    ///
    /// Propagates the underlying store error (e.g. a corrupt record).
    pub fn fetch(&self, slot: SlotId) -> Result<Option<u64>, StableError> {
        self.store.load(slot)
    }

    /// FETCH with rollback detection: like
    /// [`fetch`](BackgroundSaver::fetch), but compares the generation the
    /// store serves against the newest generation this saver witnessed as
    /// durable for `slot`. A store serving an older generation — or
    /// nothing at all after a witnessed save — has rolled back, and the
    /// caller must fail closed rather than resume from the stale counter.
    ///
    /// # Errors
    ///
    /// [`StableError::Rollback`] on a detected rollback; otherwise the
    /// underlying store error (e.g. a corrupt record).
    pub fn fetch_checked(&self, slot: SlotId) -> Result<Option<u64>, StableError> {
        let acked = self.acked_generation(slot);
        match self.store.load_witnessed(slot)? {
            Some((value, served)) => {
                if served < acked {
                    Err(StableError::Rollback {
                        slot,
                        served,
                        acked,
                    })
                } else {
                    Ok(Some(value))
                }
            }
            None => {
                if acked > 0 {
                    Err(StableError::Rollback {
                        slot,
                        served: 0,
                        acked,
                    })
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// The newest generation witnessed as durable for `slot` (0 when no
    /// witnessed save completed, or the store doesn't track generations).
    pub fn acked_generation(&self, slot: SlotId) -> u64 {
        self.acked.get(&slot).copied().unwrap_or(0)
    }

    /// The SAVE currently in flight, if any.
    pub fn pending(&self) -> Option<PendingSave> {
        self.pending
    }

    /// Total SAVEs issued (background + synchronous).
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Total SAVEs that reached persistent memory.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Background SAVEs that were superseded before completing.
    pub fn superseded(&self) -> u64 {
        self.superseded
    }

    /// Shared access to the wrapped store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutable access to the wrapped store (for SA teardown / tests).
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Unwraps, returning the underlying store.
    pub fn into_inner(self) -> S {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStable;

    const SLOT: SlotId = SlotId::raw(1);

    #[test]
    fn pending_save_is_invisible_until_complete() {
        let mut s = BackgroundSaver::new(MemStable::new());
        s.issue(SLOT, 10);
        assert_eq!(s.fetch(SLOT).unwrap(), None, "not durable yet");
        s.complete().unwrap();
        assert_eq!(s.fetch(SLOT).unwrap(), Some(10));
    }

    #[test]
    fn crash_before_complete_recovers_previous_value() {
        // Exactly the Fig 1 "reset during SAVE" case: SAVE(s) in flight,
        // crash, FETCH returns s - K (the previously saved value).
        let mut s = BackgroundSaver::new(MemStable::new());
        s.issue(SLOT, 100);
        s.complete().unwrap(); // SAVE(100) durable
        s.issue(SLOT, 125); // SAVE(125) in flight...
        s.crash(); // ...reset
        assert_eq!(s.fetch(SLOT).unwrap(), Some(100));
        assert_eq!(s.pending(), None);
    }

    #[test]
    fn crash_after_complete_recovers_latest() {
        // Fig 1 "reset after SAVE finished" case.
        let mut s = BackgroundSaver::new(MemStable::new());
        s.issue(SLOT, 100);
        s.complete().unwrap();
        s.issue(SLOT, 125);
        s.complete().unwrap();
        s.crash();
        assert_eq!(s.fetch(SLOT).unwrap(), Some(125));
    }

    #[test]
    fn issue_supersedes_previous_pending() {
        let mut s = BackgroundSaver::new(MemStable::new());
        assert!(!s.issue(SLOT, 1));
        assert!(s.issue(SLOT, 2), "second issue supersedes");
        s.complete().unwrap();
        assert_eq!(s.fetch(SLOT).unwrap(), Some(2), "newest value wins");
        assert_eq!(s.superseded(), 1);
    }

    #[test]
    fn complete_with_nothing_pending_is_none() {
        let mut s: BackgroundSaver<MemStable> = BackgroundSaver::new(MemStable::new());
        assert_eq!(s.complete().unwrap(), None);
    }

    #[test]
    fn save_now_is_immediately_durable() {
        let mut s = BackgroundSaver::new(MemStable::new());
        s.save_now(SLOT, 77).unwrap();
        assert_eq!(s.fetch(SLOT).unwrap(), Some(77));
    }

    #[test]
    fn counters_track_lifecycle() {
        let mut s = BackgroundSaver::new(MemStable::new());
        s.issue(SLOT, 1);
        s.complete().unwrap();
        s.issue(SLOT, 2);
        s.crash();
        s.save_now(SLOT, 3).unwrap();
        assert_eq!(s.issued(), 3);
        assert_eq!(s.completed(), 2);
    }

    #[test]
    fn latency_model_samples() {
        let m = SaveLatencyModel::fixed_ns(500);
        assert_eq!(m.sample_ns(12345), 500);
        assert_eq!(m.worst_case_ns(), 500);

        let j = SaveLatencyModel {
            base_ns: 100,
            jitter_ns: 50,
        };
        for raw in 0..200u64 {
            let d = j.sample_ns(raw.wrapping_mul(0x9E37_79B9));
            assert!((100..=150).contains(&d));
        }
        assert_eq!(j.worst_case_ns(), 150);
    }

    #[test]
    fn paper_disk_matches_paper_numbers() {
        let m = SaveLatencyModel::paper_disk();
        assert_eq!(m.worst_case_ns(), 100_000); // 100 us
                                                // 100 us save / 4 us per message = 25 messages per save: the
                                                // paper's minimum save interval.
        assert_eq!(m.worst_case_ns() / 4_000, 25);
    }

    /// A store whose served generation the test scripts directly.
    #[derive(Debug, Default)]
    struct GenStore {
        inner: MemStable,
        next_gen: u64,
        serve_gen: std::cell::Cell<Option<u64>>,
    }

    impl StableStore for GenStore {
        fn store(&mut self, slot: SlotId, value: u64) -> Result<(), StableError> {
            self.inner.store(slot, value)
        }
        fn load(&self, slot: SlotId) -> Result<Option<u64>, StableError> {
            self.inner.load(slot)
        }
        fn erase(&mut self, slot: SlotId) -> Result<(), StableError> {
            self.inner.erase(slot)
        }
        fn store_witnessed(&mut self, slot: SlotId, value: u64) -> Result<u64, StableError> {
            self.inner.store(slot, value)?;
            self.next_gen += 1;
            Ok(self.next_gen)
        }
        fn load_witnessed(&self, slot: SlotId) -> Result<Option<(u64, u64)>, StableError> {
            let gen = self.serve_gen.get().unwrap_or(self.next_gen);
            Ok(self.inner.load(slot)?.map(|v| (v, gen)))
        }
    }

    #[test]
    fn fetch_checked_passes_on_current_generation() {
        let mut s = BackgroundSaver::new(GenStore::default());
        s.save_now(SLOT, 100).unwrap();
        s.issue(SLOT, 125);
        s.complete().unwrap();
        assert_eq!(s.acked_generation(SLOT), 2);
        s.crash();
        assert_eq!(s.fetch_checked(SLOT).unwrap(), Some(125));
    }

    #[test]
    fn fetch_checked_flags_stale_generation_as_rollback() {
        let mut s = BackgroundSaver::new(GenStore::default());
        s.save_now(SLOT, 100).unwrap();
        s.save_now(SLOT, 125).unwrap();
        // The store rolls back: it serves generation 1 after acking 2.
        s.store().serve_gen.set(Some(1));
        let err = s.fetch_checked(SLOT).unwrap_err();
        assert!(
            matches!(
                err,
                StableError::Rollback {
                    served: 1,
                    acked: 2,
                    ..
                }
            ),
            "{err}"
        );
        // Plain fetch stays oblivious — the witness is what catches it.
        assert_eq!(s.fetch(SLOT).unwrap(), Some(125));
    }

    #[test]
    fn fetch_checked_flags_vanished_slot_as_rollback() {
        let mut s = BackgroundSaver::new(GenStore::default());
        s.save_now(SLOT, 100).unwrap();
        s.store_mut().inner.erase(SLOT).unwrap(); // data loss behind our back
        let err = s.fetch_checked(SLOT).unwrap_err();
        assert!(
            matches!(err, StableError::Rollback { served: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn fetch_checked_is_vacuous_for_plain_stores() {
        let mut s = BackgroundSaver::new(MemStable::new());
        s.save_now(SLOT, 77).unwrap();
        assert_eq!(s.acked_generation(SLOT), 0);
        assert_eq!(s.fetch_checked(SLOT).unwrap(), Some(77));
        s.store_mut().erase(SLOT).unwrap();
        // A plain store can't witness, so a vanished slot reads as None.
        assert_eq!(s.fetch_checked(SLOT).unwrap(), None);
    }

    #[test]
    fn into_inner_returns_store() {
        let mut s = BackgroundSaver::new(MemStable::new());
        s.save_now(SLOT, 5).unwrap();
        let store = s.into_inner();
        assert_eq!(store.load(SLOT).unwrap(), Some(5));
    }
}

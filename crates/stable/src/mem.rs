//! In-memory stable store with crash semantics by construction.
//!
//! In a simulation the "persistent memory" is simply state owned by the
//! *environment* rather than by the process: when a process is reset, its
//! volatile protocol state is dropped and rebuilt, while the environment's
//! [`MemStable`] lives on — exactly the paper's disk.

use std::collections::HashMap;

use crate::{SlotId, StableError, StableStore};

/// HashMap-backed stable store. Survives simulated resets because the
/// harness (not the protocol process) owns it.
///
/// # Examples
///
/// ```
/// use reset_stable::{MemStable, SlotId, StableStore};
///
/// let mut disk = MemStable::new();
/// disk.store(SlotId::sender(1), 500)?;
/// // ... the process is reset; its volatile state is gone ...
/// assert_eq!(disk.load(SlotId::sender(1))?, Some(500)); // FETCH
/// # Ok::<(), reset_stable::StableError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct MemStable {
    slots: HashMap<SlotId, u64>,
    stores: u64,
    loads: std::cell::Cell<u64>,
}

impl MemStable {
    /// An empty store.
    pub fn new() -> Self {
        MemStable::default()
    }

    /// Total successful [`StableStore::store`] calls (the experiment
    /// harness uses this to measure SAVE frequency).
    pub fn store_count(&self) -> u64 {
        self.stores
    }

    /// Total [`StableStore::load`] calls.
    pub fn load_count(&self) -> u64 {
        self.loads.get()
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates over `(slot, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, u64)> + '_ {
        self.slots.iter().map(|(&k, &v)| (k, v))
    }
}

impl StableStore for MemStable {
    fn store(&mut self, slot: SlotId, value: u64) -> Result<(), StableError> {
        self.slots.insert(slot, value);
        self.stores += 1;
        Ok(())
    }

    fn load(&self, slot: SlotId) -> Result<Option<u64>, StableError> {
        self.loads.set(self.loads.get() + 1);
        Ok(self.slots.get(&slot).copied())
    }

    fn erase(&mut self, slot: SlotId) -> Result<(), StableError> {
        self.slots.remove(&slot);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_then_load_round_trips() {
        let mut m = MemStable::new();
        m.store(SlotId::raw(7), 42).unwrap();
        assert_eq!(m.load(SlotId::raw(7)).unwrap(), Some(42));
    }

    #[test]
    fn load_of_unwritten_slot_is_none() {
        let m = MemStable::new();
        assert_eq!(m.load(SlotId::raw(1)).unwrap(), None);
    }

    #[test]
    fn store_overwrites() {
        let mut m = MemStable::new();
        m.store(SlotId::raw(1), 10).unwrap();
        m.store(SlotId::raw(1), 20).unwrap();
        assert_eq!(m.load(SlotId::raw(1)).unwrap(), Some(20));
    }

    #[test]
    fn erase_removes_value() {
        let mut m = MemStable::new();
        m.store(SlotId::raw(1), 10).unwrap();
        m.erase(SlotId::raw(1)).unwrap();
        assert_eq!(m.load(SlotId::raw(1)).unwrap(), None);
        m.erase(SlotId::raw(1)).unwrap(); // absent erase is a no-op
    }

    #[test]
    fn slots_are_independent() {
        let mut m = MemStable::new();
        m.store(SlotId::sender(5), 1).unwrap();
        m.store(SlotId::receiver(5), 2).unwrap();
        assert_eq!(m.load(SlotId::sender(5)).unwrap(), Some(1));
        assert_eq!(m.load(SlotId::receiver(5)).unwrap(), Some(2));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn counters_count() {
        let mut m = MemStable::new();
        m.store(SlotId::raw(1), 1).unwrap();
        m.store(SlotId::raw(1), 2).unwrap();
        let _ = m.load(SlotId::raw(1));
        assert_eq!(m.store_count(), 2);
        assert_eq!(m.load_count(), 1);
    }
}

//! Write-ahead-log stable store: one append per SAVE, fleet-wide.
//!
//! [`FileStable`](crate::FileStable) pays a create + write + rename per
//! SAVE per slot — fine at 256 SAs, ruinous at the million-SA fleets the
//! roadmap targets. [`WalStable`] coalesces every slot's counter SAVEs
//! into a **single append-only log**: a SAVE is one checksummed record
//! appended to one already-open file, an erase is a tombstone record, and
//! the log is periodically **compacted** (snapshot of the live table
//! written to a temp file, fsynced, atomically renamed over the log).
//!
//! Every record carries a **monotonic generation number**. The generation
//! is the rollback witness: [`StableStore::store_witnessed`] returns it,
//! [`BackgroundSaver`](crate::BackgroundSaver) remembers the newest acked
//! generation per slot, and a FETCH that is served an *older* generation
//! (a restored-from-backup or otherwise rolled-back log) fails closed
//! with [`StableError::Rollback`] instead of resurrecting a replayable
//! anti-replay window.
//!
//! Crash recovery on [`open`](WalStable::open):
//!
//! * orphaned compaction temp files (crash between snapshot write and
//!   rename) are deleted — the log itself is still authoritative;
//! * the log is replayed record by record; the first torn or corrupt
//!   record marks the **torn tail** and the log is truncated there, so a
//!   crash mid-append loses at most the in-flight SAVE (exactly the
//!   semantics [`BackgroundSaver`](crate::BackgroundSaver) models);
//! * the generation counter resumes past the highest replayed generation,
//!   so generations stay monotonic across process crashes.
//!
//! A [`WalStable`] **clone shares the same log** (handle semantics over
//! `Arc<Mutex<..>>`): pass clones to
//! `GatewayBuilder::with_stores(move |_, _| wal.clone())` and one WAL
//! serves every (SA, direction) slot of a whole shard or fleet.

use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use reset_telemetry::Telemetry;

use crate::record::{decode_wal_record, encode_wal_record, WalRecord, WAL_RECORD_LEN};
use crate::{Durability, SlotId, StableError, StableStore};

/// Default number of appended records between compactions.
const DEFAULT_COMPACT_EVERY: u64 = 8192;

/// Where an injected power loss strikes during compaction (test hook for
/// the fault-injection campaign).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionCrash {
    /// Power dies halfway through writing the snapshot temp file: a torn
    /// temp file exists, the log is untouched.
    TornSnapshot,
    /// Power dies after the snapshot is fully written but before the
    /// rename: a complete orphan temp file exists, the log is untouched.
    BeforeRename,
}

#[derive(Debug, Clone, Copy)]
struct SlotEntry {
    generation: u64,
    /// `None` marks a tombstone. Tombstones are kept (and re-written by
    /// compaction) so the per-slot generation high-water mark survives
    /// erase + reuse of the same slot id.
    value: Option<u64>,
}

#[derive(Debug)]
struct WalInner {
    path: PathBuf,
    file: fs::File,
    durability: Durability,
    table: HashMap<u64, SlotEntry>,
    next_generation: u64,
    appended_since_compact: u64,
    compact_every: u64,
    compactions: u64,
    crash_next_compaction: Option<CompactionCrash>,
    /// Optional instrumentation: append/compaction stats flow into the
    /// shared [`Telemetry`] handle when one is attached. `None` (the
    /// default) keeps the store unobserved at zero cost.
    telemetry: Option<Telemetry>,
}

/// Shared-file write-ahead-log store. See the [crate docs](crate).
///
/// # Examples
///
/// ```no_run
/// use reset_stable::{Durability, SlotId, StableStore, WalStable};
///
/// let mut wal = WalStable::open("/tmp/fleet.wal", Durability::ProcessCrash)?;
/// let mut handle = wal.clone(); // same log, shareable across slots
/// wal.store(SlotId::sender(1), 100)?;
/// handle.store(SlotId::receiver(1), 40)?;
/// assert_eq!(wal.load(SlotId::receiver(1))?, Some(40));
/// # Ok::<(), reset_stable::StableError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WalStable {
    inner: Arc<Mutex<WalInner>>,
}

impl WalStable {
    /// Opens (creating if needed) the log at `path`, replaying any
    /// existing records: orphaned compaction temp files are removed and a
    /// torn tail is truncated at the first corrupt record.
    ///
    /// # Errors
    ///
    /// Real I/O failures only — torn or corrupt tails are recovered from,
    /// not reported.
    pub fn open(path: impl AsRef<Path>, durability: Durability) -> Result<Self, StableError> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        // A crash between snapshot write and rename leaves an orphan temp
        // file; the log is still authoritative, so just drop the orphan.
        let _ = fs::remove_file(Self::tmp_path(&path));

        let mut table = HashMap::new();
        let mut max_generation = 0u64;
        let mut good_len = 0u64;
        match fs::File::open(&path) {
            Ok(mut f) => {
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes)?;
                let mut off = 0usize;
                while off + WAL_RECORD_LEN <= bytes.len() {
                    match decode_wal_record(&bytes[off..off + WAL_RECORD_LEN]) {
                        Ok(rec) => {
                            max_generation = max_generation.max(rec.generation);
                            table.insert(
                                rec.slot.as_u64(),
                                SlotEntry {
                                    generation: rec.generation,
                                    value: if rec.tombstone { None } else { Some(rec.value) },
                                },
                            );
                            off += WAL_RECORD_LEN;
                        }
                        // Torn tail: everything from here on is the debris
                        // of a crash mid-append. Truncate and move on.
                        Err(_) => break,
                    }
                }
                good_len = off as u64;
                let file_len = bytes.len() as u64;
                if good_len < file_len {
                    let f = fs::OpenOptions::new().write(true).open(&path)?;
                    f.set_len(good_len)?;
                    if durability == Durability::PowerLoss {
                        f.sync_all()?;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }

        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        debug_assert_eq!(file.metadata()?.len(), good_len);
        Ok(WalStable {
            inner: Arc::new(Mutex::new(WalInner {
                path,
                file,
                durability,
                table,
                next_generation: max_generation + 1,
                appended_since_compact: 0,
                compact_every: DEFAULT_COMPACT_EVERY,
                compactions: 0,
                crash_next_compaction: None,
                telemetry: None,
            })),
        })
    }

    fn tmp_path(path: &Path) -> PathBuf {
        let mut os = path.as_os_str().to_os_string();
        os.push(".compact.tmp");
        PathBuf::from(os)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, WalInner> {
        self.inner.lock().expect("wal store poisoned")
    }

    /// The log file backing this store.
    pub fn path(&self) -> PathBuf {
        self.lock().path.clone()
    }

    /// Compact after this many appended records (default 8192).
    pub fn set_compact_every(&self, records: u64) {
        self.lock().compact_every = records.max(1);
    }

    /// How many compactions have run on this handle's log since open.
    pub fn compactions(&self) -> u64 {
        self.lock().compactions
    }

    /// Number of live (non-tombstone) slots in the table.
    pub fn live_slots(&self) -> usize {
        self.lock()
            .table
            .values()
            .filter(|e| e.value.is_some())
            .count()
    }

    /// Attaches a [`Telemetry`] handle: every subsequent append records
    /// its record size and every compaction its wall-clock duration.
    /// All clones of this store share the attachment (it lives in the
    /// shared log state, like the table itself).
    pub fn attach_telemetry(&self, telemetry: &Telemetry) {
        self.lock().telemetry = Some(telemetry.clone());
    }

    /// Arms an injected power loss inside the *next* compaction (consumed
    /// once). The compaction returns [`StableError::Injected`] with the
    /// on-disk state frozen at the chosen point; reopening the log from
    /// disk must then recover the pre-compaction contents.
    pub fn crash_next_compaction(&self, at: CompactionCrash) {
        self.lock().crash_next_compaction = Some(at);
    }

    fn append(&self, rec: WalRecord) -> Result<u64, StableError> {
        let mut inner = self.lock();
        let generation = inner.next_generation;
        let rec = WalRecord { generation, ..rec };
        let bytes = encode_wal_record(&rec);
        inner.file.write_all(&bytes)?;
        if inner.durability == Durability::PowerLoss {
            inner.file.sync_all()?;
        }
        inner.next_generation += 1;
        inner.table.insert(
            rec.slot.as_u64(),
            SlotEntry {
                generation,
                value: if rec.tombstone { None } else { Some(rec.value) },
            },
        );
        inner.appended_since_compact += 1;
        if let Some(t) = &inner.telemetry {
            t.record_wal_append(WAL_RECORD_LEN as u64);
        }
        if inner.appended_since_compact >= inner.compact_every {
            let started = Instant::now();
            Self::compact(&mut inner)?;
            if let Some(t) = &inner.telemetry {
                t.record_wal_compaction(started.elapsed().as_nanos() as u64);
            }
        }
        Ok(generation)
    }

    /// Snapshot the live table to a temp file and atomically rename it
    /// over the log. Tombstones are re-written too: they carry the slot's
    /// generation high-water mark.
    fn compact(inner: &mut WalInner) -> Result<(), StableError> {
        let tmp = Self::tmp_path(&inner.path);
        let crash = inner.crash_next_compaction.take();
        let mut snapshot = Vec::with_capacity(inner.table.len() * WAL_RECORD_LEN);
        let mut slots: Vec<u64> = inner.table.keys().copied().collect();
        slots.sort_unstable();
        for slot in slots {
            let entry = inner.table[&slot];
            snapshot.extend_from_slice(&encode_wal_record(&WalRecord {
                slot: SlotId::raw(slot),
                generation: entry.generation,
                value: entry.value.unwrap_or(0),
                tombstone: entry.value.is_none(),
            }));
        }
        {
            let mut f = fs::File::create(&tmp)?;
            if crash == Some(CompactionCrash::TornSnapshot) {
                f.write_all(&snapshot[..snapshot.len() / 2 + 1])?;
                f.sync_all()?;
                return Err(StableError::Injected("power loss mid-compaction snapshot"));
            }
            f.write_all(&snapshot)?;
            if inner.durability == Durability::PowerLoss {
                f.sync_all()?;
            }
        }
        if crash == Some(CompactionCrash::BeforeRename) {
            return Err(StableError::Injected("power loss before compaction rename"));
        }
        fs::rename(&tmp, &inner.path)?;
        if inner.durability == Durability::PowerLoss {
            if let Some(parent) = inner.path.parent() {
                if !parent.as_os_str().is_empty() {
                    fs::File::open(parent)?.sync_all()?;
                }
            }
        }
        // The append handle still points at the renamed-away inode;
        // reopen on the snapshot.
        inner.file = fs::OpenOptions::new().append(true).open(&inner.path)?;
        inner.appended_since_compact = 0;
        inner.compactions += 1;
        Ok(())
    }
}

impl StableStore for WalStable {
    fn store(&mut self, slot: SlotId, value: u64) -> Result<(), StableError> {
        self.append(WalRecord {
            slot,
            generation: 0,
            value,
            tombstone: false,
        })
        .map(|_| ())
    }

    fn load(&self, slot: SlotId) -> Result<Option<u64>, StableError> {
        Ok(self.lock().table.get(&slot.as_u64()).and_then(|e| e.value))
    }

    fn erase(&mut self, slot: SlotId) -> Result<(), StableError> {
        if self.lock().table.contains_key(&slot.as_u64()) {
            self.append(WalRecord {
                slot,
                generation: 0,
                value: 0,
                tombstone: true,
            })?;
        }
        Ok(())
    }

    fn store_witnessed(&mut self, slot: SlotId, value: u64) -> Result<u64, StableError> {
        self.append(WalRecord {
            slot,
            generation: 0,
            value,
            tombstone: false,
        })
    }

    fn load_witnessed(&self, slot: SlotId) -> Result<Option<(u64, u64)>, StableError> {
        Ok(self
            .lock()
            .table
            .get(&slot.as_u64())
            .and_then(|e| e.value.map(|v| (v, e.generation))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpwal(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "reset-stable-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d.join("log.wal")
    }

    fn cleanup(path: &Path) {
        if let Some(parent) = path.parent() {
            let _ = fs::remove_dir_all(parent);
        }
    }

    #[test]
    fn round_trip_and_reopen() {
        let path = tmpwal("rt");
        {
            let mut w = WalStable::open(&path, Durability::ProcessCrash).unwrap();
            w.store(SlotId::sender(1), 100).unwrap();
            w.store(SlotId::receiver(1), 40).unwrap();
            w.store(SlotId::sender(1), 125).unwrap();
        }
        let w = WalStable::open(&path, Durability::ProcessCrash).unwrap();
        assert_eq!(w.load(SlotId::sender(1)).unwrap(), Some(125));
        assert_eq!(w.load(SlotId::receiver(1)).unwrap(), Some(40));
        assert_eq!(w.load(SlotId::sender(2)).unwrap(), None);
        cleanup(&path);
    }

    #[test]
    fn generations_are_monotonic_across_reopen() {
        let path = tmpwal("gen");
        let g1;
        {
            let mut w = WalStable::open(&path, Durability::ProcessCrash).unwrap();
            let a = w.store_witnessed(SlotId::raw(1), 10).unwrap();
            let b = w.store_witnessed(SlotId::raw(1), 20).unwrap();
            assert!(b > a);
            g1 = b;
        }
        let mut w = WalStable::open(&path, Durability::ProcessCrash).unwrap();
        assert_eq!(w.load_witnessed(SlotId::raw(1)).unwrap(), Some((20, g1)));
        let g2 = w.store_witnessed(SlotId::raw(1), 30).unwrap();
        assert!(g2 > g1, "generation must survive the reopen: {g2} vs {g1}");
        cleanup(&path);
    }

    #[test]
    fn torn_tail_is_truncated_to_last_good_record() {
        let path = tmpwal("torn");
        {
            let mut w = WalStable::open(&path, Durability::ProcessCrash).unwrap();
            w.store(SlotId::raw(1), 100).unwrap();
            w.store(SlotId::raw(1), 125).unwrap();
        }
        // A crash mid-append: half a record of debris at the tail.
        let mut bytes = fs::read(&path).unwrap();
        let good = bytes.len();
        bytes.extend_from_slice(&[0xAB; WAL_RECORD_LEN / 2]);
        fs::write(&path, &bytes).unwrap();
        let w = WalStable::open(&path, Durability::ProcessCrash).unwrap();
        assert_eq!(w.load(SlotId::raw(1)).unwrap(), Some(125));
        assert_eq!(fs::metadata(&path).unwrap().len(), good as u64);
        cleanup(&path);
    }

    #[test]
    fn corrupt_mid_record_truncates_from_there() {
        let path = tmpwal("corrupt");
        {
            let mut w = WalStable::open(&path, Durability::ProcessCrash).unwrap();
            w.store(SlotId::raw(1), 100).unwrap();
            w.store(SlotId::raw(2), 7).unwrap();
        }
        // Flip a bit inside the second record: replay keeps the first and
        // truncates the rest.
        let mut bytes = fs::read(&path).unwrap();
        let idx = WAL_RECORD_LEN + 21;
        bytes[idx] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        let w = WalStable::open(&path, Durability::ProcessCrash).unwrap();
        assert_eq!(w.load(SlotId::raw(1)).unwrap(), Some(100));
        assert_eq!(w.load(SlotId::raw(2)).unwrap(), None);
        cleanup(&path);
    }

    #[test]
    fn erase_tombstones_and_survives_reopen() {
        let path = tmpwal("erase");
        {
            let mut w = WalStable::open(&path, Durability::ProcessCrash).unwrap();
            w.store(SlotId::raw(5), 1).unwrap();
            w.erase(SlotId::raw(5)).unwrap();
            w.erase(SlotId::raw(99)).unwrap(); // absent: no-op, no record
            assert_eq!(w.load(SlotId::raw(5)).unwrap(), None);
        }
        let w = WalStable::open(&path, Durability::ProcessCrash).unwrap();
        assert_eq!(w.load(SlotId::raw(5)).unwrap(), None);
        assert_eq!(w.live_slots(), 0);
        cleanup(&path);
    }

    #[test]
    fn compaction_shrinks_log_and_preserves_contents() {
        let path = tmpwal("compact");
        let mut w = WalStable::open(&path, Durability::ProcessCrash).unwrap();
        w.set_compact_every(64);
        for round in 0..10u64 {
            for slot in 0..16u64 {
                w.store(SlotId::raw(slot), round * 100 + slot).unwrap();
            }
        }
        assert!(w.compactions() >= 1, "160 appends at compact_every=64");
        let len = fs::metadata(&path).unwrap().len();
        assert!(
            len <= (64 + 16) as u64 * WAL_RECORD_LEN as u64,
            "log should stay near the live set, got {len} bytes"
        );
        for slot in 0..16u64 {
            assert_eq!(w.load(SlotId::raw(slot)).unwrap(), Some(900 + slot));
        }
        // And the compacted log replays identically.
        drop(w);
        let w = WalStable::open(&path, Durability::ProcessCrash).unwrap();
        for slot in 0..16u64 {
            assert_eq!(w.load(SlotId::raw(slot)).unwrap(), Some(900 + slot));
        }
        cleanup(&path);
    }

    #[test]
    fn power_loss_mid_compaction_recovers_from_log() {
        for crash in [CompactionCrash::TornSnapshot, CompactionCrash::BeforeRename] {
            let path = tmpwal(match crash {
                CompactionCrash::TornSnapshot => "plc-torn",
                CompactionCrash::BeforeRename => "plc-rename",
            });
            let mut w = WalStable::open(&path, Durability::PowerLoss).unwrap();
            w.set_compact_every(8);
            for i in 0..7u64 {
                w.store(SlotId::raw(i), i + 1).unwrap();
            }
            w.crash_next_compaction(crash);
            // The 8th append triggers the compaction, which "loses power".
            let err = w.store(SlotId::raw(7), 8).unwrap_err();
            assert!(matches!(err, StableError::Injected(_)), "{err}");
            // The process dies with it; a fresh open must recover every
            // value from the untouched log (the append itself landed
            // before the compaction began) and clear the orphan temp file.
            drop(w);
            assert!(WalStable::tmp_path(&path).exists(), "orphan left behind");
            let w = WalStable::open(&path, Durability::PowerLoss).unwrap();
            assert!(!WalStable::tmp_path(&path).exists(), "orphan cleaned");
            for i in 0..8u64 {
                assert_eq!(w.load(SlotId::raw(i)).unwrap(), Some(i + 1), "{crash:?}");
            }
            cleanup(&path);
        }
    }

    #[test]
    fn clones_share_one_log() {
        let path = tmpwal("share");
        let mut a = WalStable::open(&path, Durability::ProcessCrash).unwrap();
        let mut b = a.clone();
        a.store(SlotId::sender(1), 11).unwrap();
        b.store(SlotId::sender(2), 22).unwrap();
        assert_eq!(a.load(SlotId::sender(2)).unwrap(), Some(22));
        assert_eq!(b.load(SlotId::sender(1)).unwrap(), Some(11));
        assert_eq!(a.live_slots(), 2);
        cleanup(&path);
    }

    #[test]
    fn concurrent_handles_from_threads() {
        let path = tmpwal("threads");
        let w = WalStable::open(&path, Durability::ProcessCrash).unwrap();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let mut h = w.clone();
                scope.spawn(move || {
                    for v in 0..50u64 {
                        h.store(SlotId::sender(t), v).unwrap();
                    }
                });
            }
        });
        for t in 0..4u32 {
            assert_eq!(w.load(SlotId::sender(t)).unwrap(), Some(49));
        }
        cleanup(&path);
    }

    #[test]
    fn attached_telemetry_sees_appends_and_compactions() {
        let path = tmpwal("telemetry");
        let w = WalStable::open(&path, Durability::ProcessCrash).unwrap();
        let t = Telemetry::new();
        w.attach_telemetry(&t);
        w.set_compact_every(8);
        let mut clone = w.clone(); // shares the attachment
        for v in 0..20u64 {
            clone.store(SlotId::sender(1), v).unwrap();
        }
        let s = t.snapshot();
        assert_eq!(s.wal_appends, 20);
        assert_eq!(s.wal_append_bytes, 20 * WAL_RECORD_LEN as u64);
        assert_eq!(s.wal_compactions, w.compactions());
        assert!(s.wal_compactions >= 2, "20 appends at compact_every=8");
        assert_eq!(s.wal_compact_ns.count, s.wal_compactions);
        cleanup(&path);
    }
}

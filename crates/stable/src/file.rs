//! File-backed stable store — the paper's "write-to-file" SAVE.
//!
//! Each slot is one file under a directory, written atomically: the record
//! is written to a temporary file, flushed, then renamed over the slot
//! file. A crash therefore leaves either the old record or the new one,
//! never a mix — the same property the in-memory simulation assumes.
//!
//! This store backs the calibration experiment (t4): measuring a real SAVE
//! on the host reproduces the paper's Pentium III arithmetic
//! (`100 µs per write-to-file / 4 µs per message ⇒ save every ≥ 25
//! messages`).

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::record::{decode_record, encode_record};
use crate::{SlotId, StableError, StableStore};

/// Durability level for [`FileStable`] writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Write + rename only; survives process crashes (the paper's "reset")
    /// but not necessarily power loss. This is the default and matches the
    /// paper's 100 µs write-to-file cost model.
    #[default]
    ProcessCrash,
    /// Additionally `fsync` file and directory; survives power loss.
    PowerLoss,
}

/// Stable store persisting each slot as an atomic file.
///
/// # Examples
///
/// ```no_run
/// use reset_stable::{Durability, FileStable, SlotId, StableStore};
///
/// let mut disk = FileStable::open("/tmp/sa-counters", Durability::ProcessCrash)?;
/// disk.store(SlotId::sender(7), 1_000)?;
/// assert_eq!(disk.load(SlotId::sender(7))?, Some(1_000));
/// # Ok::<(), reset_stable::StableError>(())
/// ```
#[derive(Debug)]
pub struct FileStable {
    dir: PathBuf,
    durability: Durability,
}

impl FileStable {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// Orphaned `.tmp` files — the residue of a crash between the write and
    /// the rename — are removed: they hold at best a record the crash made
    /// non-durable, and leaving them around would leak one file per
    /// interrupted SAVE forever.
    ///
    /// # Errors
    ///
    /// Returns an error if the directory cannot be created or scanned.
    pub fn open(dir: impl AsRef<Path>, durability: Durability) -> Result<Self, StableError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                let _ = fs::remove_file(&path);
            }
        }
        Ok(FileStable { dir, durability })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn slot_path(&self, slot: SlotId) -> PathBuf {
        self.dir.join(format!("slot-{:016x}.sav", slot.as_u64()))
    }

    fn tmp_path(&self, slot: SlotId) -> PathBuf {
        self.dir.join(format!("slot-{:016x}.tmp", slot.as_u64()))
    }
}

impl StableStore for FileStable {
    fn store(&mut self, slot: SlotId, value: u64) -> Result<(), StableError> {
        let tmp = self.tmp_path(slot);
        let dst = self.slot_path(slot);
        let rec = encode_record(slot, value);
        // A concurrent `open()` of the same directory sweeps `.tmp` files
        // and can race away this write's temp between the write and the
        // rename. Each open sweeps once, so redoing the write converges;
        // the bound only guards against a pathological open() storm.
        for attempt in 0..16 {
            {
                let mut f = fs::File::create(&tmp)?;
                f.write_all(&rec)?;
                if self.durability == Durability::PowerLoss {
                    f.sync_all()?;
                }
            }
            match fs::rename(&tmp, &dst) {
                Ok(()) => break,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound && attempt < 15 => continue,
                Err(e) => return Err(e.into()),
            }
        }
        if self.durability == Durability::PowerLoss {
            // Persist the rename itself: `PowerLoss` promises the new value
            // survives, so a failed directory fsync must fail the SAVE.
            fs::File::open(&self.dir)?.sync_all()?;
        }
        Ok(())
    }

    fn load(&self, slot: SlotId) -> Result<Option<u64>, StableError> {
        let dst = self.slot_path(slot);
        let buf = match fs::read(&dst) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        decode_record(slot, &buf).map(Some)
    }

    fn erase(&mut self, slot: SlotId) -> Result<(), StableError> {
        match fs::remove_file(self.slot_path(slot)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "reset-stable-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn round_trip_through_filesystem() {
        let dir = tmpdir("rt");
        let mut s = FileStable::open(&dir, Durability::ProcessCrash).unwrap();
        s.store(SlotId::sender(1), 77).unwrap();
        assert_eq!(s.load(SlotId::sender(1)).unwrap(), Some(77));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn survives_reopen_like_a_reset() {
        let dir = tmpdir("reopen");
        {
            let mut s = FileStable::open(&dir, Durability::ProcessCrash).unwrap();
            s.store(SlotId::receiver(2), 4242).unwrap();
        }
        // "Reset": the old handle is dropped; a fresh process re-opens.
        let s2 = FileStable::open(&dir, Durability::ProcessCrash).unwrap();
        assert_eq!(s2.load(SlotId::receiver(2)).unwrap(), Some(4242));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_slot_is_none() {
        let dir = tmpdir("missing");
        let s = FileStable::open(&dir, Durability::ProcessCrash).unwrap();
        assert_eq!(s.load(SlotId::raw(9)).unwrap(), None);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn erase_removes_file() {
        let dir = tmpdir("erase");
        let mut s = FileStable::open(&dir, Durability::ProcessCrash).unwrap();
        s.store(SlotId::raw(3), 1).unwrap();
        s.erase(SlotId::raw(3)).unwrap();
        assert_eq!(s.load(SlotId::raw(3)).unwrap(), None);
        s.erase(SlotId::raw(3)).unwrap(); // idempotent
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupted_file_is_reported_not_returned() {
        let dir = tmpdir("corrupt");
        let mut s = FileStable::open(&dir, Durability::ProcessCrash).unwrap();
        s.store(SlotId::raw(4), 1000).unwrap();
        // Corrupt the record on disk.
        let path = s.slot_path(SlotId::raw(4));
        let mut bytes = fs::read(&path).unwrap();
        bytes[15] ^= 0x55;
        fs::write(&path, &bytes).unwrap();
        let err = s.load(SlotId::raw(4)).unwrap_err();
        assert!(matches!(err, StableError::Corrupt { .. }), "{err}");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn overwrite_keeps_latest() {
        let dir = tmpdir("overwrite");
        let mut s = FileStable::open(&dir, Durability::PowerLoss).unwrap();
        for v in [1u64, 2, 3] {
            s.store(SlotId::raw(5), v).unwrap();
        }
        assert_eq!(s.load(SlotId::raw(5)).unwrap(), Some(3));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn open_cleans_orphaned_tmp_files() {
        let dir = tmpdir("orphan");
        let mut s = FileStable::open(&dir, Durability::ProcessCrash).unwrap();
        s.store(SlotId::raw(6), 11).unwrap();
        // Simulate a crash between write and rename: a stray .tmp remains.
        let orphan = s.tmp_path(SlotId::raw(7));
        fs::write(&orphan, b"partial record from a crashed SAVE").unwrap();
        drop(s);
        let s2 = FileStable::open(&dir, Durability::ProcessCrash).unwrap();
        assert!(!orphan.exists(), "reopen must sweep orphaned .tmp files");
        assert_eq!(
            s2.load(SlotId::raw(6)).unwrap(),
            Some(11),
            "durable slots survive the sweep"
        );
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn open_sweep_does_not_break_concurrent_writers() {
        // open() sweeps `.tmp` residue; a handle mid-store must survive
        // having its in-flight temp raced away (store redoes the write).
        let dir = tmpdir("sweep-race");
        let dir2 = dir.clone();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut s = FileStable::open(&dir2, Durability::ProcessCrash).unwrap();
                for v in 0..500u64 {
                    s.store(SlotId::raw(1), v).unwrap();
                }
            });
            for _ in 0..200 {
                let _ = FileStable::open(&dir, Durability::ProcessCrash).unwrap();
            }
        });
        let s = FileStable::open(&dir, Durability::ProcessCrash).unwrap();
        assert_eq!(s.load(SlotId::raw(1)).unwrap(), Some(499));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn concurrent_distinct_slots() {
        // Distinct slots map to distinct files, so parallel writers on
        // different slots never interfere.
        let dir = tmpdir("conc");
        let dir2 = dir.clone();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let d = dir2.clone();
                scope.spawn(move || {
                    let mut s = FileStable::open(&d, Durability::ProcessCrash).unwrap();
                    for v in 0..50u64 {
                        s.store(SlotId::sender(t), v).unwrap();
                    }
                });
            }
        });
        let s = FileStable::open(&dir, Durability::ProcessCrash).unwrap();
        for t in 0..4u32 {
            assert_eq!(s.load(SlotId::sender(t)).unwrap(), Some(49));
        }
        let _ = fs::remove_dir_all(dir);
    }
}

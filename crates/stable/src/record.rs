//! On-disk record format with torn-write detection.
//!
//! A SAVE interrupted by power loss must never yield a *wrong* counter on
//! FETCH — a silently corrupted value could defeat the paper's leap bound.
//! Records therefore carry a magic, the slot id, the value, and an FNV-1a
//! checksum; a record that fails any check is reported as
//! [`StableError::Corrupt`] rather than returned.

use crate::{SlotId, StableError};

/// Serialized length of one record in bytes.
pub const RECORD_LEN: usize = 4 + 8 + 8 + 8;

const MAGIC: [u8; 4] = *b"SVF1";

/// 64-bit FNV-1a over `data`.
pub(crate) fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Encodes `(slot, value)` as a checksummed record.
pub fn encode_record(slot: SlotId, value: u64) -> [u8; RECORD_LEN] {
    let mut out = [0u8; RECORD_LEN];
    out[..4].copy_from_slice(&MAGIC);
    out[4..12].copy_from_slice(&slot.as_u64().to_be_bytes());
    out[12..20].copy_from_slice(&value.to_be_bytes());
    let sum = fnv1a(&out[..20]);
    out[20..28].copy_from_slice(&sum.to_be_bytes());
    out
}

/// Decodes and verifies a record, returning its value.
///
/// # Errors
///
/// Returns [`StableError::Corrupt`] when the buffer is short, the magic is
/// wrong, the slot doesn't match, or the checksum fails.
pub fn decode_record(slot: SlotId, buf: &[u8]) -> Result<u64, StableError> {
    if buf.len() < RECORD_LEN {
        return Err(StableError::Corrupt {
            slot,
            reason: "record truncated",
        });
    }
    let buf = &buf[..RECORD_LEN];
    if buf[..4] != MAGIC {
        return Err(StableError::Corrupt {
            slot,
            reason: "bad magic",
        });
    }
    let stored_slot = u64::from_be_bytes(buf[4..12].try_into().expect("fixed slice"));
    if stored_slot != slot.as_u64() {
        return Err(StableError::Corrupt {
            slot,
            reason: "slot mismatch",
        });
    }
    let value = u64::from_be_bytes(buf[12..20].try_into().expect("fixed slice"));
    let sum = u64::from_be_bytes(buf[20..28].try_into().expect("fixed slice"));
    if sum != fnv1a(&buf[..20]) {
        return Err(StableError::Corrupt {
            slot,
            reason: "bad checksum",
        });
    }
    Ok(value)
}

/// Serialized length of one WAL record in bytes.
pub const WAL_RECORD_LEN: usize = 4 + 1 + 8 + 8 + 8 + 8;

const WAL_MAGIC: [u8; 4] = *b"WAL1";
const WAL_KIND_SET: u8 = 1;
const WAL_KIND_TOMBSTONE: u8 = 2;

/// One decoded entry of the append-only log: a slot either took a new
/// value or was erased (tombstone), at a monotonically increasing
/// generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRecord {
    /// The slot this record mutates.
    pub slot: SlotId,
    /// Monotonic generation the log assigned to this mutation. FETCH-side
    /// rollback detection compares it against the last generation the
    /// caller witnessed as durable.
    pub generation: u64,
    /// Value written (`0` and ignored for tombstones).
    pub value: u64,
    /// True when this record erases the slot.
    pub tombstone: bool,
}

/// Encodes one WAL entry as a checksummed record.
pub fn encode_wal_record(rec: &WalRecord) -> [u8; WAL_RECORD_LEN] {
    let mut out = [0u8; WAL_RECORD_LEN];
    out[..4].copy_from_slice(&WAL_MAGIC);
    out[4] = if rec.tombstone {
        WAL_KIND_TOMBSTONE
    } else {
        WAL_KIND_SET
    };
    out[5..13].copy_from_slice(&rec.slot.as_u64().to_be_bytes());
    out[13..21].copy_from_slice(&rec.generation.to_be_bytes());
    out[21..29].copy_from_slice(&rec.value.to_be_bytes());
    let sum = fnv1a(&out[..29]);
    out[29..37].copy_from_slice(&sum.to_be_bytes());
    out
}

/// Decodes and verifies one WAL record.
///
/// # Errors
///
/// Returns [`StableError::Corrupt`] when the buffer is short, the magic or
/// kind byte is wrong, or the checksum fails — the WAL replay treats any
/// of these as a torn tail and truncates the log there.
pub fn decode_wal_record(buf: &[u8]) -> Result<WalRecord, StableError> {
    // Best-effort slot for error reporting: a torn record may not even
    // contain its slot bytes.
    let slot_hint = if buf.len() >= 13 {
        SlotId::raw(u64::from_be_bytes(
            buf[5..13].try_into().expect("fixed slice"),
        ))
    } else {
        SlotId::raw(0)
    };
    if buf.len() < WAL_RECORD_LEN {
        return Err(StableError::Corrupt {
            slot: slot_hint,
            reason: "wal record truncated",
        });
    }
    let buf = &buf[..WAL_RECORD_LEN];
    if buf[..4] != WAL_MAGIC {
        return Err(StableError::Corrupt {
            slot: slot_hint,
            reason: "wal bad magic",
        });
    }
    let tombstone = match buf[4] {
        WAL_KIND_SET => false,
        WAL_KIND_TOMBSTONE => true,
        _ => {
            return Err(StableError::Corrupt {
                slot: slot_hint,
                reason: "wal bad record kind",
            })
        }
    };
    let sum = u64::from_be_bytes(buf[29..37].try_into().expect("fixed slice"));
    if sum != fnv1a(&buf[..29]) {
        return Err(StableError::Corrupt {
            slot: slot_hint,
            reason: "wal bad checksum",
        });
    }
    Ok(WalRecord {
        slot: SlotId::raw(u64::from_be_bytes(
            buf[5..13].try_into().expect("fixed slice"),
        )),
        generation: u64::from_be_bytes(buf[13..21].try_into().expect("fixed slice")),
        value: u64::from_be_bytes(buf[21..29].try_into().expect("fixed slice")),
        tombstone,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let slot = SlotId::receiver(0xABCD);
        for v in [0u64, 1, u32::MAX as u64, u64::MAX] {
            let rec = encode_record(slot, v);
            assert_eq!(decode_record(slot, &rec).unwrap(), v);
        }
    }

    #[test]
    fn truncated_record_rejected() {
        let rec = encode_record(SlotId::raw(1), 5);
        let err = decode_record(SlotId::raw(1), &rec[..10]).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut rec = encode_record(SlotId::raw(1), 5);
        rec[0] ^= 0xFF;
        assert!(decode_record(SlotId::raw(1), &rec).is_err());
    }

    #[test]
    fn slot_mismatch_rejected() {
        let rec = encode_record(SlotId::raw(1), 5);
        let err = decode_record(SlotId::raw(2), &rec).unwrap_err();
        assert!(err.to_string().contains("slot mismatch"));
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        let slot = SlotId::raw(9);
        let rec = encode_record(slot, 123_456_789);
        for byte in 0..RECORD_LEN {
            for bit in 0..8 {
                let mut bad = rec;
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_record(slot, &bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn wal_round_trip_both_kinds() {
        for tombstone in [false, true] {
            let rec = WalRecord {
                slot: SlotId::receiver(0xF00D),
                generation: 42,
                value: if tombstone { 0 } else { u64::MAX },
                tombstone,
            };
            let bytes = encode_wal_record(&rec);
            assert_eq!(decode_wal_record(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn wal_truncated_and_flipped_bits_detected() {
        let rec = WalRecord {
            slot: SlotId::sender(9),
            generation: 7,
            value: 123,
            tombstone: false,
        };
        let bytes = encode_wal_record(&rec);
        for cut in 0..WAL_RECORD_LEN {
            assert!(decode_wal_record(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        for byte in 0..WAL_RECORD_LEN {
            for bit in 0..8 {
                let mut bad = bytes;
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_wal_record(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn wal_bad_kind_rejected() {
        let rec = WalRecord {
            slot: SlotId::raw(1),
            generation: 1,
            value: 1,
            tombstone: false,
        };
        let mut bytes = encode_wal_record(&rec);
        bytes[4] = 0x7F;
        // Re-checksum so only the kind byte is at fault.
        let sum = fnv1a(&bytes[..29]);
        bytes[29..37].copy_from_slice(&sum.to_be_bytes());
        let err = decode_wal_record(&bytes).unwrap_err();
        assert!(err.to_string().contains("kind"), "{err}");
    }

    #[test]
    fn fnv_known_values() {
        // FNV-1a reference: empty input hashes to the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        // "a" reference vector.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}

//! Fault-injecting wrapper for stress-testing recovery paths.
//!
//! Wraps any [`StableStore`] and injects faults from two sources:
//!
//! * a **scripted queue** per operation kind (store / load / erase) —
//!   deterministic, for targeted unit tests;
//! * an optional **seeded auto mode** — fire a chosen fault on every k-th
//!   matching operation or probabilistically (SplitMix64, reproducible
//!   from the seed) — for randomized fault-injection campaigns.
//!
//! Beyond clean failures, the fault model covers the real-world disk
//! betrayals the paper's "persistent memory is never corrupted" assumption
//! rules out by fiat:
//!
//! * [`Fault::TornStore`] — the write *appears* to succeed but persists
//!   only a prefix; every later load of that slot reports
//!   [`StableError::Corrupt`] until the slot is successfully rewritten;
//! * [`Fault::RollbackLoad`] — the store serves the slot's *previous*
//!   durable snapshot (value **and** generation), modelling a
//!   restored-from-backup rollback. A plain `load` swallows it silently;
//!   only the generation witness
//!   ([`BackgroundSaver::fetch_checked`](crate::BackgroundSaver::fetch_checked))
//!   catches it — which is exactly what the campaign proves.
//! * [`Fault::FailErase`] — the erase reports failure and removes nothing.
//!
//! To make the witness real even over plain inner stores, `FaultyStable`
//! tracks **shadow generations**: each successful store bumps a per-slot
//! generation returned through
//! [`StableStore::store_witnessed`]/[`StableStore::load_witnessed`], so a
//! campaign over `FaultyStable<MemStable>` exercises the same
//! fail-closed machinery a [`WalStable`](crate::WalStable) deployment
//! relies on.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};

use crate::{SlotId, StableError, StableStore};

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The next store fails with [`StableError::Injected`]; nothing is
    /// written.
    FailStore,
    /// The next store *appears* to succeed but persists only a torn
    /// prefix: later loads of the slot report [`StableError::Corrupt`]
    /// until a later store succeeds.
    TornStore,
    /// The next load fails as corrupt.
    CorruptLoad,
    /// The next load serves the slot's previous durable snapshot (stale
    /// value and stale generation) instead of the newest one.
    RollbackLoad,
    /// The next erase fails with [`StableError::Injected`]; the slot
    /// remains.
    FailErase,
    /// The next operation succeeds normally.
    Pass,
}

/// Which operation a fault applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Store,
    Load,
    Erase,
}

impl Fault {
    fn op(self) -> Option<Op> {
        match self {
            Fault::FailStore | Fault::TornStore => Some(Op::Store),
            Fault::CorruptLoad | Fault::RollbackLoad => Some(Op::Load),
            Fault::FailErase => Some(Op::Erase),
            Fault::Pass => None,
        }
    }
}

/// SplitMix64: the one-liner seeded generator (no external deps).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone)]
enum AutoMode {
    /// Fire on every k-th matching operation (the k-th, 2k-th, ...).
    EveryKth { k: u64, seen: u64 },
    /// Fire on each matching operation with probability `per_mille`/1000,
    /// drawn from a SplitMix64 stream seeded at arm time.
    Probabilistic { per_mille: u16, rng: u64 },
}

#[derive(Debug, Clone)]
struct AutoFaults {
    mode: AutoMode,
    fault: Fault,
}

/// Last two durable snapshots of a slot, for rollback serving.
#[derive(Debug, Clone, Copy, Default)]
struct Shadow {
    generation: u64,
    newest: Option<(u64, u64)>,   // (generation, value)
    previous: Option<(u64, u64)>, // the snapshot RollbackLoad serves
}

/// All mutable injection state, unified behind one `RefCell` so the
/// `&self` load path and the `&mut self` store/erase paths share a single
/// script source (the pre-PR-6 split store/load scripts are gone).
#[derive(Debug, Clone, Default)]
struct ScriptState {
    scripts: HashMap<u8, VecDeque<Fault>>, // keyed by Op discriminant
    auto: Option<AutoFaults>,
    torn: HashSet<SlotId>,
    shadow: HashMap<SlotId, Shadow>,
    injected: u64,
}

impl ScriptState {
    fn script(&mut self, op: Op) -> &mut VecDeque<Fault> {
        self.scripts.entry(op as u8).or_default()
    }

    /// The fault governing this operation, if any: scripted entries take
    /// precedence (and `Pass` consumes one slot), then the auto mode.
    fn next_fault(&mut self, op: Op) -> Option<Fault> {
        if let Some(f) = self.script(op).pop_front() {
            return match f {
                Fault::Pass => None,
                other => Some(other),
            };
        }
        let auto = self.auto.as_mut()?;
        if auto.fault.op() != Some(op) {
            return None;
        }
        let fire = match &mut auto.mode {
            AutoMode::EveryKth { k, seen } => {
                *seen += 1;
                *seen % *k == 0
            }
            AutoMode::Probabilistic { per_mille, rng } => {
                splitmix64(rng) % 1000 < *per_mille as u64
            }
        };
        fire.then_some(auto.fault)
    }
}

/// A [`StableStore`] decorator that injects faults. See the
/// [crate docs](crate) for the fault model.
///
/// # Examples
///
/// ```
/// use reset_stable::{Fault, FaultyStable, MemStable, SlotId, StableStore};
///
/// let mut s = FaultyStable::new(MemStable::new());
/// s.push_fault(Fault::FailStore);
/// assert!(s.store(SlotId::raw(1), 5).is_err()); // scripted failure
/// assert!(s.store(SlotId::raw(1), 5).is_ok());  // script exhausted
/// ```
#[derive(Debug, Clone)]
pub struct FaultyStable<S> {
    inner: S,
    state: RefCell<ScriptState>,
}

impl<S: StableStore> FaultyStable<S> {
    /// Wraps `inner` with an empty fault script (fully transparent).
    pub fn new(inner: S) -> Self {
        FaultyStable {
            inner,
            state: RefCell::new(ScriptState::default()),
        }
    }

    /// Appends a fault to the script of the operation it applies to
    /// (`Pass` pads the store script, preserving the historical API).
    pub fn push_fault(&mut self, fault: Fault) {
        let op = fault.op().unwrap_or(Op::Store);
        self.state.borrow_mut().script(op).push_back(fault);
    }

    /// Schedules the next `n` stores to fail.
    pub fn fail_next_stores(&mut self, n: usize) {
        for _ in 0..n {
            self.push_fault(Fault::FailStore);
        }
    }

    /// Arms the seeded auto mode: inject `fault` on every `k`-th
    /// operation of its kind (scripted entries still take precedence).
    pub fn auto_every_kth(&mut self, k: u64, fault: Fault) {
        self.state.borrow_mut().auto = Some(AutoFaults {
            mode: AutoMode::EveryKth {
                k: k.max(1),
                seen: 0,
            },
            fault,
        });
    }

    /// Arms the seeded auto mode: inject `fault` on each operation of its
    /// kind with probability `per_mille`/1000, reproducible from `seed`.
    pub fn auto_probabilistic(&mut self, seed: u64, per_mille: u16, fault: Fault) {
        self.state.borrow_mut().auto = Some(AutoFaults {
            mode: AutoMode::Probabilistic {
                per_mille: per_mille.min(1000),
                rng: seed,
            },
            fault,
        });
    }

    /// Disarms the auto mode (scripted entries are kept).
    pub fn clear_auto(&mut self) {
        self.state.borrow_mut().auto = None;
    }

    /// Number of injected faults so far (all kinds).
    pub fn injected_failures(&self) -> u64 {
        self.state.borrow().injected
    }

    /// Shared access to the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps, returning the underlying store.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// The store mutation shared by `store` and `store_witnessed`:
    /// consult the fault source, keep the shadow generation history in
    /// sync, and return the generation the write was witnessed under.
    fn store_impl(&mut self, slot: SlotId, value: u64) -> Result<u64, StableError> {
        let fault = self.state.borrow_mut().next_fault(Op::Store);
        match fault {
            Some(Fault::FailStore) => {
                self.state.borrow_mut().injected += 1;
                Err(StableError::Injected("store failed by script"))
            }
            Some(Fault::TornStore) => {
                // The caller sees success and will ack the generation; the
                // medium holds garbage. Only a later load can find out.
                let mut st = self.state.borrow_mut();
                st.injected += 1;
                st.torn.insert(slot);
                let shadow = st.shadow.entry(slot).or_default();
                shadow.generation += 1;
                Ok(shadow.generation)
            }
            _ => {
                self.inner.store(slot, value)?;
                let mut st = self.state.borrow_mut();
                st.torn.remove(&slot);
                let shadow = st.shadow.entry(slot).or_default();
                shadow.generation += 1;
                shadow.previous = shadow.newest;
                shadow.newest = Some((shadow.generation, value));
                Ok(shadow.generation)
            }
        }
    }

    /// The load path shared by `load` and `load_witnessed`.
    fn load_impl(&self, slot: SlotId) -> Result<Option<(u64, u64)>, StableError> {
        let mut st = self.state.borrow_mut();
        if st.torn.contains(&slot) {
            return Err(StableError::Corrupt {
                slot,
                reason: "torn write",
            });
        }
        match st.next_fault(Op::Load) {
            Some(Fault::CorruptLoad) => {
                st.injected += 1;
                Err(StableError::Corrupt {
                    slot,
                    reason: "corrupted by script",
                })
            }
            Some(Fault::RollbackLoad) => {
                st.injected += 1;
                // Serve the previous snapshot: value and generation both
                // stale — or nothing, if the slot had only one write.
                let shadow = st.shadow.get(&slot).copied().unwrap_or_default();
                Ok(shadow.previous.map(|(gen, v)| (v, gen)))
            }
            _ => {
                let gen = st
                    .shadow
                    .get(&slot)
                    .and_then(|s| s.newest)
                    .map_or(0, |(gen, _)| gen);
                drop(st);
                Ok(self.inner.load(slot)?.map(|v| (v, gen)))
            }
        }
    }
}

impl<S: StableStore> StableStore for FaultyStable<S> {
    fn store(&mut self, slot: SlotId, value: u64) -> Result<(), StableError> {
        self.store_impl(slot, value).map(|_| ())
    }

    fn load(&self, slot: SlotId) -> Result<Option<u64>, StableError> {
        Ok(self.load_impl(slot)?.map(|(v, _)| v))
    }

    fn erase(&mut self, slot: SlotId) -> Result<(), StableError> {
        let fault = self.state.borrow_mut().next_fault(Op::Erase);
        if matches!(fault, Some(Fault::FailErase)) {
            self.state.borrow_mut().injected += 1;
            return Err(StableError::Injected("erase failed by script"));
        }
        self.inner.erase(slot)?;
        let mut st = self.state.borrow_mut();
        st.torn.remove(&slot);
        st.shadow.remove(&slot);
        Ok(())
    }

    fn store_witnessed(&mut self, slot: SlotId, value: u64) -> Result<u64, StableError> {
        self.store_impl(slot, value)
    }

    fn load_witnessed(&self, slot: SlotId) -> Result<Option<(u64, u64)>, StableError> {
        self.load_impl(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BackgroundSaver, MemStable};

    #[test]
    fn transparent_without_script() {
        let mut s = FaultyStable::new(MemStable::new());
        s.store(SlotId::raw(1), 9).unwrap();
        assert_eq!(s.load(SlotId::raw(1)).unwrap(), Some(9));
    }

    #[test]
    fn scripted_store_failure_preserves_old_value() {
        let mut s = FaultyStable::new(MemStable::new());
        s.store(SlotId::raw(1), 10).unwrap();
        s.push_fault(Fault::FailStore);
        assert!(s.store(SlotId::raw(1), 20).is_err());
        assert_eq!(
            s.load(SlotId::raw(1)).unwrap(),
            Some(10),
            "failed store must not clobber"
        );
        assert_eq!(s.injected_failures(), 1);
    }

    #[test]
    fn pass_entries_let_one_through() {
        let mut s = FaultyStable::new(MemStable::new());
        s.push_fault(Fault::Pass);
        s.push_fault(Fault::FailStore);
        s.store(SlotId::raw(1), 1).unwrap();
        assert!(s.store(SlotId::raw(1), 2).is_err());
    }

    #[test]
    fn corrupt_load_fires_once() {
        let mut s = FaultyStable::new(MemStable::new());
        s.store(SlotId::raw(2), 5).unwrap();
        s.push_fault(Fault::CorruptLoad);
        assert!(matches!(
            s.load(SlotId::raw(2)),
            Err(StableError::Corrupt { .. })
        ));
        assert_eq!(s.load(SlotId::raw(2)).unwrap(), Some(5));
    }

    #[test]
    fn fail_next_stores_counts() {
        let mut s = FaultyStable::new(MemStable::new());
        s.fail_next_stores(3);
        for _ in 0..3 {
            assert!(s.store(SlotId::raw(1), 0).is_err());
        }
        assert!(s.store(SlotId::raw(1), 0).is_ok());
    }

    #[test]
    fn works_under_background_saver() {
        let mut inner = FaultyStable::new(MemStable::new());
        inner.push_fault(Fault::FailStore);
        let mut saver = BackgroundSaver::new(inner);
        saver.issue(SlotId::raw(1), 42);
        // Completion hits the scripted failure; pending is retained.
        assert!(saver.complete().is_err());
        assert!(saver.pending().is_some(), "retry remains possible");
        // Retry succeeds.
        assert!(saver.complete().unwrap().is_some());
        assert_eq!(saver.fetch(SlotId::raw(1)).unwrap(), Some(42));
    }

    #[test]
    fn torn_store_reports_success_then_corrupt_loads() {
        let slot = SlotId::raw(3);
        let mut s = FaultyStable::new(MemStable::new());
        s.store(slot, 10).unwrap();
        s.push_fault(Fault::TornStore);
        // The betrayal: the write "succeeds"...
        s.store(slot, 20).unwrap();
        // ...but the slot is now unreadable, repeatedly.
        for _ in 0..3 {
            assert!(matches!(s.load(slot), Err(StableError::Corrupt { .. })));
        }
        // A successful rewrite heals it.
        s.store(slot, 30).unwrap();
        assert_eq!(s.load(slot).unwrap(), Some(30));
    }

    #[test]
    fn rollback_load_serves_previous_snapshot_with_stale_generation() {
        let slot = SlotId::raw(4);
        let mut s = FaultyStable::new(MemStable::new());
        let g1 = s.store_witnessed(slot, 100).unwrap();
        let g2 = s.store_witnessed(slot, 125).unwrap();
        assert!(g2 > g1);
        s.push_fault(Fault::RollbackLoad);
        // Stale value AND stale generation — invisible to a plain load,
        // caught by the generation witness.
        assert_eq!(s.load_witnessed(slot).unwrap(), Some((100, g1)));
        assert_eq!(s.load_witnessed(slot).unwrap(), Some((125, g2)));
    }

    #[test]
    fn rollback_on_single_write_serves_nothing() {
        let slot = SlotId::raw(5);
        let mut s = FaultyStable::new(MemStable::new());
        s.store(slot, 7).unwrap();
        s.push_fault(Fault::RollbackLoad);
        assert_eq!(s.load(slot).unwrap(), None, "no previous snapshot exists");
    }

    #[test]
    fn rollback_is_caught_by_fetch_checked_not_fetch() {
        let slot = SlotId::raw(6);
        let mut saver = BackgroundSaver::new(FaultyStable::new(MemStable::new()));
        saver.save_now(slot, 100).unwrap();
        saver.save_now(slot, 125).unwrap();
        saver.store_mut().push_fault(Fault::RollbackLoad);
        saver.store_mut().push_fault(Fault::RollbackLoad);
        // The plain FETCH resurrects the replayable counter...
        assert_eq!(saver.fetch(slot).unwrap(), Some(100));
        // ...the witnessed FETCH fails closed.
        assert!(matches!(
            saver.fetch_checked(slot),
            Err(StableError::Rollback { .. })
        ));
    }

    #[test]
    fn erase_faults_and_passthrough() {
        let slot = SlotId::raw(7);
        let mut s = FaultyStable::new(MemStable::new());
        s.store(slot, 1).unwrap();
        s.push_fault(Fault::FailErase);
        assert!(s.erase(slot).is_err());
        assert_eq!(
            s.load(slot).unwrap(),
            Some(1),
            "failed erase removes nothing"
        );
        s.erase(slot).unwrap();
        assert_eq!(s.load(slot).unwrap(), None);
        assert_eq!(s.injected_failures(), 1);
    }

    #[test]
    fn auto_every_kth_fires_periodically() {
        let mut s = FaultyStable::new(MemStable::new());
        s.auto_every_kth(3, Fault::FailStore);
        let mut failures = 0;
        for i in 0..9u64 {
            if s.store(SlotId::raw(1), i).is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 3, "every 3rd of 9 stores");
        // Scripted entries take precedence over the auto mode.
        s.push_fault(Fault::Pass);
        assert!(s.store(SlotId::raw(1), 99).is_ok());
    }

    #[test]
    fn auto_probabilistic_is_seeded_and_reproducible() {
        let run = |seed: u64| {
            let mut s = FaultyStable::new(MemStable::new());
            s.auto_probabilistic(seed, 250, Fault::FailStore);
            (0..400u64)
                .map(|i| u64::from(s.store(SlotId::raw(1), i).is_err()))
                .sum::<u64>()
        };
        let a = run(42);
        assert_eq!(a, run(42), "same seed, same schedule");
        assert!(a > 40 && a < 160, "~25% of 400, got {a}");
        assert_ne!(a, run(43), "different seed, different schedule");
    }

    #[test]
    fn auto_mode_respects_operation_kind() {
        let mut s = FaultyStable::new(MemStable::new());
        s.auto_every_kth(1, Fault::CorruptLoad);
        // Load faults never fire on stores or erases.
        s.store(SlotId::raw(1), 1).unwrap();
        s.erase(SlotId::raw(1)).unwrap();
        s.store(SlotId::raw(1), 2).unwrap();
        assert!(s.load(SlotId::raw(1)).is_err());
        s.clear_auto();
        assert_eq!(s.load(SlotId::raw(1)).unwrap(), Some(2));
    }

    #[test]
    fn shadow_generations_make_memstable_witnessed() {
        let slot = SlotId::raw(8);
        let mut s = FaultyStable::new(MemStable::new());
        assert_eq!(s.load_witnessed(slot).unwrap(), None);
        let g1 = s.store_witnessed(slot, 5).unwrap();
        let g2 = s.store_witnessed(slot, 6).unwrap();
        assert!(g1 >= 1 && g2 > g1);
        assert_eq!(s.load_witnessed(slot).unwrap(), Some((6, g2)));
        // Erase resets the slot's shadow entirely.
        s.erase(slot).unwrap();
        assert_eq!(s.load_witnessed(slot).unwrap(), None);
    }
}

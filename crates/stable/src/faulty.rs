//! Fault-injecting wrapper for stress-testing recovery paths.
//!
//! Wraps any [`StableStore`] and fails operations according to a script:
//! fail the next N stores, fail every k-th store, or corrupt reads. The
//! convergence tests use this to check that a failing SAVE never lets the
//! protocol accept a replay — it may only delay convergence.

use std::collections::VecDeque;

use crate::{SlotId, StableError, StableStore};

/// One scripted fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The next store fails with [`StableError::Injected`].
    FailStore,
    /// The next load fails as corrupt.
    CorruptLoad,
    /// The next operation succeeds normally.
    Pass,
}

/// A [`StableStore`] decorator that injects scripted faults.
///
/// # Examples
///
/// ```
/// use reset_stable::{Fault, FaultyStable, MemStable, SlotId, StableStore};
///
/// let mut s = FaultyStable::new(MemStable::new());
/// s.push_fault(Fault::FailStore);
/// assert!(s.store(SlotId::raw(1), 5).is_err()); // scripted failure
/// assert!(s.store(SlotId::raw(1), 5).is_ok());  // script exhausted
/// ```
#[derive(Debug, Clone)]
pub struct FaultyStable<S> {
    inner: S,
    store_script: VecDeque<Fault>,
    load_script: std::cell::RefCell<VecDeque<Fault>>,
    injected_failures: u64,
}

impl<S: StableStore> FaultyStable<S> {
    /// Wraps `inner` with an empty fault script (fully transparent).
    pub fn new(inner: S) -> Self {
        FaultyStable {
            inner,
            store_script: VecDeque::new(),
            load_script: std::cell::RefCell::new(VecDeque::new()),
            injected_failures: 0,
        }
    }

    /// Appends a fault to the relevant script.
    pub fn push_fault(&mut self, fault: Fault) {
        match fault {
            Fault::FailStore | Fault::Pass => self.store_script.push_back(fault),
            Fault::CorruptLoad => self.load_script.borrow_mut().push_back(fault),
        }
    }

    /// Schedules the next `n` stores to fail.
    pub fn fail_next_stores(&mut self, n: usize) {
        for _ in 0..n {
            self.push_fault(Fault::FailStore);
        }
    }

    /// Number of injected failures so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected_failures
    }

    /// Shared access to the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps, returning the underlying store.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: StableStore> StableStore for FaultyStable<S> {
    fn store(&mut self, slot: SlotId, value: u64) -> Result<(), StableError> {
        match self.store_script.pop_front() {
            Some(Fault::FailStore) => {
                self.injected_failures += 1;
                Err(StableError::Injected("store failed by script"))
            }
            _ => self.inner.store(slot, value),
        }
    }

    fn load(&self, slot: SlotId) -> Result<Option<u64>, StableError> {
        match self.load_script.borrow_mut().pop_front() {
            Some(Fault::CorruptLoad) => Err(StableError::Corrupt {
                slot,
                reason: "corrupted by script",
            }),
            _ => self.inner.load(slot),
        }
    }

    fn erase(&mut self, slot: SlotId) -> Result<(), StableError> {
        self.inner.erase(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemStable;

    #[test]
    fn transparent_without_script() {
        let mut s = FaultyStable::new(MemStable::new());
        s.store(SlotId::raw(1), 9).unwrap();
        assert_eq!(s.load(SlotId::raw(1)).unwrap(), Some(9));
    }

    #[test]
    fn scripted_store_failure_preserves_old_value() {
        let mut s = FaultyStable::new(MemStable::new());
        s.store(SlotId::raw(1), 10).unwrap();
        s.push_fault(Fault::FailStore);
        assert!(s.store(SlotId::raw(1), 20).is_err());
        assert_eq!(
            s.load(SlotId::raw(1)).unwrap(),
            Some(10),
            "failed store must not clobber"
        );
        assert_eq!(s.injected_failures(), 1);
    }

    #[test]
    fn pass_entries_let_one_through() {
        let mut s = FaultyStable::new(MemStable::new());
        s.push_fault(Fault::Pass);
        s.push_fault(Fault::FailStore);
        s.store(SlotId::raw(1), 1).unwrap();
        assert!(s.store(SlotId::raw(1), 2).is_err());
    }

    #[test]
    fn corrupt_load_fires_once() {
        let mut s = FaultyStable::new(MemStable::new());
        s.store(SlotId::raw(2), 5).unwrap();
        s.push_fault(Fault::CorruptLoad);
        assert!(matches!(
            s.load(SlotId::raw(2)),
            Err(StableError::Corrupt { .. })
        ));
        assert_eq!(s.load(SlotId::raw(2)).unwrap(), Some(5));
    }

    #[test]
    fn fail_next_stores_counts() {
        let mut s = FaultyStable::new(MemStable::new());
        s.fail_next_stores(3);
        for _ in 0..3 {
            assert!(s.store(SlotId::raw(1), 0).is_err());
        }
        assert!(s.store(SlotId::raw(1), 0).is_ok());
    }

    #[test]
    fn works_under_background_saver() {
        use crate::BackgroundSaver;
        let mut inner = FaultyStable::new(MemStable::new());
        inner.push_fault(Fault::FailStore);
        let mut saver = BackgroundSaver::new(inner);
        saver.issue(SlotId::raw(1), 42);
        // Completion hits the scripted failure; pending is retained.
        assert!(saver.complete().is_err());
        assert!(saver.pending().is_some(), "retry remains possible");
        // Retry succeeds.
        assert!(saver.complete().unwrap().is_some());
        assert_eq!(saver.fetch(SlotId::raw(1)).unwrap(), Some(42));
    }
}

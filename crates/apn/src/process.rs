//! Process abstraction: a set of guarded actions, as in Gouda's Abstract
//! Protocol Notation (the paper's specification language, reference [1]).
//!
//! A process is defined by constants, variables and actions of the form
//! `<guard> → <statement>`. A guard is either a boolean expression over
//! the process's own state (a *local* guard) or a receive guard
//! `rcv <message> from x`. The runtime in [`crate::System`] executes one
//! action at a time, only when its guard is true, with weak fairness.

/// Index of a process within a [`crate::System`].
pub type ProcId = usize;

/// The kind of guard an action has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardKind {
    /// Boolean expression over local state; enabledness is asked via
    /// [`ApnProcess::local_enabled`].
    Local,
    /// `rcv <msg> from <proc>`: enabled iff the channel from `from` to
    /// this process is non-empty.
    Receive {
        /// The peer the receive guard names.
        from: ProcId,
    },
}

/// Messages emitted by a firing action, each addressed to a process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outbox<M> {
    msgs: Vec<(ProcId, M)>,
}

impl<M> Outbox<M> {
    /// An empty outbox.
    pub fn new() -> Self {
        Outbox { msgs: Vec::new() }
    }

    /// The APN `send <message> to <proc>` statement.
    pub fn send(&mut self, to: ProcId, msg: M) {
        self.msgs.push((to, msg));
    }

    /// Number of queued sends.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// True iff no sends were queued.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Drains the queued sends.
    pub fn into_msgs(self) -> Vec<(ProcId, M)> {
        self.msgs
    }
}

impl<M> Default for Outbox<M> {
    fn default() -> Self {
        Outbox::new()
    }
}

/// A process in the Abstract Protocol Notation.
///
/// Implementations list their actions by index; the runtime asks for each
/// action's [`GuardKind`], checks enabledness, and fires exactly one
/// enabled action per step.
///
/// The two fault hooks model the paper's environment-triggered actions
/// `(process x is reset)` and `(process x wakes up after a reset)`; the
/// default implementations ignore faults (a reset-oblivious process).
pub trait ApnProcess {
    /// The protocol's message type.
    type Msg;

    /// Human-readable name for traces (e.g. `"p"`, `"q"`).
    fn name(&self) -> &'static str;

    /// Number of actions this process defines.
    fn action_count(&self) -> usize;

    /// The guard kind of action `i`.
    fn guard(&self, action: usize) -> GuardKind;

    /// For [`GuardKind::Local`] actions: is the boolean guard true?
    fn local_enabled(&self, action: usize) -> bool;

    /// Fires a local action.
    fn fire_local(&mut self, action: usize, out: &mut Outbox<Self::Msg>);

    /// Fires a receive action with the message popped from the channel.
    fn fire_receive(
        &mut self,
        action: usize,
        from: ProcId,
        msg: Self::Msg,
        out: &mut Outbox<Self::Msg>,
    );

    /// Environment fault: the process is reset (volatile state will be
    /// lost; in the paper this sets `wait := true`).
    fn on_reset(&mut self) {}

    /// Environment fault: the process wakes up after a reset (in the
    /// paper: FETCH, leap, synchronous SAVE, `wait := false`).
    fn on_wakeup(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_queues_in_order() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.send(1, "a");
        out.send(0, "b");
        assert_eq!(out.len(), 2);
        assert_eq!(out.into_msgs(), vec![(1, "a"), (0, "b")]);
    }

    #[test]
    fn default_fault_hooks_are_noops() {
        struct Nop;
        impl ApnProcess for Nop {
            type Msg = ();
            fn name(&self) -> &'static str {
                "nop"
            }
            fn action_count(&self) -> usize {
                0
            }
            fn guard(&self, _: usize) -> GuardKind {
                GuardKind::Local
            }
            fn local_enabled(&self, _: usize) -> bool {
                false
            }
            fn fire_local(&mut self, _: usize, _: &mut Outbox<()>) {}
            fn fire_receive(&mut self, _: usize, _: ProcId, _: (), _: &mut Outbox<()>) {}
        }
        let mut n = Nop;
        n.on_reset();
        n.on_wakeup();
    }
}

//! The APN execution engine: channels, scheduling, faults.
//!
//! Execution follows the three rules of the notation (paper §1):
//!
//! 1. an action is executed only when its guard is true;
//! 2. actions are executed one at a time;
//! 3. an action whose guard is continuously true is eventually executed
//!    (weak fairness — guaranteed by the round-robin policy).
//!
//! On top of the pure notation, the system exposes *fault* transitions:
//! message loss/duplication/injection on channels (the paper's adversary
//! inserts copies of recorded messages) and reset/wake-up of processes.

use std::collections::VecDeque;

use reset_sim::DetRng;

use crate::process::{ApnProcess, GuardKind, Outbox, ProcId};

/// How the scheduler picks among enabled actions.
#[derive(Debug, Clone)]
pub enum Schedule {
    /// Rotating priority over `(process, action)` pairs — weakly fair.
    RoundRobin,
    /// Uniformly random among enabled actions (seeded, reproducible).
    /// Random schedules are *probabilistically* fair; convergence tests
    /// combine them with step bounds.
    Random(DetRng),
}

/// Identifies one fired action for traces and exhaustive exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Step {
    /// Which process fired.
    pub proc: ProcId,
    /// Which of its actions fired.
    pub action: usize,
}

/// A running APN system over homogeneous process type `P`.
///
/// Heterogeneous protocols (the paper's `p` and `q`) wrap their processes
/// in an enum implementing [`ApnProcess`].
///
/// `System` is `Clone` when the processes and messages are, which is what
/// enables exhaustive state-space exploration in tests (branch on every
/// enabled step from a cloned snapshot).
#[derive(Debug)]
pub struct System<P: ApnProcess> {
    procs: Vec<P>,
    /// chans[from][to] is the FIFO channel from `from` to `to`.
    chans: Vec<Vec<VecDeque<P::Msg>>>,
    schedule: Schedule,
    cursor: usize,
    steps: u64,
}

impl<P: ApnProcess> System<P> {
    /// Builds a system from processes; all pairwise channels start empty.
    pub fn new(procs: Vec<P>, schedule: Schedule) -> Self {
        let n = procs.len();
        let chans = (0..n)
            .map(|_| (0..n).map(|_| VecDeque::new()).collect())
            .collect();
        System {
            procs,
            chans,
            schedule,
            cursor: 0,
            steps: 0,
        }
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True iff the system has no processes.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Shared access to a process (for assertions).
    pub fn proc(&self, id: ProcId) -> &P {
        &self.procs[id]
    }

    /// Mutable access to a process (test setup only; protocol execution
    /// should go through [`System::step`]).
    pub fn proc_mut(&mut self, id: ProcId) -> &mut P {
        &mut self.procs[id]
    }

    /// Messages currently in the channel `from → to`.
    pub fn channel(&self, from: ProcId, to: ProcId) -> &VecDeque<P::Msg> {
        &self.chans[from][to]
    }

    /// Total steps executed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Lists every currently enabled `(process, action)` pair — the
    /// nondeterministic choice set. Exposed so tests can exhaustively
    /// explore interleavings.
    pub fn enabled(&self) -> Vec<Step> {
        let mut out = Vec::new();
        for (pid, p) in self.procs.iter().enumerate() {
            for a in 0..p.action_count() {
                let on = match p.guard(a) {
                    GuardKind::Local => p.local_enabled(a),
                    GuardKind::Receive { from } => !self.chans[from][pid].is_empty(),
                };
                if on {
                    out.push(Step {
                        proc: pid,
                        action: a,
                    });
                }
            }
        }
        out
    }

    /// Fires a specific enabled step (for exhaustive exploration).
    ///
    /// # Panics
    ///
    /// Panics if the step's guard is not currently true.
    pub fn fire(&mut self, step: Step) {
        let pid = step.proc;
        let a = step.action;
        let mut out = Outbox::new();
        match self.procs[pid].guard(a) {
            GuardKind::Local => {
                assert!(
                    self.procs[pid].local_enabled(a),
                    "firing disabled local action"
                );
                self.procs[pid].fire_local(a, &mut out);
            }
            GuardKind::Receive { from } => {
                let msg = self.chans[from][pid]
                    .pop_front()
                    .expect("firing receive on empty channel");
                self.procs[pid].fire_receive(a, from, msg, &mut out);
            }
        }
        for (to, msg) in out.into_msgs() {
            self.chans[pid][to].push_back(msg);
        }
        self.steps += 1;
    }

    /// Executes one scheduler-chosen step. Returns the step, or `None`
    /// when no action is enabled (deadlock / quiescence).
    pub fn step(&mut self) -> Option<Step> {
        let enabled = self.enabled();
        if enabled.is_empty() {
            return None;
        }
        let chosen = match &mut self.schedule {
            Schedule::Random(rng) => enabled[rng.below(enabled.len() as u64) as usize],
            Schedule::RoundRobin => {
                // Rotate priority by total (proc, action) index so every
                // continuously enabled action is eventually first.
                let total: usize = self.procs.iter().map(|p| p.action_count()).sum();
                let flat_index = |s: &Step| {
                    let mut idx = 0;
                    for (pid, p) in self.procs.iter().enumerate() {
                        if pid == s.proc {
                            return idx + s.action;
                        }
                        idx += p.action_count();
                    }
                    unreachable!("step refers to known process")
                };
                let cur = self.cursor;
                let chosen = *enabled
                    .iter()
                    .min_by_key(|s| (flat_index(s) + total - cur) % total)
                    .expect("non-empty");
                self.cursor = (flat_index(&chosen) + 1) % total.max(1);
                chosen
            }
        };
        self.fire(chosen);
        Some(chosen)
    }

    /// Runs until quiescence or `max_steps`. Returns steps executed.
    pub fn run(&mut self, max_steps: u64) -> u64 {
        let mut n = 0;
        while n < max_steps && self.step().is_some() {
            n += 1;
        }
        n
    }

    // ------------------------------------------------------------------
    // Fault transitions (the environment's moves).
    // ------------------------------------------------------------------

    /// Resets process `pid` (the paper's `(process x is reset)` action).
    pub fn inject_reset(&mut self, pid: ProcId) {
        self.procs[pid].on_reset();
    }

    /// Wakes process `pid` up after a reset.
    pub fn inject_wakeup(&mut self, pid: ProcId) {
        self.procs[pid].on_wakeup();
    }

    /// Drops the message at `pos` in channel `from → to`. Returns it.
    pub fn lose(&mut self, from: ProcId, to: ProcId, pos: usize) -> Option<P::Msg> {
        self.chans[from][to].remove(pos)
    }

    /// Injects `msg` at the back of channel `from → to` (adversary move).
    pub fn inject(&mut self, from: ProcId, to: ProcId, msg: P::Msg) {
        self.chans[from][to].push_back(msg);
    }

    /// Moves the front message of `from → to` behind the next `by`
    /// messages (a bounded reorder).
    pub fn reorder_front(&mut self, from: ProcId, to: ProcId, by: usize) {
        let ch = &mut self.chans[from][to];
        if let Some(m) = ch.pop_front() {
            let pos = by.min(ch.len());
            ch.insert(pos, m);
        }
    }
}

impl<P: ApnProcess + Clone> Clone for System<P>
where
    P::Msg: Clone,
{
    fn clone(&self) -> Self {
        System {
            procs: self.procs.clone(),
            chans: self.chans.clone(),
            schedule: self.schedule.clone(),
            cursor: self.cursor,
            steps: self.steps,
        }
    }
}

impl<P: ApnProcess> System<P>
where
    P::Msg: Clone,
{
    /// Duplicates the message at `pos` in channel `from → to` (channel
    /// fault or adversary copy).
    pub fn duplicate(&mut self, from: ProcId, to: ProcId, pos: usize) {
        if let Some(m) = self.chans[from][to].get(pos).cloned() {
            self.chans[from][to].push_back(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A token-passing ring: each process forwards an incremented counter.
    #[derive(Debug, Clone)]
    struct Node {
        id: ProcId,
        next: ProcId,
        has_token: bool,
        value: u64,
        fired: u64,
    }

    impl ApnProcess for Node {
        type Msg = u64;

        fn name(&self) -> &'static str {
            "node"
        }
        fn action_count(&self) -> usize {
            2
        }
        fn guard(&self, action: usize) -> GuardKind {
            match action {
                0 => GuardKind::Local,
                _ => GuardKind::Receive {
                    from: if self.id == 0 { 1 } else { self.id - 1 },
                },
            }
        }
        fn local_enabled(&self, action: usize) -> bool {
            action == 0 && self.has_token
        }
        fn fire_local(&mut self, _: usize, out: &mut Outbox<u64>) {
            self.has_token = false;
            out.send(self.next, self.value + 1);
            self.fired += 1;
        }
        fn fire_receive(&mut self, _: usize, _from: ProcId, msg: u64, _out: &mut Outbox<u64>) {
            self.value = msg;
            self.has_token = true;
            self.fired += 1;
        }
    }

    fn ring() -> System<Node> {
        let n0 = Node {
            id: 0,
            next: 1,
            has_token: true,
            value: 0,
            fired: 0,
        };
        let n1 = Node {
            id: 1,
            next: 0,
            has_token: false,
            value: 0,
            fired: 0,
        };
        System::new(vec![n0, n1], Schedule::RoundRobin)
    }

    #[test]
    fn token_passes_around_ring() {
        let mut sys = ring();
        let steps = sys.run(100);
        assert_eq!(steps, 100, "ring never quiesces");
        // Token alternates; counter grows roughly every other step.
        assert!(sys.proc(0).value + sys.proc(1).value > 20);
    }

    #[test]
    fn round_robin_is_weakly_fair() {
        let mut sys = ring();
        sys.run(200);
        assert!(sys.proc(0).fired > 40, "p0 starved: {}", sys.proc(0).fired);
        assert!(sys.proc(1).fired > 40, "p1 starved: {}", sys.proc(1).fired);
    }

    #[test]
    fn random_schedule_is_deterministic_per_seed() {
        let run = |seed| {
            let mut sys = System::new(ring().procs.clone(), Schedule::Random(DetRng::new(seed)));
            sys.run(50);
            (sys.proc(0).value, sys.proc(1).value)
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn quiescence_detected() {
        // Remove the token: no action is ever enabled.
        let mut sys = ring();
        sys.proc_mut(0).has_token = false;
        assert_eq!(sys.step(), None);
        assert_eq!(sys.run(10), 0);
    }

    #[test]
    fn receive_guard_enabled_only_with_message() {
        let mut sys = ring();
        // Initially, only p0's local action is enabled.
        let enabled = sys.enabled();
        assert_eq!(enabled, vec![Step { proc: 0, action: 0 }]);
        sys.step();
        // Now a message is in flight to p1: its receive guard is enabled.
        let enabled = sys.enabled();
        assert_eq!(enabled, vec![Step { proc: 1, action: 1 }]);
    }

    #[test]
    fn lose_and_inject_manipulate_channels() {
        let mut sys = ring();
        sys.step(); // p0 sends token to p1
        assert_eq!(sys.channel(0, 1).len(), 1);
        let lost = sys.lose(0, 1, 0);
        assert_eq!(lost, Some(1));
        assert!(sys.channel(0, 1).is_empty());
        // Adversary injects a forged token.
        sys.inject(0, 1, 99);
        sys.step();
        assert_eq!(sys.proc(1).value, 99);
    }

    #[test]
    fn duplicate_and_reorder() {
        let mut sys = ring();
        sys.inject(0, 1, 1);
        sys.inject(0, 1, 2);
        sys.duplicate(0, 1, 0); // channel: 1, 2, 1
        assert_eq!(sys.channel(0, 1).len(), 3);
        sys.reorder_front(0, 1, 2); // channel: 2, 1, 1
        assert_eq!(*sys.channel(0, 1).front().unwrap(), 2);
    }

    #[test]
    #[should_panic(expected = "disabled local action")]
    fn firing_disabled_action_panics() {
        let mut sys = ring();
        sys.fire(Step { proc: 1, action: 0 }); // p1 has no token
    }

    #[test]
    fn exhaustive_exploration_hooks() {
        // Clone-based breadth-first exploration over 3 steps: no panic,
        // and every reachable state keeps exactly one token in flight or
        // held.
        let sys = ring();
        let mut frontier = vec![sys];
        for _ in 0..3 {
            let mut next = Vec::new();
            for s in &frontier {
                for step in s.enabled() {
                    let mut c = System::new(s.procs.clone(), Schedule::RoundRobin);
                    // Copy channel contents.
                    for f in 0..2 {
                        for t in 0..2 {
                            for m in s.channel(f, t) {
                                c.inject(f, t, *m);
                            }
                        }
                    }
                    c.fire(step);
                    let tokens = c.procs.iter().filter(|p| p.has_token).count()
                        + c.channel(0, 1).len()
                        + c.channel(1, 0).len();
                    assert_eq!(tokens, 1, "token conservation");
                    next.push(c);
                }
            }
            frontier = next;
        }
    }
}

//! # reset-apn — Abstract Protocol Notation runtime
//!
//! The paper specifies its protocols in Gouda's Abstract Protocol
//! Notation (APN): each process is a set of constants, variables and
//! guarded actions `<guard> → <statement>`, executed one at a time under
//! weak fairness. This crate embeds that notation in Rust so the paper's
//! processes `p` and `q` can be transcribed action-for-action and
//! executed — including the environment's fault moves (message loss,
//! duplication, adversary injection, reset and wake-up).
//!
//! * [`ApnProcess`] — a process: actions with [`GuardKind::Local`] or
//!   [`GuardKind::Receive`] guards, plus reset/wake-up fault hooks.
//! * [`System`] — channels + scheduler; [`Schedule::RoundRobin`] delivers
//!   the notation's weak fairness, [`Schedule::Random`] explores seeded
//!   interleavings, and [`System::enabled`] / [`System::fire`] support
//!   exhaustive state-space exploration in tests.
//!
//! The actual paper processes live in `anti-replay::apn_model`; this
//! crate is protocol-agnostic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod process;
mod system;

pub use process::{ApnProcess, GuardKind, Outbox, ProcId};
pub use system::{Schedule, Step, System};

//! Bounded exhaustive model checking of the SAVE/FETCH protocol.
//!
//! The pure [`SfMachine`] (see `anti-replay`'s `machine` module) makes the
//! §4 protocol a total function of `(state, event)`. This crate closes
//! the loop: [`explore`] enumerates **every** interleaving of
//!
//! * up to `max_sends` application sends at the sender `p`,
//! * up to `max_resets_p` / `max_resets_q` resets (striking anywhere —
//!   mid-SAVE, mid-wake-up, back to back),
//! * background-save completions and device losses,
//! * and an adversary that reorders (deliver any in-flight message),
//!   drops (remove any in-flight message), and replays (re-inject any
//!   sequence number ever seen on the wire, up to `max_replays` times),
//!
//! within a [`Config`]'s bounds, asserting at every reachable state:
//!
//! 1. **Replay-freedom** (§5, Theorem, part 1): no sequence number is
//!    delivered twice — across resets, wake-up races, and replays. The
//!    §5 proof runs through the leap bound, so this too carries the
//!    timing proviso of invariant 2: once a *receiver-side* save has
//!    been superseded or device-lost, a reset can FETCH a value lagging
//!    the true edge by more than `2·Kq`, the leap lands below numbers
//!    already accepted, and a replay of those is genuinely accepted
//!    (by model *and* real driver — parity stays armed).
//! 2. **Sender freshness + ≤ 2K sacrifice** (§5 condition (i)): every
//!    sender wake-up resumes strictly above every sequence number it
//!    ever used, and skips at most `2·Kp` numbers — *provided the §4
//!    timing assumption held*. The paper assumes a background SAVE
//!    completes within `K` messages; within the model's adversary that
//!    can fail three ways (the device loses a save, a new issue
//!    supersedes a still-pending one, or a reset destroys an in-flight
//!    save whose value leapt ahead of the cadence because the *peer*
//!    woke up). The explorer states the assumption semantically — at
//!    every reset it checks whether the durable counter lagged the live
//!    one by more than `2K` — and relaxes bounds 1–3 on exactly those
//!    branches, while every other invariant and the differential oracle
//!    stay fully armed.
//! 3. **Receiver sacrifice ≤ 2K** (§5 condition (ii)): the leaped right
//!    edge exceeds the pre-reset edge by at most `2·Kq` (same timing
//!    proviso).
//! 4. **Wake-up monotonicity**: successive wake-ups of one process
//!    resume at strictly increasing counters.
//! 5. **Durable floor**: while running, the live counter (sender) /
//!    window right edge (receiver) never sits below the process's last
//!    durable SAVE — even when a reset lands mid-SAVE or mid-wake-up.
//!
//! Every transition is simultaneously executed against the **real**
//! driver endpoints (`SfSender`/`SfReceiver` over `MemStable`), and full
//! machine-state parity is asserted at every state (differential
//! oracle): the store-owning production drivers and the pure machine can
//! never disagree on any schedule within bounds.
//!
//! # What the bounds do and don't prove
//!
//! Exhaustive enumeration at `N ≤ 6, R ≤ 2, K ≤ 3, w ≤ 4` is not a proof
//! for unbounded parameters — it is a *small-scope* check: protocol
//! bugs in this family (off-by-one leap arithmetic, a forgotten
//! in-flight save, acceptance below the durable edge) manifest at tiny
//! bounds because the protocol's case analysis (reset before/during/
//! after a SAVE; replay before/after FETCH) is finite. The §5 theorem
//! provides the unbounded-parameter argument; the explorer mechanically
//! covers every schedule the proof's case split quantifies over, plus
//! the adversary and device faults the paper assumes away.
//!
//! # Deterministic replay
//!
//! [`explore`] reports a violation as the exact [`Action`] trace that
//! reached it; [`shrink`] greedily minimizes it, and [`replay`] runs a
//! trace verbatim — so any explorer finding becomes a one-line
//! regression test (see `tests/it_model.rs` at the repository root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use anti_replay::machine::{Phase, RxOutcome, SfEffect, SfEvent, SfMachine};
use anti_replay::{SeqNum, SfReceiver, SfSender};
use reset_stable::{MemStable, SlotId, StableStore};

/// Exploration bounds: the product of these budgets defines the schedule
/// space the explorer covers exhaustively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Config {
    /// Sender save interval `Kp`.
    pub k_p: u64,
    /// Receiver save interval `Kq`.
    pub k_q: u64,
    /// Receiver window size `w`.
    pub w: u64,
    /// Application messages the sender may emit.
    pub max_sends: u32,
    /// Resets that may strike the sender.
    pub max_resets_p: u32,
    /// Resets that may strike the receiver.
    pub max_resets_q: u32,
    /// Adversary replay injections (each re-delivers any historical
    /// sequence number).
    pub max_replays: u32,
    /// Receiver wake-up buffer cap (`None` = driver default). Small
    /// values exercise the overflow → `DroppedDown` path differentially.
    pub buffer_limit: Option<usize>,
}

impl Config {
    /// The issue's reference bounds: `N=4, R=1+1, K=2, w=4` — small
    /// enough to finish in seconds, large enough to cover every §4 case
    /// split (reset before/during/after SAVE, double reset, replay
    /// before/after FETCH).
    pub fn small() -> Self {
        Config {
            k_p: 2,
            k_q: 2,
            w: 4,
            max_sends: 4,
            max_resets_p: 1,
            max_resets_q: 1,
            max_replays: 1,
            buffer_limit: None,
        }
    }
}

/// One schedule step — the alphabet traces are written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// The application hands the sender one message.
    Send,
    /// The adversary lets in-flight message `i` (index into the sorted
    /// in-flight multiset) arrive at the receiver.
    Deliver(usize),
    /// The adversary drops in-flight message `i`.
    Drop(usize),
    /// The adversary re-injects historical sequence number `s`.
    Replay(u64),
    /// A reset strikes the sender.
    ResetP,
    /// A reset strikes the receiver.
    ResetQ,
    /// The sender wakes up: FETCH + `2K` leap + issue synchronous SAVE.
    WakeP,
    /// The receiver wakes up.
    WakeQ,
    /// The sender's in-flight SAVE becomes durable.
    SaveDoneP,
    /// The receiver's in-flight SAVE becomes durable.
    SaveDoneQ,
    /// The device loses the sender's in-flight background SAVE.
    SaveLostP,
    /// The device loses the receiver's in-flight background SAVE.
    SaveLostQ,
}

/// An invariant or parity failure, with the exact schedule that reached
/// it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong.
    pub message: String,
    /// The actions from the initial state to the failure, in order.
    pub trace: Vec<Action>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "invariant violated: {}", self.message)?;
        writeln!(f, "minimal schedule ({} steps):", self.trace.len())?;
        for a in &self.trace {
            writeln!(f, "  Action::{a:?},")?;
        }
        Ok(())
    }
}

impl std::error::Error for Violation {}

/// Coverage counters from one exhaustive run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Report {
    /// Distinct reachable states (after dedup).
    pub states: u64,
    /// Transitions executed (every one differentially cross-checked).
    pub transitions: u64,
    /// Complete schedules (maximal action sequences), counted exactly
    /// via dynamic programming over the deduplicated state graph.
    pub traces: u128,
}

/// The simulated save device of one process: at most one SAVE in flight
/// (a new issue supersedes, matching `BackgroundSaver`), one durable
/// value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
struct Env {
    durable: Option<u64>,
    pending: Option<u64>,
}

/// Everything behavior-relevant — the memoization key. Excludes the real
/// endpoints: given parity (asserted at every state), they are a
/// function of this.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ModelState {
    p: SfMachine,
    q: SfMachine,
    env_p: Env,
    env_q: Env,
    /// In-flight messages, kept sorted (the adversary chooses arrival
    /// order explicitly, so in-flight order carries no information).
    channel: Vec<u64>,
    /// Every sequence number ever placed on the wire (replay library).
    history: BTreeSet<u64>,
    /// Every sequence number delivered to the application.
    delivered: BTreeSet<u64>,
    sends_left: u32,
    resets_p_left: u32,
    resets_q_left: u32,
    replays_left: u32,
    /// The §4 timing assumption ("a background SAVE completes within the
    /// next K messages") failed to hold for p/q: at some reset, the
    /// durable counter lagged the live one by more than `2K`. The causes
    /// within bounds are a device-lost save, a superseding issue voiding
    /// a still-pending one, or a reset destroying an in-flight save
    /// whose value had jumped ahead by a peer's wake-up leap. The flag is
    /// computed *semantically at each reset* (lag > 2K) rather than from
    /// causes, so branches where a breach self-heals before the reset
    /// stay fully checked. Invariants 1–3 relax on flagged branches;
    /// everything else, including the differential oracle, stays armed.
    p_lag_unbounded: bool,
    q_lag_unbounded: bool,
    /// Last wake-up counters (0 = never woke) for monotonicity.
    last_wake_p: u64,
    last_wake_q: u64,
    /// Largest sequence number the sender ever emitted.
    max_sent: u64,
    /// Receiver right edge at the moment of its last reset.
    edge_at_reset_q: u64,
}

/// Model + real endpoints advancing in lockstep.
#[derive(Debug, Clone)]
struct World {
    cfg: Config,
    m: ModelState,
    real_p: SfSender<MemStable>,
    real_q: SfReceiver<MemStable>,
}

const SLOT_P: SlotId = SlotId::sender(1);
const SLOT_Q: SlotId = SlotId::receiver(1);

/// Why an [`Action`] could not be applied.
enum ApplyError {
    /// The action is not enabled in this state (only possible when
    /// replaying a hand-edited or shrunk trace).
    Disabled(&'static str),
    /// An invariant or the differential oracle failed.
    Violation(String),
}

impl World {
    fn new(cfg: Config) -> World {
        let mut real_q = SfReceiver::new(MemStable::new(), SLOT_Q, cfg.k_q, cfg.w);
        let mut q = SfMachine::receiver(cfg.k_q, cfg.w);
        if let Some(limit) = cfg.buffer_limit {
            real_q.set_buffer_limit(limit);
            q.set_buffer_limit(limit);
        }
        World {
            cfg,
            m: ModelState {
                p: SfMachine::sender(cfg.k_p),
                q,
                env_p: Env::default(),
                env_q: Env::default(),
                channel: Vec::new(),
                history: BTreeSet::new(),
                delivered: BTreeSet::new(),
                sends_left: cfg.max_sends,
                resets_p_left: cfg.max_resets_p,
                resets_q_left: cfg.max_resets_q,
                replays_left: cfg.max_replays,
                p_lag_unbounded: false,
                q_lag_unbounded: false,
                last_wake_p: 0,
                last_wake_q: 0,
                max_sent: 0,
                edge_at_reset_q: 0,
            },
            real_p: SfSender::new(MemStable::new(), SLOT_P, cfg.k_p),
            real_q,
        }
    }

    /// All actions enabled in this state. Symmetry reduction: `Deliver`/
    /// `Drop` act on the first index of each *distinct* in-flight value
    /// (the channel is a multiset; acting on either copy is equivalent).
    fn enabled(&self) -> Vec<Action> {
        let m = &self.m;
        let mut acts = Vec::new();
        if m.sends_left > 0 && m.p.phase() == Phase::Running {
            acts.push(Action::Send);
        }
        let mut prev = None;
        for (i, &s) in m.channel.iter().enumerate() {
            if prev == Some(s) {
                continue;
            }
            prev = Some(s);
            acts.push(Action::Deliver(i));
            acts.push(Action::Drop(i));
        }
        if m.replays_left > 0 {
            for &s in &m.history {
                acts.push(Action::Replay(s));
            }
        }
        if m.resets_p_left > 0 {
            acts.push(Action::ResetP);
        }
        if m.resets_q_left > 0 {
            acts.push(Action::ResetQ);
        }
        if m.p.phase() == Phase::Down {
            acts.push(Action::WakeP);
        }
        if m.q.phase() == Phase::Down {
            acts.push(Action::WakeQ);
        }
        if m.env_p.pending.is_some() {
            acts.push(Action::SaveDoneP);
            if m.p.phase() == Phase::Running {
                // Only a *background* save can be silently lost; losing
                // the synchronous wake-up save is a reset (covered).
                acts.push(Action::SaveLostP);
            }
        }
        if m.env_q.pending.is_some() {
            acts.push(Action::SaveDoneQ);
            if m.q.phase() == Phase::Running {
                acts.push(Action::SaveLostQ);
            }
        }
        acts
    }

    /// Receiver-side classification shared by `Deliver`, `Replay` and
    /// the wake-up flush: checks replay-freedom on delivery.
    ///
    /// Replay-freedom is §5's headline claim, but the proof runs through
    /// the leap bound: the wake-up edge `FETCH + 2K` covers the true
    /// pre-reset edge only while the §4 timing assumption bounds the
    /// FETCH lag. Once q reset with its durable edge lagging by more
    /// than `2Kq`, the leap can land *below* sequence numbers q already
    /// accepted, and a replay of those genuinely gets through — the real
    /// driver does the same (parity stays armed). So the check is gated
    /// on `q_lag_unbounded`, like invariant 3; the insert itself stays
    /// unconditional so the memo key remains schedule-independent.
    fn note_rx(&mut self, seq: SeqNum, outcome: RxOutcome) -> Result<(), ApplyError> {
        if outcome == RxOutcome::Delivered
            && !self.m.delivered.insert(seq.value())
            && !self.m.q_lag_unbounded
        {
            return Err(ApplyError::Violation(format!(
                "replayed sequence number {} delivered twice",
                seq.value()
            )));
        }
        Ok(())
    }

    fn receive_at_q(&mut self, seq: u64) -> Result<(), ApplyError> {
        let fx = self.m.q.step(SfEvent::Receive(SeqNum::new(seq)));
        let mut model_outcome = None;
        for e in fx {
            match e {
                SfEffect::Rx { seq, outcome } => {
                    self.note_rx(seq, outcome)?;
                    model_outcome = Some(outcome);
                }
                SfEffect::SaveIssued(v) => {
                    // A new issue while one is pending supersedes it (the
                    // older value can never become durable); whether that
                    // breaks the §4 lag bound is judged at the next reset.
                    self.m.env_q.pending = Some(v);
                }
                other => {
                    return Err(ApplyError::Violation(format!(
                        "unexpected receive effect {other:?}"
                    )))
                }
            }
        }
        let real = self
            .real_q
            .receive(SeqNum::new(seq))
            .map_err(|e| ApplyError::Violation(format!("real receiver errored: {e}")))?;
        if Some(real) != model_outcome {
            return Err(ApplyError::Violation(format!(
                "differential: receive({seq}) → machine {model_outcome:?}, driver {real:?}"
            )));
        }
        Ok(())
    }

    fn apply(&mut self, action: Action) -> Result<(), ApplyError> {
        if !self.enabled().contains(&action) {
            return Err(ApplyError::Disabled("action not enabled"));
        }
        match action {
            Action::Send => {
                self.m.sends_left -= 1;
                let fx = self.m.p.step(SfEvent::Send);
                let mut sent = None;
                for e in fx {
                    match e {
                        SfEffect::Sent(s) => sent = Some(s),
                        SfEffect::SaveIssued(v) => {
                            // Supersedes any pending save; the §4 lag
                            // bound is judged at the next reset.
                            self.m.env_p.pending = Some(v);
                        }
                        SfEffect::Blocked => {}
                        other => {
                            return Err(ApplyError::Violation(format!(
                                "unexpected send effect {other:?}"
                            )))
                        }
                    }
                }
                let seq = sent.expect("Send enabled only while Running");
                self.m.max_sent = self.m.max_sent.max(seq.value());
                self.m.history.insert(seq.value());
                let i = self.m.channel.partition_point(|&x| x <= seq.value());
                self.m.channel.insert(i, seq.value());
                let real = self
                    .real_p
                    .send_next()
                    .map_err(|e| ApplyError::Violation(format!("real sender errored: {e}")))?;
                if real != Some(seq) {
                    return Err(ApplyError::Violation(format!(
                        "differential: send → machine {seq:?}, driver {real:?}"
                    )));
                }
            }
            Action::Deliver(i) => {
                let seq = self.m.channel.remove(i);
                self.receive_at_q(seq)?;
            }
            Action::Drop(i) => {
                self.m.channel.remove(i);
            }
            Action::Replay(s) => {
                self.m.replays_left -= 1;
                self.receive_at_q(s)?;
            }
            Action::ResetP => {
                self.m.resets_p_left -= 1;
                // §4 timing assumption, stated semantically: the leap
                // `durable + 2K` must resume strictly above every number
                // used. If the durable counter lags further at the
                // moment of the reset, the bounds of invariants 1–3
                // provably cannot hold on this branch.
                let durable = self.m.env_p.durable.unwrap_or(0);
                self.m.p_lag_unbounded |=
                    self.m.max_sent >= durable.saturating_add(2 * self.cfg.k_p);
                self.m.p.step(SfEvent::Reset);
                self.m.env_p.pending = None;
                self.real_p.reset();
            }
            Action::ResetQ => {
                self.m.resets_q_left -= 1;
                if self.m.q.phase() == Phase::Running {
                    let edge = self
                        .m
                        .q
                        .window()
                        .expect("receiver machine")
                        .right_edge()
                        .value();
                    self.m.edge_at_reset_q = edge;
                }
                // Same semantic check for q: the leap only covers the
                // pre-reset edge if the durable edge lagged by ≤ 2K.
                let durable = self.m.env_q.durable.unwrap_or(0);
                self.m.q_lag_unbounded |=
                    self.m.edge_at_reset_q > durable.saturating_add(2 * self.cfg.k_q);
                self.m.q.step(SfEvent::Reset);
                self.m.env_q.pending = None;
                self.real_q.reset();
            }
            Action::WakeP => {
                let fetched = self.m.env_p.durable.unwrap_or(0);
                let fx = self.m.p.step(SfEvent::BeginWakeup { fetched });
                let [SfEffect::SaveIssued(leaped)] = fx[..] else {
                    return Err(ApplyError::Violation(format!("wake effects {fx:?}")));
                };
                self.m.env_p.pending = Some(leaped);
                let real = self
                    .real_p
                    .begin_wakeup()
                    .map_err(|e| ApplyError::Violation(format!("real wake_p errored: {e}")))?;
                if real.value() != leaped {
                    return Err(ApplyError::Violation(format!(
                        "differential: wake_p → machine {leaped}, driver {}",
                        real.value()
                    )));
                }
            }
            Action::WakeQ => {
                let fetched = self.m.env_q.durable.unwrap_or(0);
                let fx = self.m.q.step(SfEvent::BeginWakeup { fetched });
                let [SfEffect::SaveIssued(leaped)] = fx[..] else {
                    return Err(ApplyError::Violation(format!("wake effects {fx:?}")));
                };
                self.m.env_q.pending = Some(leaped);
                let real = self
                    .real_q
                    .begin_wakeup()
                    .map_err(|e| ApplyError::Violation(format!("real wake_q errored: {e}")))?;
                if real.value() != leaped {
                    return Err(ApplyError::Violation(format!(
                        "differential: wake_q → machine {leaped}, driver {}",
                        real.value()
                    )));
                }
            }
            Action::SaveDoneP => {
                let v = self.m.env_p.pending.take().expect("enabled");
                self.m.env_p.durable = Some(v);
                let was_waking = self.m.p.phase() == Phase::Waking;
                let fx = self.m.p.step(SfEvent::SaveDone);
                if was_waking {
                    let [SfEffect::WokeUp {
                        resumed,
                        unusable_gap,
                    }] = fx[..]
                    else {
                        return Err(ApplyError::Violation(format!("wakeup effects {fx:?}")));
                    };
                    // Invariant 2 — both halves conditional on the §4
                    // timing assumption having held at the reset: a
                    // durable counter lagging beyond 2K legitimately
                    // defeats the leap.
                    if !self.m.p_lag_unbounded && resumed.value() <= self.m.max_sent {
                        return Err(ApplyError::Violation(format!(
                            "sender resumed at {} ≤ max used {}",
                            resumed.value(),
                            self.m.max_sent
                        )));
                    }
                    if !self.m.p_lag_unbounded && unusable_gap > 2 * self.cfg.k_p {
                        return Err(ApplyError::Violation(format!(
                            "sender leap gap {unusable_gap} > 2Kp = {}",
                            2 * self.cfg.k_p
                        )));
                    }
                    // Invariant 4: strictly monotone wake-ups.
                    if resumed.value() <= self.m.last_wake_p {
                        return Err(ApplyError::Violation(format!(
                            "sender wake-up {} not above previous {}",
                            resumed.value(),
                            self.m.last_wake_p
                        )));
                    }
                    self.m.last_wake_p = resumed.value();
                    let real = self.real_p.finish_wakeup().map_err(|e| {
                        ApplyError::Violation(format!("real finish_wakeup errored: {e}"))
                    })?;
                    if real != resumed {
                        return Err(ApplyError::Violation(format!(
                            "differential: finish_wakeup → machine {resumed:?}, driver {real:?}"
                        )));
                    }
                } else {
                    self.real_p
                        .save_completed()
                        .map_err(|e| ApplyError::Violation(format!("real complete: {e}")))?;
                }
            }
            Action::SaveDoneQ => {
                let v = self.m.env_q.pending.take().expect("enabled");
                self.m.env_q.durable = Some(v);
                let was_waking = self.m.q.phase() == Phase::Waking;
                let fx = self.m.q.step(SfEvent::SaveDone);
                if was_waking {
                    let mut model_rx = Vec::new();
                    let mut resumed_at = None;
                    for e in fx {
                        match e {
                            SfEffect::WokeUp { resumed, .. } => resumed_at = Some(resumed),
                            SfEffect::Rx { seq, outcome } => {
                                self.note_rx(seq, outcome)?;
                                model_rx.push((seq, outcome));
                            }
                            SfEffect::SaveIssued(v) => {
                                // Buffered arrivals crossing a save
                                // threshold right after the wake-up save.
                                self.m.env_q.pending = Some(v);
                            }
                            other => {
                                return Err(ApplyError::Violation(format!(
                                    "unexpected wakeup effect {other:?}"
                                )))
                            }
                        }
                    }
                    let resumed = resumed_at.expect("receiver wakeup emits WokeUp");
                    // Invariant 3: sacrifice ≤ 2Kq while the §4 lag
                    // bound held at the reset.
                    let sacrifice = resumed.value().saturating_sub(self.m.edge_at_reset_q);
                    if !self.m.q_lag_unbounded && sacrifice > 2 * self.cfg.k_q {
                        return Err(ApplyError::Violation(format!(
                            "receiver sacrifice {sacrifice} > 2Kq = {}",
                            2 * self.cfg.k_q
                        )));
                    }
                    // Invariant 4: strictly monotone wake-ups.
                    if resumed.value() <= self.m.last_wake_q {
                        return Err(ApplyError::Violation(format!(
                            "receiver wake-up {} not above previous {}",
                            resumed.value(),
                            self.m.last_wake_q
                        )));
                    }
                    self.m.last_wake_q = resumed.value();
                    let real = self.real_q.finish_wakeup().map_err(|e| {
                        ApplyError::Violation(format!("real finish_wakeup errored: {e}"))
                    })?;
                    if real != model_rx {
                        return Err(ApplyError::Violation(format!(
                            "differential: wakeup flush → machine {model_rx:?}, driver {real:?}"
                        )));
                    }
                } else {
                    self.real_q
                        .save_completed()
                        .map_err(|e| ApplyError::Violation(format!("real complete: {e}")))?;
                }
            }
            Action::SaveLostP => {
                self.m.env_p.pending = None;
                self.m.p.step(SfEvent::SaveLost);
                self.real_p.drop_pending_save();
            }
            Action::SaveLostQ => {
                self.m.env_q.pending = None;
                self.m.q.step(SfEvent::SaveLost);
                self.real_q.drop_pending_save();
            }
        }
        self.check_state()
    }

    /// State invariants + full differential parity, asserted after every
    /// transition.
    fn check_state(&self) -> Result<(), ApplyError> {
        let m = &self.m;
        // Differential oracle: the driver's embedded machine must be
        // bit-identical to the model's.
        if self.real_p.machine() != &m.p {
            return Err(ApplyError::Violation(format!(
                "parity: sender machine diverged\n model: {:?}\ndriver: {:?}",
                m.p,
                self.real_p.machine()
            )));
        }
        if self.real_q.machine() != &m.q {
            return Err(ApplyError::Violation(format!(
                "parity: receiver machine diverged\n model: {:?}\ndriver: {:?}",
                m.q,
                self.real_q.machine()
            )));
        }
        // The simulated save device must mirror the real BackgroundSaver
        // and MemStable exactly.
        let real_pending_p = self.real_p.pending_save().map(|s| s.value);
        if real_pending_p != m.env_p.pending {
            return Err(ApplyError::Violation(format!(
                "parity: sender pending save model {:?} vs driver {real_pending_p:?}",
                m.env_p.pending
            )));
        }
        let real_pending_q = self.real_q.pending_save().map(|s| s.value);
        if real_pending_q != m.env_q.pending {
            return Err(ApplyError::Violation(format!(
                "parity: receiver pending save model {:?} vs driver {real_pending_q:?}",
                m.env_q.pending
            )));
        }
        let durable_p = self.real_p.store().load(SLOT_P).unwrap_or(None);
        if durable_p != m.env_p.durable {
            return Err(ApplyError::Violation(format!(
                "parity: sender durable model {:?} vs store {durable_p:?}",
                m.env_p.durable
            )));
        }
        let durable_q = self.real_q.store().load(SLOT_Q).unwrap_or(None);
        if durable_q != m.env_q.durable {
            return Err(ApplyError::Violation(format!(
                "parity: receiver durable model {:?} vs store {durable_q:?}",
                m.env_q.durable
            )));
        }
        // Invariant 5: the durable value is a floor on live state.
        if m.p.phase() == Phase::Running {
            let s = m.p.next_seq().expect("sender").value();
            if let Some(d) = m.env_p.durable {
                if s < d {
                    return Err(ApplyError::Violation(format!(
                        "sender counter {s} below durable SAVE {d}"
                    )));
                }
            }
        }
        if m.q.phase() == Phase::Running {
            let edge = m.q.window().expect("receiver").right_edge().value();
            if let Some(d) = m.env_q.durable {
                if edge < d {
                    return Err(ApplyError::Violation(format!(
                        "receiver right edge {edge} below durable SAVE {d}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Exhaustively explores every schedule within `cfg`'s bounds.
///
/// Returns coverage counters, or the first [`Violation`] found (with its
/// full — not yet shrunk — trace; pass it to [`shrink`]).
///
/// # Errors
///
/// A [`Violation`] carries the offending schedule.
pub fn explore(cfg: Config) -> Result<Report, Violation> {
    let world = World::new(cfg);
    let mut report = Report::default();
    let mut memo: HashMap<ModelState, u128> = HashMap::new();
    let mut trace = Vec::new();
    let traces = dfs(&world, &mut trace, &mut memo, &mut report)?;
    report.traces = traces;
    report.states = memo.len() as u64;
    Ok(report)
}

fn dfs(
    world: &World,
    trace: &mut Vec<Action>,
    memo: &mut HashMap<ModelState, u128>,
    report: &mut Report,
) -> Result<u128, Violation> {
    if let Some(&t) = memo.get(&world.m) {
        return Ok(t);
    }
    let actions = world.enabled();
    let mut traces: u128 = if actions.is_empty() { 1 } else { 0 };
    for a in actions {
        let mut next = world.clone();
        trace.push(a);
        report.transitions += 1;
        match next.apply(a) {
            Ok(()) => {}
            Err(ApplyError::Violation(message)) => {
                return Err(Violation {
                    message,
                    trace: trace.clone(),
                });
            }
            Err(ApplyError::Disabled(_)) => unreachable!("enabled() said otherwise"),
        }
        traces += dfs(&next, trace, memo, report)?;
        trace.pop();
    }
    memo.insert(world.m.clone(), traces);
    Ok(traces)
}

/// Replays `trace` verbatim against a fresh world — the regression-test
/// entry point. Succeeds iff every action is enabled in sequence and no
/// invariant or parity check fails.
///
/// # Errors
///
/// The [`Violation`] the trace reproduces, if any. A trace containing a
/// disabled action fails with a `Violation` naming the offending step
/// (it reproduces nothing).
pub fn replay(cfg: Config, trace: &[Action]) -> Result<(), Violation> {
    let mut world = World::new(cfg);
    for (i, &a) in trace.iter().enumerate() {
        match world.apply(a) {
            Ok(()) => {}
            Err(ApplyError::Violation(message)) => {
                return Err(Violation {
                    message,
                    trace: trace[..=i].to_vec(),
                })
            }
            Err(ApplyError::Disabled(why)) => {
                return Err(Violation {
                    message: format!("step {i} ({a:?}) is not a legal schedule: {why}"),
                    trace: trace[..=i].to_vec(),
                })
            }
        }
    }
    Ok(())
}

/// True iff `trace` still reproduces a genuine violation (not a
/// disabled-action artifact).
fn still_fails(cfg: Config, trace: &[Action]) -> bool {
    match replay(cfg, trace) {
        Err(v) => !v.message.contains("not a legal schedule"),
        Ok(()) => false,
    }
}

/// Greedy delta-debugging: repeatedly drops actions that are not needed
/// to reproduce the violation, until no single removal preserves it. The
/// result replays verbatim (`replay(cfg, &minimal)` fails with the same
/// class of violation).
pub fn shrink(cfg: Config, trace: &[Action]) -> Vec<Action> {
    let mut current: Vec<Action> = trace.to_vec();
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if still_fails(cfg, &candidate) {
                current = candidate;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        if !shrunk {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_bounds_explore_clean() {
        let report = explore(Config {
            k_p: 1,
            k_q: 1,
            w: 2,
            max_sends: 2,
            max_resets_p: 1,
            max_resets_q: 0,
            max_replays: 1,
            buffer_limit: None,
        })
        .expect("no violation");
        assert!(report.states > 10, "{report:?}");
        assert!(report.traces > 0);
    }

    #[test]
    fn reference_bounds_explore_clean() {
        let report = explore(Config::small()).expect("no violation");
        assert!(report.states > 1000, "{report:?}");
    }

    #[test]
    fn replay_of_legal_schedule_passes() {
        replay(
            Config::small(),
            &[
                Action::Send,
                Action::Send,
                Action::Deliver(0),
                Action::ResetQ,
                Action::WakeQ,
                Action::Deliver(0),
                Action::SaveDoneQ,
                Action::Replay(1),
            ],
        )
        .unwrap_or_else(|v| panic!("{v}"));
    }

    #[test]
    fn illegal_schedule_is_reported_not_panicking() {
        let err = replay(Config::small(), &[Action::WakeP]).unwrap_err();
        assert!(err.message.contains("not a legal schedule"), "{err}");
    }

    #[test]
    fn shrink_keeps_only_needed_actions() {
        // Build a trace that is legal but contains padding; a synthetic
        // "violation" is simulated by shrinking against a trace whose
        // failure is a disabled action — shrink must return it unchanged
        // (nothing reproduces, nothing shrinks).
        let trace = [Action::Send, Action::Send, Action::Drop(0)];
        let out = shrink(Config::small(), &trace);
        assert_eq!(out.len(), 3, "legal traces don't shrink");
    }
}

//! The `model-check` CI lane: exhaustive bounded exploration of the
//! SAVE/FETCH machine with the machine-vs-driver differential oracle.
//!
//! Prints per-config state/transition/trace counts; exits non-zero (with
//! the shrunk, replayable schedule) on any invariant or parity failure.

use std::process::ExitCode;
use std::time::Instant;

use reset_model::{explore, shrink, Config};

fn main() -> ExitCode {
    // A ladder of bounds: the cheap rungs localize a failure fast; the
    // top rungs are the actual coverage target (N sends × R resets ×
    // save races × replay/reorder/drop adversary).
    let configs = [
        (
            "tiny (K=1, N=2, R=1+0)",
            Config {
                k_p: 1,
                k_q: 1,
                w: 2,
                max_sends: 2,
                max_resets_p: 1,
                max_resets_q: 0,
                max_replays: 1,
                buffer_limit: None,
            },
        ),
        ("reference (K=2, N=4, R=1+1)", Config::small()),
        (
            "tight-buffer (K=2, N=4, R=0+1, cap=1)",
            Config {
                k_p: 2,
                k_q: 2,
                w: 4,
                max_sends: 4,
                max_resets_p: 0,
                max_resets_q: 1,
                max_replays: 2,
                buffer_limit: Some(1),
            },
        ),
        (
            "deep (K=3, N=4, R=1+1, w=4)",
            Config {
                k_p: 3,
                k_q: 3,
                w: 4,
                max_sends: 4,
                max_resets_p: 1,
                max_resets_q: 1,
                max_replays: 1,
                buffer_limit: None,
            },
        ),
    ];

    let mut total_states = 0u64;
    let mut total_transitions = 0u64;
    for (name, cfg) in configs {
        let t0 = Instant::now();
        match explore(cfg) {
            Ok(report) => {
                total_states += report.states;
                total_transitions += report.transitions;
                println!(
                    "model-check {name}: {} states, {} transitions, {} complete schedules, {:.2?}",
                    report.states,
                    report.transitions,
                    report.traces,
                    t0.elapsed()
                );
            }
            Err(violation) => {
                eprintln!("model-check {name}: FAILED");
                let minimal = shrink(cfg, &violation.trace);
                eprintln!(
                    "{}",
                    reset_model::Violation {
                        message: violation.message,
                        trace: minimal,
                    }
                );
                eprintln!("replay with: reset_model::replay(cfg, &trace)");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "model-check PASS: {total_states} states, {total_transitions} transitions, \
         every transition differentially cross-checked against SfSender/SfReceiver"
    );
    ExitCode::SUCCESS
}

//! Scalar-vs-lane differential: every SIMD backend must be
//! byte-identical to the scalar oracle through the full suite surface —
//! `encrypt`, `decrypt`, `icv`, `verify_batch`, `decrypt_batch` — over
//! randomized batches of mixed payload sizes, mixed suites, ESN and
//! non-ESN frames, and deliberate corruptions. The suite-level KATs
//! (RFC 8439 seal equivalence, raw-HMAC equivalence) re-run per backend.

use reset_crypto::{
    chacha20_poly1305_seal, hmac_sha256_96, Backend, ChaCha20Poly1305Suite, CipherSuite,
    FrameToVerify, HmacSha256Suite,
};

/// Payload sizes exercising block boundaries of both suites.
const SIZES: [usize; 6] = [0, 1, 63, 64, 65, 1400];

const TOTAL_FRAMES: usize = 10_000;
const BATCH: usize = 32;

/// Owned frame material backing a `FrameToVerify` borrow:
/// (seq, header, ciphertext, esn_hi, icv — possibly corrupted).
type OwnedFrame = (u64, Vec<u8>, Vec<u8>, Option<u32>, Vec<u8>);

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn fill(&mut self, buf: &mut [u8]) {
        for b in buf.iter_mut() {
            *b = (self.next() & 0xff) as u8;
        }
    }
}

/// The three registered suite configurations, as (oracle, backend) pairs
/// over identical key material.
fn suite_pairs(backend: Backend) -> Vec<(Box<dyn CipherSuite>, Box<dyn CipherSuite>)> {
    vec![
        (
            Box::new(
                HmacSha256Suite::with_keystream(b"diff-auth", b"diff-enc")
                    .with_backend(Backend::Scalar),
            ),
            Box::new(
                HmacSha256Suite::with_keystream(b"diff-auth", b"diff-enc").with_backend(backend),
            ),
        ),
        (
            Box::new(HmacSha256Suite::auth_only(b"diff-auth").with_backend(Backend::Scalar)),
            Box::new(HmacSha256Suite::auth_only(b"diff-auth").with_backend(backend)),
        ),
        (
            Box::new(ChaCha20Poly1305Suite::new([0x42; 32]).with_backend(Backend::Scalar)),
            Box::new(ChaCha20Poly1305Suite::new([0x42; 32]).with_backend(backend)),
        ),
    ]
}

fn simd_backends() -> Vec<Backend> {
    Backend::ALL
        .into_iter()
        .filter(|b| *b != Backend::Scalar && b.is_supported())
        .collect()
}

#[test]
fn randomized_10k_frame_differential_every_supported_backend() {
    for backend in simd_backends() {
        let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
        let pairs = suite_pairs(backend);
        let mut frames_done = 0usize;
        let mut batch_no = 0u64;
        while frames_done < TOTAL_FRAMES {
            let (oracle, lane) = &pairs[(batch_no % pairs.len() as u64) as usize];
            batch_no += 1;
            let n = BATCH.min(TOTAL_FRAMES - frames_done);
            frames_done += n;

            // Build n frames: random size, random header, seq-derived
            // body, ESN on some, corruption on some.
            let mut storage: Vec<OwnedFrame> = Vec::new();
            for i in 0..n {
                let seq = batch_no * 1000 + i as u64;
                let size = SIZES[(rng.next() % SIZES.len() as u64) as usize];
                let mut header = vec![0u8; 12];
                rng.fill(&mut header);
                let mut body = vec![0u8; size];
                rng.fill(&mut body);
                let esn_hi = if rng.next().is_multiple_of(3) {
                    Some((rng.next() & 0xffff_ffff) as u32)
                } else {
                    None
                };
                // Encrypt with both suites; ciphertexts must agree.
                let mut ct_oracle = body.clone();
                oracle.encrypt(seq, &mut ct_oracle);
                let mut ct_lane = body;
                lane.encrypt(seq, &mut ct_lane);
                assert_eq!(
                    ct_oracle, ct_lane,
                    "{backend} encrypt seq {seq} size {size}"
                );

                // ICVs from both suites must agree too.
                let icv_oracle = oracle.icv(seq, &header, &ct_oracle, esn_hi);
                let icv_lane = lane.icv(seq, &header, &ct_oracle, esn_hi);
                assert_eq!(&icv_oracle[..], &icv_lane[..], "{backend} icv seq {seq}");

                let mut icv = icv_oracle.to_vec();
                match rng.next() % 8 {
                    0 => icv[0] ^= 0x01,              // flipped tag bit
                    1 => icv.truncate(icv.len() - 1), // truncated tag
                    _ => {}
                }
                storage.push((seq, header, ct_oracle, esn_hi, icv));
            }
            let frames: Vec<FrameToVerify<'_>> = storage
                .iter()
                .map(|(seq, h, ct, esn, icv)| FrameToVerify {
                    seq: *seq,
                    header: h,
                    ciphertext: ct,
                    esn_hi: *esn,
                    icv,
                })
                .collect();

            // verify_batch verdicts must be identical.
            let mut ok_oracle = Vec::new();
            let mut ok_lane = Vec::new();
            oracle.verify_batch(&frames, &mut ok_oracle);
            lane.verify_batch(&frames, &mut ok_lane);
            assert_eq!(ok_oracle, ok_lane, "{backend} batch {batch_no}");
            // Both against the per-frame reference.
            let sequential: Vec<bool> = frames.iter().map(|f| oracle.verify(f)).collect();
            assert_eq!(ok_oracle, sequential, "oracle batch vs sequential");

            // decrypt_batch: pack all ciphertexts into one arena.
            if oracle.encrypts() {
                let mut arena_oracle = Vec::new();
                let mut jobs = Vec::new();
                for (seq, _, ct, _, _) in &storage {
                    let start = arena_oracle.len();
                    arena_oracle.extend_from_slice(ct);
                    jobs.push((*seq, start..start + ct.len()));
                }
                let mut arena_lane = arena_oracle.clone();
                oracle.decrypt_batch(&mut arena_oracle, &jobs);
                lane.decrypt_batch(&mut arena_lane, &jobs);
                assert_eq!(
                    arena_oracle, arena_lane,
                    "{backend} decrypt batch {batch_no}"
                );
            }
        }
    }
}

#[test]
fn aead_suite_kat_per_backend() {
    // The suite must equal the validated one-shot RFC 8439 seal for the
    // same (key, nonce, aad) on every backend — including the multi-lane
    // same-key mode on a payload long enough to fill all lanes.
    let key = [0x5Au8; 32];
    let header = [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];
    let seq = 0x0102_0304_0506_0708u64;
    let mut nonce = [0u8; 12];
    nonce[4..].copy_from_slice(&seq.to_be_bytes());
    for backend in Backend::ALL.into_iter().filter(|b| b.is_supported()) {
        let suite = ChaCha20Poly1305Suite::new(key).with_backend(backend);
        for size in [16usize, 600] {
            let plain: Vec<u8> = (0..size).map(|i| (i * 7) as u8).collect();
            let mut body = plain.clone();
            suite.encrypt(seq, &mut body);
            let icv = suite.icv(seq, &header, &body, None);

            let mut reference = plain.clone();
            let tag = chacha20_poly1305_seal(&key, &nonce, &header, &mut reference);
            assert_eq!(body, reference, "{backend} ciphertext size {size}");
            assert_eq!(&icv[..], &tag, "{backend} tag size {size}");

            suite.decrypt(seq, &mut body);
            assert_eq!(body, plain, "{backend} round trip size {size}");
        }
    }
}

#[test]
fn hmac_suite_kat_per_backend() {
    // Batch verify must accept exactly the tags raw HMAC-SHA-256-96
    // produces over header ‖ ciphertext ‖ esn, on every backend, for a
    // batch large enough to exercise full lane groups.
    for backend in Backend::ALL.into_iter().filter(|b| b.is_supported()) {
        let suite = HmacSha256Suite::with_keystream(b"kat-auth", b"kat-enc").with_backend(backend);
        let mut storage = Vec::new();
        for i in 0..24u64 {
            let header = vec![i as u8; 12];
            let ct: Vec<u8> = (0..(i as usize % 5) * 31)
                .map(|j| (i as usize + j) as u8)
                .collect();
            let esn = if i.is_multiple_of(2) {
                Some(i as u32 + 9)
            } else {
                None
            };
            let mut concat = header.clone();
            concat.extend_from_slice(&ct);
            if let Some(hi) = esn {
                concat.extend_from_slice(&hi.to_be_bytes());
            }
            let icv = hmac_sha256_96(b"kat-auth", &concat).to_vec();
            storage.push((i, header, ct, esn, icv));
        }
        let frames: Vec<FrameToVerify<'_>> = storage
            .iter()
            .map(|(seq, h, ct, esn, icv)| FrameToVerify {
                seq: *seq,
                header: h,
                ciphertext: ct,
                esn_hi: *esn,
                icv,
            })
            .collect();
        let mut ok = Vec::new();
        suite.verify_batch(&frames, &mut ok);
        assert_eq!(ok, vec![true; frames.len()], "{backend}");
    }
}

#[test]
fn forced_backend_construction_panics_when_unsupported() {
    if Backend::Avx2.is_supported() {
        return; // nothing to assert on an AVX2 host
    }
    let caught = std::panic::catch_unwind(|| {
        let _ = ChaCha20Poly1305Suite::new([0u8; 32]).with_backend(Backend::Avx2);
    });
    assert!(caught.is_err(), "forcing an unsupported backend must panic");
}

//! Multi-lane kernels: interleaved ChaCha20 blocks and multi-buffer
//! SHA-256 compression.
//!
//! Each kernel computes N independent streams per pass by holding one
//! state *word* across N lanes of a vector register — the classic
//! multi-buffer layout. Three implementations share one generic body via
//! the [`Vec32`] trait: a portable `[u32; 4]` manual-lane fallback, SSE2
//! (`__m128i`, 4 lanes), and AVX2 (`__m256i`, 8 lanes). The arithmetic
//! is identical in all of them, so every backend is byte-for-byte equal
//! to the scalar functions in [`crate::chacha`] / [`crate::sha256`] —
//! the unit tests below pin that per lane position, and
//! `tests/backend_differential.rs` pins it end-to-end through the
//! suites.
//!
//! This is the only module in the crate allowed to contain `unsafe`
//! code, and every unsafe block is one of exactly two shapes: a call to
//! a `std::arch` intrinsic (safe by the target-feature contract of the
//! enclosing dispatch, documented at each site) or a `transmute` between
//! a vector register and its exact-size `[u32; N]` representation.

use crate::backend::Backend;
use crate::chacha::{chacha20_block, chacha20_xor, CHACHA_KEY_LEN, CHACHA_NONCE_LEN, SIGMA};
use crate::sha256::K;
use core::ops::Range;

/// The widest lane count any backend uses ([`Backend::Avx2`]).
pub(crate) const MAX_LANES: usize = 8;

/// One ChaCha20 block request: `(counter, nonce)` under a shared key.
pub(crate) type BlockJob = (u32, [u8; CHACHA_NONCE_LEN]);

/// 32-bit SIMD lane abstraction. One value holds `LANES` independent
/// `u32` streams; all ops are lane-wise with wrapping arithmetic.
trait Vec32: Copy {
    /// Number of lanes.
    const LANES: usize;
    /// Broadcasts `x` into every lane.
    fn splat(x: u32) -> Self;
    /// Loads the first `LANES` values of `xs`.
    fn load(xs: &[u32]) -> Self;
    /// Stores the lanes into the first `LANES` slots of `out`.
    fn store(self, out: &mut [u32]);
    /// Lane-wise wrapping add.
    fn add(self, o: Self) -> Self;
    /// Lane-wise XOR.
    fn xor(self, o: Self) -> Self;
    /// Lane-wise AND.
    fn and(self, o: Self) -> Self;
    /// Lane-wise `(!self) & o` (the SHA-256 `Ch` building block).
    fn andnot(self, o: Self) -> Self;
    /// Lane-wise logical shift left by `n` bits (`0 < n < 32`).
    fn shl(self, n: u32) -> Self;
    /// Lane-wise logical shift right by `n` bits (`0 < n < 32`).
    fn shr(self, n: u32) -> Self;
    /// Lane-wise rotate left.
    #[inline(always)]
    fn rotl(self, n: u32) -> Self {
        self.shl(n).xor(self.shr(32 - n))
    }
    /// Lane-wise rotate left by 16 — byte-aligned, so backends can use
    /// a byte/halfword shuffle (1–2 ops) instead of the shift pair (3).
    #[inline(always)]
    fn rotl16(self) -> Self {
        self.rotl(16)
    }
    /// Lane-wise rotate left by 8 — byte-aligned, as above.
    #[inline(always)]
    fn rotl8(self) -> Self {
        self.rotl(8)
    }
    /// Lane-wise rotate right.
    #[inline(always)]
    fn rotr(self, n: u32) -> Self {
        self.rotl(32 - n)
    }
    /// Writes 16 finalized state words (one vector per word, lanes
    /// across blocks) as `LANES` contiguous little-endian 64-byte
    /// blocks. The default scatters through a stack array; the x86
    /// types override it with in-register transposes, turning 16·LANES
    /// four-byte stores into LANES·2 full-width ones.
    #[inline(always)]
    fn store_blocks(words: &[Self; 16], out: &mut [[u8; 64]]) {
        let mut tmp = [0u32; MAX_LANES];
        for (i, w) in words.iter().enumerate() {
            w.store(&mut tmp);
            for (l, block) in out.iter_mut().enumerate() {
                block[i * 4..i * 4 + 4].copy_from_slice(&tmp[l].to_le_bytes());
            }
        }
    }
}

/// Portable 4-lane fallback: plain arrays the optimizer may or may not
/// vectorize. Used for `Backend::Lanes4` off x86_64 and as a kernel
/// cross-check in tests.
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
#[derive(Copy, Clone)]
struct P4([u32; 4]);

impl Vec32 for P4 {
    const LANES: usize = 4;
    #[inline(always)]
    fn splat(x: u32) -> Self {
        P4([x; 4])
    }
    #[inline(always)]
    fn load(xs: &[u32]) -> Self {
        P4([xs[0], xs[1], xs[2], xs[3]])
    }
    #[inline(always)]
    fn store(self, out: &mut [u32]) {
        out[..4].copy_from_slice(&self.0);
    }
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        P4([
            self.0[0].wrapping_add(o.0[0]),
            self.0[1].wrapping_add(o.0[1]),
            self.0[2].wrapping_add(o.0[2]),
            self.0[3].wrapping_add(o.0[3]),
        ])
    }
    #[inline(always)]
    fn xor(self, o: Self) -> Self {
        P4([
            self.0[0] ^ o.0[0],
            self.0[1] ^ o.0[1],
            self.0[2] ^ o.0[2],
            self.0[3] ^ o.0[3],
        ])
    }
    #[inline(always)]
    fn and(self, o: Self) -> Self {
        P4([
            self.0[0] & o.0[0],
            self.0[1] & o.0[1],
            self.0[2] & o.0[2],
            self.0[3] & o.0[3],
        ])
    }
    #[inline(always)]
    fn andnot(self, o: Self) -> Self {
        P4([
            !self.0[0] & o.0[0],
            !self.0[1] & o.0[1],
            !self.0[2] & o.0[2],
            !self.0[3] & o.0[3],
        ])
    }
    #[inline(always)]
    fn shl(self, n: u32) -> Self {
        P4([
            self.0[0] << n,
            self.0[1] << n,
            self.0[2] << n,
            self.0[3] << n,
        ])
    }
    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        P4([
            self.0[0] >> n,
            self.0[1] >> n,
            self.0[2] >> n,
            self.0[3] >> n,
        ])
    }
    #[inline(always)]
    fn rotl(self, n: u32) -> Self {
        P4([
            self.0[0].rotate_left(n),
            self.0[1].rotate_left(n),
            self.0[2].rotate_left(n),
            self.0[3].rotate_left(n),
        ])
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    //! SSE2 and AVX2 lane types plus the `#[target_feature]` kernel
    //! entry points. Safety model: SSE2 is part of the x86_64 baseline
    //! ISA, so the SSE2 intrinsics are sound on every x86_64 host; the
    //! AVX2 intrinsics only execute inside `*_avx2` entry points, which
    //! the dispatchers in the parent module call strictly behind a
    //! runtime `is_x86_feature_detected!("avx2")` check.

    use super::{chacha_blocks_kernel, sha256_multiway_kernel, BlockJob, Vec32};
    use crate::chacha::CHACHA_KEY_LEN;
    use std::arch::x86_64::*;

    /// Four lanes in one `__m128i` (SSE2).
    #[derive(Copy, Clone)]
    pub(super) struct S4(__m128i);

    impl Vec32 for S4 {
        const LANES: usize = 4;
        #[inline(always)]
        fn splat(x: u32) -> Self {
            // SAFETY: sse2 is part of the x86_64 baseline ISA.
            S4(unsafe { _mm_set1_epi32(x as i32) })
        }
        #[inline(always)]
        fn load(xs: &[u32]) -> Self {
            // SAFETY: as above; lane values pass by register, not pointer.
            S4(unsafe { _mm_set_epi32(xs[3] as i32, xs[2] as i32, xs[1] as i32, xs[0] as i32) })
        }
        #[inline(always)]
        fn store(self, out: &mut [u32]) {
            // SAFETY: `__m128i` and `[u32; 4]` have identical size and
            // no invalid bit patterns.
            let lanes: [u32; 4] = unsafe { core::mem::transmute(self.0) };
            out[..4].copy_from_slice(&lanes);
        }
        #[inline(always)]
        fn add(self, o: Self) -> Self {
            // SAFETY: sse2 is part of the x86_64 baseline ISA.
            S4(unsafe { _mm_add_epi32(self.0, o.0) })
        }
        #[inline(always)]
        fn xor(self, o: Self) -> Self {
            // SAFETY: as above.
            S4(unsafe { _mm_xor_si128(self.0, o.0) })
        }
        #[inline(always)]
        fn and(self, o: Self) -> Self {
            // SAFETY: as above.
            S4(unsafe { _mm_and_si128(self.0, o.0) })
        }
        #[inline(always)]
        fn andnot(self, o: Self) -> Self {
            // SAFETY: as above. `_mm_andnot_si128(a, b)` computes `!a & b`.
            S4(unsafe { _mm_andnot_si128(self.0, o.0) })
        }
        #[inline(always)]
        fn shl(self, n: u32) -> Self {
            // SAFETY: as above.
            S4(unsafe { _mm_sll_epi32(self.0, _mm_cvtsi32_si128(n as i32)) })
        }
        #[inline(always)]
        fn shr(self, n: u32) -> Self {
            // SAFETY: as above.
            S4(unsafe { _mm_srl_epi32(self.0, _mm_cvtsi32_si128(n as i32)) })
        }
        #[inline(always)]
        fn rotl16(self) -> Self {
            // Swapping the 16-bit halves of each 32-bit word IS the
            // 16-bit rotate; two SSE2 halfword shuffles beat the
            // three-op shift pair.
            // SAFETY: sse2 is part of the x86_64 baseline ISA.
            S4(unsafe {
                _mm_shufflehi_epi16(_mm_shufflelo_epi16(self.0, 0b10_11_00_01), 0b10_11_00_01)
            })
        }
        #[inline(always)]
        fn store_blocks(words: &[Self; 16], out: &mut [[u8; 64]]) {
            debug_assert_eq!(out.len(), 4);
            // Four 4×4 in-register transposes: quartet q of state words
            // becomes bytes 16q..16q+16 of each lane's block, stored as
            // one unaligned 128-bit write (x86 is little-endian, so a
            // register store IS the LE serialization).
            // SAFETY: sse2 is part of the x86_64 baseline ISA; each
            // store targets 16 in-bounds bytes of a 64-byte block.
            unsafe {
                for q in 0..4 {
                    let t0 = _mm_unpacklo_epi32(words[q * 4].0, words[q * 4 + 1].0);
                    let t1 = _mm_unpacklo_epi32(words[q * 4 + 2].0, words[q * 4 + 3].0);
                    let t2 = _mm_unpackhi_epi32(words[q * 4].0, words[q * 4 + 1].0);
                    let t3 = _mm_unpackhi_epi32(words[q * 4 + 2].0, words[q * 4 + 3].0);
                    let rows = [
                        _mm_unpacklo_epi64(t0, t1),
                        _mm_unpackhi_epi64(t0, t1),
                        _mm_unpacklo_epi64(t2, t3),
                        _mm_unpackhi_epi64(t2, t3),
                    ];
                    for (l, row) in rows.iter().enumerate() {
                        _mm_storeu_si128(out[l][q * 16..].as_mut_ptr().cast::<__m128i>(), *row);
                    }
                }
            }
        }
    }

    /// Eight lanes in one `__m256i` (AVX2). Values of this type only
    /// flow inside the `*_avx2` entry points below.
    #[derive(Copy, Clone)]
    pub(super) struct A8(__m256i);

    impl Vec32 for A8 {
        const LANES: usize = 8;
        #[inline(always)]
        fn splat(x: u32) -> Self {
            // SAFETY: reachable only from the `*_avx2` entry points,
            // which dispatch strictly behind a runtime AVX2 check.
            A8(unsafe { _mm256_set1_epi32(x as i32) })
        }
        #[inline(always)]
        fn load(xs: &[u32]) -> Self {
            // SAFETY: as above.
            A8(unsafe {
                _mm256_set_epi32(
                    xs[7] as i32,
                    xs[6] as i32,
                    xs[5] as i32,
                    xs[4] as i32,
                    xs[3] as i32,
                    xs[2] as i32,
                    xs[1] as i32,
                    xs[0] as i32,
                )
            })
        }
        #[inline(always)]
        fn store(self, out: &mut [u32]) {
            // SAFETY: `__m256i` and `[u32; 8]` have identical size and
            // no invalid bit patterns.
            let lanes: [u32; 8] = unsafe { core::mem::transmute(self.0) };
            out[..8].copy_from_slice(&lanes);
        }
        #[inline(always)]
        fn add(self, o: Self) -> Self {
            // SAFETY: reachable only behind the runtime AVX2 check.
            A8(unsafe { _mm256_add_epi32(self.0, o.0) })
        }
        #[inline(always)]
        fn xor(self, o: Self) -> Self {
            // SAFETY: as above.
            A8(unsafe { _mm256_xor_si256(self.0, o.0) })
        }
        #[inline(always)]
        fn and(self, o: Self) -> Self {
            // SAFETY: as above.
            A8(unsafe { _mm256_and_si256(self.0, o.0) })
        }
        #[inline(always)]
        fn andnot(self, o: Self) -> Self {
            // SAFETY: as above. `_mm256_andnot_si256(a, b)` computes `!a & b`.
            A8(unsafe { _mm256_andnot_si256(self.0, o.0) })
        }
        #[inline(always)]
        fn shl(self, n: u32) -> Self {
            // SAFETY: as above.
            A8(unsafe { _mm256_sll_epi32(self.0, _mm_cvtsi32_si128(n as i32)) })
        }
        #[inline(always)]
        fn shr(self, n: u32) -> Self {
            // SAFETY: as above.
            A8(unsafe { _mm256_srl_epi32(self.0, _mm_cvtsi32_si128(n as i32)) })
        }
        #[inline(always)]
        fn rotl16(self) -> Self {
            // Byte-aligned rotate as a single in-lane byte shuffle: for
            // each little-endian word [b0 b1 b2 b3], rotl16 permutes to
            // [b2 b3 b0 b1]. Indices repeat per 128-bit half, which is
            // exactly `vpshufb`'s lane model.
            const MASK: [u8; 32] = [
                2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13, //
                2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13,
            ];
            // SAFETY: reachable only behind the runtime AVX2 check;
            // `[u8; 32]` and `__m256i` are layout-identical.
            A8(unsafe {
                _mm256_shuffle_epi8(self.0, core::mem::transmute::<[u8; 32], __m256i>(MASK))
            })
        }
        #[inline(always)]
        fn rotl8(self) -> Self {
            // rotl8 permutes each word [b0 b1 b2 b3] to [b3 b0 b1 b2].
            const MASK: [u8; 32] = [
                3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14, //
                3, 0, 1, 2, 7, 4, 5, 6, 11, 8, 9, 10, 15, 12, 13, 14,
            ];
            // SAFETY: as above.
            A8(unsafe {
                _mm256_shuffle_epi8(self.0, core::mem::transmute::<[u8; 32], __m256i>(MASK))
            })
        }
        #[inline(always)]
        fn store_blocks(words: &[Self; 16], out: &mut [[u8; 64]]) {
            debug_assert_eq!(out.len(), 8);
            // Two 8×8 in-register transposes (state words 0..8 and
            // 8..16): unpack 32-bit pairs, then 64-bit quads, then stitch
            // the 128-bit halves. Each lane's half-block leaves as one
            // unaligned 256-bit store — `_mm256_unpack*_epi32/64` work
            // per 128-bit half, which is why lane j and lane j+4 fall
            // out of the same `u` pair via the two permute selectors.
            // SAFETY: reachable only behind the runtime AVX2 check; each
            // store targets 32 in-bounds bytes of a 64-byte block.
            unsafe {
                for half in 0..2 {
                    let w = &words[half * 8..half * 8 + 8];
                    let t0 = _mm256_unpacklo_epi32(w[0].0, w[1].0);
                    let t1 = _mm256_unpackhi_epi32(w[0].0, w[1].0);
                    let t2 = _mm256_unpacklo_epi32(w[2].0, w[3].0);
                    let t3 = _mm256_unpackhi_epi32(w[2].0, w[3].0);
                    let t4 = _mm256_unpacklo_epi32(w[4].0, w[5].0);
                    let t5 = _mm256_unpackhi_epi32(w[4].0, w[5].0);
                    let t6 = _mm256_unpacklo_epi32(w[6].0, w[7].0);
                    let t7 = _mm256_unpackhi_epi32(w[6].0, w[7].0);
                    let pairs = [
                        (_mm256_unpacklo_epi64(t0, t2), _mm256_unpacklo_epi64(t4, t6)),
                        (_mm256_unpackhi_epi64(t0, t2), _mm256_unpackhi_epi64(t4, t6)),
                        (_mm256_unpacklo_epi64(t1, t3), _mm256_unpacklo_epi64(t5, t7)),
                        (_mm256_unpackhi_epi64(t1, t3), _mm256_unpackhi_epi64(t5, t7)),
                    ];
                    for (j, (lo, hi)) in pairs.iter().enumerate() {
                        let row_lo = _mm256_permute2x128_si256::<0x20>(*lo, *hi);
                        let row_hi = _mm256_permute2x128_si256::<0x31>(*lo, *hi);
                        _mm256_storeu_si256(
                            out[j][half * 32..].as_mut_ptr().cast::<__m256i>(),
                            row_lo,
                        );
                        _mm256_storeu_si256(
                            out[j + 4][half * 32..].as_mut_ptr().cast::<__m256i>(),
                            row_hi,
                        );
                    }
                }
            }
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) fn chacha_blocks_sse2(
        key: &[u8; CHACHA_KEY_LEN],
        jobs: &[BlockJob],
        out: &mut [[u8; 64]],
    ) {
        chacha_blocks_kernel::<S4>(key, jobs, out);
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn chacha_blocks_avx2(
        key: &[u8; CHACHA_KEY_LEN],
        jobs: &[BlockJob],
        out: &mut [[u8; 64]],
    ) {
        chacha_blocks_kernel::<A8>(key, jobs, out);
    }

    #[target_feature(enable = "sse2")]
    pub(super) fn sha256_multiway_sse2(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
        sha256_multiway_kernel::<S4>(states, blocks);
    }

    #[target_feature(enable = "avx2")]
    pub(super) fn sha256_multiway_avx2(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
        sha256_multiway_kernel::<A8>(states, blocks);
    }
}

/// N interleaved ChaCha20 blocks under one key: lane `l` computes the
/// RFC 8439 block for `jobs[l] = (counter, nonce)`. Identical output to
/// N calls of [`chacha20_block`].
#[inline(always)]
fn chacha_blocks_kernel<V: Vec32>(
    key: &[u8; CHACHA_KEY_LEN],
    jobs: &[BlockJob],
    out: &mut [[u8; 64]],
) {
    let lanes = V::LANES;
    debug_assert_eq!(jobs.len(), lanes);
    debug_assert_eq!(out.len(), lanes);
    // State words 0..12 are lane-uniform (constants + shared key); the
    // counter (word 12) and nonce (words 13..16) differ per lane.
    let mut init = [V::splat(0); 16];
    for i in 0..4 {
        init[i] = V::splat(SIGMA[i]);
    }
    for i in 0..8 {
        init[4 + i] = V::splat(u32::from_le_bytes(
            key[i * 4..i * 4 + 4].try_into().expect("fixed"),
        ));
    }
    let mut tmp = [0u32; MAX_LANES];
    for (l, job) in jobs.iter().enumerate() {
        tmp[l] = job.0;
    }
    init[12] = V::load(&tmp);
    for w in 0..3 {
        for (l, job) in jobs.iter().enumerate() {
            tmp[l] = u32::from_le_bytes(job.1[w * 4..w * 4 + 4].try_into().expect("fixed"));
        }
        init[13 + w] = V::load(&tmp);
    }
    let mut x = init;
    for _ in 0..10 {
        // Column round.
        vector_quarter_round(&mut x, 0, 4, 8, 12);
        vector_quarter_round(&mut x, 1, 5, 9, 13);
        vector_quarter_round(&mut x, 2, 6, 10, 14);
        vector_quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        vector_quarter_round(&mut x, 0, 5, 10, 15);
        vector_quarter_round(&mut x, 1, 6, 11, 12);
        vector_quarter_round(&mut x, 2, 7, 8, 13);
        vector_quarter_round(&mut x, 3, 4, 9, 14);
    }
    for i in 0..16 {
        x[i] = x[i].add(init[i]);
    }
    V::store_blocks(&x, out);
}

#[inline(always)]
fn vector_quarter_round<V: Vec32>(x: &mut [V; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].add(x[b]);
    x[d] = x[d].xor(x[a]).rotl16();
    x[c] = x[c].add(x[d]);
    x[b] = x[b].xor(x[c]).rotl(12);
    x[a] = x[a].add(x[b]);
    x[d] = x[d].xor(x[a]).rotl8();
    x[c] = x[c].add(x[d]);
    x[b] = x[b].xor(x[c]).rotl(7);
}

/// N-way SHA-256 compression: lane `l` compresses `blocks[l]` into
/// `states[l]`. Identical to N calls of the scalar `compress_block`.
#[inline(always)]
fn sha256_multiway_kernel<V: Vec32>(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    let lanes = V::LANES;
    debug_assert_eq!(states.len(), lanes);
    debug_assert_eq!(blocks.len(), lanes);
    let mut tmp = [0u32; MAX_LANES];
    let mut w = [V::splat(0); 64];
    for i in 0..16 {
        for (l, block) in blocks.iter().enumerate() {
            tmp[l] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("fixed"));
        }
        w[i] = V::load(&tmp);
    }
    for i in 16..64 {
        let s0 = w[i - 15]
            .rotr(7)
            .xor(w[i - 15].rotr(18))
            .xor(w[i - 15].shr(3));
        let s1 = w[i - 2]
            .rotr(17)
            .xor(w[i - 2].rotr(19))
            .xor(w[i - 2].shr(10));
        w[i] = w[i - 16].add(s0).add(w[i - 7]).add(s1);
    }
    let mut v = [V::splat(0); 8];
    for (j, slot) in v.iter_mut().enumerate() {
        for (l, state) in states.iter().enumerate() {
            tmp[l] = state[j];
        }
        *slot = V::load(&tmp);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = v;
    for i in 0..64 {
        let s1 = e.rotr(6).xor(e.rotr(11)).xor(e.rotr(25));
        let ch = e.and(f).xor(e.andnot(g));
        let t1 = h.add(s1).add(ch).add(V::splat(K[i])).add(w[i]);
        let s0 = a.rotr(2).xor(a.rotr(13)).xor(a.rotr(22));
        let maj = a.and(b).xor(a.and(c)).xor(b.and(c));
        let t2 = s0.add(maj);
        h = g;
        g = f;
        f = e;
        e = d.add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.add(t2);
    }
    for (j, vv) in [a, b, c, d, e, f, g, h].iter().enumerate() {
        vv.store(&mut tmp);
        for (l, state) in states.iter_mut().enumerate() {
            state[j] = state[j].wrapping_add(tmp[l]);
        }
    }
}

/// Computes `jobs.len()` ChaCha20 blocks under one key. For SIMD
/// backends `jobs.len()` must equal [`Backend::lanes`]; the scalar
/// backend accepts any length.
#[allow(unsafe_code)]
pub(crate) fn chacha_blocks(
    backend: Backend,
    key: &[u8; CHACHA_KEY_LEN],
    jobs: &[BlockJob],
    out: &mut [[u8; 64]],
) {
    assert_eq!(jobs.len(), out.len());
    match backend {
        Backend::Scalar => {
            for (job, block) in jobs.iter().zip(out.iter_mut()) {
                *block = chacha20_block(key, job.0, &job.1);
            }
        }
        Backend::Lanes4 => {
            assert_eq!(jobs.len(), 4);
            #[cfg(target_arch = "x86_64")]
            // SAFETY: sse2 is part of the x86_64 baseline ISA.
            unsafe {
                x86::chacha_blocks_sse2(key, jobs, out)
            }
            #[cfg(not(target_arch = "x86_64"))]
            chacha_blocks_kernel::<P4>(key, jobs, out)
        }
        Backend::Avx2 => {
            assert_eq!(jobs.len(), 8);
            assert!(
                Backend::Avx2.is_supported(),
                "avx2 backend invoked on a host without AVX2"
            );
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the assert above proves runtime AVX2 support.
            unsafe {
                x86::chacha_blocks_avx2(key, jobs, out)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("avx2 backend is never supported off x86_64")
        }
    }
}

/// Compresses `blocks[l]` into `states[l]` for each lane. For SIMD
/// backends the slice lengths must equal [`Backend::lanes`]; the scalar
/// backend accepts any length.
#[allow(unsafe_code)]
pub(crate) fn sha256_multiway(backend: Backend, states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    assert_eq!(states.len(), blocks.len());
    match backend {
        Backend::Scalar => {
            for (state, block) in states.iter_mut().zip(blocks.iter()) {
                crate::sha256::compress_block(state, block);
            }
        }
        Backend::Lanes4 => {
            assert_eq!(states.len(), 4);
            #[cfg(target_arch = "x86_64")]
            // SAFETY: sse2 is part of the x86_64 baseline ISA.
            unsafe {
                x86::sha256_multiway_sse2(states, blocks)
            }
            #[cfg(not(target_arch = "x86_64"))]
            sha256_multiway_kernel::<P4>(states, blocks)
        }
        Backend::Avx2 => {
            assert_eq!(states.len(), 8);
            assert!(
                Backend::Avx2.is_supported(),
                "avx2 backend invoked on a host without AVX2"
            );
            #[cfg(target_arch = "x86_64")]
            // SAFETY: the assert above proves runtime AVX2 support.
            unsafe {
                x86::sha256_multiway_avx2(states, blocks)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("avx2 backend is never supported off x86_64")
        }
    }
}

/// XORs up to 64 keystream bytes into `dst` in `u64` words (the
/// optimizer widens the pair of word loads/stores to vector ops), with a
/// byte tail for non-multiple-of-8 payload ends.
#[inline(always)]
fn xor_keystream(dst: &mut [u8], ks: &[u8; 64]) {
    let words = dst.len() / 8;
    for i in 0..words {
        let off = i * 8;
        let v = u64::from_ne_bytes(dst[off..off + 8].try_into().expect("fixed"))
            ^ u64::from_ne_bytes(ks[off..off + 8].try_into().expect("fixed"));
        dst[off..off + 8].copy_from_slice(&v.to_ne_bytes());
    }
    for i in words * 8..dst.len() {
        dst[i] ^= ks[i];
    }
}

/// XORs the ChaCha20 keystream into one contiguous payload, filling the
/// lanes with this payload's *sequential* block counters — the same-key
/// multi-block mode used by `encrypt`/`decrypt` on large payloads.
/// Byte-identical to [`chacha20_xor`], including the counter-overflow
/// panic.
pub(crate) fn chacha20_xor_backend(
    backend: Backend,
    key: &[u8; CHACHA_KEY_LEN],
    counter: u32,
    nonce: &[u8; CHACHA_NONCE_LEN],
    data: &mut [u8],
) {
    let lanes = backend.lanes();
    if lanes == 1 || data.len() <= 64 {
        chacha20_xor(key, counter, nonce, data);
        return;
    }
    let mut jobs = [(0u32, [0u8; CHACHA_NONCE_LEN]); MAX_LANES];
    let mut ks = [[0u8; 64]; MAX_LANES];
    let mut ctr = counter;
    for group in data.chunks_mut(64 * lanes) {
        let nblocks = group.len().div_ceil(64);
        if nblocks == lanes {
            for (l, job) in jobs.iter_mut().take(lanes).enumerate() {
                let lane_ctr = ctr
                    .checked_add(l as u32)
                    .expect("chacha20 counter overflow");
                *job = (lane_ctr, *nonce);
            }
            chacha_blocks(backend, key, &jobs[..lanes], &mut ks[..lanes]);
            for (l, chunk) in group.chunks_mut(64).enumerate() {
                xor_keystream(chunk, &ks[l]);
            }
            ctr = ctr
                .checked_add(nblocks as u32)
                .expect("chacha20 counter overflow");
        } else {
            // Short tail: the scalar path advances (and overflow-checks)
            // the counter exactly like the full-lane path above.
            chacha20_xor(key, ctr, nonce, group);
            ctr = ctr
                .checked_add(nblocks as u32)
                .expect("chacha20 counter overflow");
        }
    }
}

/// XORs the ChaCha20 keystream into several disjoint regions of `buf`,
/// one `(nonce, start counter, byte range)` job per region, batching
/// 64-byte blocks *across* jobs so small packets still fill every lane.
/// Byte-identical to running [`chacha20_xor`] per job.
pub(crate) fn chacha20_xor_jobs(
    backend: Backend,
    key: &[u8; CHACHA_KEY_LEN],
    buf: &mut [u8],
    jobs: &[([u8; CHACHA_NONCE_LEN], u32, Range<usize>)],
) {
    let lanes = backend.lanes();
    if lanes == 1 {
        for (nonce, counter, range) in jobs {
            chacha20_xor(key, *counter, nonce, &mut buf[range.clone()]);
        }
        return;
    }
    // Flatten every job into 64-byte keystream units so lanes fill up
    // across packet boundaries. Capacity bound: ranges are disjoint, so
    // at most one partial unit per job on top of the full ones.
    let mut units: Vec<(u32, [u8; CHACHA_NONCE_LEN], usize, usize)> =
        Vec::with_capacity(buf.len() / 64 + jobs.len());
    for (nonce, counter, range) in jobs {
        let mut off = range.start;
        let mut ctr = *counter;
        while off < range.end {
            let len = (range.end - off).min(64);
            units.push((ctr, *nonce, off, len));
            ctr = ctr.checked_add(1).expect("chacha20 counter overflow");
            off += len;
        }
    }
    let mut lane_jobs = [(0u32, [0u8; CHACHA_NONCE_LEN]); MAX_LANES];
    let mut ks = [[0u8; 64]; MAX_LANES];
    for chunk in units.chunks(lanes) {
        if chunk.len() == lanes {
            for (l, unit) in chunk.iter().enumerate() {
                lane_jobs[l] = (unit.0, unit.1);
            }
            chacha_blocks(backend, key, &lane_jobs[..lanes], &mut ks[..lanes]);
            for (l, unit) in chunk.iter().enumerate() {
                xor_keystream(&mut buf[unit.2..unit.2 + unit.3], &ks[l]);
            }
        } else {
            for unit in chunk {
                let block = chacha20_block(key, unit.0, &unit.1);
                xor_keystream(&mut buf[unit.2..unit.2 + unit.3], &block);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::Sha256;

    fn supported_simd_backends() -> Vec<Backend> {
        Backend::ALL
            .into_iter()
            .filter(|b| *b != Backend::Scalar && b.is_supported())
            .collect()
    }

    /// Deterministic xorshift for test data — no RNG dependency.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn fill(state: &mut u64, buf: &mut [u8]) {
        for b in buf.iter_mut() {
            *b = (xorshift(state) & 0xff) as u8;
        }
    }

    #[test]
    fn chacha_blocks_matches_scalar_rfc_vector_in_every_lane() {
        // The RFC 8439 §2.3.2 block, placed in each lane position with
        // differing jobs in the other lanes.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let mut rfc_nonce = [0u8; 12];
        rfc_nonce[3] = 0x09;
        rfc_nonce[7] = 0x4a;
        let expect = chacha20_block(&key, 1, &rfc_nonce);
        for backend in supported_simd_backends() {
            let lanes = backend.lanes();
            for pos in 0..lanes {
                let mut jobs = Vec::new();
                for l in 0..lanes {
                    if l == pos {
                        jobs.push((1u32, rfc_nonce));
                    } else {
                        jobs.push((l as u32 * 7 + 2, [l as u8; 12]));
                    }
                }
                let mut out = vec![[0u8; 64]; lanes];
                chacha_blocks(backend, &key, &jobs, &mut out);
                assert_eq!(out[pos], expect, "{backend} lane {pos}");
                for (l, job) in jobs.iter().enumerate() {
                    let scalar = chacha20_block(&key, job.0, &job.1);
                    assert_eq!(out[l], scalar, "{backend} lane {l}");
                }
            }
        }
    }

    #[test]
    fn portable_kernel_matches_scalar() {
        // The portable fallback is dead code on x86_64 production
        // builds; keep it honest here regardless of host ISA.
        let key = [0x42u8; 32];
        let jobs: Vec<BlockJob> = (0..4)
            .map(|l| (l as u32 + 1, [l as u8 ^ 0x5a; 12]))
            .collect();
        let mut out = [[0u8; 64]; 4];
        chacha_blocks_kernel::<P4>(&key, &jobs, &mut out);
        for (l, job) in jobs.iter().enumerate() {
            assert_eq!(out[l], chacha20_block(&key, job.0, &job.1), "lane {l}");
        }
        let mut states = [[0u32; 8]; 4];
        let mut blocks = [[0u8; 64]; 4];
        let mut seed = 99u64;
        for l in 0..4 {
            states[l] = Sha256::new().state_words();
            fill(&mut seed, &mut blocks[l]);
        }
        let mut expect = states;
        for l in 0..4 {
            crate::sha256::compress_block(&mut expect[l], &blocks[l]);
        }
        sha256_multiway_kernel::<P4>(&mut states, &blocks);
        assert_eq!(states, expect);
    }

    #[test]
    fn sha256_multiway_matches_scalar_compression() {
        let mut seed = 0x1234_5678_9abc_def0u64;
        for backend in supported_simd_backends() {
            let lanes = backend.lanes();
            for _round in 0..16 {
                let mut states = vec![[0u32; 8]; lanes];
                let mut blocks = vec![[0u8; 64]; lanes];
                for l in 0..lanes {
                    // Start from the real IV and from random chain values.
                    if l % 2 == 0 {
                        states[l] = Sha256::new().state_words();
                    } else {
                        for w in states[l].iter_mut() {
                            *w = xorshift(&mut seed) as u32;
                        }
                    }
                    fill(&mut seed, &mut blocks[l]);
                }
                let mut expect = states.clone();
                for l in 0..lanes {
                    crate::sha256::compress_block(&mut expect[l], &blocks[l]);
                }
                sha256_multiway(backend, &mut states, &blocks);
                assert_eq!(states, expect, "{backend}");
            }
        }
    }

    #[test]
    fn xor_backend_matches_scalar_for_all_sizes() {
        let key = [0x31u8; 32];
        let nonce = [0x77u8; 12];
        let mut seed = 7u64;
        for backend in supported_simd_backends() {
            for len in [0usize, 1, 63, 64, 65, 128, 257, 512, 513, 1400, 4096, 4097] {
                let mut data = vec![0u8; len];
                fill(&mut seed, &mut data);
                let mut expect = data.clone();
                chacha20_xor(&key, 1, &nonce, &mut expect);
                chacha20_xor_backend(backend, &key, 1, &nonce, &mut data);
                assert_eq!(data, expect, "{backend} len {len}");
            }
        }
    }

    #[test]
    fn xor_jobs_matches_scalar_per_job() {
        let key = [0x09u8; 32];
        let mut seed = 1234u64;
        for backend in Backend::ALL.into_iter().filter(|b| b.is_supported()) {
            // Mixed job sizes across several nonces/counters, all packed
            // into one buffer.
            let sizes = [0usize, 1, 63, 64, 65, 130, 1400, 64, 64, 64, 64];
            let total: usize = sizes.iter().sum();
            let mut buf = vec![0u8; total];
            fill(&mut seed, &mut buf);
            let mut jobs = Vec::new();
            let mut off = 0;
            for (i, len) in sizes.iter().enumerate() {
                let nonce = [i as u8; 12];
                jobs.push((nonce, 1u32 + i as u32, off..off + len));
                off += len;
            }
            let mut expect = buf.clone();
            for (nonce, counter, range) in &jobs {
                chacha20_xor(&key, *counter, nonce, &mut expect[range.clone()]);
            }
            chacha20_xor_jobs(backend, &key, &mut buf, &jobs);
            assert_eq!(buf, expect, "{backend}");
        }
    }
}

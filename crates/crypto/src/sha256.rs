//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! The offline dependency set has no crypto crates, and the IPsec
//! substrate needs a real hash for ESP integrity checks and IKE key
//! derivation, so we implement the full compression function here and
//! validate it against the NIST test vectors.

/// Digest size in bytes.
pub const DIGEST_LEN: usize = 32;

/// Block size in bytes (needed by HMAC).
pub const BLOCK_LEN: usize = 64;

const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// The round constants — shared with the multi-buffer compression in
/// [`crate::lanes`], which runs the same schedule across N lanes.
pub(crate) const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use reset_crypto::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(
///     reset_crypto::to_hex(&digest),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

/// Equality over the *logical* hash state: chain value, absorbed length
/// and the live prefix of the block buffer. Bytes of `buf` beyond
/// `buf_len` are stale leftovers that depend on `update` chunking
/// history and must not participate.
impl PartialEq for Sha256 {
    fn eq(&self, other: &Self) -> bool {
        self.state == other.state
            && self.total_len == other.total_len
            && self.buf[..self.buf_len] == other.buf[..other.buf_len]
    }
}

impl Eq for Sha256 {}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0; BLOCK_LEN],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= BLOCK_LEN {
            let (block, rest) = data.split_at(BLOCK_LEN);
            self.compress(block.try_into().expect("fixed"));
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes, producing the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros to 56 mod 64, then the 64-bit length —
        // assembled in one tail buffer and absorbed in a single update
        // (at most two compressions), not byte by byte.
        let mut tail = [0u8; 2 * BLOCK_LEN];
        tail[0] = 0x80;
        let zeros = if self.buf_len < 56 {
            55 - self.buf_len
        } else {
            BLOCK_LEN + 55 - self.buf_len
        };
        let tail_len = 1 + zeros + 8;
        tail[1 + zeros..tail_len].copy_from_slice(&bit_len.to_be_bytes());
        self.update(&tail[..tail_len]);
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        compress_block(&mut self.state, block);
    }

    /// The raw chain value — what the batch-verify fast path resumes
    /// from when it bypasses the buffered `update`/`finalize` machinery.
    pub(crate) fn state_words(&self) -> [u32; 8] {
        self.state
    }
}

/// One compression of `block` into `state`, exposed crate-internally so
/// [`crate::HmacKey::finish_outer`] can run a single precomputed-layout
/// compression without a full hasher object.
///
/// The round loop is 2×-unrolled: two rounds per iteration with renamed
/// working variables, so the eight-way register rotation of the textbook
/// loop happens once per pair instead of once per round.
pub(crate) fn compress_block(state: &mut [u32; 8], block: &[u8; BLOCK_LEN]) {
    let mut w = [0u32; 64];
    for i in 0..16 {
        w[i] = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("fixed"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    macro_rules! round {
        ($a:ident, $b:ident, $c:ident, $d:ident, $e:ident, $f:ident, $g:ident, $h:ident, $i:expr) => {{
            let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
            let ch = ($e & $f) ^ (!$e & $g);
            let t1 = $h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[$i])
                .wrapping_add(w[$i]);
            let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
            let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
            $d = $d.wrapping_add(t1);
            $h = t1.wrapping_add(s0.wrapping_add(maj));
        }};
    }
    for i in (0..64).step_by(2) {
        // Round i leaves the logical order (h a b c d e f g); round i+1
        // consumes it with renamed variables and leaves (g h a b c d e f).
        round!(a, b, c, d, e, f, g, h, i);
        round!(h, a, b, c, d, e, f, g, i + 1);
        let (x, y) = (g, h);
        g = e;
        h = f;
        e = c;
        f = d;
        c = a;
        d = b;
        a = x;
        b = y;
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// One-shot SHA-256.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Digests the concatenation of `parts`, resuming from a chain value
/// that has `already_absorbed` bytes behind it (must be a multiple of
/// [`BLOCK_LEN`]). A stack block buffer and direct compressions replace
/// the [`Sha256`] struct's clone-and-update machinery — the per-message
/// fast path under batched HMAC verification.
pub(crate) fn digest_parts_from_state(
    mut state: [u32; 8],
    already_absorbed: u64,
    parts: &[&[u8]],
) -> [u8; DIGEST_LEN] {
    debug_assert_eq!(already_absorbed % BLOCK_LEN as u64, 0);
    let mut buf = [0u8; BLOCK_LEN];
    let mut buf_len = 0usize;
    let mut total = already_absorbed;
    for part in parts {
        let mut data = *part;
        total += data.len() as u64;
        if buf_len > 0 {
            let take = (BLOCK_LEN - buf_len).min(data.len());
            buf[buf_len..buf_len + take].copy_from_slice(&data[..take]);
            buf_len += take;
            data = &data[take..];
            if buf_len == BLOCK_LEN {
                compress_block(&mut state, &buf);
                buf_len = 0;
            }
        }
        while data.len() >= BLOCK_LEN {
            let (block, rest) = data.split_at(BLOCK_LEN);
            compress_block(&mut state, block.try_into().expect("fixed"));
            data = rest;
        }
        if !data.is_empty() {
            buf[..data.len()].copy_from_slice(data);
            buf_len = data.len();
        }
    }
    let bit_len = total.wrapping_mul(8);
    buf[buf_len] = 0x80;
    if buf_len + 1 > BLOCK_LEN - 8 {
        buf[buf_len + 1..].fill(0);
        compress_block(&mut state, &buf);
        buf = [0u8; BLOCK_LEN];
    } else {
        buf[buf_len + 1..BLOCK_LEN - 8].fill(0);
    }
    buf[BLOCK_LEN - 8..].copy_from_slice(&bit_len.to_be_bytes());
    compress_block(&mut state, &buf);
    let mut out = [0u8; DIGEST_LEN];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// Renders bytes as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(DIGITS[(b >> 4) as usize] as char);
        s.push(DIGITS[(b & 0x0f) as usize] as char);
    }
    s
}

/// Parses a hex string (either case, no separators) back into bytes —
/// the inverse of [`to_hex`], used to transcribe published test vectors.
/// Returns `None` on odd length or a non-hex character.
///
/// # Examples
///
/// ```
/// use reset_crypto::{from_hex, to_hex};
///
/// let bytes = from_hex("00ff0a").unwrap();
/// assert_eq!(bytes, [0x00, 0xff, 0x0a]);
/// assert_eq!(to_hex(&bytes), "00ff0a");
/// assert!(from_hex("abc").is_none()); // odd length
/// assert!(from_hex("zz").is_none()); // not hex
/// ```
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digit = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    s.as_bytes()
        .chunks_exact(2)
        .map(|pair| Some(digit(pair[0])? << 4 | digit(pair[1])?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_empty() {
        assert_eq!(
            to_hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            to_hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_two_block() {
        assert_eq!(
            to_hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            to_hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..255u8).collect();
        for split in [0usize, 1, 17, 63, 64, 65, 128, 255] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), sha256(&data), "split at {split}");
        }
    }

    #[test]
    fn exact_block_boundary_inputs() {
        // 55, 56, 63, 64 bytes straddle the padding edge cases.
        for n in [55usize, 56, 63, 64, 119, 120] {
            let data = vec![0x61u8; n];
            let d1 = sha256(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), d1, "len {n}");
        }
    }

    #[test]
    fn equality_ignores_stale_buffer_bytes() {
        // Same absorbed data through different chunkings leaves different
        // stale bytes beyond buf_len; the states are logically identical
        // and must compare equal.
        let data: Vec<u8> = (0..67u8).collect();
        let mut a = Sha256::new();
        a.update(&data[..1]);
        a.update(&data[1..64]);
        a.update(&data[64..]);
        let mut b = Sha256::new();
        b.update(&data);
        assert_eq!(a, b);
        assert_eq!(a.finalize(), b.finalize());
    }

    #[test]
    fn nist_four_block_896_bit() {
        // FIPS 180-4 long-message vector: 112 bytes, so the padding and
        // length land in an extra block (multi-block + boundary case).
        assert_eq!(
            to_hex(&sha256(
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"
            )),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn digest_parts_matches_incremental_hasher() {
        // Resume from the state after one absorbed block and compare
        // against the reference hasher over every chunking.
        let prefix = [0x36u8; BLOCK_LEN];
        let mut base = Sha256::new();
        base.update(&prefix);
        let tail: Vec<u8> = (0..200u8).collect();
        for split in [0usize, 1, 11, 52, 63, 64, 65, 127, 128, 200] {
            let parts: [&[u8]; 2] = [&tail[..split], &tail[split..]];
            let fast = digest_parts_from_state(base.state_words(), BLOCK_LEN as u64, &parts);
            let mut reference = base.clone();
            reference.update(&tail);
            assert_eq!(fast, reference.finalize(), "split {split}");
        }
        // Empty-parts edge: just the padding of the absorbed block.
        let fast = digest_parts_from_state(base.state_words(), BLOCK_LEN as u64, &[]);
        assert_eq!(fast, base.finalize());
    }

    #[test]
    fn to_hex_formats() {
        assert_eq!(to_hex(&[0x00, 0xff, 0x0a]), "00ff0a");
        assert_eq!(to_hex(&[]), "");
        assert_eq!(to_hex(&[0x12, 0x34, 0xab, 0xcd]), "1234abcd");
    }

    #[test]
    fn from_hex_parses_both_cases() {
        assert_eq!(from_hex("deadBEEF").unwrap(), [0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn from_hex_rejects_malformed() {
        assert!(from_hex("abc").is_none(), "odd length");
        assert!(from_hex("0g").is_none(), "non-hex digit");
        assert!(from_hex("a b0").is_none(), "whitespace");
    }

    #[test]
    fn hex_round_trips() {
        for len in [0usize, 1, 2, 31, 32, 33, 100] {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37 + 5) as u8).collect();
            let hex = to_hex(&bytes);
            assert_eq!(hex.len(), 2 * len);
            assert_eq!(from_hex(&hex).unwrap(), bytes, "len {len}");
        }
    }
}

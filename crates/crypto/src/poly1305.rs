//! Poly1305 one-time authenticator (RFC 8439 §2.5), from scratch.
//!
//! Radix-2²⁶ accumulator with 64-bit products (the classic "donna"
//! shape), so the whole thing stays in safe integer arithmetic. The key
//! is one-time: the AEAD suite derives a fresh one per packet from the
//! ChaCha20 block at counter 0. Validated against the RFC 8439 §2.5.2
//! vector and the §2.6.2 key-generation vector.

/// Key length in bytes (`r || s`).
pub const POLY1305_KEY_LEN: usize = 32;

/// Tag length in bytes.
pub const POLY1305_TAG_LEN: usize = 16;

/// Incremental Poly1305 MAC over a one-time key.
///
/// # Examples
///
/// ```
/// use reset_crypto::Poly1305;
///
/// let key = [0x42u8; 32]; // one-time! never reuse across messages
/// let mut mac = Poly1305::new(&key);
/// mac.update(b"message");
/// let tag = mac.finalize();
/// assert_eq!(tag.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Poly1305 {
    /// Clamped `r`, radix 2²⁶.
    r: [u32; 5],
    /// Accumulator, radix 2²⁶.
    h: [u32; 5],
    /// The `s` half of the key, added at the end mod 2¹²⁸.
    pad: [u32; 4],
    buf: [u8; 16],
    buf_len: usize,
}

impl Poly1305 {
    /// A MAC context for the 32-byte one-time key `r || s`.
    pub fn new(key: &[u8; POLY1305_KEY_LEN]) -> Self {
        let le = |i: usize| u32::from_le_bytes(key[i..i + 4].try_into().expect("fixed"));
        // Clamp r (RFC 8439 §2.5: top bits of limbs cleared) and split
        // into 26-bit limbs.
        let r = [
            le(0) & 0x03ff_ffff,
            (le(3) >> 2) & 0x03ff_ff03,
            (le(6) >> 4) & 0x03ff_c0ff,
            (le(9) >> 6) & 0x03f0_3fff,
            (le(12) >> 8) & 0x000f_ffff,
        ];
        let pad = [le(16), le(20), le(24), le(28)];
        Poly1305 {
            r,
            h: [0; 5],
            pad,
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// Absorbs one 16-byte block; `hibit` is `1 << 24` for full blocks
    /// and 0 for the padded final partial block.
    fn block(&mut self, m: &[u8; 16], hibit: u32) {
        let le = |i: usize| u32::from_le_bytes(m[i..i + 4].try_into().expect("fixed"));
        let h0 = (self.h[0] + (le(0) & 0x03ff_ffff)) as u64;
        let h1 = (self.h[1] + ((le(3) >> 2) & 0x03ff_ffff)) as u64;
        let h2 = (self.h[2] + ((le(6) >> 4) & 0x03ff_ffff)) as u64;
        let h3 = (self.h[3] + ((le(9) >> 6) & 0x03ff_ffff)) as u64;
        let h4 = (self.h[4] + ((le(12) >> 8) | hibit)) as u64;
        let [r0, r1, r2, r3, r4] = self.r.map(u64::from);
        let (s1, s2, s3, s4) = (r1 * 5, r2 * 5, r3 * 5, r4 * 5);
        // h *= r (mod 2^130 - 5): limb products with the wrap folded in
        // via the s_i = 5 * r_i terms.
        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;
        // Partial carry propagation back to 26-bit limbs.
        let mut c = d0 >> 26;
        let mut h = [0u32; 5];
        h[0] = (d0 & 0x03ff_ffff) as u32;
        let d1 = d1 + c;
        c = d1 >> 26;
        h[1] = (d1 & 0x03ff_ffff) as u32;
        let d2 = d2 + c;
        c = d2 >> 26;
        h[2] = (d2 & 0x03ff_ffff) as u32;
        let d3 = d3 + c;
        c = d3 >> 26;
        h[3] = (d3 & 0x03ff_ffff) as u32;
        let d4 = d4 + c;
        c = d4 >> 26;
        h[4] = (d4 & 0x03ff_ffff) as u32;
        h[0] += (c * 5) as u32;
        h[1] += h[0] >> 26;
        h[0] &= 0x03ff_ffff;
        self.h = h;
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.block(&block, 1 << 24);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let (block, rest) = data.split_at(16);
            self.block(block.try_into().expect("fixed"), 1 << 24);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Produces the 16-byte tag.
    pub fn finalize(mut self) -> [u8; POLY1305_TAG_LEN] {
        if self.buf_len > 0 {
            // RFC 8439: append 0x01 then zero-pad; no high bit.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.block(&block, 0);
        }
        // Full carry.
        let mut h = self.h;
        let mut c = h[1] >> 26;
        h[1] &= 0x03ff_ffff;
        h[2] += c;
        c = h[2] >> 26;
        h[2] &= 0x03ff_ffff;
        h[3] += c;
        c = h[3] >> 26;
        h[3] &= 0x03ff_ffff;
        h[4] += c;
        c = h[4] >> 26;
        h[4] &= 0x03ff_ffff;
        h[0] += c * 5;
        c = h[0] >> 26;
        h[0] &= 0x03ff_ffff;
        h[1] += c;
        // g = h + 5 - 2^130; select g when h >= p.
        let mut g = [0u32; 5];
        let mut carry = 5u32;
        for i in 0..5 {
            let t = h[i] + carry;
            g[i] = t & 0x03ff_ffff;
            carry = t >> 26;
        }
        // carry is 1 iff h + 5 overflowed 2^130, i.e. h >= 2^130 - 5.
        let mask = carry.wrapping_mul(u32::MAX); // all-ones when h >= p
        for i in 0..5 {
            h[i] = (h[i] & !mask) | (g[i] & mask);
        }
        // Serialize h mod 2^128 and add s.
        let words = [
            h[0] | (h[1] << 26),
            (h[1] >> 6) | (h[2] << 20),
            (h[2] >> 12) | (h[3] << 14),
            (h[3] >> 18) | (h[4] << 8),
        ];
        let mut out = [0u8; POLY1305_TAG_LEN];
        let mut carry = 0u64;
        for i in 0..4 {
            let t = words[i] as u64 + self.pad[i] as u64 + carry;
            out[i * 4..i * 4 + 4].copy_from_slice(&(t as u32).to_le_bytes());
            carry = t >> 32;
        }
        out
    }
}

/// One-shot Poly1305 tag.
pub fn poly1305(key: &[u8; POLY1305_KEY_LEN], msg: &[u8]) -> [u8; POLY1305_TAG_LEN] {
    let mut mac = Poly1305::new(key);
    mac.update(msg);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chacha::chacha20_block;
    use crate::sha256::{from_hex, to_hex};

    #[test]
    fn rfc8439_tag_vector() {
        // §2.5.2.
        let key: [u8; 32] =
            from_hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .unwrap()
                .try_into()
                .unwrap();
        let tag = poly1305(&key, b"Cryptographic Forum Research Group");
        assert_eq!(to_hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    #[test]
    fn rfc8439_key_generation_vector() {
        // §2.6.2: the one-time key is the first 32 bytes of the ChaCha20
        // block at counter 0.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = 0x80 + i as u8;
        }
        let nonce: [u8; 12] = from_hex("000000000001020304050607")
            .unwrap()
            .try_into()
            .unwrap();
        let block = chacha20_block(&key, 0, &nonce);
        assert_eq!(
            to_hex(&block[..32]),
            "8ad5a08b905f81cc815040274ab29471a833b637e3fd0da508dbb8e2fdd1a646"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let key = [0x77u8; 32];
        let msg: Vec<u8> = (0..100u8).collect();
        for split in [0usize, 1, 15, 16, 17, 31, 32, 99] {
            let mut mac = Poly1305::new(&key);
            mac.update(&msg[..split]);
            mac.update(&msg[split..]);
            assert_eq!(mac.finalize(), poly1305(&key, &msg), "split {split}");
        }
    }

    #[test]
    fn partial_and_exact_block_lengths() {
        // Lengths straddling the 16-byte block boundary all differ and
        // are stable (guards the padded-final-block path).
        let key = [0x13u8; 32];
        let mut tags = std::collections::HashSet::new();
        for len in [0usize, 1, 15, 16, 17, 32, 33] {
            let msg = vec![0xEE; len];
            assert!(tags.insert(poly1305(&key, &msg)), "len {len} collided");
        }
    }

    #[test]
    fn key_sensitivity() {
        let m = b"same message";
        assert_ne!(poly1305(&[1u8; 32], m), poly1305(&[2u8; 32], m));
    }

    #[test]
    fn wraparound_heavy_input() {
        // All-0xff blocks drive the accumulator through the 2^130-5
        // reduction repeatedly; cross-check determinism only (no
        // published vector), plus the §2.5 clamp making r high bits
        // irrelevant.
        let k1 = [0x55u8; 32];
        let tag1 = poly1305(&k1, &[0xff; 160]);
        // Setting clamped-away bits of r must not change the tag.
        let mut k2 = k1;
        k2[3] |= 0xf0;
        k2[4] |= 0x03;
        assert_eq!(poly1305(&k2, &[0xff; 160]), tag1);
    }
}

//! Poly1305 one-time authenticator (RFC 8439 §2.5), from scratch.
//!
//! Radix-2⁴⁴ accumulator (three limbs) with 128-bit products — the
//! 64-bit "donna" shape: 9 wide multiplies per 16-byte block instead of
//! the 25 a 26-bit-limb accumulator needs, while staying entirely in
//! safe integer arithmetic (`u128` is a built-in). Poly1305 runs once
//! per packet over the whole AEAD layout and is inherently sequential
//! (each block multiplies the accumulator), so unlike ChaCha20 it gets
//! no help from the multi-lane backend — per-block cost here sets the
//! floor under every backend's AEAD receive time. The key is one-time:
//! the AEAD suite derives a fresh one per packet from the ChaCha20
//! block at counter 0. Validated against the RFC 8439 §2.5.2 vector
//! and the §2.6.2 key-generation vector.

/// Key length in bytes (`r || s`).
pub const POLY1305_KEY_LEN: usize = 32;

/// Tag length in bytes.
pub const POLY1305_TAG_LEN: usize = 16;

/// Incremental Poly1305 MAC over a one-time key.
///
/// # Examples
///
/// ```
/// use reset_crypto::Poly1305;
///
/// let key = [0x42u8; 32]; // one-time! never reuse across messages
/// let mut mac = Poly1305::new(&key);
/// mac.update(b"message");
/// let tag = mac.finalize();
/// assert_eq!(tag.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Poly1305 {
    /// Clamped `r`, radix 2⁴⁴ (limbs of 44, 44, 42 bits).
    r: [u64; 3],
    /// Precomputed wrap terms `20·r1`, `20·r2`: a product spilling past
    /// 2¹³⁰ re-enters at `·5`, and the limb offsets contribute the `·4`.
    s: [u64; 2],
    /// Accumulator, radix 2⁴⁴.
    h: [u64; 3],
    /// The `s` half of the key, added at the end mod 2¹²⁸.
    pad: [u64; 2],
    buf: [u8; 16],
    buf_len: usize,
}

/// Low-limb mask (44 bits).
const MASK44: u64 = 0x0fff_ffff_ffff;
/// High-limb mask (42 bits).
const MASK42: u64 = 0x03ff_ffff_ffff;

impl Poly1305 {
    /// A MAC context for the 32-byte one-time key `r || s`.
    pub fn new(key: &[u8; POLY1305_KEY_LEN]) -> Self {
        let le = |i: usize| u64::from_le_bytes(key[i..i + 8].try_into().expect("fixed"));
        let (t0, t1) = (le(0), le(8));
        // Clamp r (RFC 8439 §2.5: top bits of key nibbles cleared) and
        // split into 44/44/42-bit limbs; the clamp masks are the §2.5
        // byte masks re-expressed at the limb boundaries.
        let r = [
            t0 & 0x0ffc_0fff_ffff,
            ((t0 >> 44) | (t1 << 20)) & 0x0fff_ffc0_ffff,
            (t1 >> 24) & 0x000f_ffff_fc0f,
        ];
        let s = [r[1] * 20, r[2] * 20];
        let pad = [le(16), le(24)];
        Poly1305 {
            r,
            s,
            h: [0; 3],
            pad,
            buf: [0; 16],
            buf_len: 0,
        }
    }

    /// Absorbs one 16-byte block; `hibit` is `1 << 40` (bit 128 at limb
    /// 2's offset) for full blocks and 0 for the padded final block.
    fn block(&mut self, m: &[u8; 16], hibit: u64) {
        let t0 = u64::from_le_bytes(m[..8].try_into().expect("fixed"));
        let t1 = u64::from_le_bytes(m[8..].try_into().expect("fixed"));
        let h0 = self.h[0] + (t0 & MASK44);
        let h1 = self.h[1] + (((t0 >> 44) | (t1 << 20)) & MASK44);
        let h2 = self.h[2] + ((t1 >> 24) | hibit);
        let [r0, r1, r2] = self.r;
        let [s1, s2] = self.s;
        // h *= r (mod 2^130 - 5): three column products in u128, the
        // wrap folded in via the precomputed s terms.
        let d0 = h0 as u128 * r0 as u128 + h1 as u128 * s2 as u128 + h2 as u128 * s1 as u128;
        let d1 = h0 as u128 * r1 as u128 + h1 as u128 * r0 as u128 + h2 as u128 * s2 as u128;
        let d2 = h0 as u128 * r2 as u128 + h1 as u128 * r1 as u128 + h2 as u128 * r0 as u128;
        // Partial carry propagation back to 44/44/42-bit limbs.
        let mut c = (d0 >> 44) as u64;
        let h0 = d0 as u64 & MASK44;
        let d1 = d1 + c as u128;
        c = (d1 >> 44) as u64;
        let h1 = d1 as u64 & MASK44;
        let d2 = d2 + c as u128;
        c = (d2 >> 42) as u64;
        let h2 = d2 as u64 & MASK42;
        let h0 = h0 + c * 5;
        c = h0 >> 44;
        self.h = [h0 & MASK44, h1 + c, h2];
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.buf_len > 0 {
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 16 {
                let block = self.buf;
                self.block(&block, 1 << 40);
                self.buf_len = 0;
            }
        }
        while data.len() >= 16 {
            let (block, rest) = data.split_at(16);
            self.block(block.try_into().expect("fixed"), 1 << 40);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Produces the 16-byte tag.
    pub fn finalize(mut self) -> [u8; POLY1305_TAG_LEN] {
        if self.buf_len > 0 {
            // RFC 8439: append 0x01 then zero-pad; no high bit.
            let mut block = [0u8; 16];
            block[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
            block[self.buf_len] = 1;
            self.block(&block, 0);
        }
        // Full carry.
        let [mut h0, mut h1, mut h2] = self.h;
        let mut c = h1 >> 44;
        h1 &= MASK44;
        h2 += c;
        c = h2 >> 42;
        h2 &= MASK42;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= MASK44;
        h1 += c;
        c = h1 >> 44;
        h1 &= MASK44;
        h2 += c;
        c = h2 >> 42;
        h2 &= MASK42;
        h0 += c * 5;
        c = h0 >> 44;
        h0 &= MASK44;
        h1 += c;
        // g = h + 5 - 2^130; select g when h >= p = 2^130 - 5.
        let mut g0 = h0 + 5;
        c = g0 >> 44;
        g0 &= MASK44;
        let mut g1 = h1 + c;
        c = g1 >> 44;
        g1 &= MASK44;
        let g2 = h2.wrapping_add(c).wrapping_sub(1 << 42);
        // g2's sign bit is set iff the subtraction borrowed (h < p):
        // all-ones mask selects g when it did not.
        let mask = (g2 >> 63).wrapping_sub(1);
        h0 = (h0 & !mask) | (g0 & mask);
        h1 = (h1 & !mask) | (g1 & mask);
        h2 = (h2 & !mask) | (g2 & mask);
        // Serialize h mod 2^128 and add s.
        let lo = h0 | (h1 << 44);
        let hi = (h1 >> 20) | (h2 << 24);
        let t = lo as u128 + self.pad[0] as u128;
        let lo = t as u64;
        let hi = hi.wrapping_add(self.pad[1]).wrapping_add((t >> 64) as u64);
        let mut out = [0u8; POLY1305_TAG_LEN];
        out[..8].copy_from_slice(&lo.to_le_bytes());
        out[8..].copy_from_slice(&hi.to_le_bytes());
        out
    }
}

/// One-shot Poly1305 tag.
pub fn poly1305(key: &[u8; POLY1305_KEY_LEN], msg: &[u8]) -> [u8; POLY1305_TAG_LEN] {
    let mut mac = Poly1305::new(key);
    mac.update(msg);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chacha::chacha20_block;
    use crate::sha256::{from_hex, to_hex};

    #[test]
    fn rfc8439_tag_vector() {
        // §2.5.2.
        let key: [u8; 32] =
            from_hex("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .unwrap()
                .try_into()
                .unwrap();
        let tag = poly1305(&key, b"Cryptographic Forum Research Group");
        assert_eq!(to_hex(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    #[test]
    fn rfc8439_key_generation_vector() {
        // §2.6.2: the one-time key is the first 32 bytes of the ChaCha20
        // block at counter 0.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = 0x80 + i as u8;
        }
        let nonce: [u8; 12] = from_hex("000000000001020304050607")
            .unwrap()
            .try_into()
            .unwrap();
        let block = chacha20_block(&key, 0, &nonce);
        assert_eq!(
            to_hex(&block[..32]),
            "8ad5a08b905f81cc815040274ab29471a833b637e3fd0da508dbb8e2fdd1a646"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let key = [0x77u8; 32];
        let msg: Vec<u8> = (0..100u8).collect();
        for split in [0usize, 1, 15, 16, 17, 31, 32, 99] {
            let mut mac = Poly1305::new(&key);
            mac.update(&msg[..split]);
            mac.update(&msg[split..]);
            assert_eq!(mac.finalize(), poly1305(&key, &msg), "split {split}");
        }
    }

    #[test]
    fn partial_and_exact_block_lengths() {
        // Lengths straddling the 16-byte block boundary all differ and
        // are stable (guards the padded-final-block path).
        let key = [0x13u8; 32];
        let mut tags = std::collections::HashSet::new();
        for len in [0usize, 1, 15, 16, 17, 32, 33] {
            let msg = vec![0xEE; len];
            assert!(tags.insert(poly1305(&key, &msg)), "len {len} collided");
        }
    }

    #[test]
    fn key_sensitivity() {
        let m = b"same message";
        assert_ne!(poly1305(&[1u8; 32], m), poly1305(&[2u8; 32], m));
    }

    #[test]
    fn wraparound_heavy_input() {
        // All-0xff blocks drive the accumulator through the 2^130-5
        // reduction repeatedly; cross-check determinism only (no
        // published vector), plus the §2.5 clamp making r high bits
        // irrelevant.
        let k1 = [0x55u8; 32];
        let tag1 = poly1305(&k1, &[0xff; 160]);
        // Setting clamped-away bits of r must not change the tag.
        let mut k2 = k1;
        k2[3] |= 0xf0;
        k2[4] |= 0x03;
        assert_eq!(poly1305(&k2, &[0xff; 160]), tag1);
    }
}

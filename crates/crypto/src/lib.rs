//! # reset-crypto — from-scratch primitives for the IPsec substrate
//!
//! The offline build has no cryptography crates, so the pieces IPsec needs
//! are implemented here and validated against published test vectors:
//!
//! * [`Sha256`] / [`sha256`] — FIPS 180-4, NIST vectors.
//! * [`HmacSha256`] / [`hmac_sha256`] / [`hmac_sha256_96`] — RFC 2104 /
//!   RFC 4231 vectors; the ESP integrity check (ICV) that makes replay the
//!   *only* attack available to the adversary, exactly as the paper
//!   assumes.
//! * [`HmacKey`] — the precomputed per-SA key schedule behind the fast
//!   ICV path: the ipad/opad states are absorbed once at SA install, so
//!   each packet's MAC skips the key schedule (3 compressions instead of
//!   5 for a 64-byte payload).
//! * [`ct_eq`] — constant-time tag comparison.
//! * [`prf_plus`] / [`xor_keystream`] — key derivation and a stand-in
//!   confidentiality transform for the simulated ESP.
//! * [`chacha20_block`] / [`Poly1305`] / [`chacha20_poly1305_seal`] —
//!   RFC 8439 ChaCha20, the Poly1305 one-time MAC, and their AEAD
//!   composition, each checked against the RFC's vectors.
//! * [`BigUint`] + the OAKLEY groups ([`oakley_group1`],
//!   [`oakley_group2`], RFC 2412 — the paper's reference \[9\]) — the
//!   modular exponentiation that dominates the cost of the IETF
//!   "renegotiate the whole SA" remedy the paper argues against.
//!
//! # Cipher suites
//!
//! [`CipherSuite`] is the pluggable transform boundary the wire codec
//! and SA datapath program against: a trait over seal/open with the
//! suite's key, IV and ICV lengths as metadata, plus an overridable
//! [`CipherSuite::verify_batch`] for amortized per-SA batch
//! verification. In-repo implementations: [`HmacSha256Suite`] (the
//! legacy HMAC-SHA-256-96 + keystream transform, wire-compatible with
//! the pre-suite codec, with a two-pass batch verifier built on
//! [`HmacKey::finish_outer`]) and [`ChaCha20Poly1305Suite`] (RFC 8439
//! AEAD). To add a suite: implement the trait here with published
//! known-answer vectors for its primitives, then register it in
//! `reset_ipsec::CryptoSuite` so IKE can negotiate it and SAs can build
//! it from derived key material; `tests/it_suites.rs` differential-runs
//! every registered suite through the wire codec.
//!
//! # Backends
//!
//! Each suite runs its bulk primitives through a [`Backend`] chosen once
//! at construction: the scalar reference path, 4-lane SSE2/portable
//! kernels, or 8-lane AVX2 kernels (see the [`suite`](CipherSuite)
//! rustdoc for the selection order and the scalar-oracle guarantee, and
//! the repo-level `ARCHITECTURE.md` for where backends sit in the crate
//! map and how to add one).
//!
//! Scope note: these implementations model *behaviour and cost* for the
//! reproduction. They are not hardened against side channels (except
//! [`ct_eq`]) and must not be lifted into production use.
//!
//! # Examples
//!
//! ```
//! use reset_crypto::{hmac_sha256_96, ct_eq};
//!
//! let key = b"sa-auth-key";
//! let packet = b"spi=1 seq=42 payload";
//! let icv = hmac_sha256_96(key, packet);
//! // The receiver recomputes and compares in constant time:
//! assert!(ct_eq(&icv, &hmac_sha256_96(key, packet)));
//! ```

// `deny`, not `forbid`: the SIMD kernels in `lanes` carry a scoped
// `allow(unsafe_code)` for `std::arch` intrinsics and register↔array
// transmutes. Everything else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod aead;
mod backend;
mod bignum;
mod chacha;
mod ct;
mod dh;
mod hmac;
mod lanes;
mod poly1305;
mod prf;
mod sha256;
mod suite;

pub use aead::{
    chacha20_poly1305_open, chacha20_poly1305_seal, chacha20_poly1305_tag, AEAD_TAG_LEN,
};
pub use backend::{Backend, BACKEND_ENV};
pub use bignum::BigUint;
pub use chacha::{chacha20_block, chacha20_xor, CHACHA_KEY_LEN, CHACHA_NONCE_LEN};
pub use ct::ct_eq;
pub use dh::{oakley_group1, oakley_group2, toy_group, DhGroup, DhKeyPair};
pub use hmac::{hmac_sha256, hmac_sha256_96, HmacKey, HmacSha256};
pub use poly1305::{poly1305, Poly1305, POLY1305_KEY_LEN, POLY1305_TAG_LEN};
pub use prf::{prf_plus, xor_keystream, xor_keystream_with};
pub use sha256::{from_hex, sha256, to_hex, Sha256, BLOCK_LEN, DIGEST_LEN};
pub use suite::{
    ChaCha20Poly1305Suite, CipherSuite, FrameToVerify, HmacSha256Suite, Icv, HMAC_ICV_LEN,
    MAX_ICV_LEN, MAX_IV_LEN,
};

//! # reset-crypto — from-scratch primitives for the IPsec substrate
//!
//! The offline build has no cryptography crates, so the pieces IPsec needs
//! are implemented here and validated against published test vectors:
//!
//! * [`Sha256`] / [`sha256`] — FIPS 180-4, NIST vectors.
//! * [`HmacSha256`] / [`hmac_sha256`] / [`hmac_sha256_96`] — RFC 2104 /
//!   RFC 4231 vectors; the ESP integrity check (ICV) that makes replay the
//!   *only* attack available to the adversary, exactly as the paper
//!   assumes.
//! * [`HmacKey`] — the precomputed per-SA key schedule behind the fast
//!   ICV path: the ipad/opad states are absorbed once at SA install, so
//!   each packet's MAC skips the key schedule (3 compressions instead of
//!   5 for a 64-byte payload).
//! * [`ct_eq`] — constant-time tag comparison.
//! * [`prf_plus`] / [`xor_keystream`] — key derivation and a stand-in
//!   confidentiality transform for the simulated ESP.
//! * [`BigUint`] + the OAKLEY groups ([`oakley_group1`],
//!   [`oakley_group2`], RFC 2412 — the paper's reference \[9\]) — the
//!   modular exponentiation that dominates the cost of the IETF
//!   "renegotiate the whole SA" remedy the paper argues against.
//!
//! Scope note: these implementations model *behaviour and cost* for the
//! reproduction. They are not hardened against side channels (except
//! [`ct_eq`]) and must not be lifted into production use.
//!
//! # Examples
//!
//! ```
//! use reset_crypto::{hmac_sha256_96, ct_eq};
//!
//! let key = b"sa-auth-key";
//! let packet = b"spi=1 seq=42 payload";
//! let icv = hmac_sha256_96(key, packet);
//! // The receiver recomputes and compares in constant time:
//! assert!(ct_eq(&icv, &hmac_sha256_96(key, packet)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bignum;
mod ct;
mod dh;
mod hmac;
mod prf;
mod sha256;

pub use bignum::BigUint;
pub use ct::ct_eq;
pub use dh::{oakley_group1, oakley_group2, toy_group, DhGroup, DhKeyPair};
pub use hmac::{hmac_sha256, hmac_sha256_96, HmacKey, HmacSha256};
pub use prf::{prf_plus, xor_keystream, xor_keystream_with};
pub use sha256::{sha256, to_hex, Sha256, BLOCK_LEN, DIGEST_LEN};

//! Crypto backend selection: scalar oracle vs. multi-lane SIMD kernels.
//!
//! Every [`crate::CipherSuite`] implementation in this crate runs its bulk
//! primitives (ChaCha20 keystream generation, SHA-256 compression) through
//! one of the backends below, chosen **once at suite construction** and
//! never re-probed on the datapath. The backend only changes *how many
//! packets (or blocks) a single pass computes* — never a single output
//! byte. [`Backend::Scalar`] is the reference implementation and the
//! differential oracle: `tests/backend_differential.rs` replays randomized
//! batch sweeps through every backend the host supports and requires
//! byte-identical verdicts, tags, and plaintexts.
//!
//! Selection order (see [`Backend::select`]):
//!
//! 1. the `RESET_CRYPTO_BACKEND` environment variable, if it names a
//!    backend the host supports (CI determinism knob);
//! 2. runtime feature detection — [`Backend::Avx2`] where the CPU has
//!    AVX2, else [`Backend::Lanes4`];
//! 3. [`Backend::Scalar`] as the unconditional fallback.

use core::fmt;

/// Environment variable that forces a backend for the auto-selecting
/// suite constructors ([`Backend::select`]). Recognized values are the
/// [`Backend::name`] strings: `scalar`, `lanes4`, `avx2`. A value that
/// is unrecognized — or names a backend this host cannot run — is
/// ignored and selection falls back to runtime detection, so a fleet-wide
/// `RESET_CRYPTO_BACKEND=avx2` does not break the one legacy runner.
pub const BACKEND_ENV: &str = "RESET_CRYPTO_BACKEND";

/// How the suites compute their bulk crypto: one stream at a time, or
/// several interleaved lanes per pass.
///
/// A `Backend` is data, not capability: holding a variant does not prove
/// the host can run it. The forced suite constructors (e.g.
/// [`crate::ChaCha20Poly1305Suite::with_backend`]) panic on an
/// unsupported backend, and the crate-internal kernels re-assert support
/// before entering feature-gated code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// One stream at a time; pure safe Rust; byte-for-byte the reference
    /// (“oracle”) implementation every other backend is differenced
    /// against. Always supported.
    Scalar,
    /// Four interleaved lanes per pass: SSE2 `std::arch` kernels on
    /// x86_64 (where SSE2 is part of the baseline ISA), a portable
    /// manual-lane `[u32; 4]` implementation elsewhere (which LLVM
    /// auto-vectorizes where it can). Always supported.
    Lanes4,
    /// Eight interleaved lanes per pass using AVX2 `std::arch` kernels.
    /// Supported only on x86_64 hosts whose CPU reports AVX2 at runtime.
    Avx2,
}

impl Backend {
    /// All backend variants, in preference order from weakest to
    /// strongest. Tests iterate this and skip unsupported entries.
    pub const ALL: [Backend; 3] = [Backend::Scalar, Backend::Lanes4, Backend::Avx2];

    /// The stable lowercase name used by [`BACKEND_ENV`], bench entry
    /// ids (`datapath/suite_rx_<backend>`), and the `backend` field in
    /// `BENCH_datapath.json`.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Lanes4 => "lanes4",
            Backend::Avx2 => "avx2",
        }
    }

    /// Parses a [`Backend::name`] string (as found in [`BACKEND_ENV`]).
    pub fn from_name(name: &str) -> Option<Backend> {
        match name {
            "scalar" => Some(Backend::Scalar),
            "lanes4" => Some(Backend::Lanes4),
            "avx2" => Some(Backend::Avx2),
            _ => None,
        }
    }

    /// How many independent streams one kernel pass computes.
    pub fn lanes(self) -> usize {
        match self {
            Backend::Scalar => 1,
            Backend::Lanes4 => 4,
            Backend::Avx2 => 8,
        }
    }

    /// Whether this host can run the backend. `Scalar` and `Lanes4` are
    /// always supported (`Lanes4` falls back to a portable manual-lane
    /// implementation off x86_64); `Avx2` requires runtime CPU support.
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Scalar | Backend::Lanes4 => true,
            Backend::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
        }
    }

    /// Picks the backend the auto-selecting suite constructors use:
    /// [`BACKEND_ENV`] override (if supported), else the strongest
    /// backend runtime detection reports, else [`Backend::Scalar`].
    pub fn select() -> Backend {
        if let Ok(name) = std::env::var(BACKEND_ENV) {
            if let Some(forced) = Backend::from_name(name.trim()) {
                if forced.is_supported() {
                    return forced;
                }
            }
        }
        if Backend::Avx2.is_supported() {
            Backend::Avx2
        } else if cfg!(target_arch = "x86_64") {
            Backend::Lanes4
        } else {
            // Portable lanes help only where LLVM vectorizes them; off
            // x86_64 we have no runtime evidence it will, so default to
            // the oracle and let RESET_CRYPTO_BACKEND opt in.
            Backend::Scalar
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in Backend::ALL {
            assert_eq!(Backend::from_name(b.name()), Some(b));
        }
        assert_eq!(Backend::from_name("sse9"), None);
    }

    #[test]
    fn scalar_and_lanes4_always_supported() {
        assert!(Backend::Scalar.is_supported());
        assert!(Backend::Lanes4.is_supported());
    }

    #[test]
    fn select_returns_a_supported_backend() {
        assert!(Backend::select().is_supported());
    }

    #[test]
    fn lane_counts() {
        assert_eq!(Backend::Scalar.lanes(), 1);
        assert_eq!(Backend::Lanes4.lanes(), 4);
        assert_eq!(Backend::Avx2.lanes(), 8);
    }
}

//! HMAC-SHA-256 (RFC 2104), the integrity primitive behind ESP's ICV.
//!
//! IPsec's anti-replay guarantee rests on authenticity: an adversary can
//! *replay* recorded packets but cannot *forge* new ones. The ICV computed
//! here is what enforces that asymmetry in our ESP pipeline.
//!
//! Two entry points exist because the per-packet cost matters (the
//! paper's whole argument is a ~4 µs message budget):
//!
//! * [`hmac_sha256`] / [`HmacSha256::new`] — one-shot; reruns the key
//!   schedule (two extra compression calls) every time.
//! * [`HmacKey`] — precomputes the ipad/opad-absorbed states once per
//!   key. Each subsequent MAC starts from cheap state clones, so a
//!   64-byte packet costs 3 compression calls instead of 5. This is what
//!   the SA datapath holds.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// A precomputed HMAC-SHA-256 key schedule.
///
/// Holds the hash states that result from absorbing the ipad- and
/// opad-masked key blocks, so per-message MACs skip the key schedule
/// entirely: [`HmacKey::begin`] is two small struct clones.
///
/// # Examples
///
/// ```
/// use reset_crypto::{hmac_sha256, HmacKey};
///
/// let key = HmacKey::new(b"sa-auth-key");
/// assert_eq!(key.mac(b"packet"), hmac_sha256(b"sa-auth-key", b"packet"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HmacKey {
    /// State after absorbing `key ⊕ ipad` (one compression).
    inner: Sha256,
    /// State after absorbing `key ⊕ opad` (one compression).
    outer: Sha256,
}

impl HmacKey {
    /// Precomputes the schedule for `key` (any length; long keys are
    /// pre-hashed per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = crate::sha256::sha256(key);
            k[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacKey { inner, outer }
    }

    /// Starts an incremental MAC from the precomputed states.
    pub fn begin(&self) -> HmacSha256 {
        HmacSha256 {
            inner: self.inner.clone(),
            outer: self.outer.clone(),
        }
    }

    /// One-shot 32-byte tag over `msg`.
    pub fn mac(&self, msg: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = self.begin();
        h.update(msg);
        h.finalize()
    }

    /// One-shot truncated 96-bit tag (`HMAC-SHA-256-96` style).
    pub fn mac_96(&self, msg: &[u8]) -> [u8; 12] {
        let full = self.mac(msg);
        let mut out = [0u8; 12];
        out.copy_from_slice(&full[..12]);
        out
    }
}

/// Incremental HMAC-SHA-256.
///
/// # Examples
///
/// ```
/// use reset_crypto::{hmac_sha256, to_hex};
///
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     to_hex(&tag),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates an HMAC context for `key` (any length; long keys are
    /// pre-hashed per RFC 2104). For repeated MACs under one key, build
    /// an [`HmacKey`] once and call [`HmacKey::begin`] instead.
    pub fn new(key: &[u8]) -> Self {
        HmacKey::new(key).begin()
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = HmacSha256::new(key);
    h.update(msg);
    h.finalize()
}

/// Truncated 96-bit tag as used by `HMAC-SHA-256-96` style ESP transforms.
pub fn hmac_sha256_96(key: &[u8], msg: &[u8]) -> [u8; 12] {
    let full = hmac_sha256(key, msg);
    let mut out = [0u8; 12];
    out.copy_from_slice(&full[..12]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2_short_key() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_repeated_bytes() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            to_hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let key = b"secret";
        let msg = b"hello world, this spans updates";
        let mut h = HmacSha256::new(key);
        h.update(&msg[..7]);
        h.update(&msg[7..]);
        assert_eq!(h.finalize(), hmac_sha256(key, msg));
    }

    #[test]
    fn truncated_tag_is_prefix() {
        let t96 = hmac_sha256_96(b"k", b"m");
        let full = hmac_sha256(b"k", b"m");
        assert_eq!(&t96[..], &full[..12]);
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn precomputed_key_matches_oneshot_all_key_lengths() {
        // Short, block-length, and longer-than-block keys all agree with
        // the RFC 2104 reference path.
        for key_len in [0usize, 1, 31, 63, 64, 65, 130] {
            let key: Vec<u8> = (0..key_len).map(|i| i as u8).collect();
            let hk = HmacKey::new(&key);
            for msg_len in [0usize, 1, 12, 55, 64, 200] {
                let msg: Vec<u8> = (0..msg_len).map(|i| (i * 7) as u8).collect();
                assert_eq!(
                    hk.mac(&msg),
                    hmac_sha256(&key, &msg),
                    "key_len {key_len} msg_len {msg_len}"
                );
                assert_eq!(hk.mac_96(&msg), hmac_sha256_96(&key, &msg));
            }
        }
    }

    #[test]
    fn precomputed_key_is_reusable() {
        let hk = HmacKey::new(b"reused");
        let a = hk.mac(b"first");
        let b = hk.mac(b"second");
        let a2 = hk.mac(b"first");
        assert_eq!(a, a2, "state must not be consumed between MACs");
        assert_ne!(a, b);
    }

    #[test]
    fn begin_supports_multi_part_messages() {
        let hk = HmacKey::new(b"k");
        let mut h = hk.begin();
        h.update(b"part one | ");
        h.update(b"part two");
        assert_eq!(h.finalize(), hk.mac(b"part one | part two"));
    }
}

//! HMAC-SHA-256 (RFC 2104), the integrity primitive behind ESP's ICV.
//!
//! IPsec's anti-replay guarantee rests on authenticity: an adversary can
//! *replay* recorded packets but cannot *forge* new ones. The ICV computed
//! here is what enforces that asymmetry in our ESP pipeline.
//!
//! Two entry points exist because the per-packet cost matters (the
//! paper's whole argument is a ~4 µs message budget):
//!
//! * [`hmac_sha256`] / [`HmacSha256::new`] — one-shot; reruns the key
//!   schedule (two extra compression calls) every time.
//! * [`HmacKey`] — precomputes the ipad/opad-absorbed states once per
//!   key. Each subsequent MAC starts from cheap state clones, so a
//!   64-byte packet costs 3 compression calls instead of 5. This is what
//!   the SA datapath holds.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// A precomputed HMAC-SHA-256 key schedule.
///
/// Holds the hash states that result from absorbing the ipad- and
/// opad-masked key blocks, so per-message MACs skip the key schedule
/// entirely: [`HmacKey::begin`] is two small struct clones.
///
/// # Examples
///
/// ```
/// use reset_crypto::{hmac_sha256, HmacKey};
///
/// let key = HmacKey::new(b"sa-auth-key");
/// assert_eq!(key.mac(b"packet"), hmac_sha256(b"sa-auth-key", b"packet"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HmacKey {
    /// State after absorbing `key ⊕ ipad` (one compression).
    inner: Sha256,
    /// State after absorbing `key ⊕ opad` (one compression).
    outer: Sha256,
}

impl HmacKey {
    /// Precomputes the schedule for `key` (any length; long keys are
    /// pre-hashed per RFC 2104).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = crate::sha256::sha256(key);
            k[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacKey { inner, outer }
    }

    /// Starts an incremental MAC from the precomputed states.
    pub fn begin(&self) -> HmacSha256 {
        HmacSha256 {
            inner: self.inner.clone(),
            outer: self.outer.clone(),
        }
    }

    /// One-shot 32-byte tag over `msg`.
    pub fn mac(&self, msg: &[u8]) -> [u8; DIGEST_LEN] {
        let mut h = self.begin();
        h.update(msg);
        h.finalize()
    }

    /// One-shot truncated 96-bit tag (`HMAC-SHA-256-96` style).
    pub fn mac_96(&self, msg: &[u8]) -> [u8; 12] {
        let full = self.mac(msg);
        let mut out = [0u8; 12];
        out.copy_from_slice(&full[..12]);
        out
    }

    /// Finishes an HMAC from an already-computed inner digest with a
    /// single compression — the batch-verify fast path.
    ///
    /// The outer hash of HMAC-SHA-256 always absorbs exactly
    /// `BLOCK_LEN + DIGEST_LEN = 96` bytes: the opad-masked key block
    /// (one compression, precomputed at [`HmacKey::new`]) followed by
    /// the 32-byte inner digest. Its final block therefore has a fixed
    /// layout — digest, `0x80`, zeros, the constant bit length 768 —
    /// so finishing costs one `compress` of a stack template instead of
    /// cloning a hasher and running the buffered `update`/`finalize`
    /// machinery. Identical output to the reference path (see tests).
    pub fn finish_outer(&self, inner_digest: &[u8; DIGEST_LEN]) -> [u8; DIGEST_LEN] {
        let mut block = [0u8; BLOCK_LEN];
        block[..DIGEST_LEN].copy_from_slice(inner_digest);
        block[DIGEST_LEN] = 0x80;
        let bit_len = ((BLOCK_LEN + DIGEST_LEN) as u64) * 8;
        block[BLOCK_LEN - 8..].copy_from_slice(&bit_len.to_be_bytes());
        let mut state = self.outer.state_words();
        crate::sha256::compress_block(&mut state, &block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// The precomputed ipad-absorbed inner state — the starting point
    /// for per-message inner hashes on the batch path.
    pub fn inner_state(&self) -> Sha256 {
        self.inner.clone()
    }

    /// The eight chain-value words after absorbing `key ⊕ ipad` — the
    /// lane seed for the multi-buffer batch verify path.
    pub(crate) fn inner_state_words(&self) -> [u32; 8] {
        self.inner.state_words()
    }

    /// The eight chain-value words after absorbing `key ⊕ opad`.
    pub(crate) fn outer_state_words(&self) -> [u32; 8] {
        self.outer.state_words()
    }

    /// One-shot MAC over the concatenation of `parts` with minimal
    /// bookkeeping: the inner hash runs straight from the precomputed
    /// ipad chain value through a stack block buffer (no hasher clone,
    /// no buffered `update`), and the outer hash is the single
    /// fixed-layout compression of [`HmacKey::finish_outer`]. Identical
    /// output to `mac` over the same bytes — the batch-verify hot path.
    pub fn mac_parts(&self, parts: &[&[u8]]) -> [u8; DIGEST_LEN] {
        let inner = crate::sha256::digest_parts_from_state(
            self.inner.state_words(),
            BLOCK_LEN as u64,
            parts,
        );
        self.finish_outer(&inner)
    }
}

/// Incremental HMAC-SHA-256.
///
/// # Examples
///
/// ```
/// use reset_crypto::{hmac_sha256, to_hex};
///
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     to_hex(&tag),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl HmacSha256 {
    /// Creates an HMAC context for `key` (any length; long keys are
    /// pre-hashed per RFC 2104). For repeated MACs under one key, build
    /// an [`HmacKey`] once and call [`HmacKey::begin`] instead.
    pub fn new(key: &[u8]) -> Self {
        HmacKey::new(key).begin()
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Produces the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA-256.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = HmacSha256::new(key);
    h.update(msg);
    h.finalize()
}

/// Truncated 96-bit tag as used by `HMAC-SHA-256-96` style ESP transforms.
pub fn hmac_sha256_96(key: &[u8], msg: &[u8]) -> [u8; 12] {
    let full = hmac_sha256(key, msg);
    let mut out = [0u8; 12];
    out.copy_from_slice(&full[..12]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::to_hex;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            to_hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2_short_key() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            to_hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_repeated_bytes() {
        let key = [0xaa; 20];
        let msg = [0xdd; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            to_hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_4_combined_key_and_data() {
        let key: Vec<u8> = (0x01..=0x19).collect();
        let msg = [0xcd; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            to_hex(&tag),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case_5_truncated_tag() {
        let key = [0x0c; 20];
        let tag = hmac_sha256_96(&key, b"Test With Truncation");
        // RFC 4231 truncates to 128 bits; our ESP transform keeps 96, a
        // prefix of the same output.
        assert_eq!(to_hex(&tag), "a3b6167473100ee06e0c796c");
    }

    #[test]
    fn rfc4231_case_7_long_key_long_data() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            &b"This is a test using a larger than block-size key and a larger than \
block-size data. The key needs to be hashed before being used by the HMAC algorithm."[..],
        );
        assert_eq!(
            to_hex(&tag),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            to_hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let key = b"secret";
        let msg = b"hello world, this spans updates";
        let mut h = HmacSha256::new(key);
        h.update(&msg[..7]);
        h.update(&msg[7..]);
        assert_eq!(h.finalize(), hmac_sha256(key, msg));
    }

    #[test]
    fn truncated_tag_is_prefix() {
        let t96 = hmac_sha256_96(b"k", b"m");
        let full = hmac_sha256(b"k", b"m");
        assert_eq!(&t96[..], &full[..12]);
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn precomputed_key_matches_oneshot_all_key_lengths() {
        // Short, block-length, and longer-than-block keys all agree with
        // the RFC 2104 reference path.
        for key_len in [0usize, 1, 31, 63, 64, 65, 130] {
            let key: Vec<u8> = (0..key_len).map(|i| i as u8).collect();
            let hk = HmacKey::new(&key);
            for msg_len in [0usize, 1, 12, 55, 64, 200] {
                let msg: Vec<u8> = (0..msg_len).map(|i| (i * 7) as u8).collect();
                assert_eq!(
                    hk.mac(&msg),
                    hmac_sha256(&key, &msg),
                    "key_len {key_len} msg_len {msg_len}"
                );
                assert_eq!(hk.mac_96(&msg), hmac_sha256_96(&key, &msg));
            }
        }
    }

    #[test]
    fn precomputed_key_is_reusable() {
        let hk = HmacKey::new(b"reused");
        let a = hk.mac(b"first");
        let b = hk.mac(b"second");
        let a2 = hk.mac(b"first");
        assert_eq!(a, a2, "state must not be consumed between MACs");
        assert_ne!(a, b);
    }

    #[test]
    fn finish_outer_matches_reference_path() {
        for key_len in [0usize, 1, 16, 64, 65, 131] {
            let key: Vec<u8> = (0..key_len).map(|i| (i * 13) as u8).collect();
            let hk = HmacKey::new(&key);
            for msg_len in [0usize, 1, 12, 55, 64, 200] {
                let msg: Vec<u8> = (0..msg_len).map(|i| (i * 3 + 1) as u8).collect();
                let mut inner = hk.inner_state();
                inner.update(&msg);
                let fast = hk.finish_outer(&inner.finalize());
                assert_eq!(fast, hk.mac(&msg), "key_len {key_len} msg_len {msg_len}");
            }
        }
    }

    #[test]
    fn mac_parts_matches_reference_path() {
        let hk = HmacKey::new(b"parts-key");
        for msg_len in [0usize, 1, 12, 51, 52, 55, 64, 76, 119, 120, 300] {
            let msg: Vec<u8> = (0..msg_len).map(|i| (i * 7 + 3) as u8).collect();
            for split in [0usize, msg_len / 3, msg_len / 2, msg_len] {
                let parts: [&[u8]; 2] = [&msg[..split], &msg[split..]];
                assert_eq!(
                    hk.mac_parts(&parts),
                    hk.mac(&msg),
                    "msg_len {msg_len} split {split}"
                );
            }
            assert_eq!(hk.mac_parts(&[&msg]), hk.mac(&msg));
        }
        assert_eq!(hk.mac_parts(&[]), hk.mac(b""));
    }

    #[test]
    fn begin_supports_multi_part_messages() {
        let hk = HmacKey::new(b"k");
        let mut h = hk.begin();
        h.update(b"part one | ");
        h.update(b"part two");
        assert_eq!(h.finalize(), hk.mac(b"part one | part two"));
    }
}

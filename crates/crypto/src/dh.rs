//! Diffie–Hellman over the OAKLEY groups (RFC 2412), for the IKE baseline.
//!
//! The paper's cost argument compares rescuing an SA with SAVE/FETCH
//! against the IETF remedy of renegotiating the whole SA — whose dominant
//! cost is these modular exponentiations. The primes below are the actual
//! OAKLEY "Well-Known Group" moduli cited by the paper's reference [9].

use crate::bignum::BigUint;

/// A Diffie–Hellman group (prime modulus + generator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhGroup {
    /// Human-readable name.
    pub name: &'static str,
    /// Prime modulus.
    pub prime: BigUint,
    /// Generator.
    pub generator: BigUint,
}

/// OAKLEY Well-Known Group 1 (768-bit MODP, RFC 2412 §E.1).
pub fn oakley_group1() -> DhGroup {
    DhGroup {
        name: "oakley-group-1-768",
        prime: BigUint::from_hex(
            "FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1
             29024E08 8A67CC74 020BBEA6 3B139B22 514A0879 8E3404DD
             EF9519B3 CD3A431B 302B0A6D F25F1437 4FE1356D 6D51C245
             E485B576 625E7EC6 F44C42E9 A63A3620 FFFFFFFF FFFFFFFF",
        ),
        generator: BigUint::from_u64(2),
    }
}

/// OAKLEY Well-Known Group 2 (1024-bit MODP, RFC 2412 §E.2).
pub fn oakley_group2() -> DhGroup {
    DhGroup {
        name: "oakley-group-2-1024",
        prime: BigUint::from_hex(
            "FFFFFFFF FFFFFFFF C90FDAA2 2168C234 C4C6628B 80DC1CD1
             29024E08 8A67CC74 020BBEA6 3B139B22 514A0879 8E3404DD
             EF9519B3 CD3A431B 302B0A6D F25F1437 4FE1356D 6D51C245
             E485B576 625E7EC6 F44C42E9 A637ED6B 0BFF5CB6 F406B7ED
             EE386BFB 5A899FA5 AE9F2411 7C4B1FE6 49286651 ECE65381
             FFFFFFFF FFFFFFFF",
        ),
        generator: BigUint::from_u64(2),
    }
}

/// A tiny 64-bit group for fast unit tests. **Not secure** — exists so the
/// protocol logic can be exercised cheaply; experiments that measure cost
/// use the real OAKLEY groups.
pub fn toy_group() -> DhGroup {
    DhGroup {
        name: "toy-64",
        prime: BigUint::from_hex("ffffffffffffffc5"), // 2^64 - 59
        generator: BigUint::from_u64(2),
    }
}

/// One side's ephemeral DH state.
#[derive(Debug, Clone)]
pub struct DhKeyPair {
    group: DhGroup,
    private: BigUint,
    public: BigUint,
}

impl DhKeyPair {
    /// Generates a key pair from caller-supplied secret bytes (the caller
    /// owns the RNG; determinism stays in the simulation's hands).
    ///
    /// # Panics
    ///
    /// Panics if `secret` is empty or reduces to 0 or 1 modulo the group
    /// prime (probability ~2^-bits for real groups; tests use fixed
    /// secrets).
    pub fn from_secret(group: DhGroup, secret: &[u8]) -> Self {
        assert!(!secret.is_empty(), "empty DH secret");
        let private = BigUint::from_be_bytes(secret).rem(&group.prime);
        assert!(
            private > BigUint::one(),
            "degenerate DH secret (0 or 1 mod p)"
        );
        let public = group.generator.mod_pow(&private, &group.prime);
        DhKeyPair {
            group,
            private,
            public,
        }
    }

    /// This side's public value `g^x mod p`.
    pub fn public(&self) -> &BigUint {
        &self.public
    }

    /// The group in use.
    pub fn group(&self) -> &DhGroup {
        &self.group
    }

    /// Computes the shared secret `other_pub^x mod p` as big-endian bytes.
    pub fn shared_secret(&self, other_pub: &BigUint) -> Vec<u8> {
        other_pub
            .mod_pow(&self.private, &self.group.prime)
            .to_be_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_group_agreement() {
        let g = toy_group();
        let alice = DhKeyPair::from_secret(g.clone(), b"alice-secret-bytes");
        let bob = DhKeyPair::from_secret(g, b"bob-secret-bytes!!");
        let s1 = alice.shared_secret(bob.public());
        let s2 = bob.shared_secret(alice.public());
        assert_eq!(s1, s2);
        assert!(!s1.is_empty());
    }

    #[test]
    fn group1_prime_shape() {
        let g = oakley_group1();
        assert_eq!(g.prime.bits(), 768);
        // RFC 2412: both ends of the prime are all-ones words.
        let bytes = g.prime.to_be_bytes();
        assert_eq!(&bytes[..8], &[0xff; 8]);
        assert_eq!(&bytes[bytes.len() - 8..], &[0xff; 8]);
    }

    #[test]
    fn group2_prime_shape() {
        let g = oakley_group2();
        assert_eq!(g.prime.bits(), 1024);
    }

    #[test]
    fn group1_agreement() {
        // One full-size exchange to pin the real-group path (slow-ish but
        // bounded: four 768-bit modexps).
        let g = oakley_group1();
        let a = DhKeyPair::from_secret(g.clone(), &[0x42; 24]);
        let b = DhKeyPair::from_secret(g, &[0x17; 24]);
        assert_eq!(a.shared_secret(b.public()), b.shared_secret(a.public()));
    }

    #[test]
    fn public_value_nontrivial() {
        let g = toy_group();
        let kp = DhKeyPair::from_secret(g, b"some secret");
        assert!(kp.public() > &BigUint::one());
    }

    #[test]
    #[should_panic(expected = "empty DH secret")]
    fn empty_secret_panics() {
        let _ = DhKeyPair::from_secret(toy_group(), b"");
    }

    #[test]
    fn distinct_secrets_distinct_publics() {
        let g = toy_group();
        let a = DhKeyPair::from_secret(g.clone(), b"secret-a");
        let b = DhKeyPair::from_secret(g, b"secret-b");
        assert_ne!(a.public(), b.public());
    }
}

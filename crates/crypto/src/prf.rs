//! Key derivation: an HMAC-based PRF+ expansion (in the style of
//! ISAKMP/IKE SKEYID derivation) and a keystream generator used as the
//! ESP confidentiality transform in the simulation.

use crate::hmac::{HmacKey, HmacSha256};

/// Expands `(key, seed)` into `out_len` pseudorandom bytes:
/// `T1 = HMAC(key, seed || 0x01)`, `Tn = HMAC(key, T(n-1) || seed || n)`.
///
/// # Examples
///
/// ```
/// use reset_crypto::prf_plus;
///
/// let k1 = prf_plus(b"skeyid", b"sa-keys", 32);
/// let k2 = prf_plus(b"skeyid", b"sa-keys", 32);
/// assert_eq!(k1, k2);           // deterministic
/// assert_eq!(k1.len(), 32);
/// assert_ne!(k1, prf_plus(b"skeyid", b"other", 32));
/// ```
///
/// # Panics
///
/// Panics if `out_len` would require more than 255 blocks (8160 bytes),
/// mirroring the RFC 4306 PRF+ bound.
pub fn prf_plus(key: &[u8], seed: &[u8], out_len: usize) -> Vec<u8> {
    assert!(out_len <= 255 * 32, "prf+ output too long");
    let mut out = Vec::with_capacity(out_len);
    let mut prev: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < out_len {
        let mut h = HmacSha256::new(key);
        h.update(&prev);
        h.update(seed);
        h.update(&[counter]);
        let t = h.finalize();
        let take = (out_len - out.len()).min(t.len());
        out.extend_from_slice(&t[..take]);
        prev = t.to_vec();
        counter = counter.checked_add(1).expect("prf+ counter overflow");
    }
    out
}

/// XORs `data` with a keystream derived from `(key, nonce)` — a CTR-style
/// stream built on HMAC blocks. Encryption and decryption are the same
/// operation. This stands in for the paper's unspecified ESP cipher; the
/// anti-replay analysis never depends on the cipher's identity, only on
/// packets being unforgeable (ICV) and confidential-looking.
///
/// # Examples
///
/// ```
/// use reset_crypto::xor_keystream;
///
/// let mut buf = b"attack at dawn".to_vec();
/// xor_keystream(b"key", 7, &mut buf);
/// assert_ne!(&buf, b"attack at dawn");
/// xor_keystream(b"key", 7, &mut buf);
/// assert_eq!(&buf, b"attack at dawn");
/// ```
pub fn xor_keystream(key: &[u8], nonce: u64, data: &mut [u8]) {
    xor_keystream_with(&HmacKey::new(key), nonce, data);
}

/// [`xor_keystream`] with a precomputed [`HmacKey`]: the datapath form.
/// The naive form reruns the HMAC key schedule for every 32-byte
/// keystream block; an SA holds the schedule once and pays only the
/// message compressions per block. The generated keystream is identical.
pub fn xor_keystream_with(key: &HmacKey, nonce: u64, data: &mut [u8]) {
    let mut block_index = 0u64;
    let mut offset = 0usize;
    while offset < data.len() {
        let mut msg = [0u8; 16];
        msg[..8].copy_from_slice(&nonce.to_be_bytes());
        msg[8..].copy_from_slice(&block_index.to_be_bytes());
        let ks = key.mac(&msg);
        let take = (data.len() - offset).min(ks.len());
        for i in 0..take {
            data[offset + i] ^= ks[i];
        }
        offset += take;
        block_index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prf_plus_lengths() {
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            assert_eq!(prf_plus(b"k", b"s", len).len(), len);
        }
    }

    #[test]
    fn prf_plus_prefix_consistency() {
        // Requesting more output extends, never rewrites, the prefix.
        let short = prf_plus(b"k", b"s", 16);
        let long = prf_plus(b"k", b"s", 64);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    fn prf_plus_key_and_seed_sensitivity() {
        let base = prf_plus(b"k", b"s", 32);
        assert_ne!(base, prf_plus(b"K", b"s", 32));
        assert_ne!(base, prf_plus(b"k", b"S", 32));
    }

    #[test]
    #[should_panic(expected = "too long")]
    fn prf_plus_overlong_panics() {
        let _ = prf_plus(b"k", b"s", 255 * 32 + 1);
    }

    #[test]
    fn keystream_round_trips() {
        let mut data: Vec<u8> = (0..200u8).collect();
        let orig = data.clone();
        xor_keystream(b"key", 42, &mut data);
        assert_ne!(data, orig);
        xor_keystream(b"key", 42, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn keystream_nonce_sensitivity() {
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        xor_keystream(b"key", 1, &mut a);
        xor_keystream(b"key", 2, &mut b);
        assert_ne!(a, b, "different nonces must give different streams");
    }

    #[test]
    fn keystream_empty_is_noop() {
        let mut empty: Vec<u8> = Vec::new();
        xor_keystream(b"key", 0, &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn keyed_keystream_matches_naive() {
        let hk = HmacKey::new(b"stream-key");
        for len in [0usize, 1, 31, 32, 33, 64, 200] {
            let mut a: Vec<u8> = (0..len as u8).collect();
            let mut b = a.clone();
            xor_keystream(b"stream-key", 99, &mut a);
            xor_keystream_with(&hk, 99, &mut b);
            assert_eq!(a, b, "len {len}");
        }
    }

    #[test]
    fn keystream_cross_block_boundary() {
        // 33 bytes spans two HMAC blocks; decrypting in two chunks with the
        // same nonce must still work because blocks are position-based.
        let mut whole = vec![0xAAu8; 70];
        let orig = whole.clone();
        xor_keystream(b"key", 9, &mut whole);
        xor_keystream(b"key", 9, &mut whole);
        assert_eq!(whole, orig);
    }
}

//! The pluggable cipher-suite layer: one trait over seal/open that the
//! wire codec and the SA datapath program against.
//!
//! A [`CipherSuite`] bundles everything suite-specific about an ESP
//! transform — key/IV/ICV lengths, the confidentiality transform, the
//! integrity tag, and (optionally) an amortized batch verifier. Two
//! in-repo implementations exist:
//!
//! * [`HmacSha256Suite`] — the legacy transform: HMAC-SHA-256-96 ICV
//!   plus the HMAC-CTR keystream (or null encryption for the auth-only
//!   configuration). Wire-compatible with the pre-suite codec, and the
//!   only suite with a specialized [`CipherSuite::verify_batch`].
//! * [`ChaCha20Poly1305Suite`] — the first real AEAD: RFC 8439
//!   ChaCha20 encryption with a Poly1305 tag over the ESP header (and
//!   implicit ESN high half) as AAD.
//!
//! Per-packet nonces are derived from the 64-bit sequence number, which
//! IPsec guarantees unique per SA per direction, so neither suite
//! carries an explicit IV on the wire ([`CipherSuite::iv_len`] is 0);
//! the frame layout nevertheless honours non-zero IV lengths.
//!
//! # The backend model
//!
//! Both suites run their bulk primitives — ChaCha20 block generation and
//! SHA-256 compression — through a [`Backend`] fixed **once at suite
//! construction** and never re-probed on the datapath:
//!
//! * [`Backend::Scalar`] — one stream at a time, pure safe Rust; the
//!   reference implementation.
//! * [`Backend::Lanes4`] — 4 interleaved lanes (SSE2 on x86_64, a
//!   portable manual-lane fallback elsewhere).
//! * [`Backend::Avx2`] — 8 interleaved lanes (x86_64 with runtime-
//!   detected AVX2 only).
//!
//! The auto-selecting constructors ([`ChaCha20Poly1305Suite::new`],
//! [`HmacSha256Suite::with_keystream`], …) pick a backend in this order:
//!
//! 1. the `RESET_CRYPTO_BACKEND` environment variable, when it names a
//!    backend this host supports (`scalar` / `lanes4` / `avx2`) — the
//!    CI determinism knob;
//! 2. runtime feature detection — AVX2 if the CPU has it, else 4-lane;
//! 3. scalar, unconditionally, everywhere else.
//!
//! **The scalar path is the oracle.** A backend may only change how many
//! packets (or blocks) one pass computes, never an output byte: every
//! ICV verdict, tag, ciphertext, and plaintext must be byte-identical
//! across backends. The per-lane kernel KATs in `crate::lanes`, the
//! existing suite KATs re-run per backend, and the randomized 10k-frame
//! differential in `tests/backend_differential.rs` enforce this for
//! every backend the host supports.
//!
//! Forcing a backend (tests, benches, the differential oracle) bypasses
//! selection entirely:
//!
//! ```
//! use reset_crypto::{Backend, ChaCha20Poly1305Suite, CipherSuite};
//!
//! let key = [7u8; 32];
//! // The scalar oracle, regardless of host features or environment:
//! let oracle = ChaCha20Poly1305Suite::new(key).with_backend(Backend::Scalar);
//! assert_eq!(oracle.backend(), Backend::Scalar);
//! // The strongest backend this host supports (panics if forced to an
//! // unsupported one, so probe with `Backend::is_supported` first):
//! let best = Backend::ALL.into_iter().rev().find(|b| b.is_supported()).unwrap();
//! let fast = ChaCha20Poly1305Suite::new(key).with_backend(best);
//!
//! let mut a = *b"one hundred and twenty-eight bytes of payload ..........";
//! let mut b = a;
//! oracle.encrypt(5, &mut a);
//! fast.encrypt(5, &mut b);
//! assert_eq!(a, b, "backends are byte-identical");
//! ```

use crate::aead::{chacha20_poly1305_tag, poly1305_aead_tag, AEAD_TAG_LEN};
use crate::backend::Backend;
use crate::chacha::{CHACHA_KEY_LEN, CHACHA_NONCE_LEN};
use crate::ct::ct_eq;
use crate::hmac::HmacKey;
use crate::lanes::{
    chacha20_xor_backend, chacha20_xor_jobs, chacha_blocks, sha256_multiway, MAX_LANES,
};
use crate::prf::xor_keystream_with;
use crate::sha256::{BLOCK_LEN, DIGEST_LEN};
use core::ops::Range;
use std::collections::BTreeMap;

/// The largest ICV any in-repo suite emits (the Poly1305 tag).
pub const MAX_ICV_LEN: usize = 16;

/// The largest explicit IV the wire codec will stage on the stack.
pub const MAX_IV_LEN: usize = 16;

/// An integrity check value as produced by a suite: a fixed-capacity
/// inline buffer, so the datapath never allocates for tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Icv {
    len: usize,
    bytes: [u8; MAX_ICV_LEN],
}

impl Icv {
    /// Wraps `tag` (at most [`MAX_ICV_LEN`] bytes).
    ///
    /// # Panics
    ///
    /// Panics if `tag` exceeds the inline capacity.
    pub fn new(tag: &[u8]) -> Self {
        assert!(tag.len() <= MAX_ICV_LEN, "ICV too long");
        let mut bytes = [0u8; MAX_ICV_LEN];
        bytes[..tag.len()].copy_from_slice(tag);
        Icv {
            len: tag.len(),
            bytes,
        }
    }
}

impl std::ops::Deref for Icv {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.bytes[..self.len]
    }
}

/// One parsed frame submitted to [`CipherSuite::verify`] /
/// [`CipherSuite::verify_batch`]: the authenticated regions plus the
/// ICV to compare against. All slices borrow from the wire buffer.
#[derive(Debug, Clone, Copy)]
pub struct FrameToVerify<'a> {
    /// Full 64-bit sequence number (nonce input for AEAD suites).
    pub seq: u64,
    /// The ESP header bytes (SPI, low sequence, length).
    pub header: &'a [u8],
    /// The (still-encrypted) payload bytes.
    pub ciphertext: &'a [u8],
    /// ESN high half when the SA runs extended sequence numbers; it is
    /// authenticated as if appended to the packet (RFC 4304).
    pub esn_hi: Option<u32>,
    /// The ICV carried on the wire.
    pub icv: &'a [u8],
}

/// A pluggable ESP transform: confidentiality + integrity + layout
/// metadata, dispatched dynamically by the wire codec and the SA.
///
/// # Adding a suite
///
/// Implement the trait (see `crates/crypto/src/suite.rs` for the two
/// in-repo examples), give [`crate::CipherSuite::icv_len`] its tag
/// size, and wire an enum variant + key derivation into
/// `reset_ipsec::CryptoSuite`. The known-answer and differential tests
/// in `crates/crypto` and `tests/it_suites.rs` are the gate: a new
/// suite needs published vectors for its primitives and a
/// batch-vs-sequential differential run before the datapath may use it.
pub trait CipherSuite {
    /// Human-readable suite name (reports, benches).
    fn name(&self) -> &'static str;

    /// Bytes of key material the suite consumes.
    fn key_len(&self) -> usize;

    /// Explicit per-packet IV bytes carried on the wire (0 for both
    /// in-repo suites: their nonces derive from the sequence number).
    fn iv_len(&self) -> usize {
        0
    }

    /// ICV/tag bytes appended to each frame.
    fn icv_len(&self) -> usize;

    /// Writes the explicit per-packet IV (only called when
    /// [`CipherSuite::iv_len`] is non-zero; `iv` has exactly that
    /// length, at most [`MAX_IV_LEN`]). The default derives the IV from
    /// the sequence number, big-endian in the trailing bytes — the
    /// counter-style explicit IV shape.
    fn fill_iv(&self, seq: u64, iv: &mut [u8]) {
        let n = iv.len().min(8);
        let start = iv.len() - n;
        iv[..start].fill(0);
        iv[start..].copy_from_slice(&seq.to_be_bytes()[8 - n..]);
    }

    /// Whether the payload is encrypted on the wire (false for
    /// auth-only / null-encryption configurations, enabling zero-copy
    /// delivery).
    fn encrypts(&self) -> bool;

    /// Encrypts `body` in place for sequence number `seq`.
    fn encrypt(&self, seq: u64, body: &mut [u8]);

    /// Decrypts `body` in place. Callers must have verified the ICV
    /// first (RFC 2406 order: authenticate, then window, then decrypt).
    fn decrypt(&self, seq: u64, body: &mut [u8]);

    /// Computes the ICV over `header ‖ ciphertext ‖ esn_hi?`.
    fn icv(&self, seq: u64, header: &[u8], ciphertext: &[u8], esn_hi: Option<u32>) -> Icv;

    /// Constant-time ICV check for one frame.
    fn verify(&self, frame: &FrameToVerify<'_>) -> bool {
        frame.icv.len() == self.icv_len()
            && ct_eq(
                frame.icv,
                &self.icv(frame.seq, frame.header, frame.ciphertext, frame.esn_hi),
            )
    }

    /// Verifies a whole batch of frames for one SA, appending one
    /// verdict per frame to `ok` (cleared first). Equivalent to calling
    /// [`CipherSuite::verify`] per frame — suites override this only to
    /// amortize, never to change results (differential-tested in
    /// `tests/it_suites.rs`).
    fn verify_batch(&self, frames: &[FrameToVerify<'_>], ok: &mut Vec<bool>) {
        ok.clear();
        ok.extend(frames.iter().map(|f| self.verify(f)));
    }

    /// Decrypts several already-verified frames that share one arena
    /// buffer: each job is `(seq, byte range)` and the ranges are
    /// disjoint. Equivalent to calling [`CipherSuite::decrypt`] per job
    /// — suites override this only to amortize (e.g. filling SIMD lanes
    /// with blocks from *different* packets), never to change results.
    fn decrypt_batch(&self, buf: &mut [u8], jobs: &[(u64, Range<usize>)]) {
        for (seq, range) in jobs {
            self.decrypt(*seq, &mut buf[range.clone()]);
        }
    }
}

/// ICV length of [`HmacSha256Suite`] (HMAC-SHA-256 truncated to 96
/// bits, the classic ESP transform).
pub const HMAC_ICV_LEN: usize = 12;

/// The legacy suite: HMAC-SHA-256-96 integrity with the HMAC-CTR
/// keystream confidentiality transform, or null encryption when built
/// [`HmacSha256Suite::auth_only`]. Byte-compatible with the pre-suite
/// wire codec.
///
/// # Examples
///
/// ```
/// use reset_crypto::{CipherSuite, HmacSha256Suite};
///
/// let suite = HmacSha256Suite::with_keystream(b"auth-key", b"enc-key");
/// let mut body = *b"secret";
/// suite.encrypt(7, &mut body);
/// let icv = suite.icv(7, b"header", &body, None);
/// assert_eq!(icv.len(), suite.icv_len());
/// suite.decrypt(7, &mut body);
/// assert_eq!(&body, b"secret");
/// ```
#[derive(Debug, Clone)]
pub struct HmacSha256Suite {
    auth: HmacKey,
    enc: Option<HmacKey>,
    backend: Backend,
}

/// Equality is over the key material only: the backend changes how the
/// bytes are computed, never what they are, so two suites that differ
/// only in backend are interchangeable.
impl PartialEq for HmacSha256Suite {
    fn eq(&self, other: &Self) -> bool {
        self.auth == other.auth && self.enc == other.enc
    }
}

impl Eq for HmacSha256Suite {}

impl HmacSha256Suite {
    /// Integrity + keystream confidentiality (the default transform).
    /// The backend is auto-selected (see [`Backend::select`]).
    pub fn with_keystream(auth_key: &[u8], enc_key: &[u8]) -> Self {
        HmacSha256Suite {
            auth: HmacKey::new(auth_key),
            enc: Some(HmacKey::new(enc_key)),
            backend: Backend::select(),
        }
    }

    /// Integrity only (ESP with null encryption, RFC 2410 style).
    /// The backend is auto-selected (see [`Backend::select`]).
    pub fn auth_only(auth_key: &[u8]) -> Self {
        HmacSha256Suite {
            auth: HmacKey::new(auth_key),
            enc: None,
            backend: Backend::select(),
        }
    }

    /// Forces a specific backend, bypassing auto-selection — tests,
    /// benches, and the scalar differential oracle use this.
    ///
    /// # Panics
    ///
    /// Panics if this host cannot run `backend`
    /// ([`Backend::is_supported`]).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        assert!(
            backend.is_supported(),
            "backend {backend} is not supported on this host"
        );
        self.backend = backend;
        self
    }

    /// The backend this suite computes its bulk primitives with.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The precomputed authentication key schedule (legacy-codec
    /// interop and benches).
    pub fn auth_key(&self) -> &HmacKey {
        &self.auth
    }

    /// The precomputed encryption key schedule, when the suite encrypts.
    pub fn enc_key(&self) -> Option<&HmacKey> {
        self.enc.as_ref()
    }

    fn tag(&self, header: &[u8], ciphertext: &[u8], esn_hi: Option<u32>) -> [u8; DIGEST_LEN] {
        let mut h = self.auth.begin();
        h.update(header);
        h.update(ciphertext);
        if let Some(hi) = esn_hi {
            h.update(&hi.to_be_bytes());
        }
        h.finalize()
    }

    /// The scalar amortized verify ([`HmacKey::mac_parts`]): the fallback
    /// for partial lane groups on the multi-buffer path, and the whole
    /// batch path on [`Backend::Scalar`].
    fn verify_frame_amortized(&self, f: &FrameToVerify<'_>) -> bool {
        let full = match f.esn_hi {
            Some(hi) => self
                .auth
                .mac_parts(&[f.header, f.ciphertext, &hi.to_be_bytes()]),
            None => self.auth.mac_parts(&[f.header, f.ciphertext]),
        };
        f.icv.len() == HMAC_ICV_LEN && ct_eq(f.icv, &full[..HMAC_ICV_LEN])
    }

    /// Multi-buffer batch verify: frames are bucketed by inner padded
    /// block count so full lane groups compress in lockstep through
    /// [`sha256_multiway`]; the outer hash is always the one
    /// fixed-layout block of [`HmacKey::finish_outer`], so it lanes
    /// perfectly. Partial groups fall back to the scalar amortized path
    /// — byte-identical either way.
    fn verify_batch_multiway(&self, frames: &[FrameToVerify<'_>], ok: &mut Vec<bool>) {
        let lanes = self.backend.lanes();
        ok.resize(frames.len(), false);
        let mut buckets: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, f) in frames.iter().enumerate() {
            let msg_len =
                f.header.len() + f.ciphertext.len() + if f.esn_hi.is_some() { 4 } else { 0 };
            buckets
                .entry((msg_len + 9).div_ceil(64))
                .or_default()
                .push(i);
        }
        let mut states = [[0u32; 8]; MAX_LANES];
        let mut blocks = [[0u8; 64]; MAX_LANES];
        let mut esn_bytes = [[0u8; 4]; MAX_LANES];
        for (nblocks, idxs) in &buckets {
            for chunk in idxs.chunks(lanes) {
                if chunk.len() < lanes {
                    for &i in chunk {
                        ok[i] = self.verify_frame_amortized(&frames[i]);
                    }
                    continue;
                }
                for (l, &i) in chunk.iter().enumerate() {
                    states[l] = self.auth.inner_state_words();
                    if let Some(hi) = frames[i].esn_hi {
                        esn_bytes[l] = hi.to_be_bytes();
                    }
                }
                for b in 0..*nblocks {
                    for (l, &i) in chunk.iter().enumerate() {
                        let f = &frames[i];
                        let esn: &[u8] = match f.esn_hi {
                            Some(_) => &esn_bytes[l],
                            None => &[],
                        };
                        fill_padded_block(&[f.header, f.ciphertext, esn], b, &mut blocks[l]);
                    }
                    sha256_multiway(self.backend, &mut states[..lanes], &blocks[..lanes]);
                }
                // Outer hash: digest ‖ 0x80 ‖ zeros ‖ bit length 768,
                // one compression per lane from the opad state.
                for l in 0..lanes {
                    let mut block = [0u8; BLOCK_LEN];
                    for (j, w) in states[l].iter().enumerate() {
                        block[j * 4..j * 4 + 4].copy_from_slice(&w.to_be_bytes());
                    }
                    block[DIGEST_LEN] = 0x80;
                    let bit_len = ((BLOCK_LEN + DIGEST_LEN) as u64) * 8;
                    block[BLOCK_LEN - 8..].copy_from_slice(&bit_len.to_be_bytes());
                    blocks[l] = block;
                    states[l] = self.auth.outer_state_words();
                }
                sha256_multiway(self.backend, &mut states[..lanes], &blocks[..lanes]);
                for (l, &i) in chunk.iter().enumerate() {
                    let mut full = [0u8; DIGEST_LEN];
                    for (j, w) in states[l].iter().enumerate() {
                        full[j * 4..j * 4 + 4].copy_from_slice(&w.to_be_bytes());
                    }
                    let f = &frames[i];
                    ok[i] = f.icv.len() == HMAC_ICV_LEN && ct_eq(f.icv, &full[..HMAC_ICV_LEN]);
                }
            }
        }
    }
}

/// Materializes 64-byte block `block_idx` of the SHA-256 padded stream
/// for a message given as concatenated `parts`, as absorbed *after* one
/// already-compressed key block (HMAC's ipad prefix): padding is `0x80`,
/// zeros, then the 64-bit bit length of `BLOCK_LEN + message`.
fn fill_padded_block(parts: &[&[u8]], block_idx: usize, out: &mut [u8; BLOCK_LEN]) {
    out.fill(0);
    let start = block_idx * BLOCK_LEN;
    let end = start + BLOCK_LEN;
    let mut off = 0usize;
    for p in parts {
        let p_end = off + p.len();
        if p_end > start && off < end {
            let s = start.max(off);
            let e = end.min(p_end);
            out[s - start..e - start].copy_from_slice(&p[s - off..e - off]);
        }
        off = p_end;
    }
    if (start..end).contains(&off) {
        out[off - start] = 0x80;
    }
    let padded_len = (off + 9).div_ceil(BLOCK_LEN) * BLOCK_LEN;
    let bits = ((BLOCK_LEN + off) as u64) * 8;
    for (k, &bb) in bits.to_be_bytes().iter().enumerate() {
        let pos = padded_len - 8 + k;
        if pos >= start && pos < end {
            out[pos - start] = bb;
        }
    }
}

impl CipherSuite for HmacSha256Suite {
    fn name(&self) -> &'static str {
        if self.enc.is_some() {
            "hmac-sha256-keystream"
        } else {
            "hmac-sha256-auth-only"
        }
    }

    fn key_len(&self) -> usize {
        if self.enc.is_some() {
            64
        } else {
            32
        }
    }

    fn icv_len(&self) -> usize {
        HMAC_ICV_LEN
    }

    fn encrypts(&self) -> bool {
        self.enc.is_some()
    }

    fn encrypt(&self, seq: u64, body: &mut [u8]) {
        if let Some(enc) = &self.enc {
            xor_keystream_with(enc, seq, body);
        }
    }

    fn decrypt(&self, seq: u64, body: &mut [u8]) {
        // The keystream is an involution.
        self.encrypt(seq, body);
    }

    fn icv(&self, _seq: u64, header: &[u8], ciphertext: &[u8], esn_hi: Option<u32>) -> Icv {
        Icv::new(&self.tag(header, ciphertext, esn_hi)[..HMAC_ICV_LEN])
    }

    /// The amortized batch path. On [`Backend::Scalar`] it is built on
    /// [`HmacKey::mac_parts`]: every frame's inner hash resumes straight
    /// from the one precomputed ipad chain value through a stack block
    /// buffer, and the outer hash is the single fixed-layout compression
    /// of [`HmacKey::finish_outer`]. On SIMD backends, frames with equal
    /// inner block counts additionally compress
    /// [`Backend::lanes`]-at-a-time through the multi-buffer SHA-256
    /// kernel (partial lane groups stay on the scalar path). The
    /// sequential [`CipherSuite::verify`] deliberately stays on the
    /// independent reference path (`begin`/`update`/`finalize`), so the
    /// differential tests compare genuinely distinct implementations.
    fn verify_batch(&self, frames: &[FrameToVerify<'_>], ok: &mut Vec<bool>) {
        ok.clear();
        if self.backend != Backend::Scalar && frames.len() >= self.backend.lanes() {
            self.verify_batch_multiway(frames, ok);
            return;
        }
        ok.reserve(frames.len());
        for f in frames {
            ok.push(self.verify_frame_amortized(f));
        }
    }
}

/// The ChaCha20-Poly1305 AEAD suite (RFC 8439): ChaCha20 keystream from
/// block counter 1, Poly1305 tag keyed from block 0, ESP header (and
/// ESN high half) as AAD. The per-packet nonce is the 64-bit sequence
/// number big-endian in the low 8 nonce bytes.
///
/// # Examples
///
/// ```
/// use reset_crypto::{ChaCha20Poly1305Suite, CipherSuite};
///
/// let suite = ChaCha20Poly1305Suite::new([7u8; 32]);
/// assert_eq!(suite.icv_len(), 16);
/// let mut body = *b"secret";
/// suite.encrypt(1, &mut body);
/// let icv = suite.icv(1, b"hdr", &body, None);
/// assert!(suite.verify(&reset_crypto::FrameToVerify {
///     seq: 1,
///     header: b"hdr",
///     ciphertext: &body,
///     esn_hi: None,
///     icv: &icv,
/// }));
/// ```
#[derive(Debug, Clone)]
pub struct ChaCha20Poly1305Suite {
    key: [u8; CHACHA_KEY_LEN],
    backend: Backend,
}

/// Equality is over the key only — the backend changes how the bytes
/// are computed, never what they are.
impl PartialEq for ChaCha20Poly1305Suite {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for ChaCha20Poly1305Suite {}

impl ChaCha20Poly1305Suite {
    /// A suite over the 256-bit cipher key. The backend is
    /// auto-selected (see [`Backend::select`]).
    pub fn new(key: [u8; CHACHA_KEY_LEN]) -> Self {
        ChaCha20Poly1305Suite {
            key,
            backend: Backend::select(),
        }
    }

    /// Builds from derived key material (first 32 bytes). The backend is
    /// auto-selected (see [`Backend::select`]).
    ///
    /// # Panics
    ///
    /// Panics if `material` holds fewer than 32 bytes.
    pub fn from_material(material: &[u8]) -> Self {
        assert!(
            material.len() >= CHACHA_KEY_LEN,
            "chacha20-poly1305 needs 32 key bytes"
        );
        let mut key = [0u8; CHACHA_KEY_LEN];
        key.copy_from_slice(&material[..CHACHA_KEY_LEN]);
        ChaCha20Poly1305Suite::new(key)
    }

    /// Forces a specific backend, bypassing auto-selection — tests,
    /// benches, and the scalar differential oracle use this.
    ///
    /// # Panics
    ///
    /// Panics if this host cannot run `backend`
    /// ([`Backend::is_supported`]).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        assert!(
            backend.is_supported(),
            "backend {backend} is not supported on this host"
        );
        self.backend = backend;
        self
    }

    /// The backend this suite computes its bulk primitives with.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    fn nonce(seq: u64) -> [u8; CHACHA_NONCE_LEN] {
        let mut n = [0u8; CHACHA_NONCE_LEN];
        n[4..].copy_from_slice(&seq.to_be_bytes());
        n
    }

    /// Poly1305 over the RFC 8439 AEAD layout, given a lane-computed
    /// one-time key.
    fn verify_with_otk(&self, f: &FrameToVerify<'_>, otk: &[u8; 32]) -> bool {
        let tag = match f.esn_hi {
            Some(hi) => {
                let hi = hi.to_be_bytes();
                poly1305_aead_tag(otk, &[f.header, &hi], f.ciphertext)
            }
            None => poly1305_aead_tag(otk, &[f.header], f.ciphertext),
        };
        f.icv.len() == AEAD_TAG_LEN && ct_eq(f.icv, &tag)
    }
}

impl CipherSuite for ChaCha20Poly1305Suite {
    fn name(&self) -> &'static str {
        "chacha20-poly1305"
    }

    fn key_len(&self) -> usize {
        CHACHA_KEY_LEN
    }

    fn icv_len(&self) -> usize {
        AEAD_TAG_LEN
    }

    fn encrypts(&self) -> bool {
        true
    }

    fn encrypt(&self, seq: u64, body: &mut [u8]) {
        // Large payloads fill the lanes with this packet's sequential
        // block counters (the same-key multi-block mode); on
        // `Backend::Scalar` this is exactly `chacha20_xor`.
        chacha20_xor_backend(self.backend, &self.key, 1, &Self::nonce(seq), body);
    }

    fn decrypt(&self, seq: u64, body: &mut [u8]) {
        // Counter-mode: decryption is the same keystream XOR.
        self.encrypt(seq, body);
    }

    fn icv(&self, seq: u64, header: &[u8], ciphertext: &[u8], esn_hi: Option<u32>) -> Icv {
        let nonce = Self::nonce(seq);
        let tag = match esn_hi {
            Some(hi) => {
                let hi = hi.to_be_bytes();
                chacha20_poly1305_tag(&self.key, &nonce, &[header, &hi], ciphertext)
            }
            None => chacha20_poly1305_tag(&self.key, &nonce, &[header], ciphertext),
        };
        Icv::new(&tag)
    }

    /// The laned batch verify: every frame needs one ChaCha20 block at
    /// counter 0 (the Poly1305 one-time key), and those blocks differ
    /// only in their seq-derived nonces — exactly the shape the
    /// interleaved kernel wants. Full lane groups compute their OTKs in
    /// one pass; the Poly1305 tag itself stays scalar per frame, as does
    /// any partial tail group. On [`Backend::Scalar`] this is the trait
    /// default (per-frame [`CipherSuite::verify`]), kept as the
    /// independent oracle path.
    fn verify_batch(&self, frames: &[FrameToVerify<'_>], ok: &mut Vec<bool>) {
        ok.clear();
        if self.backend == Backend::Scalar {
            ok.extend(frames.iter().map(|f| self.verify(f)));
            return;
        }
        let lanes = self.backend.lanes();
        ok.reserve(frames.len());
        let mut jobs = [(0u32, [0u8; CHACHA_NONCE_LEN]); MAX_LANES];
        let mut blocks = [[0u8; 64]; MAX_LANES];
        for chunk in frames.chunks(lanes) {
            if chunk.len() < lanes {
                ok.extend(chunk.iter().map(|f| self.verify(f)));
                continue;
            }
            for (l, f) in chunk.iter().enumerate() {
                jobs[l] = (0, Self::nonce(f.seq));
            }
            chacha_blocks(
                self.backend,
                &self.key,
                &jobs[..lanes],
                &mut blocks[..lanes],
            );
            for (l, f) in chunk.iter().enumerate() {
                let mut otk = [0u8; 32];
                otk.copy_from_slice(&blocks[l][..32]);
                ok.push(self.verify_with_otk(f, &otk));
            }
        }
    }

    /// The laned batch decrypt: jobs are flattened into 64-byte
    /// keystream units so lanes fill across packet boundaries (eight
    /// 64-byte packets decrypt in one AVX2 pass). On [`Backend::Scalar`]
    /// this is the trait default loop.
    fn decrypt_batch(&self, buf: &mut [u8], jobs: &[(u64, Range<usize>)]) {
        if self.backend == Backend::Scalar {
            for (seq, range) in jobs {
                self.decrypt(*seq, &mut buf[range.clone()]);
            }
            return;
        }
        let lane_jobs: Vec<([u8; CHACHA_NONCE_LEN], u32, Range<usize>)> = jobs
            .iter()
            .map(|(seq, range)| (Self::nonce(*seq), 1u32, range.clone()))
            .collect();
        chacha20_xor_jobs(self.backend, &self.key, buf, &lane_jobs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aead::chacha20_poly1305_seal;
    use crate::hmac::hmac_sha256_96;

    fn frame<'a>(
        seq: u64,
        header: &'a [u8],
        ct: &'a [u8],
        esn_hi: Option<u32>,
        icv: &'a [u8],
    ) -> FrameToVerify<'a> {
        FrameToVerify {
            seq,
            header,
            ciphertext: ct,
            esn_hi,
            icv,
        }
    }

    #[test]
    fn hmac_suite_matches_raw_hmac_over_concatenation() {
        let suite = HmacSha256Suite::with_keystream(b"auth", b"enc");
        let header = b"HDRBYTES0012";
        let ct = b"ciphertext region";
        let icv = suite.icv(5, header, ct, None);
        let mut concat = header.to_vec();
        concat.extend_from_slice(ct);
        assert_eq!(&icv[..], &hmac_sha256_96(b"auth", &concat));
        // ESN high half participates like appended bytes.
        let icv_esn = suite.icv(5, header, ct, Some(3));
        concat.extend_from_slice(&3u32.to_be_bytes());
        assert_eq!(&icv_esn[..], &hmac_sha256_96(b"auth", &concat));
    }

    #[test]
    fn hmac_batch_agrees_with_sequential_including_corruption() {
        let suite = HmacSha256Suite::with_keystream(b"batch-auth", b"batch-enc");
        let mut storage: Vec<(Vec<u8>, Vec<u8>, Vec<u8>)> = Vec::new();
        for i in 0..50u64 {
            let header = vec![i as u8; 12];
            let ct: Vec<u8> = (0..(i % 7) * 9).map(|j| (i + j) as u8).collect();
            let esn = if i % 3 == 0 { Some(i as u32) } else { None };
            let mut icv = suite.icv(i, &header, &ct, esn).to_vec();
            match i % 5 {
                1 => icv[0] ^= 0x40,  // flipped tag byte
                2 => icv.truncate(8), // truncated tag
                3 => icv.push(0),     // overlong tag
                _ => {}
            }
            storage.push((header, ct, icv));
        }
        let frames: Vec<FrameToVerify<'_>> = storage
            .iter()
            .enumerate()
            .map(|(i, (h, c, t))| {
                frame(
                    i as u64,
                    h,
                    c,
                    if i % 3 == 0 { Some(i as u32) } else { None },
                    t,
                )
            })
            .collect();
        let mut batch = Vec::new();
        suite.verify_batch(&frames, &mut batch);
        let sequential: Vec<bool> = frames.iter().map(|f| suite.verify(f)).collect();
        assert_eq!(batch, sequential);
        assert!(batch.iter().any(|&b| b), "some frames verify");
        assert!(batch.iter().any(|&b| !b), "corrupted frames fail");
    }

    #[test]
    fn default_verify_batch_loops_verify() {
        // The AEAD suite uses the trait default; results must match too.
        let suite = ChaCha20Poly1305Suite::new([0x21; 32]);
        let mut bodies = Vec::new();
        for i in 0..10u64 {
            let mut body = vec![i as u8; 20];
            suite.encrypt(i, &mut body);
            let mut icv = suite.icv(i, b"h", &body, None).to_vec();
            if i == 4 {
                icv[15] ^= 1;
            }
            bodies.push((body, icv));
        }
        let frames: Vec<FrameToVerify<'_>> = bodies
            .iter()
            .enumerate()
            .map(|(i, (b, t))| frame(i as u64, b"h", b, None, t))
            .collect();
        let mut out = Vec::new();
        suite.verify_batch(&frames, &mut out);
        assert_eq!(out.len(), 10);
        assert_eq!(out.iter().filter(|&&b| !b).count(), 1);
    }

    #[test]
    fn aead_suite_matches_rfc_construction() {
        // The suite's encrypt + icv must equal the validated one-shot
        // RFC 8439 seal for the same (key, nonce, aad).
        let key = [0x5Au8; 32];
        let suite = ChaCha20Poly1305Suite::new(key);
        let header = [1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12];
        let seq = 0x0102_0304_0506_0708u64;
        let mut body = b"the aead payload".to_vec();
        suite.encrypt(seq, &mut body);
        let icv = suite.icv(seq, &header, &body, None);

        let mut reference = b"the aead payload".to_vec();
        let nonce = ChaCha20Poly1305Suite::nonce(seq);
        let tag = chacha20_poly1305_seal(&key, &nonce, &header, &mut reference);
        assert_eq!(body, reference);
        assert_eq!(&icv[..], &tag);
    }

    #[test]
    fn aead_esn_high_half_is_authenticated() {
        let suite = ChaCha20Poly1305Suite::new([9u8; 32]);
        let mut body = b"x".to_vec();
        suite.encrypt(1, &mut body);
        let icv = suite.icv(1, b"hdr", &body, Some(7));
        assert!(suite.verify(&frame(1, b"hdr", &body, Some(7), &icv)));
        assert!(!suite.verify(&frame(1, b"hdr", &body, Some(8), &icv)));
        assert!(!suite.verify(&frame(1, b"hdr", &body, None, &icv)));
    }

    #[test]
    fn suites_reject_each_others_tags() {
        let hmac = HmacSha256Suite::with_keystream(b"k", b"e");
        let aead = ChaCha20Poly1305Suite::new([1u8; 32]);
        let body = b"payload".to_vec();
        let hmac_icv = hmac.icv(1, b"hdr", &body, None);
        let aead_icv = aead.icv(1, b"hdr", &body, None);
        assert!(!aead.verify(&frame(1, b"hdr", &body, None, &hmac_icv)));
        assert!(!hmac.verify(&frame(1, b"hdr", &body, None, &aead_icv)));
    }

    #[test]
    fn metadata_is_consistent() {
        let hk = HmacSha256Suite::with_keystream(b"a", b"e");
        let ha = HmacSha256Suite::auth_only(b"a");
        let cc = ChaCha20Poly1305Suite::new([0u8; 32]);
        for s in [&hk as &dyn CipherSuite, &ha, &cc] {
            assert!(s.icv_len() <= MAX_ICV_LEN, "{}", s.name());
            assert_eq!(s.iv_len(), 0, "{}", s.name());
            assert!(s.key_len() >= 32, "{}", s.name());
        }
        assert!(hk.encrypts());
        assert!(!ha.encrypts());
        assert!(cc.encrypts());
        assert_ne!(hk.name(), ha.name());
    }

    #[test]
    fn auth_only_encrypt_is_identity() {
        let suite = HmacSha256Suite::auth_only(b"a");
        let mut body = *b"cleartext";
        suite.encrypt(3, &mut body);
        assert_eq!(&body, b"cleartext");
    }

    #[test]
    fn encrypt_decrypt_round_trip_all_suites() {
        let suites: Vec<Box<dyn CipherSuite>> = vec![
            Box::new(HmacSha256Suite::with_keystream(b"a", b"e")),
            Box::new(HmacSha256Suite::auth_only(b"a")),
            Box::new(ChaCha20Poly1305Suite::new([3u8; 32])),
        ];
        for suite in &suites {
            for len in [0usize, 1, 63, 64, 65, 300] {
                let original: Vec<u8> = (0..len).map(|i| i as u8).collect();
                let mut body = original.clone();
                suite.encrypt(42, &mut body);
                suite.decrypt(42, &mut body);
                assert_eq!(body, original, "{} len {len}", suite.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "ICV too long")]
    fn icv_capacity_is_enforced() {
        let _ = Icv::new(&[0u8; MAX_ICV_LEN + 1]);
    }
}

//! Constant-time comparison for authentication tags.
//!
//! Comparing an ICV with `==` leaks, via timing, how many leading bytes of
//! a forged tag were correct. [`ct_eq`] always touches every byte.

/// Constant-time equality of two byte slices.
///
/// Slices of different lengths compare unequal (length is considered
/// public). The comparison time depends only on the length, never on the
/// position of the first mismatch.
///
/// # Examples
///
/// ```
/// use reset_crypto::ct_eq;
///
/// assert!(ct_eq(b"abc", b"abc"));
/// assert!(!ct_eq(b"abc", b"abd"));
/// assert!(!ct_eq(b"abc", b"ab"));
/// ```
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Reduce without branching on intermediate values.
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"x", b"x"));
        assert!(ct_eq(&[0u8; 64], &[0u8; 64]));
    }

    #[test]
    fn unequal_content() {
        assert!(!ct_eq(b"aaaa", b"aaab"));
        assert!(!ct_eq(b"baaa", b"aaaa"));
    }

    #[test]
    fn unequal_length() {
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(!ct_eq(b"abcd", b"abc"));
        assert!(!ct_eq(b"", b"a"));
    }

    #[test]
    fn single_bit_differences_detected() {
        let a = [0b1010_1010u8; 16];
        for byte in 0..16 {
            for bit in 0..8 {
                let mut b = a;
                b[byte] ^= 1 << bit;
                assert!(!ct_eq(&a, &b));
            }
        }
    }
}

//! ChaCha20-Poly1305 AEAD (RFC 8439 §2.8), from scratch.
//!
//! The construction the suite layer exposes as a real cipher: the
//! Poly1305 one-time key comes from the ChaCha20 block at counter 0, the
//! plaintext is encrypted from counter 1, and the tag authenticates
//! `aad ‖ pad16 ‖ ciphertext ‖ pad16 ‖ len(aad) ‖ len(ciphertext)`.
//! Validated against the RFC 8439 §2.8.2 vector.

use crate::chacha::{chacha20_block, chacha20_xor, CHACHA_KEY_LEN, CHACHA_NONCE_LEN};
use crate::ct::ct_eq;
use crate::poly1305::{Poly1305, POLY1305_TAG_LEN};

/// AEAD tag length in bytes.
pub const AEAD_TAG_LEN: usize = POLY1305_TAG_LEN;

/// The RFC 8439 §2.8 tag over AAD supplied in parts (treated as their
/// concatenation) and a ciphertext. Exposed so the suite layer can
/// authenticate `header ‖ esn_high` without materializing one buffer.
pub fn chacha20_poly1305_tag(
    key: &[u8; CHACHA_KEY_LEN],
    nonce: &[u8; CHACHA_NONCE_LEN],
    aad_parts: &[&[u8]],
    ciphertext: &[u8],
) -> [u8; AEAD_TAG_LEN] {
    let otk_block = chacha20_block(key, 0, nonce);
    let mut otk = [0u8; 32];
    otk.copy_from_slice(&otk_block[..32]);
    poly1305_aead_tag(&otk, aad_parts, ciphertext)
}

/// The Poly1305 half of the RFC 8439 tag, given an already-derived
/// one-time key. The batch verify path computes OTKs for several frames
/// in one multi-lane ChaCha20 pass and feeds them through here;
/// [`chacha20_poly1305_tag`] is exactly `otk-from-block-0` + this.
pub(crate) fn poly1305_aead_tag(
    otk: &[u8; 32],
    aad_parts: &[&[u8]],
    ciphertext: &[u8],
) -> [u8; AEAD_TAG_LEN] {
    let mut mac = Poly1305::new(otk);
    let zeros = [0u8; 16];
    let mut aad_len = 0usize;
    for part in aad_parts {
        mac.update(part);
        aad_len += part.len();
    }
    mac.update(&zeros[..(16 - aad_len % 16) % 16]);
    mac.update(ciphertext);
    mac.update(&zeros[..(16 - ciphertext.len() % 16) % 16]);
    mac.update(&(aad_len as u64).to_le_bytes());
    mac.update(&(ciphertext.len() as u64).to_le_bytes());
    mac.finalize()
}

fn mac_data(
    key: &[u8; CHACHA_KEY_LEN],
    nonce: &[u8; CHACHA_NONCE_LEN],
    aad: &[u8],
    ciphertext: &[u8],
) -> [u8; AEAD_TAG_LEN] {
    chacha20_poly1305_tag(key, nonce, &[aad], ciphertext)
}

/// Encrypts `data` in place and returns the authentication tag over
/// `(aad, ciphertext)`.
///
/// # Examples
///
/// ```
/// use reset_crypto::{chacha20_poly1305_open, chacha20_poly1305_seal};
///
/// let key = [1u8; 32];
/// let nonce = [2u8; 12];
/// let mut buf = *b"secret payload";
/// let tag = chacha20_poly1305_seal(&key, &nonce, b"header", &mut buf);
/// assert!(chacha20_poly1305_open(&key, &nonce, b"header", &mut buf, &tag));
/// assert_eq!(&buf, b"secret payload");
/// ```
pub fn chacha20_poly1305_seal(
    key: &[u8; CHACHA_KEY_LEN],
    nonce: &[u8; CHACHA_NONCE_LEN],
    aad: &[u8],
    data: &mut [u8],
) -> [u8; AEAD_TAG_LEN] {
    chacha20_xor(key, 1, nonce, data);
    mac_data(key, nonce, aad, data)
}

/// Verifies `tag` and, on success, decrypts `data` in place. Returns
/// whether authentication succeeded; on failure `data` is left
/// untouched (still ciphertext).
#[must_use]
pub fn chacha20_poly1305_open(
    key: &[u8; CHACHA_KEY_LEN],
    nonce: &[u8; CHACHA_NONCE_LEN],
    aad: &[u8],
    data: &mut [u8],
    tag: &[u8],
) -> bool {
    let expect = mac_data(key, nonce, aad, data);
    if !ct_eq(tag, &expect) {
        return false;
    }
    chacha20_xor(key, 1, nonce, data);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::{from_hex, to_hex};

    fn rfc_key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = 0x80 + i as u8;
        }
        k
    }

    #[test]
    fn rfc8439_aead_vector() {
        // §2.8.2: sunscreen plaintext, 12-byte AAD.
        let key = rfc_key();
        let nonce: [u8; 12] = from_hex("070000004041424344454647")
            .unwrap()
            .try_into()
            .unwrap();
        let aad = from_hex("50515253c0c1c2c3c4c5c6c7").unwrap();
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it."
            .to_vec();
        let tag = chacha20_poly1305_seal(&key, &nonce, &aad, &mut data);
        assert_eq!(
            to_hex(&data),
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116"
        );
        assert_eq!(to_hex(&tag), "1ae10b594f09e26a7e902ecbd0600691");
        // And open round-trips.
        assert!(chacha20_poly1305_open(&key, &nonce, &aad, &mut data, &tag));
        assert!(data.starts_with(b"Ladies and Gentlemen"));
    }

    #[test]
    fn tampered_ciphertext_or_aad_or_tag_rejected() {
        let key = [9u8; 32];
        let nonce = [4u8; 12];
        let mut data = b"payload under test".to_vec();
        let tag = chacha20_poly1305_seal(&key, &nonce, b"aad", &mut data);
        let sealed = data.clone();

        let mut bad = sealed.clone();
        bad[0] ^= 1;
        assert!(!chacha20_poly1305_open(
            &key, &nonce, b"aad", &mut bad, &tag
        ));
        assert_eq!(bad[0], sealed[0] ^ 1, "failed open must not decrypt");

        let mut ct = sealed.clone();
        assert!(!chacha20_poly1305_open(&key, &nonce, b"AAD", &mut ct, &tag));

        let mut ct = sealed.clone();
        let mut bad_tag = tag;
        bad_tag[15] ^= 0x80;
        assert!(!chacha20_poly1305_open(
            &key, &nonce, b"aad", &mut ct, &bad_tag
        ));

        let mut ct = sealed;
        assert!(!chacha20_poly1305_open(
            &key,
            &nonce,
            b"aad",
            &mut ct,
            &tag[..12]
        ));
    }

    #[test]
    fn empty_aad_and_empty_plaintext() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut empty: [u8; 0] = [];
        let tag = chacha20_poly1305_seal(&key, &nonce, b"", &mut empty);
        assert!(chacha20_poly1305_open(&key, &nonce, b"", &mut empty, &tag));
        let mut data = *b"x";
        let tag2 = chacha20_poly1305_seal(&key, &nonce, b"", &mut data);
        assert_ne!(tag, tag2);
    }

    #[test]
    fn nonce_reuse_across_packets_is_caught_by_distinct_nonces() {
        // Different nonces give unrelated ciphertexts for equal input —
        // the suite layer maps each sequence number to a fresh nonce.
        let key = [7u8; 32];
        let mut a = *b"same plaintext";
        let mut b = *b"same plaintext";
        let ta = chacha20_poly1305_seal(&key, &[0u8; 12], b"", &mut a);
        let tb = chacha20_poly1305_seal(&key, &[1u8; 12], b"", &mut b);
        assert_ne!(a, b);
        assert_ne!(ta, tb);
    }
}

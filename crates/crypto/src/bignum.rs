//! Minimal arbitrary-precision unsigned integers for Diffie–Hellman.
//!
//! Only the operations modular exponentiation needs: comparison,
//! addition/subtraction, doubling, remainder, and a binary
//! square-and-multiply [`BigUint::mod_pow`]. The representation is
//! little-endian `u64` limbs. Performance is adequate for the IKE cost
//! experiments (a 768-bit modexp is a few milliseconds); constant-time
//! behaviour is *not* claimed — this substrate models cost, not a
//! production TLS stack.

use std::cmp::Ordering;
use std::fmt;

/// Arbitrary-precision unsigned integer (little-endian 64-bit limbs).
///
/// # Examples
///
/// ```
/// use reset_crypto::BigUint;
///
/// let p = BigUint::from_u64(23);
/// let g = BigUint::from_u64(5);
/// // 5^6 mod 23 = 8
/// assert_eq!(g.mod_pow(&BigUint::from_u64(6), &p), BigUint::from_u64(8));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigUint {
    /// Little-endian limbs; no trailing zero limbs (zero is an empty vec).
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// From a machine word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Parses big-endian bytes (as found in RFC-formatted primes).
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        let mut iter = bytes.rchunks(8);
        for chunk in &mut iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Parses a hex string, ignoring ASCII whitespace.
    ///
    /// # Panics
    ///
    /// Panics on non-hex characters (inputs are compiled-in constants).
    pub fn from_hex(s: &str) -> Self {
        let digits: Vec<u8> = s
            .chars()
            .filter(|c| !c.is_ascii_whitespace())
            .map(|c| c.to_digit(16).expect("invalid hex digit") as u8)
            .collect();
        let mut bytes = Vec::with_capacity(digits.len().div_ceil(2));
        let mut i = 0;
        // Odd digit counts get an implicit leading zero nibble.
        if digits.len() % 2 == 1 {
            bytes.push(digits[0]);
            i = 1;
        }
        while i < digits.len() {
            bytes.push((digits[i] << 4) | digits[i + 1]);
            i += 2;
        }
        Self::from_be_bytes(&bytes)
    }

    /// Serializes as minimal big-endian bytes (empty for zero).
    pub fn to_be_bytes(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        // Strip leading zeros.
        let first = out.iter().position(|&b| b != 0).unwrap_or(out.len() - 1);
        out.drain(..first);
        out
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 64 + (64 - top.leading_zeros() as usize),
        }
    }

    /// Value of bit `i` (0 = least significant).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        match self.limbs.get(limb) {
            Some(&l) => (l >> (i % 64)) & 1 == 1,
            None => false,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self` (callers maintain that invariant).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(self >= other, "bignum underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self << 1`.
    pub fn shl1(&self) -> BigUint {
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u64;
        for &l in &self.limbs {
            out.push((l << 1) | carry);
            carry = l >> 63;
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = BigUint { limbs: out };
        r.normalize();
        r
    }

    /// `self mod m` by binary long division (shift-subtract).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulo zero");
        if self < m {
            return self.clone();
        }
        let mut r = BigUint::zero();
        for i in (0..self.bits()).rev() {
            r = r.shl1();
            if self.bit(i) {
                r = r.add(&BigUint::one());
            }
            if &r >= m {
                r = r.sub(m);
            }
        }
        r
    }

    /// `(self + other) mod m`, assuming both inputs are already `< m`.
    fn mod_add(&self, other: &BigUint, m: &BigUint) -> BigUint {
        let s = self.add(other);
        if &s >= m {
            s.sub(m)
        } else {
            s
        }
    }

    /// `(self * other) mod m` by interleaved double-and-add; inputs may be
    /// arbitrary (they are reduced first).
    pub fn mod_mul(&self, other: &BigUint, m: &BigUint) -> BigUint {
        let a = self.rem(m);
        let b = other.rem(m);
        let mut acc = BigUint::zero();
        for i in (0..b.bits()).rev() {
            acc = acc.mod_add(&acc, m); // acc = 2*acc mod m
            if b.bit(i) {
                acc = acc.mod_add(&a, m);
            }
        }
        acc
    }

    /// `self^exp mod m` by square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_pow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modulo zero");
        if m == &BigUint::one() {
            return BigUint::zero();
        }
        let base = self.rem(m);
        let mut acc = BigUint::one();
        for i in (0..exp.bits()).rev() {
            acc = acc.mod_mul(&acc, m);
            if exp.bit(i) {
                acc = acc.mod_mul(&base, m);
            }
        }
        acc
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0x0");
        }
        write!(f, "0x")?;
        for (i, limb) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                write!(f, "{limb:x}")?;
            } else {
                write!(f, "{limb:016x}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn construction_and_zero() {
        assert!(BigUint::zero().is_zero());
        assert!(!BigUint::one().is_zero());
        assert_eq!(n(0), BigUint::zero());
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(n(1).bits(), 1);
        assert_eq!(n(255).bits(), 8);
    }

    #[test]
    fn be_bytes_round_trip() {
        let cases: Vec<Vec<u8>> = vec![
            vec![0x01],
            vec![0xff, 0xee, 0xdd],
            vec![0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc, 0xde, 0xf0, 0x11],
        ];
        for bytes in cases {
            let v = BigUint::from_be_bytes(&bytes);
            assert_eq!(v.to_be_bytes(), bytes);
        }
        // Leading zeros are dropped.
        assert_eq!(
            BigUint::from_be_bytes(&[0, 0, 0x05]).to_be_bytes(),
            vec![0x05]
        );
    }

    #[test]
    fn from_hex_matches_bytes() {
        assert_eq!(BigUint::from_hex("ff"), n(255));
        assert_eq!(BigUint::from_hex("1 00"), n(256));
        assert_eq!(BigUint::from_hex("F"), n(15)); // odd digit count
        assert_eq!(
            BigUint::from_hex("FFFFFFFFFFFFFFFF FFFFFFFFFFFFFFFF").bits(),
            128
        );
    }

    #[test]
    fn add_sub_inverse() {
        let a = BigUint::from_hex("123456789abcdef0123456789abcdef0");
        let b = BigUint::from_hex("0fedcba987654321");
        assert_eq!(a.add(&b).sub(&b), a);
        assert_eq!(a.sub(&a), BigUint::zero());
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = BigUint::from_u64(u64::MAX);
        let s = a.add(&BigUint::one());
        assert_eq!(s.bits(), 65);
        assert_eq!(s.to_be_bytes(), vec![1, 0, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = n(1).sub(&n(2));
    }

    #[test]
    fn ordering() {
        assert!(n(5) > n(4));
        assert!(BigUint::from_hex("10000000000000000") > n(u64::MAX));
        assert_eq!(n(7).cmp(&n(7)), Ordering::Equal);
    }

    #[test]
    fn rem_small_cases() {
        assert_eq!(n(10).rem(&n(3)), n(1));
        assert_eq!(n(10).rem(&n(10)), n(0));
        assert_eq!(n(3).rem(&n(10)), n(3));
        assert_eq!(n(0).rem(&n(7)), n(0));
    }

    #[test]
    fn rem_multi_limb() {
        let a = BigUint::from_hex("ffffffffffffffffffffffffffffffff");
        let m = BigUint::from_hex("10000000000000001");
        // a = (2^128 - 1); m = 2^64 + 1. 2^128 - 1 = (2^64+1)(2^64-1),
        // so remainder is 0.
        assert_eq!(a.rem(&m), BigUint::zero());
    }

    #[test]
    fn mod_mul_matches_u128() {
        let m = 0xffff_fffb_u64; // prime below 2^32
        for (a, b) in [(3u64, 5u64), (1 << 31, 1 << 31), (m - 1, m - 1)] {
            let expect = ((a as u128 * b as u128) % m as u128) as u64;
            assert_eq!(n(a).mod_mul(&n(b), &n(m)), n(expect), "{a}*{b} mod {m}");
        }
    }

    #[test]
    fn mod_pow_small_cases() {
        // Fermat: a^(p-1) = 1 mod p for prime p, gcd(a,p)=1.
        let p = n(101);
        for a in [2u64, 3, 50, 100] {
            assert_eq!(n(a).mod_pow(&n(100), &p), n(1), "{a}^100 mod 101");
        }
        assert_eq!(n(2).mod_pow(&n(10), &n(1000)), n(24)); // 1024 mod 1000
        assert_eq!(n(5).mod_pow(&n(0), &n(7)), n(1));
        assert_eq!(n(5).mod_pow(&n(3), &BigUint::one()), n(0));
    }

    #[test]
    fn mod_pow_matches_u128_reference() {
        fn ref_pow(mut b: u128, mut e: u128, m: u128) -> u128 {
            let mut acc = 1u128;
            b %= m;
            while e > 0 {
                if e & 1 == 1 {
                    acc = acc * b % m;
                }
                b = b * b % m;
                e >>= 1;
            }
            acc
        }
        let m = 0xffff_fffb_u64;
        for (b, e) in [(2u64, 1000u64), (12345, 67890), (m - 2, m - 1)] {
            let expect = ref_pow(b as u128, e as u128, m as u128) as u64;
            assert_eq!(n(b).mod_pow(&n(e), &n(m)), n(expect));
        }
    }

    #[test]
    fn dh_commutativity_toy() {
        // (g^a)^b == (g^b)^a mod p — the property IKE relies on.
        let p = BigUint::from_hex("ffffffffffffffc5"); // 2^64 - 59, prime
        let g = n(2);
        let a = n(0x1234_5678_9abc_def1);
        let b = n(0x0fed_cba9_8765_4321);
        let ga = g.mod_pow(&a, &p);
        let gb = g.mod_pow(&b, &p);
        assert_eq!(ga.mod_pow(&b, &p), gb.mod_pow(&a, &p));
    }

    #[test]
    fn display_hex() {
        assert_eq!(BigUint::zero().to_string(), "0x0");
        assert_eq!(n(0xdead).to_string(), "0xdead");
        assert_eq!(
            BigUint::from_hex("10000000000000000").to_string(),
            "0x10000000000000000"
        );
    }
}

//! ChaCha20 (RFC 8439), implemented from scratch.
//!
//! The quarter-round ARX core and the 20-round block function, used two
//! ways by the AEAD suite: block counter 0 derives the Poly1305 one-time
//! key, counters 1.. generate the confidentiality keystream. Validated
//! against the RFC 8439 §2.3.2 block and §2.4.2 encryption vectors.

/// Key length in bytes.
pub const CHACHA_KEY_LEN: usize = 32;

/// Nonce length in bytes (the RFC 8439 96-bit IETF nonce).
pub const CHACHA_NONCE_LEN: usize = 12;

/// The "expand 32-byte k" constants — state words 0..4. Shared with the
/// multi-lane kernels in [`crate::lanes`], which build the same initial
/// state with lane-uniform key words.
pub(crate) const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn init_state(
    key: &[u8; CHACHA_KEY_LEN],
    counter: u32,
    nonce: &[u8; CHACHA_NONCE_LEN],
) -> [u32; 16] {
    let mut s = [0u32; 16];
    s[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        s[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().expect("fixed"));
    }
    s[12] = counter;
    for i in 0..3 {
        s[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().expect("fixed"));
    }
    s
}

/// One 64-byte keystream block for `(key, counter, nonce)` — the RFC
/// 8439 §2.3 `chacha20_block` function.
pub fn chacha20_block(
    key: &[u8; CHACHA_KEY_LEN],
    counter: u32,
    nonce: &[u8; CHACHA_NONCE_LEN],
) -> [u8; 64] {
    let initial = init_state(key, counter, nonce);
    let mut s = initial;
    for _ in 0..10 {
        // Column round.
        quarter_round(&mut s, 0, 4, 8, 12);
        quarter_round(&mut s, 1, 5, 9, 13);
        quarter_round(&mut s, 2, 6, 10, 14);
        quarter_round(&mut s, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut s, 0, 5, 10, 15);
        quarter_round(&mut s, 1, 6, 11, 12);
        quarter_round(&mut s, 2, 7, 8, 13);
        quarter_round(&mut s, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = s[i].wrapping_add(initial[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs `data` with the ChaCha20 keystream starting at block `counter`.
/// Encryption and decryption are the same operation.
///
/// # Panics
///
/// Panics if the stream would run past block counter `u32::MAX`
/// (≈ 256 GiB per nonce — unreachable for packet payloads).
///
/// # Examples
///
/// ```
/// use reset_crypto::chacha20_xor;
///
/// let key = [7u8; 32];
/// let nonce = [9u8; 12];
/// let mut buf = *b"attack at dawn";
/// chacha20_xor(&key, 1, &nonce, &mut buf);
/// assert_ne!(&buf, b"attack at dawn");
/// chacha20_xor(&key, 1, &nonce, &mut buf);
/// assert_eq!(&buf, b"attack at dawn");
/// ```
pub fn chacha20_xor(
    key: &[u8; CHACHA_KEY_LEN],
    counter: u32,
    nonce: &[u8; CHACHA_NONCE_LEN],
    data: &mut [u8],
) {
    let mut ctr = counter;
    for chunk in data.chunks_mut(64) {
        let ks = chacha20_block(key, ctr, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        ctr = ctr.checked_add(1).expect("chacha20 counter overflow");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::{from_hex, to_hex};

    fn key_0_to_31() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn rfc8439_block_vector() {
        // §2.3.2: key 00..1f, counter 1, nonce 000000090000004a00000000.
        let key = key_0_to_31();
        let mut nonce = [0u8; 12];
        nonce[3] = 0x09;
        nonce[7] = 0x4a;
        let block = chacha20_block(&key, 1, &nonce);
        assert_eq!(
            to_hex(&block),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // §2.4.2: the "sunscreen" plaintext under counter 1.
        let key = key_0_to_31();
        let mut nonce = [0u8; 12];
        nonce[7] = 0x4a;
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it."
            .to_vec();
        chacha20_xor(&key, 1, &nonce, &mut data);
        let expect = from_hex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        )
        .unwrap();
        assert_eq!(data, expect);
        // Decrypt round-trips.
        chacha20_xor(&key, 1, &nonce, &mut data);
        assert!(data.starts_with(b"Ladies and Gentlemen"));
    }

    #[test]
    fn counter_advances_across_blocks() {
        // Whole-stream XOR equals per-block XOR with explicit counters.
        let key = [0xAB; 32];
        let nonce = [0x01; 12];
        let mut whole = vec![0u8; 150];
        chacha20_xor(&key, 5, &nonce, &mut whole);
        let mut parts = vec![0u8; 150];
        chacha20_xor(&key, 5, &nonce, &mut parts[..64]);
        chacha20_xor(&key, 6, &nonce, &mut parts[64..128]);
        chacha20_xor(&key, 7, &nonce, &mut parts[128..]);
        assert_eq!(whole, parts);
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let key = [3u8; 32];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        chacha20_xor(&key, 0, &[0u8; 12], &mut a);
        chacha20_xor(&key, 0, &[1u8; 12], &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn empty_input_is_noop() {
        let mut empty: Vec<u8> = Vec::new();
        chacha20_xor(&[0u8; 32], 0, &[0u8; 12], &mut empty);
        assert!(empty.is_empty());
    }
}

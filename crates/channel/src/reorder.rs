//! Reorder-degree measurement.
//!
//! §2 of the paper: *"A message m is said to suffer a reorder of degree w
//! iff the w-th message sent (by p) after m is received (by q) before m."*
//! So for a message with send index `i`, its degree is the largest offset
//! `j − i` over messages `j > i` received before it (0 when nothing
//! overtook it). The w-Delivery condition only promises delivery of
//! messages with degree < w — exactly the set the window can still
//! discriminate when they arrive.

/// Computes the maximum reorder degree of a received stream.
///
/// `receive_order` lists the *send indices* of messages in the order the
/// receiver saw them (duplicates allowed; only the first arrival of each
/// message defines its degree).
///
/// # Examples
///
/// ```
/// use reset_channel::max_reorder_degree;
///
/// assert_eq!(max_reorder_degree(&[0, 1, 2, 3]), 0);  // in order
/// assert_eq!(max_reorder_degree(&[1, 0]), 1);        // msg 1 overtook msg 0
/// assert_eq!(max_reorder_degree(&[3, 0]), 3);        // the 3rd-after overtook
/// assert_eq!(max_reorder_degree(&[1, 2, 3, 0]), 3);
/// ```
pub fn max_reorder_degree(receive_order: &[u64]) -> u64 {
    reorder_degrees(receive_order)
        .into_iter()
        .max()
        .unwrap_or(0)
}

/// Per-arrival reorder degrees, aligned with `receive_order`.
///
/// The degree of the arrival at position `p` carrying send index `i` is
/// `max(j − i)` over send indices `j > i` seen strictly before `p`
/// (0 when none). Since only the running maximum of earlier indices
/// matters, this is linear time.
pub fn reorder_degrees(receive_order: &[u64]) -> Vec<u64> {
    let mut max_seen: Option<u64> = None;
    let mut out = Vec::with_capacity(receive_order.len());
    for &i in receive_order {
        let degree = match max_seen {
            Some(m) if m > i => m - i,
            _ => 0,
        };
        out.push(degree);
        max_seen = Some(max_seen.map_or(i, |m| m.max(i)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_has_degree_zero() {
        assert_eq!(max_reorder_degree(&(0..100).collect::<Vec<_>>()), 0);
        assert_eq!(max_reorder_degree(&[]), 0);
        assert_eq!(max_reorder_degree(&[5]), 0);
    }

    #[test]
    fn single_swap_is_degree_one() {
        assert_eq!(max_reorder_degree(&[0, 2, 1, 3]), 1);
    }

    #[test]
    fn deeply_late_message() {
        // Message 0 arrives after message 5: the 5th message sent after
        // it was received first, so degree 5.
        assert_eq!(max_reorder_degree(&[1, 2, 3, 4, 5, 0]), 5);
    }

    #[test]
    fn offset_counts_even_with_losses() {
        // Only messages 9 then 1 arrive: msg 8-after-1 overtook → degree 8.
        assert_eq!(max_reorder_degree(&[9, 1]), 8);
    }

    #[test]
    fn duplicates_use_offset_too() {
        // The same later message received thrice still gives offset 2.
        assert_eq!(max_reorder_degree(&[2, 2, 2, 0]), 2);
    }

    #[test]
    fn per_arrival_degrees() {
        assert_eq!(reorder_degrees(&[1, 0, 2]), vec![0, 1, 0]);
        assert_eq!(reorder_degrees(&[3, 0, 1, 4, 2]), vec![0, 3, 2, 0, 2]);
    }

    #[test]
    fn reversed_stream_worst_case() {
        let rev: Vec<u64> = (0..10).rev().collect();
        assert_eq!(max_reorder_degree(&rev), 9);
    }

    #[test]
    fn degree_matches_window_staleness() {
        // The whole point of the definition: first-arrival degree < w
        // iff the arrival is not yet left of a w-window whose right edge
        // is the max index seen so far.
        let order = [5u64, 9, 2, 14, 3];
        let degrees = reorder_degrees(&order);
        let mut max_seen = None::<u64>;
        for (pos, &i) in order.iter().enumerate() {
            if let Some(m) = max_seen {
                let w = 6u64;
                let stale = i + w <= m;
                assert_eq!(stale, degrees[pos] >= w, "pos {pos}");
            }
            max_seen = Some(max_seen.map_or(i, |m| m.max(i)));
        }
    }
}

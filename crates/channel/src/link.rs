//! Unidirectional link with configurable faults.
//!
//! The paper's channel "may lose or reorder" messages, and an adversary
//! may insert copies. [`Link`] models loss, duplication, delay and
//! jitter-induced reordering; the adversary lives in
//! [`Tap`](crate::Tap). A link does not execute anything itself — it maps
//! each send to zero or more `(delivery_time, message)` pairs which the
//! caller schedules on its simulator, keeping all event ordering in one
//! place.

use reset_sim::{DetRng, SimDuration, SimTime};

/// Fault and timing parameters of a [`Link`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Probability a sent message is silently dropped.
    pub drop_prob: f64,
    /// Probability a delivered message is additionally duplicated.
    pub duplicate_prob: f64,
    /// Minimum propagation delay.
    pub base_delay: SimDuration,
    /// Uniform extra delay in `[0, jitter]`; jitter larger than the
    /// inter-send gap is what produces reordering.
    pub jitter: SimDuration,
    /// When true, delivery order is forced to match send order (delays are
    /// clamped to be non-decreasing): a lossy FIFO pipe.
    pub fifo: bool,
}

impl LinkConfig {
    /// A perfect link: no loss, no duplication, fixed small delay, FIFO.
    pub fn perfect() -> Self {
        LinkConfig {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            base_delay: SimDuration::from_micros(50),
            jitter: SimDuration::ZERO,
            fifo: true,
        }
    }

    /// A lossy but ordered link.
    pub fn lossy(drop_prob: f64) -> Self {
        LinkConfig {
            drop_prob,
            ..LinkConfig::perfect()
        }
    }

    /// An unordered link whose jitter spans `jitter`; combined with the
    /// send rate this controls the reorder degree seen by the receiver.
    pub fn jittery(jitter: SimDuration) -> Self {
        LinkConfig {
            jitter,
            fifo: false,
            ..LinkConfig::perfect()
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig::perfect()
    }
}

/// Statistics a link keeps about its own behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages handed to the link.
    pub sent: u64,
    /// Messages scheduled for delivery (incl. duplicates).
    pub delivered: u64,
    /// Messages dropped.
    pub dropped: u64,
    /// Extra copies created by duplication.
    pub duplicated: u64,
}

/// A unidirectional faulty link.
///
/// # Examples
///
/// ```
/// use reset_channel::{Link, LinkConfig};
/// use reset_sim::{DetRng, SimTime};
///
/// let mut rng = DetRng::new(1);
/// let mut link = Link::new(LinkConfig::perfect(), rng.fork());
/// let deliveries = link.transmit(SimTime::ZERO, "msg(1)");
/// assert_eq!(deliveries.len(), 1);
/// assert!(deliveries[0].0 > SimTime::ZERO); // propagation delay
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    rng: DetRng,
    stats: LinkStats,
    last_delivery: SimTime,
}

impl Link {
    /// A link with the given fault configuration and its own RNG stream.
    pub fn new(config: LinkConfig, rng: DetRng) -> Self {
        Link {
            config,
            rng,
            stats: LinkStats::default(),
            last_delivery: SimTime::ZERO,
        }
    }

    /// Current fault configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Replaces the fault configuration mid-run (e.g. to start a loss
    /// burst).
    pub fn set_config(&mut self, config: LinkConfig) {
        self.config = config;
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Maps one send at `now` to its deliveries. Returns zero entries on a
    /// drop, one normally, two when duplicated. Deliveries are
    /// `(time, message)` pairs for the caller to schedule.
    pub fn transmit<M: Clone>(&mut self, now: SimTime, msg: M) -> Vec<(SimTime, M)> {
        self.stats.sent += 1;
        if self.rng.chance(self.config.drop_prob) {
            self.stats.dropped += 1;
            return Vec::new();
        }
        let mut out = Vec::with_capacity(2);
        let first = self.delivery_time(now);
        out.push((first, msg.clone()));
        self.stats.delivered += 1;
        if self.rng.chance(self.config.duplicate_prob) {
            let second = self.delivery_time(now);
            out.push((second, msg));
            self.stats.delivered += 1;
            self.stats.duplicated += 1;
        }
        out
    }

    fn delivery_time(&mut self, now: SimTime) -> SimTime {
        let jitter_ns = if self.config.jitter.is_zero() {
            0
        } else {
            self.rng.below(self.config.jitter.as_nanos() + 1)
        };
        let mut at = now + self.config.base_delay + SimDuration::from_nanos(jitter_ns);
        if self.config.fifo && at < self.last_delivery {
            at = self.last_delivery;
        }
        self.last_delivery = self.last_delivery.max(at);
        at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(0xBEEF)
    }

    #[test]
    fn perfect_link_delivers_everything_in_order() {
        let mut link = Link::new(LinkConfig::perfect(), rng());
        let mut last = SimTime::ZERO;
        for i in 0..100u64 {
            let now = SimTime::from_micros(i);
            let d = link.transmit(now, i);
            assert_eq!(d.len(), 1);
            assert!(d[0].0 >= last, "FIFO violated");
            last = d[0].0;
        }
        assert_eq!(link.stats().dropped, 0);
    }

    #[test]
    fn full_loss_drops_everything() {
        let mut link = Link::new(LinkConfig::lossy(1.0), rng());
        for i in 0..10u64 {
            assert!(link.transmit(SimTime::from_micros(i), i).is_empty());
        }
        assert_eq!(link.stats().dropped, 10);
        assert_eq!(link.stats().delivered, 0);
    }

    #[test]
    fn partial_loss_rate_roughly_matches() {
        let mut link = Link::new(LinkConfig::lossy(0.25), rng());
        let mut delivered = 0;
        for i in 0..10_000u64 {
            if !link.transmit(SimTime::from_micros(i), i).is_empty() {
                delivered += 1;
            }
        }
        assert!((7_000..8_000).contains(&delivered), "delivered={delivered}");
    }

    #[test]
    fn duplication_produces_two_copies() {
        let cfg = LinkConfig {
            duplicate_prob: 1.0,
            ..LinkConfig::perfect()
        };
        let mut link = Link::new(cfg, rng());
        let d = link.transmit(SimTime::ZERO, 42u64);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].1, 42);
        assert_eq!(d[1].1, 42);
        assert_eq!(link.stats().duplicated, 1);
    }

    #[test]
    fn jitter_without_fifo_can_reorder() {
        let cfg = LinkConfig::jittery(SimDuration::from_micros(500));
        let mut link = Link::new(cfg, rng());
        // Send fast relative to jitter; check some pair is out of order.
        let mut times = Vec::new();
        for i in 0..200u64 {
            let d = link.transmit(SimTime::from_micros(i), i);
            times.push(d[0].0);
        }
        let reordered = times.windows(2).any(|w| w[1] < w[0]);
        assert!(reordered, "expected at least one inversion");
    }

    #[test]
    fn fifo_clamps_jitter() {
        let cfg = LinkConfig {
            jitter: SimDuration::from_micros(500),
            fifo: true,
            ..LinkConfig::perfect()
        };
        let mut link = Link::new(cfg, rng());
        let mut last = SimTime::ZERO;
        for i in 0..200u64 {
            let d = link.transmit(SimTime::from_micros(i), i);
            assert!(d[0].0 >= last);
            last = d[0].0;
        }
    }

    #[test]
    fn deterministic_across_identical_seeds() {
        let mk = || {
            let mut link = Link::new(
                LinkConfig {
                    drop_prob: 0.3,
                    duplicate_prob: 0.2,
                    jitter: SimDuration::from_micros(100),
                    fifo: false,
                    ..LinkConfig::perfect()
                },
                DetRng::new(777),
            );
            (0..100u64)
                .flat_map(|i| link.transmit(SimTime::from_micros(i), i))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn reconfigure_midstream() {
        let mut link = Link::new(LinkConfig::perfect(), rng());
        assert_eq!(link.transmit(SimTime::ZERO, 0u64).len(), 1);
        link.set_config(LinkConfig::lossy(1.0));
        assert!(link.transmit(SimTime::from_micros(1), 1u64).is_empty());
    }
}

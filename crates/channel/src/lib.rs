//! # reset-channel — the paper's message channel and adversary
//!
//! Between the paper's processes `p` and `q` sits a channel that "may
//! lose or reorder" messages, plus an adversary who "can insert … a copy
//! of any message t that was sent earlier". This crate models both:
//!
//! * [`Link`] / [`LinkConfig`] — loss, duplication, delay, jitter
//!   (reordering), optional FIFO clamping; every send maps to explicit
//!   `(delivery_time, message)` pairs scheduled by the caller.
//! * [`Tap`] — records traffic and replays it: whole-history replay (the
//!   §3 receiver-reset attack), highest-sequence replay (the §3
//!   both-reset attack), ranges, and random noise.
//! * [`max_reorder_degree`] — measures the §2 reorder degree actually
//!   experienced, so w-Delivery experiments can check their premise.
//!
//! # Examples
//!
//! ```
//! use reset_channel::{Link, LinkConfig, Tap};
//! use reset_sim::{DetRng, SimTime};
//!
//! let mut rng = DetRng::new(7);
//! let mut link = Link::new(LinkConfig::lossy(0.1), rng.fork());
//! let mut tap: Tap<u64> = Tap::new();
//!
//! // Normal traffic is recorded as it crosses the wire.
//! for seq in 1..=10u64 {
//!     for (_at, msg) in link.transmit(SimTime::from_micros(seq), seq) {
//!         tap.record(msg);
//!     }
//! }
//! // Later, the adversary replays the whole recorded history.
//! let replayed = tap.replay_all();
//! assert!(!replayed.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod link;
mod reorder;

pub use adversary::Tap;
pub use link::{Link, LinkConfig, LinkStats};
pub use reorder::{max_reorder_degree, reorder_degrees};

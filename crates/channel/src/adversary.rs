//! The replay adversary of the paper's threat model.
//!
//! "At any instant, an adversary can insert in the message stream from p
//! to q a copy of any message t that was sent earlier by p." — §2.
//!
//! [`Tap`] records every message that crosses the link; replay strategies
//! pick which recorded copies to inject and in what order. Injection
//! itself goes back through the caller's link/simulator so replayed
//! traffic shares the normal delivery path.

use reset_sim::DetRng;

/// Passive recorder + active replayer sitting on a link.
///
/// # Examples
///
/// ```
/// use reset_channel::Tap;
///
/// let mut tap = Tap::new();
/// tap.record("msg(1)");
/// tap.record("msg(2)");
/// // The §3 attack: after the receiver resets, replay the entire
/// // recorded history in order.
/// assert_eq!(tap.replay_all(), vec!["msg(1)", "msg(2)"]);
/// assert_eq!(tap.injected(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tap<M> {
    recorded: Vec<M>,
    injected: u64,
}

impl<M: Clone> Tap<M> {
    /// An empty tap.
    pub fn new() -> Self {
        Tap {
            recorded: Vec::new(),
            injected: 0,
        }
    }

    /// Records one message passing over the link.
    pub fn record(&mut self, msg: M) {
        self.recorded.push(msg);
    }

    /// Number of messages recorded so far.
    pub fn len(&self) -> usize {
        self.recorded.len()
    }

    /// True iff nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded.is_empty()
    }

    /// All recorded messages, oldest first.
    pub fn recorded(&self) -> &[M] {
        &self.recorded
    }

    /// Total messages injected across all replay calls.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Replays the full recorded history in original order — the §3
    /// attack after a receiver reset ("replay in order all the messages
    /// with sequence numbers within the range from 1 to x").
    pub fn replay_all(&mut self) -> Vec<M> {
        self.injected += self.recorded.len() as u64;
        self.recorded.clone()
    }

    /// Replays the recorded messages at indices `[from, to)` in order.
    pub fn replay_range(&mut self, from: usize, to: usize) -> Vec<M> {
        let to = to.min(self.recorded.len());
        let from = from.min(to);
        self.injected += (to - from) as u64;
        self.recorded[from..to].to_vec()
    }

    /// Replays the most recently recorded message — the §3 "both reset"
    /// attack injects the *highest* sequence number to shift the window.
    pub fn replay_latest(&mut self) -> Option<M> {
        let m = self.recorded.last().cloned();
        if m.is_some() {
            self.injected += 1;
        }
        m
    }

    /// Replays `count` uniformly random recorded messages (with
    /// replacement) — background replay noise for stress tests.
    pub fn replay_random(&mut self, count: usize, rng: &mut DetRng) -> Vec<M> {
        if self.recorded.is_empty() {
            return Vec::new();
        }
        self.injected += count as u64;
        (0..count)
            .map(|_| self.recorded[rng.below(self.recorded.len() as u64) as usize].clone())
            .collect()
    }

    /// Forgets everything recorded (e.g. after SA rekey makes old traffic
    /// useless to the adversary).
    pub fn clear(&mut self) {
        self.recorded.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut tap = Tap::new();
        for i in 0..5u32 {
            tap.record(i);
        }
        assert_eq!(tap.recorded(), &[0, 1, 2, 3, 4]);
        assert_eq!(tap.len(), 5);
    }

    #[test]
    fn replay_all_preserves_order_and_counts() {
        let mut tap = Tap::new();
        tap.record("a");
        tap.record("b");
        assert_eq!(tap.replay_all(), vec!["a", "b"]);
        assert_eq!(tap.replay_all(), vec!["a", "b"], "replay is repeatable");
        assert_eq!(tap.injected(), 4);
    }

    #[test]
    fn replay_range_clamps() {
        let mut tap = Tap::new();
        for i in 0..10u32 {
            tap.record(i);
        }
        assert_eq!(tap.replay_range(2, 5), vec![2, 3, 4]);
        assert_eq!(tap.replay_range(8, 100), vec![8, 9]);
        assert_eq!(tap.replay_range(7, 3), Vec::<u32>::new());
    }

    #[test]
    fn replay_latest_is_highest_recorded() {
        let mut tap = Tap::new();
        assert_eq!(tap.replay_latest(), None);
        tap.record(1u64);
        tap.record(99);
        assert_eq!(tap.replay_latest(), Some(99));
        assert_eq!(tap.injected(), 1);
    }

    #[test]
    fn replay_random_draws_from_recorded() {
        let mut tap = Tap::new();
        for i in 0..4u32 {
            tap.record(i);
        }
        let mut rng = DetRng::new(5);
        let picks = tap.replay_random(100, &mut rng);
        assert_eq!(picks.len(), 100);
        assert!(picks.iter().all(|p| *p < 4));
        assert_eq!(tap.injected(), 100);
    }

    #[test]
    fn replay_random_on_empty_is_empty() {
        let mut tap: Tap<u32> = Tap::new();
        let mut rng = DetRng::new(5);
        assert!(tap.replay_random(10, &mut rng).is_empty());
        assert_eq!(tap.injected(), 0);
    }

    #[test]
    fn clear_forgets_history() {
        let mut tap = Tap::new();
        tap.record(1u8);
        tap.clear();
        assert!(tap.is_empty());
        assert_eq!(tap.replay_latest(), None);
    }
}

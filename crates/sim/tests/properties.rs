//! Property-based tests of the simulation kernel: the determinism and
//! ordering guarantees every experiment in this repository rests on.

use proptest::prelude::*;

use reset_sim::{DetRng, SimTime, Simulator};

proptest! {
    /// Events always come out in non-decreasing time order, with FIFO
    /// tie-breaks for equal timestamps.
    #[test]
    fn events_delivered_in_order(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut sim = Simulator::new(0);
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut prev_t = None;
        while let Some((t, idx)) = sim.next_event() {
            prop_assert!(t >= last_time, "time went backwards");
            if prev_t == Some(t) {
                // FIFO among equal timestamps: scheduling index increases.
                prop_assert!(
                    seen_at_time.last().is_none_or(|&p| p < idx),
                    "FIFO violated at {t}"
                );
            } else {
                seen_at_time.clear();
            }
            seen_at_time.push(idx);
            prev_t = Some(t);
            last_time = t;
        }
        prop_assert_eq!(sim.processed(), times.len() as u64);
    }

    /// Cancellation removes exactly the cancelled events.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..1_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut sim = Simulator::new(0);
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, sim.schedule_at(SimTime::from_nanos(t), i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in &ids {
            if cancel_mask.get(*i).copied().unwrap_or(false) {
                prop_assert!(sim.cancel(*id));
            } else {
                expected.push(*i);
            }
        }
        let mut delivered: Vec<usize> = Vec::new();
        while let Some((_, idx)) = sim.next_event() {
            delivered.push(idx);
        }
        delivered.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(delivered, expected);
    }

    /// The same seed yields bit-identical random streams; different seeds
    /// diverge quickly.
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::new(seed.wrapping_add(1));
        let matches = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        prop_assert!(matches < 8, "distinct seeds should diverge");
    }

    /// Bounded generation is unbiased enough to hit every residue and
    /// never exceeds the bound.
    #[test]
    fn below_stays_in_bounds(seed in any::<u64>(), bound in 1u64..1_000) {
        let mut rng = DetRng::new(seed);
        for _ in 0..500 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    /// Forked streams never mirror their parent.
    #[test]
    fn forked_streams_independent(seed in any::<u64>()) {
        let mut parent = DetRng::new(seed);
        let mut child = parent.fork();
        let matches = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        prop_assert!(matches < 8);
    }
}

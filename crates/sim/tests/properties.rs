//! Property-style tests of the simulation kernel: the determinism and
//! ordering guarantees every experiment in this repository rests on.
//!
//! The offline build has no proptest, so cases are generated from the
//! crate's own seeded [`DetRng`] — many random instances per property,
//! fully reproducible from the literal seeds below.

use reset_sim::{DetRng, SimTime, Simulator};

const CASES: u64 = 64;

/// Events always come out in non-decreasing time order, with FIFO
/// tie-breaks for equal timestamps.
#[test]
fn events_delivered_in_order() {
    let mut gen = DetRng::new(0x5EED_0001);
    for case in 0..CASES {
        let n = 1 + gen.below(200) as usize;
        let times: Vec<u64> = (0..n).map(|_| gen.below(10_000)).collect();
        let mut sim = Simulator::new(0);
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut prev_t = None;
        while let Some((t, idx)) = sim.next_event() {
            assert!(t >= last_time, "case {case}: time went backwards");
            if prev_t == Some(t) {
                // FIFO among equal timestamps: scheduling index increases.
                assert!(
                    seen_at_time.last().is_none_or(|&p| p < idx),
                    "case {case}: FIFO violated at {t}"
                );
            } else {
                seen_at_time.clear();
            }
            seen_at_time.push(idx);
            prev_t = Some(t);
            last_time = t;
        }
        assert_eq!(sim.processed(), times.len() as u64);
    }
}

/// Cancellation removes exactly the cancelled events.
#[test]
fn cancellation_is_exact() {
    let mut gen = DetRng::new(0x5EED_0002);
    for case in 0..CASES {
        let n = 1 + gen.below(100) as usize;
        let times: Vec<u64> = (0..n).map(|_| gen.below(1_000)).collect();
        let cancel_mask: Vec<bool> = (0..n).map(|_| gen.chance(0.5)).collect();
        let mut sim = Simulator::new(0);
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, sim.schedule_at(SimTime::from_nanos(t), i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in &ids {
            if cancel_mask[*i] {
                assert!(sim.cancel(*id), "case {case}: cancel failed");
            } else {
                expected.push(*i);
            }
        }
        let mut delivered: Vec<usize> = Vec::new();
        while let Some((_, idx)) = sim.next_event() {
            delivered.push(idx);
        }
        delivered.sort_unstable();
        expected.sort_unstable();
        assert_eq!(delivered, expected, "case {case}");
    }
}

/// The same seed yields bit-identical random streams; different seeds
/// diverge quickly.
#[test]
fn rng_determinism() {
    let mut gen = DetRng::new(0x5EED_0003);
    for _ in 0..CASES {
        let seed = gen.next_u64();
        let mut a = DetRng::new(seed);
        let mut b = DetRng::new(seed);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::new(seed.wrapping_add(1));
        let matches = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(matches < 8, "distinct seeds should diverge");
    }
}

/// Bounded generation never exceeds the bound.
#[test]
fn below_stays_in_bounds() {
    let mut gen = DetRng::new(0x5EED_0004);
    for _ in 0..CASES {
        let seed = gen.next_u64();
        let bound = 1 + gen.below(999);
        let mut rng = DetRng::new(seed);
        for _ in 0..500 {
            assert!(rng.below(bound) < bound);
        }
    }
}

/// Forked streams never mirror their parent.
#[test]
fn forked_streams_independent() {
    let mut gen = DetRng::new(0x5EED_0005);
    for _ in 0..CASES {
        let mut parent = DetRng::new(gen.next_u64());
        let mut child = parent.fork();
        let matches = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert!(matches < 8);
    }
}

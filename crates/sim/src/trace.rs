//! Bounded execution trace for debugging simulated runs.
//!
//! A [`TraceLog`] records `(time, tag, detail)` rows in a ring buffer so
//! long experiments keep only the most recent history. Traces are for
//! humans; assertions belong in the convergence monitors, not here.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// One recorded trace row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time at which the event was recorded.
    pub at: SimTime,
    /// Short machine-friendly tag (e.g. `"send"`, `"reset"`).
    pub tag: &'static str,
    /// Free-form human detail.
    pub detail: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12}] {:<10} {}",
            self.at.to_string(),
            self.tag,
            self.detail
        )
    }
}

/// Ring-buffered trace log.
///
/// # Examples
///
/// ```
/// use reset_sim::{SimTime, TraceLog};
///
/// let mut log = TraceLog::with_capacity(2);
/// log.record(SimTime::from_nanos(1), "send", "msg(1)");
/// log.record(SimTime::from_nanos(2), "recv", "msg(1)");
/// log.record(SimTime::from_nanos(3), "send", "msg(2)");
/// assert_eq!(log.len(), 2); // the first entry was evicted
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

impl TraceLog {
    /// A log retaining at most `capacity` recent entries.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceLog {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// A disabled log: `record` becomes a no-op. Useful for benches.
    pub fn disabled() -> Self {
        TraceLog {
            entries: VecDeque::new(),
            capacity: 0,
            dropped: 0,
            enabled: false,
        }
    }

    /// Records one row (evicting the oldest if at capacity).
    pub fn record(&mut self, at: SimTime, tag: &'static str, detail: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            at,
            tag,
            detail: detail.into(),
        });
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Entries whose tag equals `tag`.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a TraceEntry> {
        self.entries.iter().filter(move |e| e.tag == tag)
    }

    /// Renders the retained trace as one line per entry.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier entries dropped ...\n",
                self.dropped
            ));
        }
        for e in &self.entries {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_iterates_in_order() {
        let mut log = TraceLog::with_capacity(10);
        log.record(SimTime::from_nanos(1), "a", "one");
        log.record(SimTime::from_nanos(2), "b", "two");
        let tags: Vec<_> = log.iter().map(|e| e.tag).collect();
        assert_eq!(tags, vec!["a", "b"]);
    }

    #[test]
    fn evicts_oldest_beyond_capacity() {
        let mut log = TraceLog::with_capacity(2);
        for i in 0..5 {
            log.record(SimTime::from_nanos(i), "t", format!("{i}"));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let details: Vec<_> = log.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["3", "4"]);
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.record(SimTime::ZERO, "x", "ignored");
        assert!(log.is_empty());
    }

    #[test]
    fn with_tag_filters() {
        let mut log = TraceLog::with_capacity(8);
        log.record(SimTime::ZERO, "send", "1");
        log.record(SimTime::ZERO, "recv", "1");
        log.record(SimTime::ZERO, "send", "2");
        assert_eq!(log.with_tag("send").count(), 2);
        assert_eq!(log.with_tag("recv").count(), 1);
    }

    #[test]
    fn render_mentions_dropped() {
        let mut log = TraceLog::with_capacity(1);
        log.record(SimTime::ZERO, "a", "x");
        log.record(SimTime::ZERO, "b", "y");
        let s = log.render();
        assert!(s.contains("1 earlier entries dropped"));
        assert!(s.contains('y'));
    }
}

//! Small online statistics helpers used by experiments and monitors.

/// Online summary of a stream of `u64` samples (count / min / max / mean).
///
/// # Examples
///
/// ```
/// use reset_sim::Summary;
///
/// let mut s = Summary::new();
/// for v in [2u64, 4, 6] {
///     s.add(v);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.min(), Some(2));
/// assert_eq!(s.max(), Some(6));
/// assert!((s.mean() - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: u64,
    sum: u128,
    min: Option<u64>,
    max: Option<u64>,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, v: u64) {
        self.count += 1;
        self.sum += v as u128;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl FromIterator<u64> for Summary {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.add(v);
        }
        s
    }
}

/// Fixed-bucket histogram over `u64` samples, used for gap and latency
/// distributions in the experiment reports.
#[derive(Debug, Clone)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
    summary: Summary,
}

impl Histogram {
    /// A histogram with `buckets` buckets of `bucket_width` each;
    /// samples beyond the last bucket land in an overflow bin.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width == 0` or `buckets == 0`.
    pub fn new(bucket_width: u64, buckets: usize) -> Self {
        assert!(bucket_width > 0 && buckets > 0, "degenerate histogram");
        Histogram {
            bucket_width,
            buckets: vec![0; buckets],
            overflow: 0,
            summary: Summary::new(),
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, v: u64) {
        self.summary.add(v);
        let idx = (v / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bucket `i` (covering `[i*w, (i+1)*w)`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Samples that fell beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The embedded summary statistics.
    pub fn summary(&self) -> &Summary {
        &self.summary
    }

    /// Approximate quantile (`q` in `[0,1]`) from bucket midpoints.
    /// Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let n = self.summary.count();
        if n == 0 {
            return None;
        }
        let target = ((n as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(i as u64 * self.bucket_width + self.bucket_width / 2);
            }
        }
        self.summary.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_tracks_extremes_and_mean() {
        let s: Summary = [5u64, 1, 9, 5].into_iter().collect();
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(9));
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a: Summary = [1u64, 2].into_iter().collect();
        let b: Summary = [10u64].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Some(10));
        assert_eq!(a.min(), Some(1));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Summary = [4u64].into_iter().collect();
        a.merge(&Summary::new());
        assert_eq!(a.count(), 1);
        assert_eq!(a.min(), Some(4));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10, 3); // [0,10) [10,20) [20,30)
        for v in [0u64, 5, 10, 29, 30, 1000] {
            h.add(v);
        }
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 1);
        assert_eq!(h.overflow(), 2);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(1, 100);
        for v in 0..100u64 {
            h.add(v);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((45..=55).contains(&median), "median={median}");
        assert_eq!(h.quantile(0.0), Some(0));
        assert!(h.quantile(1.0).unwrap() >= 99);
    }

    #[test]
    fn histogram_empty_quantile_none() {
        let h = Histogram::new(1, 1);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_width_panics() {
        let _ = Histogram::new(0, 1);
    }
}

//! # reset-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the execution substrate for the reproduction of
//! *Convergence of IPsec in Presence of Resets* (Huang, Gouda, Elnozahy).
//! The paper's guarantees are statements about orderings of sends,
//! receives, background SAVE completions and crash instants; a seeded
//! discrete-event simulator lets the experiments explore exactly those
//! orderings reproducibly.
//!
//! The pieces:
//!
//! * [`SimTime`] / [`SimDuration`] — virtual nanosecond clock.
//! * [`DetRng`] — a locally implemented xoshiro256++ generator so random
//!   streams are stable across toolchains; forkable per component.
//! * [`Simulator`] — time-ordered event queue with cancellation and
//!   deterministic FIFO tie-breaking.
//! * [`TraceLog`] — bounded human-readable execution traces.
//! * [`Summary`] / [`Histogram`] — online statistics for experiment
//!   reports.
//!
//! # Examples
//!
//! ```
//! use reset_sim::{ControlFlow, SimDuration, Simulator};
//!
//! // A two-event "protocol": a send and its delivery.
//! #[derive(Debug)]
//! enum Ev { Send(u64), Deliver(u64) }
//!
//! let mut sim = Simulator::new(0xC0FFEE);
//! sim.schedule_in(SimDuration::from_micros(1), Ev::Send(1));
//! let mut delivered = Vec::new();
//! sim.run(1_000, |sim, _, ev| {
//!     match ev {
//!         Ev::Send(s) => {
//!             sim.schedule_in(SimDuration::from_micros(40), Ev::Deliver(s));
//!         }
//!         Ev::Deliver(s) => delivered.push(s),
//!     }
//!     ControlFlow::Continue
//! });
//! assert_eq!(delivered, vec![1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rng;
mod simulator;
mod stats;
mod time;
mod trace;

pub use rng::DetRng;
pub use simulator::{ControlFlow, EventId, Simulator};
pub use stats::{Histogram, Summary};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEntry, TraceLog};

//! Deterministic random number generation.
//!
//! Every source of randomness in an experiment flows from a single
//! [`DetRng`] seeded at scenario construction, so that any run can be
//! reproduced exactly from its seed. The generator is xoshiro256++
//! seeded through SplitMix64, implemented locally so the stream is stable
//! regardless of external crate versions.

/// Deterministic PRNG (xoshiro256++ seeded via SplitMix64).
///
/// # Examples
///
/// ```
/// use reset_sim::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; uses Lemire's multiply-shift with
    /// rejection to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire's nearly-divisionless bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// Derives an independent child generator; used to give each component
    /// (link, adversary, workload) its own stream so adding draws to one
    /// does not perturb the others.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64() ^ 0xA5A5_5A5A_F0F0_0F0F)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        let n = xs.len();
        for i in (1..n).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Next raw 32-bit output (the high half of one 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should differ");
    }

    #[test]
    fn below_is_in_range() {
        let mut r = DetRng::new(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_small_range() {
        let mut r = DetRng::new(5);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut r = DetRng::new(11);
        for _ in 0..200 {
            let v = r.range_inclusive(10, 12);
            assert!((10..=12).contains(&v));
        }
        assert_eq!(r.range_inclusive(42, 42), 42);
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = DetRng::new(13);
        for _ in 0..1000 {
            let x = r.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::new(17);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_rate_roughly_matches() {
        let mut r = DetRng::new(19);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = DetRng::new(23);
        let mut c1 = root.fork();
        let mut c2 = root.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(29);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut r = DetRng::new(31);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn pick_returns_member() {
        let mut r = DetRng::new(37);
        let xs = [1, 2, 3];
        for _ in 0..20 {
            assert!(xs.contains(r.pick(&xs)));
        }
    }
}

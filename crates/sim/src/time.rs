//! Virtual time for the discrete-event simulator.
//!
//! Simulated time is a monotone 64-bit counter of **nanoseconds** starting
//! at zero. Wall-clock time never enters the simulation; experiments are
//! therefore bit-for-bit reproducible for a given seed.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of simulated time (nanoseconds since simulation start).
///
/// # Examples
///
/// ```
/// use reset_sim::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
///
/// # Examples
///
/// ```
/// use reset_sim::SimDuration;
///
/// assert_eq!(SimDuration::from_micros(100).as_nanos(), 100_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as an "infinitely far" deadline.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True iff this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// How many times `other` fits into `self` (integer division).
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub fn div_duration(self, other: SimDuration) -> u64 {
        assert!(!other.is_zero(), "division by zero duration");
        self.0 / other.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_micros(), 15);
        assert_eq!((t - SimTime::from_micros(10)).as_micros(), 5);
        let mut t2 = SimTime::ZERO;
        t2 += SimDuration::from_nanos(7);
        assert_eq!(t2.as_nanos(), 7);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a).as_nanos(), 4);
    }

    #[test]
    fn div_duration_counts() {
        let save = SimDuration::from_micros(100);
        let msg = SimDuration::from_micros(4);
        assert_eq!(save.div_duration(msg), 25);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = SimDuration::from_micros(1).div_duration(SimDuration::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(100)), "100.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn checked_add_overflow() {
        assert!(SimTime::MAX
            .checked_add(SimDuration::from_nanos(1))
            .is_none());
        assert!(SimTime::ZERO
            .checked_add(SimDuration::from_nanos(1))
            .is_some());
    }
}

//! The discrete-event simulation core.
//!
//! A [`Simulator`] owns a virtual clock and a priority queue of pending
//! events. Callers pump events with [`Simulator::next_event`]; handler
//! logic lives outside the simulator so that protocol state machines stay
//! pure and the simulator stays generic over the event type.
//!
//! Two events scheduled for the same instant are delivered in scheduling
//! order (FIFO tie-break), which keeps runs deterministic.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    id: EventId,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, id) pops
        // first. Equal times fall back to insertion order via the id.
        other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
    }
}

/// A deterministic discrete-event simulator generic over the event type.
///
/// # Examples
///
/// ```
/// use reset_sim::{SimDuration, Simulator};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Ping, Pong }
///
/// let mut sim = Simulator::new(1);
/// sim.schedule_in(SimDuration::from_micros(5), Ev::Pong);
/// sim.schedule_in(SimDuration::from_micros(1), Ev::Ping);
/// let (t1, e1) = sim.next_event().unwrap();
/// assert_eq!((t1.as_micros(), e1), (1, Ev::Ping));
/// let (t2, e2) = sim.next_event().unwrap();
/// assert_eq!((t2.as_micros(), e2), (5, Ev::Pong));
/// assert!(sim.next_event().is_none());
/// ```
#[derive(Debug)]
pub struct Simulator<E> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<E>>,
    cancelled: HashSet<EventId>,
    next_id: u64,
    rng: DetRng,
    processed: u64,
}

impl<E> Simulator<E> {
    /// Creates a simulator whose root RNG is seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_id: 0,
            rng: DetRng::new(seed),
            processed: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// The simulator's root RNG. Components should [`DetRng::fork`] their
    /// own stream from it at setup time.
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before [`Simulator::now`]).
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(at >= self.now, "cannot schedule into the past");
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.queue.push(Scheduled { at, id, event });
        id
    }

    /// Schedules `event` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules `event` at the current instant (delivered after any
    /// already-queued events for this instant).
    pub fn schedule_now(&mut self, event: E) -> EventId {
        self.schedule_at(self.now, event)
    }

    /// Cancels a pending event. Returns `true` if the event was still
    /// pending, `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        // Tombstone; the heap entry is skipped when popped.
        self.cancelled.insert(id)
    }

    /// Pops the next event, advancing the clock to its timestamp.
    /// Returns `None` when the queue is exhausted.
    pub fn next_event(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.queue.pop() {
            if self.cancelled.remove(&s.id) {
                continue;
            }
            debug_assert!(s.at >= self.now, "time must be monotone");
            self.now = s.at;
            self.processed += 1;
            return Some((s.at, s.event));
        }
        None
    }

    /// Peeks at the timestamp of the next (non-cancelled) event.
    pub fn peek_time(&self) -> Option<SimTime> {
        // The heap may have tombstones at the top; scan lazily without
        // mutating. Tombstones are rare so a linear scan over the top few
        // is acceptable; we do it by iterating in heap order.
        self.queue
            .iter()
            .filter(|s| !self.cancelled.contains(&s.id))
            .map(|s| s.at)
            .min()
    }

    /// Runs until the queue is exhausted, `handler` returns
    /// [`ControlFlow::Halt`], or `max_events` events have been processed.
    /// Returns the number of events handled.
    pub fn run<F>(&mut self, max_events: u64, mut handler: F) -> u64
    where
        F: FnMut(&mut Self, SimTime, E) -> ControlFlow,
    {
        let mut handled = 0;
        while handled < max_events {
            let Some((t, ev)) = self.next_event() else {
                break;
            };
            handled += 1;
            if handler(self, t, ev) == ControlFlow::Halt {
                break;
            }
        }
        handled
    }

    /// Runs until virtual time reaches `deadline` (events strictly after the
    /// deadline remain queued), the queue empties, or the handler halts.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Self, SimTime, E) -> ControlFlow,
    {
        let mut handled = 0;
        loop {
            match self.peek_time() {
                Some(t) if t <= deadline => {}
                _ => break,
            }
            let Some((t, ev)) = self.next_event() else {
                break;
            };
            handled += 1;
            if handler(self, t, ev) == ControlFlow::Halt {
                break;
            }
        }
        handled
    }
}

/// Tells [`Simulator::run`] whether to keep pumping events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlFlow {
    /// Keep processing events.
    Continue,
    /// Stop the run loop immediately.
    Halt,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Clone)]
    enum Ev {
        A,
        B,
        C,
    }

    #[test]
    fn delivers_in_time_order() {
        let mut sim = Simulator::new(0);
        sim.schedule_at(SimTime::from_nanos(30), Ev::C);
        sim.schedule_at(SimTime::from_nanos(10), Ev::A);
        sim.schedule_at(SimTime::from_nanos(20), Ev::B);
        let order: Vec<_> = std::iter::from_fn(|| sim.next_event())
            .map(|(_, e)| e)
            .collect();
        assert_eq!(order, vec![Ev::A, Ev::B, Ev::C]);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut sim = Simulator::new(0);
        sim.schedule_at(SimTime::from_nanos(5), Ev::A);
        sim.schedule_at(SimTime::from_nanos(5), Ev::B);
        sim.schedule_at(SimTime::from_nanos(5), Ev::C);
        let order: Vec<_> = std::iter::from_fn(|| sim.next_event())
            .map(|(_, e)| e)
            .collect();
        assert_eq!(order, vec![Ev::A, Ev::B, Ev::C]);
    }

    #[test]
    fn clock_advances_to_event_time() {
        let mut sim = Simulator::new(0);
        sim.schedule_in(SimDuration::from_micros(7), Ev::A);
        let (t, _) = sim.next_event().unwrap();
        assert_eq!(t.as_micros(), 7);
        assert_eq!(sim.now().as_micros(), 7);
    }

    #[test]
    fn cancellation_suppresses_delivery() {
        let mut sim = Simulator::new(0);
        let a = sim.schedule_at(SimTime::from_nanos(1), Ev::A);
        sim.schedule_at(SimTime::from_nanos(2), Ev::B);
        assert!(sim.cancel(a));
        assert!(!sim.cancel(a), "double cancel is a no-op");
        let (_, e) = sim.next_event().unwrap();
        assert_eq!(e, Ev::B);
        assert!(sim.next_event().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim: Simulator<Ev> = Simulator::new(0);
        assert!(!sim.cancel(EventId(999)));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulator::new(0);
        sim.schedule_at(SimTime::from_nanos(10), Ev::A);
        let _ = sim.next_event();
        sim.schedule_at(SimTime::from_nanos(5), Ev::B);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulator::new(0);
        sim.schedule_at(SimTime::from_nanos(1), Ev::A);
        sim.schedule_at(SimTime::from_nanos(2), Ev::B);
        sim.schedule_at(SimTime::from_nanos(10), Ev::C);
        let mut seen = Vec::new();
        sim.run_until(SimTime::from_nanos(5), |_, _, e| {
            seen.push(e);
            ControlFlow::Continue
        });
        assert_eq!(seen, vec![Ev::A, Ev::B]);
        assert_eq!(sim.pending(), 1, "C stays queued");
    }

    #[test]
    fn run_halts_on_request() {
        let mut sim = Simulator::new(0);
        for i in 0..10 {
            sim.schedule_at(SimTime::from_nanos(i), Ev::A);
        }
        let handled = sim.run(u64::MAX, |_, t, _| {
            if t.as_nanos() >= 3 {
                ControlFlow::Halt
            } else {
                ControlFlow::Continue
            }
        });
        assert_eq!(handled, 4);
    }

    #[test]
    fn handler_may_schedule_more_events() {
        let mut sim = Simulator::new(0);
        sim.schedule_at(SimTime::from_nanos(1), 0u32);
        let mut total = 0;
        sim.run(u64::MAX, |sim, _, n| {
            total += 1;
            if n < 5 {
                sim.schedule_in(SimDuration::from_nanos(1), n + 1);
            }
            ControlFlow::Continue
        });
        assert_eq!(total, 6);
        assert_eq!(sim.now().as_nanos(), 6);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut sim = Simulator::new(0);
        let a = sim.schedule_at(SimTime::from_nanos(1), Ev::A);
        sim.schedule_at(SimTime::from_nanos(4), Ev::B);
        sim.cancel(a);
        assert_eq!(sim.peek_time(), Some(SimTime::from_nanos(4)));
    }

    #[test]
    fn pending_counts_exclude_cancelled() {
        let mut sim = Simulator::new(0);
        let a = sim.schedule_at(SimTime::from_nanos(1), Ev::A);
        sim.schedule_at(SimTime::from_nanos(2), Ev::B);
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
    }
}

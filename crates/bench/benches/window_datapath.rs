//! Bench: anti-replay window datapath throughput.
//!
//! The per-packet cost of the §2 receiver — check + accept — across
//! window sizes and traffic patterns (in-order, in-window reorder, full
//! replay). Regenerates the datapath side of the paper's premise that the
//! window check is negligible next to a 4 µs message time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use anti_replay::{AntiReplayWindow, BlockWindow, SeqNum};
use reset_sim::DetRng;

fn bench_in_order(c: &mut Criterion) {
    let mut g = c.benchmark_group("window/in_order");
    for &w in &[32u64, 64, 256, 1024] {
        g.throughput(Throughput::Elements(10_000));
        g.bench_with_input(BenchmarkId::from_parameter(w), &w, |b, &w| {
            b.iter(|| {
                let mut win = AntiReplayWindow::new(w);
                for s in 1..=10_000u64 {
                    std::hint::black_box(win.check_and_accept(SeqNum::new(s)));
                }
                win
            })
        });
    }
    g.finish();
}

fn bench_reordered(c: &mut Criterion) {
    let mut g = c.benchmark_group("window/reordered");
    for &w in &[64u64, 1024] {
        // Pre-generate a stream shuffled within half-window chunks so
        // every arrival stays in-window (reorder degree < w).
        let mut rng = DetRng::new(9);
        let mut seqs: Vec<u64> = (1..=10_000u64).collect();
        for chunk in seqs.chunks_mut((w as usize / 2).max(2)) {
            rng.shuffle(chunk);
        }
        g.throughput(Throughput::Elements(seqs.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(w), &seqs, |b, seqs| {
            b.iter(|| {
                let mut win = AntiReplayWindow::new(w);
                for &s in seqs {
                    std::hint::black_box(win.check_and_accept(SeqNum::new(s)));
                }
                win
            })
        });
    }
    g.finish();
}

fn bench_replay_storm(c: &mut Criterion) {
    // Worst case for the defender: every packet is a replay (pure
    // rejection path, no window mutation).
    let mut g = c.benchmark_group("window/replay_storm");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("w=64", |b| {
        let mut win = AntiReplayWindow::new(64);
        for s in 1..=100u64 {
            win.check_and_accept(SeqNum::new(s));
        }
        b.iter(|| {
            for s in 1..=10_000u64 {
                std::hint::black_box(win.check(SeqNum::new(s % 100 + 1)));
            }
        })
    });
    g.finish();
}

fn bench_block_window(c: &mut Criterion) {
    // RFC 6479-style block window vs the reference bitmap, in-order
    // stream: the block variant's slide is O(blocks), the reference's is
    // O(bits); the crossover shows at larger windows.
    let mut g = c.benchmark_group("window/block_vs_reference");
    for &w in &[64u64, 1024, 4096] {
        g.throughput(Throughput::Elements(10_000));
        g.bench_with_input(BenchmarkId::new("reference", w), &w, |b, &w| {
            b.iter(|| {
                let mut win = AntiReplayWindow::new(w);
                for s in 1..=10_000u64 {
                    std::hint::black_box(win.check_and_accept(SeqNum::new(s)));
                }
                win
            })
        });
        g.bench_with_input(BenchmarkId::new("block", w), &w, |b, &w| {
            b.iter(|| {
                let mut win = BlockWindow::new(w);
                for s in 1..=10_000u64 {
                    std::hint::black_box(win.check_and_accept(SeqNum::new(s)));
                }
                win
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_in_order,
    bench_reordered,
    bench_replay_storm,
    bench_block_window
);
criterion_main!(benches);

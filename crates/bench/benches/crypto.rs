//! Bench: crypto substrate throughput (SHA-256, HMAC, keystream, modexp).
//!
//! Sanity numbers for the cost model used by t5: HMAC should be
//! microseconds or less (the paper's 4 µs/message datapath is feasible);
//! the 768-bit modular exponentiation should dominate by orders of
//! magnitude (the re-handshake cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use reset_crypto::{hmac_sha256_96, sha256, xor_keystream, BigUint, DhKeyPair};

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto/sha256");
    for &len in &[64usize, 1_000, 16_384] {
        let data = vec![0xA5u8; len];
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &data, |b, d| {
            b.iter(|| std::hint::black_box(sha256(d)))
        });
    }
    g.finish();
}

fn bench_hmac_1000b(c: &mut Criterion) {
    // The paper's canonical packet: 1000 bytes.
    let data = vec![0x5Au8; 1_000];
    let mut g = c.benchmark_group("crypto/hmac_96");
    g.throughput(Throughput::Bytes(1_000));
    g.bench_function("1000B", |b| {
        b.iter(|| std::hint::black_box(hmac_sha256_96(b"auth-key", &data)))
    });
    g.finish();
}

fn bench_keystream_1000b(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto/keystream");
    g.throughput(Throughput::Bytes(1_000));
    g.bench_function("1000B", |b| {
        let mut data = vec![0u8; 1_000];
        b.iter(|| {
            xor_keystream(b"enc-key", 42, &mut data);
            std::hint::black_box(&data);
        })
    });
    g.finish();
}

fn bench_modexp(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto/modexp");
    g.sample_size(10);
    g.bench_function("toy_64bit", |b| {
        let group = reset_crypto::toy_group();
        b.iter(|| DhKeyPair::from_secret(group.clone(), b"bench-secret"))
    });
    g.bench_function("oakley1_768bit_shared", |b| {
        let group = reset_crypto::oakley_group1();
        let kp = DhKeyPair::from_secret(group.clone(), b"bench-secret-a");
        let other = DhKeyPair::from_secret(group, b"bench-secret-b");
        let other_pub = BigUint::from_be_bytes(&other.public().to_be_bytes());
        b.iter(|| std::hint::black_box(kp.shared_secret(&other_pub)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac_1000b,
    bench_keystream_1000b,
    bench_modexp
);
criterion_main!(benches);

//! Bench: reset recovery — SAVE/FETCH wake-up vs ISAKMP re-handshake.
//!
//! The t5 cost comparison as wall-clock measurements: one FETCH + leap +
//! synchronous SAVE (in-memory and file-backed) against one full
//! simplified ISAKMP exchange with real OAKLEY group-1 Diffie–Hellman.
//! The expected shape: recovery is microseconds; the handshake is tens of
//! milliseconds of modular exponentiation before any network latency.

use criterion::{criterion_group, criterion_main, Criterion};

use anti_replay::SfSender;
use reset_crypto::{oakley_group1, toy_group};
use reset_ipsec::run_handshake;
use reset_stable::{Durability, FileStable, MemStable, SlotId};

fn bench_savefetch_recovery_mem(c: &mut Criterion) {
    c.bench_function("recovery/savefetch_mem", |b| {
        b.iter_batched(
            || {
                let mut p = SfSender::new(MemStable::new(), SlotId::sender(1), 25);
                for _ in 0..30 {
                    p.send_next().expect("store");
                }
                p.save_completed().expect("store");
                p.reset();
                p
            },
            |mut p| {
                p.wake_up().expect("store");
                p
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_savefetch_recovery_file(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("reset-bench-recovery-{}", std::process::id()));
    c.bench_function("recovery/savefetch_file", |b| {
        b.iter_batched(
            || {
                let store = FileStable::open(&dir, Durability::ProcessCrash).expect("tmp");
                let mut p = SfSender::new(store, SlotId::sender(1), 25);
                for _ in 0..30 {
                    p.send_next().expect("store");
                }
                p.save_completed().expect("store");
                p.reset();
                p
            },
            |mut p| {
                p.wake_up().expect("store");
                p
            },
            criterion::BatchSize::SmallInput,
        )
    });
    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_ike_handshake_toy(c: &mut Criterion) {
    // Toy group isolates the protocol machinery from bignum cost.
    c.bench_function("recovery/ike_handshake_toy64", |b| {
        b.iter(|| {
            run_handshake(toy_group(), b"psk", b"secret-i", b"secret-r", 1, 2).expect("handshake")
        })
    });
}

fn bench_ike_handshake_oakley1(c: &mut Criterion) {
    // The real 768-bit group the paper's era used; dominated by modexp.
    let mut g = c.benchmark_group("recovery/ike_handshake_oakley1");
    g.sample_size(10);
    g.bench_function("full", |b| {
        b.iter(|| {
            run_handshake(
                oakley_group1(),
                b"psk",
                b"initiator-secret-material",
                b"responder-secret-material",
                1,
                2,
            )
            .expect("handshake")
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_savefetch_recovery_mem,
    bench_savefetch_recovery_file,
    bench_ike_handshake_toy,
    bench_ike_handshake_oakley1
);
criterion_main!(benches);

//! Bench: the sharded gateway's batched receive path and reset
//! recovery, swept over worker-shard counts on a 256-SA fleet.
//!
//! Three benchmarks, each at shards ∈ {1, 2, 4, 8}:
//!
//! * `rx_fresh_4096f_256sa` — one 4096-frame NIC-queue drain of fresh
//!   traffic interleaved round-robin across 256 SAs (full pipeline:
//!   fan-out → per-shard batch verify → window → decrypt → event
//!   merge). The receiver fleet is rebuilt per iteration (setup off the
//!   clock) so every drain delivers.
//! * `rx_replay_4096f_256sa` — the same drain in replay steady state
//!   (authenticate + window reject, no decrypt): the in-window
//!   duplicate path a gateway burns CPU on under a replay storm.
//! * `recover_storm_256sa` — `reset()` + shard-parallel `recover()` of
//!   the whole fleet (FETCH + `2K` leap + synchronous SAVE on all 256
//!   SA directions).
//!
//! Shard scaling is a *core-count* lever: on an N-core host the 4-shard
//! drain approaches 4× one shard; on a single-core host (CI containers)
//! the sweep instead measures the fan-out + scoped-thread overhead,
//! which must stay small. `BENCH_datapath.json` records which kind of
//! host produced the recorded numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bytes::Bytes;
use reset_ipsec::{
    CryptoSuite, Gateway, GatewayBuilder, SaKeys, SecurityAssociation, ShardedGateway,
};
use reset_stable::MemStable;

const N_SAS: u32 = 256;
const FRAMES: usize = 4096;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn sa_for(spi: u32) -> SecurityAssociation {
    SecurityAssociation::new(
        spi,
        SaKeys::derive(b"shard-bench-master", &spi.to_be_bytes()),
    )
    .with_suite(CryptoSuite::default())
}

fn rx_fleet(shards: usize) -> ShardedGateway<MemStable> {
    let mut rx = GatewayBuilder::in_memory_sharded(shards)
        .save_interval(64)
        .window(64)
        .build_sharded();
    for spi in 1..=N_SAS {
        rx.install_inbound(sa_for(spi));
    }
    rx
}

/// 4096 sealed frames, 16 per SA, interleaved round-robin — the worst
/// case for per-SA run batching, the common case for a busy gateway.
fn sealed_frames() -> Vec<Bytes> {
    let mut tx: Gateway<MemStable> = GatewayBuilder::in_memory().save_interval(64).build();
    for spi in 1..=N_SAS {
        tx.install_outbound(sa_for(spi));
    }
    let payload = [0x5Au8; 64];
    (0..FRAMES)
        .map(|i| {
            let spi = 1 + (i as u32 % N_SAS);
            tx.protect(spi, &payload).unwrap().expect("tx up").wire
        })
        .collect()
}

fn bench_rx_fresh(c: &mut Criterion) {
    let frames = sealed_frames();
    let mut g = c.benchmark_group("gateway_shard/rx_fresh_4096f_256sa");
    g.throughput(Throughput::Elements(FRAMES as u64));
    g.sample_size(10);
    for shards in SHARD_COUNTS {
        g.bench_function(BenchmarkId::from_parameter(shards), |b| {
            b.iter_batched(
                || rx_fleet(shards),
                |mut rx| {
                    rx.push_wire_batch(&frames).unwrap();
                    rx.poll_events()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_rx_replay(c: &mut Criterion) {
    let frames = sealed_frames();
    let mut g = c.benchmark_group("gateway_shard/rx_replay_4096f_256sa");
    g.throughput(Throughput::Elements(FRAMES as u64));
    for shards in SHARD_COUNTS {
        let mut rx = rx_fleet(shards);
        // Warm delivery pass; every timed pass is then a pure replay
        // storm (authenticate + in-window duplicate reject).
        rx.push_wire_batch(&frames).unwrap();
        rx.poll_events();
        g.bench_function(BenchmarkId::from_parameter(shards), |b| {
            b.iter(|| {
                rx.push_wire_batch(&frames).unwrap();
                rx.poll_events()
            })
        });
    }
    g.finish();
}

fn bench_recover_storm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gateway_shard/recover_storm_256sa");
    g.throughput(Throughput::Elements(N_SAS as u64));
    g.sample_size(10);
    for shards in SHARD_COUNTS {
        g.bench_function(BenchmarkId::from_parameter(shards), |b| {
            b.iter_batched(
                || {
                    let mut rx = rx_fleet(shards);
                    rx.reset();
                    rx
                },
                |mut rx| {
                    let sas = rx.recover().unwrap();
                    assert_eq!(sas, N_SAS as usize);
                    rx.poll_events()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_rx_fresh,
    bench_rx_replay,
    bench_recover_storm
);
criterion_main!(benches);

//! Bench: the sharded gateway's batched receive path and reset
//! recovery on the persistent worker-pool runtime, swept over
//! worker-shard counts on a 256-SA fleet.
//!
//! Four benchmarks, each at shards ∈ {1, 2, 4, 8} plus a
//! `plain_gateway` baseline (the unsharded [`Gateway`], same fleet —
//! the parity bar the pool must meet on one core):
//!
//! * `rx_fresh_4096f_256sa` — one 4096-frame NIC-queue drain of fresh
//!   traffic interleaved round-robin across 256 SAs (full pipeline:
//!   fan-out → per-shard batch verify → window → decrypt → event
//!   merge). The receiver fleet and its worker pool are built **once,
//!   outside the measured closure**; each iteration's input is a
//!   freshly sealed batch with advancing sequence numbers (sealed in
//!   the setup half of `iter_batched`, off the clock), so every timed
//!   drain delivers without ever reconstructing — or re-spawning — the
//!   pool.
//! * `rx_replay_4096f_256sa` — the same drain in replay steady state
//!   (authenticate + window reject, no decrypt): the in-window
//!   duplicate path a gateway burns CPU on under a replay storm.
//! * `recover_storm_256sa` — `reset()` + shard-parallel `recover()` of
//!   the whole fleet (FETCH + `2K` leap + synchronous SAVE on all 256
//!   SA directions) on the persistent pool. Before the pool this group
//!   isolated the scoped spawn-per-verb cost (~30 µs/thread on the CI
//!   kernel); now it must sit at parity or better vs `plain_gateway`
//!   even on one core.
//! * `pipeline_8x512f_256sa` — seal-then-drain of eight 512-frame
//!   chunks: `sync_push` seals each chunk and then blocks in
//!   `push_wire_batch`; `submit_drain` overlaps sealing chunk *i+1*
//!   with the shards draining chunk *i* via `submit_batch` /
//!   `drain_events`. On a multi-core host the overlap hides the seal
//!   cost; on one core it measures the queueing overhead of the split.
//!
//! Shard scaling is a *core-count* lever: on an N-core host the 4-shard
//! drain approaches 4× one shard; on a single-core host (CI containers)
//! the sweep instead measures the pool machinery — fan-out, queue
//! round-trips, deterministic event merge — which must stay small.
//! `BENCH_datapath.json` records `cores` with every entry so readers
//! know which kind of host produced the numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bytes::Bytes;
use reset_ipsec::{
    CryptoSuite, Gateway, GatewayBuilder, SaKeys, SecurityAssociation, ShardedGateway,
};
use reset_stable::MemStable;

const N_SAS: u32 = 256;
const FRAMES: usize = 4096;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn sa_for(spi: u32) -> SecurityAssociation {
    SecurityAssociation::new(
        spi,
        SaKeys::derive(b"shard-bench-master", &spi.to_be_bytes()),
    )
    .with_suite(CryptoSuite::default())
}

fn rx_fleet(shards: usize) -> ShardedGateway<MemStable> {
    let mut rx = GatewayBuilder::in_memory_sharded(shards)
        .save_interval(64)
        .window(64)
        .build_sharded();
    for spi in 1..=N_SAS {
        rx.install_inbound(sa_for(spi));
    }
    rx
}

fn plain_rx_fleet() -> Gateway<MemStable> {
    let mut rx = GatewayBuilder::in_memory()
        .save_interval(64)
        .window(64)
        .build();
    for spi in 1..=N_SAS {
        rx.install_inbound(sa_for(spi));
    }
    rx
}

fn tx_fleet() -> Gateway<MemStable> {
    let mut tx: Gateway<MemStable> = GatewayBuilder::in_memory().save_interval(64).build();
    for spi in 1..=N_SAS {
        tx.install_outbound(sa_for(spi));
    }
    tx
}

/// Seals the next `n` frames from the persistent sender fleet,
/// round-robin across the 256 SAs — sequence numbers keep advancing,
/// so consecutive batches are always fresh to any receiver that has
/// seen the earlier ones.
fn seal_batch(tx: &mut Gateway<MemStable>, n: usize) -> Vec<Bytes> {
    let payload = [0x5Au8; 64];
    (0..n)
        .map(|i| {
            let spi = 1 + (i as u32 % N_SAS);
            tx.protect(spi, &payload).unwrap().expect("tx up").wire
        })
        .collect()
}

fn bench_rx_fresh(c: &mut Criterion) {
    let mut g = c.benchmark_group("gateway_shard/rx_fresh_4096f_256sa");
    g.throughput(Throughput::Elements(FRAMES as u64));
    g.sample_size(10);
    {
        let mut tx = tx_fleet();
        let mut rx = plain_rx_fleet();
        g.bench_function("plain_gateway", |b| {
            b.iter_batched(
                || seal_batch(&mut tx, FRAMES),
                |frames| {
                    rx.push_wire_batch(&frames).unwrap();
                    rx.poll_events()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    for shards in SHARD_COUNTS {
        // The pool spawns here, once; only seal (setup, off the clock)
        // and drain (routine) happen per iteration.
        let mut tx = tx_fleet();
        let mut rx = rx_fleet(shards);
        g.bench_function(BenchmarkId::from_parameter(shards), |b| {
            b.iter_batched(
                || seal_batch(&mut tx, FRAMES),
                |frames| {
                    rx.push_wire_batch(&frames).unwrap();
                    rx.poll_events()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_rx_replay(c: &mut Criterion) {
    let frames = seal_batch(&mut tx_fleet(), FRAMES);
    let mut g = c.benchmark_group("gateway_shard/rx_replay_4096f_256sa");
    g.throughput(Throughput::Elements(FRAMES as u64));
    {
        let mut rx = plain_rx_fleet();
        rx.push_wire_batch(&frames).unwrap();
        rx.poll_events();
        g.bench_function("plain_gateway", |b| {
            b.iter(|| {
                rx.push_wire_batch(&frames).unwrap();
                rx.poll_events()
            })
        });
    }
    for shards in SHARD_COUNTS {
        let mut rx = rx_fleet(shards);
        // Warm delivery pass; every timed pass is then a pure replay
        // storm (authenticate + in-window duplicate reject).
        rx.push_wire_batch(&frames).unwrap();
        rx.poll_events();
        g.bench_function(BenchmarkId::from_parameter(shards), |b| {
            b.iter(|| {
                rx.push_wire_batch(&frames).unwrap();
                rx.poll_events()
            })
        });
    }
    g.finish();
}

fn bench_recover_storm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gateway_shard/recover_storm_256sa");
    g.throughput(Throughput::Elements(N_SAS as u64));
    g.sample_size(10);
    {
        let mut rx = plain_rx_fleet();
        g.bench_function("plain_gateway", |b| {
            b.iter(|| {
                rx.reset();
                let sas = rx.recover().unwrap();
                assert_eq!(sas, N_SAS as usize);
                rx.poll_events()
            })
        });
    }
    for shards in SHARD_COUNTS {
        // Built once: reset + recover cycle on the persistent pool is
        // the entire measured region — no construction, no spawn, no
        // drop inside the closure.
        let mut rx = rx_fleet(shards);
        g.bench_function(BenchmarkId::from_parameter(shards), |b| {
            b.iter(|| {
                rx.reset();
                let sas = rx.recover().unwrap();
                assert_eq!(sas, N_SAS as usize);
                rx.poll_events()
            })
        });
    }
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    const CHUNK: usize = 512;
    const CHUNKS: usize = 8;
    let mut g = c.benchmark_group("gateway_shard/pipeline_8x512f_256sa");
    g.throughput(Throughput::Elements((CHUNK * CHUNKS) as u64));
    g.sample_size(10);
    for shards in [1usize, 4] {
        {
            let mut tx = tx_fleet();
            let mut rx = rx_fleet(shards);
            g.bench_function(BenchmarkId::new("sync_push", shards), |b| {
                b.iter(|| {
                    for _ in 0..CHUNKS {
                        let chunk = seal_batch(&mut tx, CHUNK);
                        rx.push_wire_batch(&chunk).unwrap();
                    }
                    rx.poll_events()
                })
            });
        }
        {
            let mut tx = tx_fleet();
            let mut rx = rx_fleet(shards);
            g.bench_function(BenchmarkId::new("submit_drain", shards), |b| {
                b.iter(|| {
                    // Seal chunk i+1 while the shards drain chunk i;
                    // one barrier at the end collects everything.
                    for _ in 0..CHUNKS {
                        let chunk = seal_batch(&mut tx, CHUNK);
                        rx.submit_batch(&chunk);
                    }
                    rx.drain_events().unwrap()
                })
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_rx_fresh,
    bench_rx_replay,
    bench_recover_storm,
    bench_pipeline
);
criterion_main!(benches);

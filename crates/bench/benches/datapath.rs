//! Bench: the rebuilt ESP receive datapath.
//!
//! One benchmark per optimization of the fast-path PR, each phrased as
//! before/after so the speedup is read straight off the report:
//!
//! * `icv_64B` — per-packet HMAC-SHA-256-96 with the one-shot key
//!   schedule vs the SA's precomputed [`HmacKey`] (claim: ≥1.5× on
//!   64-byte payloads).
//! * `sha256` — the one-shot hash at 64B and 4KiB, tracking the
//!   2×-unrolled compression loop.
//! * `icv_batch_64B` — per-packet `verify_frame` vs the HMAC suite's
//!   amortized `verify_batch` over a 512-frame SA queue.
//! * `suite_rx` — the batched receive pipeline per negotiable cipher
//!   suite (legacy HMAC+keystream, auth-only, ChaCha20-Poly1305),
//!   pinned to the scalar crypto backend so the CI-gated numbers are
//!   comparable across hosts.
//! * `suite_rx_<backend>` — the same pipeline per SIMD backend
//!   supported on this host (`lanes4`, `avx2`). Advisory in the gate:
//!   their baseline entries carry a `backend` field and are skipped on
//!   runners lacking the feature.
//! * `wire_64B` — `seal`/`open` (key schedule + payload copy) vs
//!   `seal_into`/`open_zc` (reused buffer, zero-copy payload).
//! * `rx_pipeline` — a full `Inbound` receive of a 64-byte packet:
//!   verify → window → decrypt-into-recycled-arena.
//! * `gateway_drain` — `Sadb::process` per packet vs
//!   `Sadb::process_batch` over a 512-packet NIC queue.
//! * `telemetry_overhead` — a full `Gateway::push_wire_batch` +
//!   `poll_events` drain with no telemetry handle vs an attached one
//!   (claim: the uninstrumented path costs the same — every recording
//!   site is one `Option` branch — and instrumentation itself stays
//!   within noise of the drain).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bytes::{Bytes, BytesMut};
use reset_crypto::{hmac_sha256_96, sha256, CipherSuite, FrameToVerify, HmacKey, HmacSha256Suite};
use reset_ipsec::{
    Backend, CryptoSuite, GatewayBuilder, Inbound, Outbound, SaKeys, Sadb, SecurityAssociation,
};
use reset_stable::MemStable;
use reset_telemetry::Telemetry;
use reset_wire::{open, open_zc, seal, seal_into, seal_with, verify_frame, HEADER_LEN, ICV_LEN};

const KEY: &[u8] = b"datapath-bench-auth-key-32bytes!";

fn bench_icv_64b(c: &mut Criterion) {
    let msg = [0xA5u8; 64];
    let mut g = c.benchmark_group("datapath/icv_64B");
    g.throughput(Throughput::Bytes(64));
    g.bench_function("oneshot_keyschedule", |b| {
        b.iter(|| std::hint::black_box(hmac_sha256_96(KEY, &msg)))
    });
    let hk = HmacKey::new(KEY);
    g.bench_function("precomputed_key", |b| {
        b.iter(|| std::hint::black_box(hk.mac_96(&msg)))
    });
    g.finish();
}

fn bench_sha256(c: &mut Criterion) {
    // The SHA-256 compression loop is the bottom of every ICV and
    // keystream cost in the pipeline; benchmarked one-shot at a
    // single-block-ish and a streaming size.
    let mut g = c.benchmark_group("datapath/sha256");
    for len in [64usize, 4096] {
        let data = vec![0x6Bu8; len];
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_function(BenchmarkId::new("oneshot", format!("{len}B")), |b| {
            b.iter(|| std::hint::black_box(sha256(&data)))
        });
    }
    g.finish();
}

fn bench_icv_batch(c: &mut Criterion) {
    // Verifying a whole SA's pending queue: per-packet `verify_frame`
    // vs the suite's amortized `verify_batch`.
    const BATCH: usize = 512;
    let hk = HmacKey::new(KEY);
    let frames: Vec<Bytes> = (1..=BATCH)
        .map(|i| seal_with(9, i as u64, &[0xB7u8; 64], &hk, false).unwrap())
        .collect();
    let mut g = c.benchmark_group("datapath/icv_batch_64B");
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function("sequential_verify", |b| {
        b.iter(|| {
            let mut ok = 0usize;
            for f in &frames {
                if verify_frame(f, &hk, None).is_ok() {
                    ok += 1;
                }
            }
            assert_eq!(ok, BATCH);
            std::hint::black_box(ok)
        })
    });
    let suite = HmacSha256Suite::auth_only(KEY);
    let items: Vec<FrameToVerify<'_>> = frames
        .iter()
        .map(|f| FrameToVerify {
            seq: u32::from_be_bytes(f[4..8].try_into().unwrap()) as u64,
            header: &f[..HEADER_LEN],
            ciphertext: &f[HEADER_LEN..f.len() - ICV_LEN],
            esn_hi: None,
            icv: &f[f.len() - ICV_LEN..],
        })
        .collect();
    g.bench_function("verify_batch", |b| {
        let mut ok: Vec<bool> = Vec::with_capacity(BATCH);
        b.iter(|| {
            suite.verify_batch(&items, &mut ok);
            assert!(ok.iter().all(|&v| v));
            std::hint::black_box(ok.len())
        })
    });
    g.finish();
}

fn suite_rx_group(c: &mut Criterion, group: &str, backend: Backend) {
    // The per-suite receive pipeline: batched drain of a 1024-packet
    // in-order stream per negotiable suite (the harness `suites`
    // experiment's hot loop, pinned here for the perf trajectory).
    const STREAM: usize = 1024;
    let mut g = c.benchmark_group(group);
    g.throughput(Throughput::Elements(STREAM as u64));
    for &suite in CryptoSuite::ALL {
        let keys = SaKeys::derive(b"suite-bench", b"d");
        let sa = SecurityAssociation::new(0x5111, keys)
            .with_suite(suite)
            .with_backend(backend);
        let mut tx = Outbound::new(sa.clone(), MemStable::new(), 1 << 40);
        let wires: Vec<Bytes> = (0..STREAM)
            .map(|_| tx.protect(&[0xC3u8; 64]).unwrap().unwrap())
            .collect();
        let name = sa.cipher().name();
        g.bench_function(BenchmarkId::new("process_batch_64B", name), |b| {
            b.iter(|| {
                let mut rx = Inbound::new(sa.clone(), MemStable::new(), 1 << 40, 1024);
                std::hint::black_box(rx.process_batch(&wires).unwrap())
            })
        });
    }
    // MTU-sized AEAD frames: the entry where the multi-lane backend
    // pays off most — bulk ChaCha20 dominates, so the same-key lane
    // mode and cross-packet OTK batching carry the whole pipeline.
    {
        let keys = SaKeys::derive(b"suite-bench", b"d");
        let sa = SecurityAssociation::new(0x5112, keys)
            .with_suite(CryptoSuite::ChaCha20Poly1305)
            .with_backend(backend);
        let mut tx = Outbound::new(sa.clone(), MemStable::new(), 1 << 40);
        let wires: Vec<Bytes> = (0..STREAM)
            .map(|_| tx.protect(&[0xC3u8; 1400]).unwrap().unwrap())
            .collect();
        let name = sa.cipher().name();
        g.bench_function(BenchmarkId::new("process_batch_1400B", name), |b| {
            b.iter(|| {
                let mut rx = Inbound::new(sa.clone(), MemStable::new(), 1 << 40, 1024);
                std::hint::black_box(rx.process_batch(&wires).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_suite_rx(c: &mut Criterion) {
    // The gated group runs on the scalar backend so its numbers mean
    // the same thing on every runner; the production datapath still
    // auto-detects (Backend::select).
    suite_rx_group(c, "datapath/suite_rx", Backend::Scalar);
}

fn bench_suite_rx_backends(c: &mut Criterion) {
    // One advisory group per SIMD backend the host supports. Absent
    // backends simply produce no results; bench_check skips their
    // baseline entries with a notice instead of failing completeness.
    for backend in Backend::ALL {
        if backend == Backend::Scalar || !backend.is_supported() {
            continue;
        }
        let group = format!("datapath/suite_rx_{backend}");
        suite_rx_group(c, &group, backend);
    }
}

fn bench_wire_64b(c: &mut Criterion) {
    let payload = [0x5Au8; 64];
    let hk = HmacKey::new(KEY);
    let mut g = c.benchmark_group("datapath/wire_64B");
    g.throughput(Throughput::Elements(1));
    g.bench_function("seal", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            std::hint::black_box(seal(7, seq, &payload, KEY, false).unwrap())
        })
    });
    g.bench_function("seal_into_reused_buf", |b| {
        let mut buf = BytesMut::with_capacity(256);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            seal_into(&mut buf, 7, seq, &payload, &hk, false).unwrap();
            std::hint::black_box(buf.len())
        })
    });
    let wire = seal_with(7, 42, &payload, &hk, false).unwrap();
    g.bench_function("open", |b| {
        b.iter(|| std::hint::black_box(open(&wire, KEY, None).unwrap()))
    });
    g.bench_function("open_zc_precomputed", |b| {
        b.iter(|| std::hint::black_box(open_zc(&wire, &hk, None).unwrap()))
    });
    g.finish();
}

fn bench_rx_pipeline(c: &mut Criterion) {
    // Full inbound pipeline on an in-order stream of 64-byte payloads:
    // ICV verify, ESN reconstruction, window accept, decrypt into the
    // recycled arena. Measured per packet, amortized over a stream.
    const STREAM: usize = 1024;
    let keys = SaKeys::derive(b"bench-secret", b"a->b");
    let sa = SecurityAssociation::new(0x7777, keys);
    let mut tx = Outbound::new(sa.clone(), MemStable::new(), 1 << 40);
    let wires: Vec<Bytes> = (0..STREAM)
        .map(|_| tx.protect(&[0xC3u8; 64]).unwrap().unwrap())
        .collect();
    let mut g = c.benchmark_group("datapath/rx_pipeline");
    g.throughput(Throughput::Elements(STREAM as u64));
    g.bench_function("process_64B", |b| {
        b.iter(|| {
            let mut rx = Inbound::new(sa.clone(), MemStable::new(), 1 << 40, 1024);
            for wire in &wires {
                std::hint::black_box(rx.process_bytes(wire).unwrap());
            }
            rx
        })
    });
    g.bench_function("process_batch_64B", |b| {
        b.iter(|| {
            let mut rx = Inbound::new(sa.clone(), MemStable::new(), 1 << 40, 1024);
            std::hint::black_box(rx.process_batch(&wires).unwrap())
        })
    });
    g.finish();
}

fn bench_gateway_drain(c: &mut Criterion) {
    // A gateway drains a 512-packet queue spread over 8 SAs (64-byte
    // payloads), arriving in bursts per SA as a NIC RSS queue would.
    const QUEUE: usize = 512;
    const SAS: u32 = 8;
    let fresh_db = || {
        let mut db: Sadb<MemStable> = Sadb::new();
        for spi in 1..=SAS {
            let keys = SaKeys::derive(b"gw-secret", &spi.to_be_bytes());
            db.install_outbound(
                SecurityAssociation::new(spi, keys.clone()),
                MemStable::new(),
                1 << 40,
            );
            db.install_inbound(
                SecurityAssociation::new(spi, keys),
                MemStable::new(),
                1 << 40,
                1024,
            );
        }
        db
    };
    let mut tx_db = fresh_db();
    let queue: Vec<Bytes> = (0..QUEUE)
        .map(|i| {
            let spi = 1 + (i as u32 / 16) % SAS; // bursts of 16 per SA
            tx_db.protect(spi, &[0xE1u8; 64]).unwrap().unwrap()
        })
        .collect();

    let mut g = c.benchmark_group("datapath/gateway_drain");
    g.throughput(Throughput::Elements(QUEUE as u64));
    g.bench_with_input(BenchmarkId::new("per_packet", QUEUE), &queue, |b, queue| {
        b.iter(|| {
            let mut db = fresh_db();
            for wire in queue {
                std::hint::black_box(db.process(wire).unwrap());
            }
            db
        })
    });
    g.bench_with_input(
        BenchmarkId::new("process_batch", QUEUE),
        &queue,
        |b, queue| {
            b.iter(|| {
                let mut db = fresh_db();
                std::hint::black_box(db.process_batch(queue).unwrap())
            })
        },
    );
    g.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    // The full engine-level drain (push_wire_batch + poll_events) of a
    // 512-packet queue over 8 SAs, with and without a telemetry handle
    // attached. The queue is sealed once; each iteration rebuilds the
    // receiving gateway, exactly like gateway_drain above, so the two
    // sides differ only in the handle.
    const QUEUE: usize = 512;
    const SAS: u32 = 8;
    let fresh_rx = |telemetry: Option<Telemetry>| {
        let mut builder = GatewayBuilder::in_memory()
            .save_interval(1 << 40)
            .window(1024);
        if let Some(t) = telemetry {
            builder = builder.telemetry(t);
        }
        let mut gw = builder.build();
        for spi in 1..=SAS {
            gw.add_peer(spi, b"telemetry-bench-master");
        }
        gw
    };
    let mut tx = fresh_rx(None);
    let queue: Vec<Bytes> = (0..QUEUE)
        .map(|i| {
            let spi = 1 + (i as u32 / 16) % SAS; // bursts of 16 per SA
            tx.protect(spi, &[0xE1u8; 64]).unwrap().unwrap().wire
        })
        .collect();

    let mut g = c.benchmark_group("datapath/telemetry_overhead");
    g.throughput(Throughput::Elements(QUEUE as u64));
    g.bench_with_input(BenchmarkId::new("off", QUEUE), &queue, |b, queue| {
        b.iter(|| {
            let mut gw = fresh_rx(None);
            gw.push_wire_batch(queue).unwrap();
            std::hint::black_box(gw.poll_events())
        })
    });
    g.bench_with_input(BenchmarkId::new("on", QUEUE), &queue, |b, queue| {
        // One handle for the whole measurement — attaching is a
        // lifecycle cost, recording is the hot path under test.
        let telemetry = Telemetry::new();
        b.iter(|| {
            let mut gw = fresh_rx(Some(telemetry.clone()));
            gw.push_wire_batch(queue).unwrap();
            std::hint::black_box(gw.poll_events())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_icv_64b,
    bench_sha256,
    bench_icv_batch,
    bench_suite_rx,
    bench_suite_rx_backends,
    bench_wire_64b,
    bench_rx_pipeline,
    bench_gateway_drain,
    bench_telemetry_overhead
);
criterion_main!(benches);

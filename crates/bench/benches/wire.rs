//! Bench: full ESP datapath — seal + open for the paper's 1000-byte
//! message.
//!
//! This is the reproduction of the paper's "sending a 1000-byte message
//! takes 4 µs" figure on modern hardware: the t4 calibration divides the
//! measured SAVE time by this number to derive K.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use reset_ipsec::{Inbound, Outbound, SaKeys, SecurityAssociation};
use reset_stable::MemStable;
use reset_wire::{open, seal};

fn bench_seal_open_raw(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire/raw");
    for &len in &[64usize, 1_000, 1_400] {
        let payload = vec![0xCDu8; len];
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::new("seal", len), &payload, |b, p| {
            let mut seq = 0u64;
            b.iter(|| {
                seq += 1;
                std::hint::black_box(seal(1, seq, p, b"auth-key", true).expect("seal"))
            })
        });
        let wire = seal(1, 7, &payload, b"auth-key", false).expect("seal");
        g.bench_with_input(BenchmarkId::new("open", len), &wire, |b, w| {
            b.iter(|| std::hint::black_box(open(w, b"auth-key", None).expect("open")))
        });
    }
    g.finish();
}

fn bench_esp_end_to_end(c: &mut Criterion) {
    // protect + process of the paper's 1000-byte message through the
    // full pipeline: counter, keystream, ICV, window.
    let mut g = c.benchmark_group("wire/esp_end_to_end");
    g.throughput(Throughput::Elements(1));
    g.bench_function("1000B", |b| {
        let keys = SaKeys::derive(b"bench", b"dir");
        let sa = SecurityAssociation::new(1, keys);
        let mut tx = Outbound::new(sa.clone(), MemStable::new(), 1 << 40);
        let mut rx = Inbound::new(sa, MemStable::new(), 1 << 40, 64);
        let payload = vec![0xEFu8; 1_000];
        b.iter(|| {
            let wire = tx.protect(&payload).expect("protect").expect("up");
            std::hint::black_box(rx.process(&wire).expect("process"))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_seal_open_raw, bench_esp_end_to_end);
criterion_main!(benches);

//! Bench: control-plane tick cost at fleet scale (ROADMAP item 2).
//!
//! The hierarchical timer wheel exists so `Gateway::tick` costs
//! O(due timers), not O(fleet). Two idle-tick groups pin that down:
//!
//! * `tick_idle_1k/plain_gateway` — idle tick over 10^3 SA pairs with
//!   DPD armed and a rekey policy set (every SA holds a live wheel
//!   entry; none are due).
//! * `tick_idle_1m/plain_gateway` — the same tick over 10^6 SA pairs.
//!
//! `tools/bench_check.rs` enforces `tick_idle_1m <= 2x tick_idle_1k`:
//! if tick cost grows with fleet size again, the ratio ceiling trips
//! even on hosts whose absolute numbers drifted. (The pre-wheel sweep
//! visited all 10^6 detectors and SAs per tick, so a reintroduced
//! sweep lands orders of magnitude over the ceiling, not near it.)
//!
//! * `drain_4096f_1m/{1,4}` — a 4096-frame NIC-queue drain through a
//!   million-SA sharded receiver: the slab SADB's cache-dense batch
//!   path plus the `Arc<[Bytes]>` index-routed fan-out at full fleet
//!   size. Multi-shard entries are core-sensitive (advisory off the
//!   recording host's core count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bytes::Bytes;
use reset_ipsec::{
    DpdConfig, Gateway, GatewayBuilder, SaKeys, SaLifetime, SecurityAssociation, ShardedGateway,
};
use reset_stable::MemStable;

const FRAMES: usize = 4096;
const TX_SAS: u32 = 1_024;

/// One derivation shared across the fleet — key uniqueness is
/// irrelevant to timer-wheel and SADB-layout scaling.
fn shared_keys() -> SaKeys {
    SaKeys::derive(b"fleet-bench-master", b"fleet-shared")
}

/// A fleet with every control-plane timer armed: DPD detectors live on
/// the wheel, a rekey lifetime is set. The post-build tick arms the
/// detectors (the one fleet-proportional tick, off the clock).
fn armed_fleet(n: u32) -> Gateway<MemStable> {
    let keys = shared_keys();
    let mut gw = GatewayBuilder::in_memory()
        .save_interval(64)
        .dpd(DpdConfig::default())
        .rekey_after(SaLifetime {
            max_packets: 1_000_000,
            max_bytes: u64::MAX,
        })
        .build();
    for spi in 1..=n {
        gw.install_pair(SecurityAssociation::new(spi, keys.clone()));
    }
    gw.tick(1_000);
    gw.poll_events();
    gw
}

fn bench_tick_idle(c: &mut Criterion, label: &str, fleet_size: u32) {
    let mut g = c.benchmark_group(format!("gateway_fleet_1m/{label}"));
    g.sample_size(10);
    let mut gw = armed_fleet(fleet_size);
    let mut now = 1_000u64;
    g.bench_function("plain_gateway", |b| {
        b.iter(|| {
            now += 1;
            gw.tick(now);
        })
    });
    g.finish();
}

fn bench_tick_idle_1k(c: &mut Criterion) {
    bench_tick_idle(c, "tick_idle_1k", 1_000);
}

fn bench_tick_idle_1m(c: &mut Criterion) {
    bench_tick_idle(c, "tick_idle_1m", 1_000_000);
}

fn bench_drain_1m(c: &mut Criterion) {
    let keys = shared_keys();
    let mut tx: Gateway<MemStable> = GatewayBuilder::in_memory().save_interval(64).build();
    for spi in 1..=TX_SAS {
        tx.install_outbound(SecurityAssociation::new(spi, keys.clone()));
    }
    let payload = [0x5Au8; 64];
    let mut seal = move |n: usize| -> Vec<Bytes> {
        (0..n)
            .map(|i| {
                let spi = 1 + (i as u32 % TX_SAS);
                tx.protect(spi, &payload).unwrap().expect("tx up").wire
            })
            .collect()
    };

    let mut g = c.benchmark_group("gateway_fleet_1m/drain_4096f_1m");
    g.throughput(Throughput::Elements(FRAMES as u64));
    g.sample_size(10);
    for shards in [1usize, 4] {
        let mut rx: ShardedGateway<MemStable> = GatewayBuilder::in_memory_sharded(shards)
            .save_interval(64)
            .window(64)
            .build_sharded();
        for spi in 1..=1_000_000u32 {
            rx.install_inbound(SecurityAssociation::new(spi, keys.clone()));
        }
        g.bench_function(BenchmarkId::from_parameter(shards), |b| {
            b.iter_batched(
                || seal(FRAMES),
                |frames| {
                    rx.push_wire_batch(&frames).unwrap();
                    rx.poll_events()
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_tick_idle_1k,
    bench_tick_idle_1m,
    bench_drain_1m
);
criterion_main!(benches);

//! Bench: fleet-wide SAVE cost — one file per slot vs a shared WAL.
//!
//! A gateway fleet with 1k+ SAs issues a SAVE for every slot each time
//! its background savers come due. With [`FileStable`] that is a
//! write-temp + rename per slot; with [`WalStable`] it is a single
//! append to one shared log (plus an amortized compaction). This group
//! measures a full 1024-slot save round per iteration — the per-slot
//! gap is the reason the shard-shared WAL backend exists.
//!
//! Both backends run at `Durability::ProcessCrash` (the paper's reset
//! model); `PowerLoss` adds an fsync to either and does not change the
//! *relative* claim.

use std::fs;
use std::path::PathBuf;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use reset_stable::{Durability, FileStable, SlotId, StableStore, WalStable};

const SLOTS: u64 = 1024;

fn scratch(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "reset-bench-store-save-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&d);
    fs::create_dir_all(&d).expect("mkdir scratch");
    d
}

fn bench_fleet_save(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_save");
    g.throughput(Throughput::Elements(SLOTS));
    // Full file-per-slot rounds are slow; keep CI wall-clock bounded.
    g.sample_size(10);

    let file_dir = scratch("file");
    let mut files = FileStable::open(&file_dir, Durability::ProcessCrash).expect("open file store");
    let mut round: u64 = 0;
    g.bench_function("fleet_save_1024sa/file_per_slot", |b| {
        b.iter(|| {
            round += 1;
            for slot in 0..SLOTS {
                files
                    .store(SlotId::raw(slot), round * SLOTS + slot)
                    .expect("file SAVE");
            }
        })
    });

    let wal_dir = scratch("wal");
    let mut wal =
        WalStable::open(wal_dir.join("fleet.wal"), Durability::ProcessCrash).expect("open wal");
    let mut round: u64 = 0;
    g.bench_function("fleet_save_1024sa/wal_shared", |b| {
        b.iter(|| {
            round += 1;
            for slot in 0..SLOTS {
                wal.store(SlotId::raw(slot), round * SLOTS + slot)
                    .expect("wal SAVE");
            }
        })
    });

    g.finish();
    let _ = fs::remove_dir_all(&file_dir);
    let _ = fs::remove_dir_all(&wal_dir);
}

criterion_group!(benches, bench_fleet_save);
criterion_main!(benches);

//! Bench: sender datapath throughput vs save interval K.
//!
//! Regenerates the §4 overhead argument: how much the periodic
//! (in-memory-simulated) SAVE costs the sender per message as K varies,
//! including the K = 1 extreme (save every message) and a no-save
//! baseline. The absolute numbers are host-specific; the *shape* — cost
//! per message decaying like 1/K toward the baseline — is the claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use anti_replay::{BaselineSender, SfSender};
use reset_stable::{MemStable, SlotId};

fn bench_sender_vs_k(c: &mut Criterion) {
    let mut g = c.benchmark_group("save_overhead/sender");
    const N: u64 = 10_000;
    g.throughput(Throughput::Elements(N));
    for &k in &[1u64, 5, 25, 100, 1_000] {
        g.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| {
                let mut p = SfSender::new(MemStable::new(), SlotId::sender(1), k);
                for _ in 0..N {
                    std::hint::black_box(p.send_next().expect("mem store"));
                    // Completion is immediate in this microbenchmark; the
                    // latency-aware cost lives in the scenario runner.
                    p.save_completed().expect("mem store");
                }
                p
            })
        });
    }
    g.bench_function("baseline_no_save", |b| {
        b.iter(|| {
            let mut p = BaselineSender::new();
            for _ in 0..N {
                std::hint::black_box(p.send_next());
            }
            p
        })
    });
    g.finish();
}

fn bench_receiver_vs_k(c: &mut Criterion) {
    use anti_replay::{SeqNum, SfReceiver};
    let mut g = c.benchmark_group("save_overhead/receiver");
    const N: u64 = 10_000;
    g.throughput(Throughput::Elements(N));
    for &k in &[1u64, 25, 1_000] {
        g.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| {
                let mut q = SfReceiver::new(MemStable::new(), SlotId::receiver(1), k, 64);
                for s in 1..=N {
                    std::hint::black_box(q.receive(SeqNum::new(s)).expect("mem store"));
                    q.save_completed().expect("mem store");
                }
                q
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sender_vs_k, bench_receiver_vs_k);
criterion_main!(benches);

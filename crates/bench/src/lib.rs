//! # reset-bench — Criterion benchmarks for the reproduction
//!
//! This crate only hosts bench targets (see `benches/`); one per
//! performance claim of the paper:
//!
//! | bench | claim |
//! |---|---|
//! | `datapath` | the fast-path rebuild: precomputed ICV keys ≥1.5×, zero-copy open, batched SADB drain (`BENCH_datapath.json`) |
//! | `window_datapath` | the §2 window check is cheap at any size `w` |
//! | `save_overhead` | SAVE every K messages amortizes toward the no-save baseline |
//! | `recovery` | FETCH + leap + SAVE ≪ one ISAKMP re-handshake (t5) |
//! | `crypto` | HMAC µs-scale vs 768-bit modexp ms-scale (the t5 cost model) |
//! | `wire` | the 1000-byte message datapath cost (the t4 calibration input) |
//!
//! Run with `cargo bench --workspace`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

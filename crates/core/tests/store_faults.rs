//! Persistent-memory failures must never weaken the anti-replay
//! guarantee — at worst they delay convergence.
//!
//! The paper assumes SAVE/FETCH succeed; a real disk occasionally
//! doesn't. These tests script store failures into every phase of the
//! protocol and check the safety half of the theorem (no replay
//! accepted, wake-ups stay fresh) survives, with the failure surfaced as
//! a retryable error rather than silent corruption.

use anti_replay::{Phase, SeqNum, SfReceiver, SfSender};
use reset_stable::{Fault, FaultyStable, MemStable, SlotId};

fn sender(k: u64) -> SfSender<FaultyStable<MemStable>> {
    SfSender::new(FaultyStable::new(MemStable::new()), SlotId::sender(1), k)
}

fn receiver(k: u64, w: u64) -> SfReceiver<FaultyStable<MemStable>> {
    SfReceiver::new(
        FaultyStable::new(MemStable::new()),
        SlotId::receiver(1),
        k,
        w,
    )
}

/// Helper: script the next store write to fail.
fn fail_next<S>(s: &mut S)
where
    S: FailInject,
{
    s.inject();
}

trait FailInject {
    fn inject(&mut self);
}

impl FailInject for SfSender<FaultyStable<MemStable>> {
    fn inject(&mut self) {
        // Scripting happens through a fresh fault pushed onto the store.
        // SAFETY of the experiment: we only need mutable access to the
        // wrapped store, which the saver exposes for teardown purposes.
        self.store_mut_for_test().push_fault(Fault::FailStore);
    }
}

impl FailInject for SfReceiver<FaultyStable<MemStable>> {
    fn inject(&mut self) {
        self.store_mut_for_test().push_fault(Fault::FailStore);
    }
}

// Accessors for the test: the public API exposes `store()` read-only;
// reach the mutable store through BackgroundSaver's accessor via a small
// extension implemented with the crate's public surface.
trait StoreMutExt {
    fn store_mut_for_test(&mut self) -> &mut FaultyStable<MemStable>;
}

impl StoreMutExt for SfSender<FaultyStable<MemStable>> {
    fn store_mut_for_test(&mut self) -> &mut FaultyStable<MemStable> {
        self.store_mut()
    }
}

impl StoreMutExt for SfReceiver<FaultyStable<MemStable>> {
    fn store_mut_for_test(&mut self) -> &mut FaultyStable<MemStable> {
        self.store_mut()
    }
}

#[test]
fn background_save_failure_is_retryable() {
    let mut p = sender(5);
    for _ in 0..5 {
        p.send_next().unwrap();
    }
    assert!(p.pending_save().is_some());
    fail_next(&mut p);
    assert!(p.save_completed().is_err(), "scripted failure surfaces");
    assert!(p.pending_save().is_some(), "pending retained for retry");
    assert!(p.save_completed().unwrap().is_some(), "retry lands");
}

#[test]
fn wakeup_save_failure_keeps_process_waking() {
    let mut p = sender(5);
    for _ in 0..5 {
        p.send_next().unwrap();
    }
    p.save_completed().unwrap(); // durable 6
    p.reset();
    p.begin_wakeup().unwrap();
    fail_next(&mut p);
    assert!(p.finish_wakeup().is_err(), "wake-up SAVE failed");
    assert_eq!(p.phase(), Phase::Waking, "must not resume un-persisted");
    assert_eq!(p.send_next().unwrap(), None, "still blocked");
    // Retry succeeds; resumed value unchanged and fresh.
    let resumed = p.finish_wakeup().unwrap();
    assert_eq!(resumed.value(), 16, "6 + 2K");
}

#[test]
fn receiver_wakeup_failure_keeps_buffering() {
    let mut q = receiver(5, 32);
    for s in 1..=10u64 {
        q.receive(SeqNum::new(s)).unwrap();
    }
    q.save_completed().unwrap();
    q.reset();
    q.begin_wakeup().unwrap();
    q.receive(SeqNum::new(100)).unwrap(); // buffered
    fail_next(&mut q);
    assert!(q.finish_wakeup().is_err());
    assert_eq!(q.phase(), Phase::Waking);
    // Buffered traffic is still held; the retry resolves it.
    let outcomes = q.finish_wakeup().unwrap();
    assert_eq!(outcomes.len(), 1);
    assert!(outcomes[0].1.is_delivered(), "fresh buffered packet kept");
}

#[test]
fn failed_save_never_advances_durable_state() {
    // A failed SAVE must leave the previous durable value intact, so the
    // next FETCH is stale-but-safe (covered by the 2K leap), never
    // corrupt.
    let mut p = sender(5);
    for _ in 0..5 {
        p.send_next().unwrap();
    }
    p.save_completed().unwrap(); // durable 6
    for _ in 0..5 {
        p.send_next().unwrap();
    }
    fail_next(&mut p);
    let _ = p.save_completed(); // SAVE(11) fails
    p.reset();
    let resumed = p.wake_up().unwrap();
    // FETCH must see 6 (not 11, not garbage): resumed = 6 + 10.
    assert_eq!(resumed.value(), 16);
    assert!(resumed.value() > 10, "fresh above all used seqs");
}

#[test]
fn corrupt_fetch_is_an_error_not_a_stale_resume() {
    let mut q = receiver(5, 32);
    for s in 1..=10u64 {
        q.receive(SeqNum::new(s)).unwrap();
    }
    q.save_completed().unwrap();
    q.reset();
    q.store_mut_for_test().push_fault(Fault::CorruptLoad);
    assert!(q.begin_wakeup().is_err(), "corruption must surface");
    assert_eq!(q.phase(), Phase::Down, "no resume on corrupt FETCH");
    // A second attempt (storage recovered) proceeds normally.
    let leaped = q.wake_up().unwrap();
    assert!(leaped.value() >= 10);
}

#[test]
fn repeated_failures_delay_but_never_break_safety() {
    let mut q = receiver(4, 32);
    let mut delivered: Vec<u64> = Vec::new();
    for s in 1..=60u64 {
        // Every third completion attempt fails.
        if s % 3 == 0 {
            fail_next(&mut q);
        }
        let _ = q.save_completed();
        if q.receive(SeqNum::new(s)).unwrap().is_delivered() {
            delivered.push(s);
        }
        if s % 20 == 0 {
            q.reset();
            // A scripted failure may still be queued; the wake-up retries
            // until storage cooperates — never resuming un-persisted.
            loop {
                let step = match q.phase() {
                    Phase::Down => q.begin_wakeup().map(|_| ()),
                    Phase::Waking => q.finish_wakeup().map(|_| ()),
                    Phase::Running => break,
                };
                let _ = step; // errors only delay; retry
            }
            // Replay of everything delivered so far: still all rejected.
            for &old in &delivered {
                assert!(
                    !q.receive(SeqNum::new(old)).unwrap().is_delivered(),
                    "replay of {old} accepted under store failures"
                );
            }
        }
    }
}

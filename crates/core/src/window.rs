//! The anti-replay window — §2 of the paper, bit-for-bit.
//!
//! Process `q` maintains a window of `w` consecutive sequence numbers
//! ending at its right edge `r`, with one boolean per number recording
//! whether that message was already received. Receiving `msg(s)` has
//! exactly three cases:
//!
//! 1. `s ≤ r − w` — left of the window: `q` "cannot determine whether it
//!    has received this message before" and discards it ([`Verdict::Stale`]).
//! 2. `r − w < s ≤ r` — in the window: the boolean decides
//!    ([`Verdict::Duplicate`] or [`Verdict::Fresh`]).
//! 3. `r < s` — right of the window: fresh; the window slides so `s`
//!    becomes the new right edge.
//!
//! The implementation is a circular bitmap (bit `s mod w`), the classic
//! constant-space realization of the paper's boolean array.

use std::fmt;

use crate::seq::SeqNum;

/// Outcome of checking a received sequence number against the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Left of the window (`s ≤ r − w`): assumed replayed, discarded.
    Stale,
    /// In the window and already marked received: replayed, discarded.
    Duplicate,
    /// Never seen: deliver (and, on accept, mark / slide).
    Fresh,
}

impl Verdict {
    /// True iff the message should be delivered.
    pub fn is_deliverable(self) -> bool {
        matches!(self, Verdict::Fresh)
    }
}

/// The sliding anti-replay window of process `q`.
///
/// # Examples
///
/// ```
/// use anti_replay::{AntiReplayWindow, SeqNum, Verdict};
///
/// let mut w = AntiReplayWindow::new(32);
/// assert_eq!(w.check_and_accept(SeqNum::new(5)), Verdict::Fresh);
/// assert_eq!(w.check_and_accept(SeqNum::new(5)), Verdict::Duplicate);
/// assert_eq!(w.check_and_accept(SeqNum::new(3)), Verdict::Fresh);
/// assert_eq!(w.right_edge(), SeqNum::new(5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AntiReplayWindow {
    /// Circular bitmap: bit `(seq mod w)` records receipt of `seq` for
    /// sequence numbers in `(right − w, right]`.
    bits: Vec<u64>,
    w: u64,
    right: u64,
}

impl AntiReplayWindow {
    /// A fresh window of size `w` in the paper's initial state: right
    /// edge 0, every entry "already received" (`wdw` initially true).
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn new(w: u64) -> Self {
        Self::with_right_edge(w, SeqNum::ZERO, true)
    }

    /// A window resuming at `right` — used on wake-up after FETCH+leap,
    /// where §4's process `q` sets "the whole array wdw to true, because
    /// every sequence number up to r should be assumed to be already
    /// received". `all_seen = false` gives the *naive* (vulnerable)
    /// restart of §3 instead.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn with_right_edge(w: u64, right: SeqNum, all_seen: bool) -> Self {
        assert!(w > 0, "window size must be positive");
        let words = (w as usize).div_ceil(64);
        let fill = if all_seen { u64::MAX } else { 0 };
        let mut win = AntiReplayWindow {
            bits: vec![fill; words],
            w,
            right: right.value(),
        };
        win.mask_tail_word();
        win
    }

    /// Clears the bits of the last word beyond `w`: they correspond to no
    /// sequence number and must never advertise capacity the window does
    /// not have (they would also poison `==` between windows that took
    /// different paths to the same logical state).
    fn mask_tail_word(&mut self) {
        let tail_bits = self.w % 64;
        if tail_bits != 0 {
            let last = self.bits.len() - 1;
            self.bits[last] &= (1u64 << tail_bits) - 1;
        }
    }

    /// Window size `w`.
    pub fn size(&self) -> u64 {
        self.w
    }

    /// The right edge `r` — the largest sequence number in the window.
    pub fn right_edge(&self) -> SeqNum {
        SeqNum::new(self.right)
    }

    /// The left edge `r − w + 1` (clamped at 0): the smallest sequence
    /// number the window can still discriminate.
    pub fn left_edge(&self) -> SeqNum {
        SeqNum::new((self.right + 1).saturating_sub(self.w))
    }

    fn bit(&self, seq: u64) -> bool {
        let idx = (seq % self.w) as usize;
        self.bits[idx / 64] >> (idx % 64) & 1 == 1
    }

    fn set_bit(&mut self, seq: u64, value: bool) {
        let idx = (seq % self.w) as usize;
        if value {
            self.bits[idx / 64] |= 1 << (idx % 64);
        } else {
            self.bits[idx / 64] &= !(1 << (idx % 64));
        }
    }

    /// Classifies `seq` without mutating the window — the paper's
    /// three-case analysis.
    pub fn check(&self, seq: SeqNum) -> Verdict {
        let s = seq.value();
        if s > self.right {
            Verdict::Fresh
        } else if s as u128 + self.w as u128 <= self.right as u128 {
            Verdict::Stale
        } else if self.bit(s) {
            Verdict::Duplicate
        } else {
            Verdict::Fresh
        }
    }

    /// Records `seq` as received; slides the window when `seq` is beyond
    /// the right edge. Only call after [`AntiReplayWindow::check`]
    /// returned [`Verdict::Fresh`] (in IPsec terms: after the ICV
    /// verified).
    ///
    /// The slide clears the newly entered range at **word** granularity:
    /// whole `u64` words are zeroed with `fill`-style stores and only the
    /// two edge words are masked, so a slide of `d` costs `O(d / 64)`
    /// instead of `d` read-modify-write cycles.
    pub fn accept(&mut self, seq: SeqNum) {
        let s = seq.value();
        if s > self.right {
            let d = s - self.right;
            // The entering range is right+1 ..= s, but bit `s` is set
            // unconditionally below, so only right+1 .. s (d − 1 bits)
            // needs clearing — which makes the dominant in-order case
            // (d = 1) slide with no clearing at all.
            if d > 1 {
                if d >= self.w {
                    // The whole old window is out of range.
                    self.bits.fill(0);
                } else {
                    self.clear_circular((self.right + 1) % self.w, d - 1);
                }
            }
            self.right = s;
        }
        self.set_bit(s, true);
    }

    /// Clears `count` consecutive bits of the circular bitmap starting at
    /// index `start` (wrapping at `w`). `count` is at most `w − 1`.
    fn clear_circular(&mut self, start: u64, count: u64) {
        let until_wrap = (self.w - start).min(count);
        self.clear_span(start, until_wrap);
        if count > until_wrap {
            self.clear_span(0, count - until_wrap);
        }
    }

    /// Clears the flat bit range `[start, start + len)`, `start + len ≤ w`.
    fn clear_span(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let end = start + len; // exclusive
        let start_word = (start / 64) as usize;
        let start_bit = start % 64;
        let end_word = (end / 64) as usize;
        let end_bit = end % 64;
        let low_mask = (1u64 << start_bit) - 1; // bits below the range
        if start_word == end_word {
            // Single word: keep bits below start_bit and at/above end_bit.
            let keep = low_mask | !((1u64 << end_bit) - 1);
            self.bits[start_word] &= keep;
        } else {
            self.bits[start_word] &= low_mask;
            for word in &mut self.bits[start_word + 1..end_word] {
                *word = 0;
            }
            if end_bit != 0 {
                self.bits[end_word] &= !((1u64 << end_bit) - 1);
            }
        }
    }

    /// [`check`](Self::check) + [`accept`](Self::accept) when fresh, in
    /// one call — fused so the in-window path computes the bit index once
    /// and tests-and-sets it in a single pass.
    pub fn check_and_accept(&mut self, seq: SeqNum) -> Verdict {
        let s = seq.value();
        if s > self.right {
            // Case 3: fresh beyond the edge; slide.
            self.accept(seq);
            return Verdict::Fresh;
        }
        if s as u128 + self.w as u128 <= self.right as u128 {
            return Verdict::Stale;
        }
        let idx = (s % self.w) as usize;
        let mask = 1u64 << (idx % 64);
        let word = &mut self.bits[idx / 64];
        if *word & mask != 0 {
            Verdict::Duplicate
        } else {
            *word |= mask;
            Verdict::Fresh
        }
    }

    /// Marks the whole window "already received" without moving the right
    /// edge — §4's wake-up behaviour.
    pub fn mark_all_seen(&mut self) {
        self.bits.fill(u64::MAX);
        self.mask_tail_word();
    }

    /// The §3 *naive* restart after a reset without SAVE/FETCH: right
    /// edge back to 0, everything forgotten. This is the vulnerable
    /// behaviour the paper fixes; it exists here for the baseline
    /// experiments.
    pub fn reset_naive(&mut self) {
        self.right = 0;
        self.bits.fill(0);
    }
}

impl fmt::Display for AntiReplayWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "window[w={}, r={}]", self.w, self.right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> SeqNum {
        SeqNum::new(v)
    }

    #[test]
    fn initial_state_matches_paper() {
        let w = AntiReplayWindow::new(8);
        assert_eq!(w.right_edge(), SeqNum::ZERO);
        assert_eq!(w.size(), 8);
        // First real message (s = 1 > r = 0) is case 3: fresh.
        assert_eq!(w.check(n(1)), Verdict::Fresh);
    }

    #[test]
    fn case1_stale_left_of_window() {
        let mut w = AntiReplayWindow::new(4);
        w.accept(n(100));
        // Window covers 97..=100; 96 = r - w is stale.
        assert_eq!(w.check(n(96)), Verdict::Stale);
        assert_eq!(w.check(n(1)), Verdict::Stale);
        // 97 = r - w + 1 is the left edge: in window.
        assert_eq!(w.left_edge(), n(97));
        assert_ne!(w.check(n(97)), Verdict::Stale);
    }

    #[test]
    fn case2_in_window_discrimination() {
        let mut w = AntiReplayWindow::new(8);
        w.accept(n(10));
        assert_eq!(w.check_and_accept(n(7)), Verdict::Fresh);
        assert_eq!(w.check_and_accept(n(7)), Verdict::Duplicate);
        assert_eq!(w.check_and_accept(n(10)), Verdict::Duplicate);
        assert_eq!(w.check_and_accept(n(4)), Verdict::Fresh);
    }

    #[test]
    fn case3_slide_to_new_right_edge() {
        let mut w = AntiReplayWindow::new(4);
        w.accept(n(5));
        assert_eq!(w.right_edge(), n(5));
        w.accept(n(9));
        assert_eq!(w.right_edge(), n(9));
        // 5 is still in window (6..=9? no: window is 6..=9 — w=4 means
        // (9-4, 9] = 6..=9), so 5 is now stale.
        assert_eq!(w.check(n(5)), Verdict::Stale);
        // 6,7,8 entered the window unseen.
        assert_eq!(w.check(n(6)), Verdict::Fresh);
        assert_eq!(w.check(n(8)), Verdict::Fresh);
    }

    #[test]
    fn slide_farther_than_window_clears_everything() {
        let mut w = AntiReplayWindow::new(4);
        for s in 1..=4u64 {
            w.accept(n(s));
        }
        w.accept(n(1000));
        assert_eq!(w.right_edge(), n(1000));
        for s in 997..1000u64 {
            assert_eq!(w.check(n(s)), Verdict::Fresh, "seq {s}");
        }
        assert_eq!(w.check(n(996)), Verdict::Stale);
    }

    #[test]
    fn in_order_stream_all_fresh() {
        let mut w = AntiReplayWindow::new(32);
        for s in 1..=1000u64 {
            assert_eq!(w.check_and_accept(n(s)), Verdict::Fresh, "seq {s}");
        }
        assert_eq!(w.right_edge(), n(1000));
    }

    #[test]
    fn full_replay_of_inorder_stream_all_rejected() {
        let mut w = AntiReplayWindow::new(32);
        for s in 1..=100u64 {
            w.check_and_accept(n(s));
        }
        for s in 1..=100u64 {
            let v = w.check_and_accept(n(s));
            assert!(
                matches!(v, Verdict::Stale | Verdict::Duplicate),
                "replayed {s} verdict {v:?}"
            );
        }
    }

    #[test]
    fn reorder_within_window_delivered_exactly_once() {
        // Messages arrive shuffled but each reordered < w: all delivered.
        let mut w = AntiReplayWindow::new(8);
        let order = [3u64, 1, 2, 5, 4, 8, 6, 7, 10, 9];
        let mut delivered = 0;
        for &s in &order {
            if w.check_and_accept(n(s)).is_deliverable() {
                delivered += 1;
            }
        }
        assert_eq!(delivered, order.len());
    }

    #[test]
    fn reorder_beyond_window_dropped() {
        let mut w = AntiReplayWindow::new(4);
        w.accept(n(10));
        // Message 5 was reordered by more than w: conservative discard.
        assert_eq!(w.check(n(5)), Verdict::Stale);
    }

    #[test]
    fn resume_all_seen_blocks_replays_up_to_edge() {
        // §4 wake-up: window rebuilt at fetched + 2K with all entries
        // marked seen.
        let w = AntiReplayWindow::with_right_edge(8, n(100), true);
        for s in 93..=100u64 {
            assert_eq!(w.check(n(s)), Verdict::Duplicate, "seq {s}");
        }
        assert_eq!(w.check(n(92)), Verdict::Stale);
        assert_eq!(w.check(n(101)), Verdict::Fresh);
    }

    #[test]
    fn naive_reset_is_vulnerable() {
        // §3: after a naive restart any replayed old message looks fresh.
        let mut w = AntiReplayWindow::new(8);
        for s in 1..=50u64 {
            w.check_and_accept(n(s));
        }
        w.reset_naive();
        assert_eq!(w.right_edge(), SeqNum::ZERO);
        // The adversary replays old traffic — it is accepted.
        assert_eq!(w.check_and_accept(n(1)), Verdict::Fresh);
        assert_eq!(w.check_and_accept(n(2)), Verdict::Fresh);
    }

    #[test]
    fn window_size_one() {
        let mut w = AntiReplayWindow::new(1);
        assert_eq!(w.check_and_accept(n(1)), Verdict::Fresh);
        assert_eq!(w.check_and_accept(n(1)), Verdict::Duplicate);
        assert_eq!(w.check_and_accept(n(2)), Verdict::Fresh);
        assert_eq!(w.check(n(1)), Verdict::Stale);
    }

    #[test]
    fn large_window_crossing_word_boundaries() {
        let mut w = AntiReplayWindow::new(200); // > 3 u64 words
        for s in (1..=400u64).rev().step_by(3) {
            w.check_and_accept(n(s));
        }
        // Every accepted seq must now be Duplicate or Stale; never Fresh.
        for s in (1..=400u64).rev().step_by(3) {
            assert!(!w.check(n(s)).is_deliverable(), "seq {s}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = AntiReplayWindow::new(0);
    }

    #[test]
    fn display_shows_state() {
        let mut w = AntiReplayWindow::new(16);
        w.accept(n(9));
        assert_eq!(w.to_string(), "window[w=16, r=9]");
    }

    #[test]
    fn tail_word_masked_for_non_multiple_of_64_sizes() {
        // Regression: `with_right_edge(.., all_seen = true)` used to fill
        // whole words, setting bits beyond `w` in the partial last word —
        // phantom capacity the window doesn't have, and an `Eq` poison
        // between windows that reached the same logical state on
        // different paths.
        for w in [1u64, 63, 65, 70, 127, 129, 200] {
            let win = AntiReplayWindow::with_right_edge(w, n(1000), true);
            let tail_bits = w % 64;
            if tail_bits != 0 {
                let last = *win.bits.last().unwrap();
                assert_eq!(
                    last >> tail_bits,
                    0,
                    "w={w}: bits beyond the window are set"
                );
            }
            // Behaviour: everything in-window is Duplicate, the edges
            // classify exactly.
            assert_eq!(win.check(n(1000)), Verdict::Duplicate, "w={w}");
            assert_eq!(win.check(n(1001)), Verdict::Fresh, "w={w}");
            assert_eq!(win.check(n(1000 - w)), Verdict::Stale, "w={w}");
            if w > 1 {
                assert_eq!(win.check(n(1001 - w)), Verdict::Duplicate, "w={w}");
            }
        }
    }

    #[test]
    fn resumed_window_equals_organically_slid_window() {
        // A window resumed all-seen then slid clear across its width must
        // equal one that took a different path to the same logical state.
        for w in [63u64, 65, 70, 128] {
            let mut a = AntiReplayWindow::with_right_edge(w, n(10), true);
            let mut b = AntiReplayWindow::with_right_edge(w, n(500), false);
            // Slide both far enough that every old bit is cleared, then
            // accept the same single number.
            a.accept(n(5_000));
            b.accept(n(5_000));
            assert_eq!(a, b, "w={w}");
        }
    }

    #[test]
    fn mark_all_seen_masks_tail() {
        let mut w = AntiReplayWindow::with_right_edge(70, n(100), false);
        w.mark_all_seen();
        assert_eq!(w.bits.last().unwrap() >> (70 % 64), 0);
        assert_eq!(w, AntiReplayWindow::with_right_edge(70, n(100), true));
    }

    #[test]
    fn word_level_slide_matches_bitwise_reference() {
        // Drive the word-granular slide against a bit-at-a-time model
        // across every slide distance and alignment that matters.
        for w in [5u64, 64, 65, 127, 128, 130, 256] {
            let mut win = AntiReplayWindow::new(w);
            let mut model: std::collections::HashSet<u64> = std::collections::HashSet::new();
            // The paper's initial state pre-marks the whole window seen;
            // sequence number 0 is the only nonnegative member.
            model.insert(0);
            let mut right = 0u64;
            let mut s = 0u64;
            // Visit slides of every distance 1..2w plus in-window accepts.
            let mut dist = 1u64;
            while s < 6 * w {
                s += dist;
                dist = dist % (2 * w) + 1;
                win.accept(n(s));
                right = right.max(s);
                model.insert(s);
                model.retain(|&x| x + w > right);
                // Compare classification across the whole live range.
                for probe in right.saturating_sub(w + 2)..=right + 1 {
                    let want = if probe > right {
                        Verdict::Fresh
                    } else if probe + w <= right {
                        Verdict::Stale
                    } else if model.contains(&probe) {
                        Verdict::Duplicate
                    } else {
                        Verdict::Fresh
                    };
                    assert_eq!(win.check(n(probe)), want, "w={w} s={s} probe={probe}");
                }
            }
        }
    }

    #[test]
    fn fused_check_and_accept_matches_two_step() {
        let mut rng_state = 0x9E3779B97F4A7C15u64;
        let mut fused = AntiReplayWindow::new(70);
        let mut two_step = AntiReplayWindow::new(70);
        for _ in 0..5_000 {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let s = 1 + (rng_state >> 33) % 400;
            let v1 = fused.check_and_accept(n(s));
            let v2 = two_step.check(n(s));
            if v2 == Verdict::Fresh {
                two_step.accept(n(s));
            }
            assert_eq!(v1, v2, "seq {s}");
            assert_eq!(fused, two_step, "state diverged at seq {s}");
        }
    }

    #[test]
    fn check_does_not_mutate() {
        let mut w = AntiReplayWindow::new(8);
        w.accept(n(5));
        let before = w.clone();
        let _ = w.check(n(3));
        let _ = w.check(n(100));
        let _ = w.check(n(1));
        assert_eq!(w, before);
    }
}

//! The reset-naive protocol of §2/§3 — the paper's baseline.
//!
//! Without SAVE/FETCH, a reset throws the counters back to their initial
//! values (`s = 1`, `r = 0`, window forgotten). §3 shows this admits an
//! **unbounded** number of accepted replays (receiver reset), an
//! unbounded number of discarded fresh messages (sender reset), and a
//! blackhole attack (both reset). These types exist so experiments t3 can
//! demonstrate exactly those failures next to the SAVE/FETCH fix.

use crate::seq::SeqNum;
use crate::window::{AntiReplayWindow, Verdict};

/// Process `p` of §2: a bare counter, forgotten on reset.
///
/// # Examples
///
/// ```
/// use anti_replay::BaselineSender;
///
/// let mut p = BaselineSender::new();
/// assert_eq!(p.send_next().value(), 1);
/// assert_eq!(p.send_next().value(), 2);
/// p.reset_and_wake();
/// assert_eq!(p.send_next().value(), 1); // the §3 problem
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineSender {
    s: SeqNum,
    sent: u64,
    resets: u64,
}

impl Default for BaselineSender {
    fn default() -> Self {
        BaselineSender::new()
    }
}

impl BaselineSender {
    /// A sender at the paper's initial state (`s = 1`).
    pub fn new() -> Self {
        BaselineSender {
            s: SeqNum::FIRST,
            sent: 0,
            resets: 0,
        }
    }

    /// Sends the next message: returns its sequence number.
    pub fn send_next(&mut self) -> SeqNum {
        let seq = self.s;
        self.s = self.s.next();
        self.sent += 1;
        seq
    }

    /// The next sequence number that would be used.
    pub fn next_seq(&self) -> SeqNum {
        self.s
    }

    /// Reset + immediate wake-up: everything volatile is gone, so the
    /// counter restarts at 1.
    pub fn reset_and_wake(&mut self) {
        self.s = SeqNum::FIRST;
        self.resets += 1;
    }

    /// Messages sent across all incarnations.
    pub fn total_sent(&self) -> u64 {
        self.sent
    }

    /// Resets experienced.
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

/// Process `q` of §2: window + right edge, forgotten on reset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineReceiver {
    window: AntiReplayWindow,
    delivered: u64,
    discarded: u64,
    resets: u64,
}

impl BaselineReceiver {
    /// A receiver with window size `w` at the paper's initial state.
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn new(w: u64) -> Self {
        BaselineReceiver {
            window: AntiReplayWindow::new(w),
            delivered: 0,
            discarded: 0,
            resets: 0,
        }
    }

    /// Classifies and records one received sequence number.
    pub fn receive(&mut self, seq: SeqNum) -> Verdict {
        let v = self.window.check_and_accept(seq);
        if v.is_deliverable() {
            self.delivered += 1;
        } else {
            self.discarded += 1;
        }
        v
    }

    /// The window (read-only).
    pub fn window(&self) -> &AntiReplayWindow {
        &self.window
    }

    /// Right edge `r`.
    pub fn right_edge(&self) -> SeqNum {
        self.window.right_edge()
    }

    /// Reset + wake-up without SAVE/FETCH: the §3 naive restart (`r = 0`,
    /// all entries forgotten) that accepts arbitrary replays.
    pub fn reset_and_wake(&mut self) {
        self.window.reset_naive();
        self.resets += 1;
    }

    /// Messages delivered across all incarnations.
    pub fn total_delivered(&self) -> u64 {
        self.delivered
    }

    /// Messages discarded across all incarnations.
    pub fn total_discarded(&self) -> u64 {
        self.discarded
    }

    /// Resets experienced.
    pub fn resets(&self) -> u64 {
        self.resets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_operation_is_correct() {
        // Without resets the baseline satisfies both §2 conditions.
        let mut p = BaselineSender::new();
        let mut q = BaselineReceiver::new(32);
        for _ in 0..100 {
            let s = p.send_next();
            assert!(q.receive(s).is_deliverable());
        }
        // Full replay: all discarded.
        for s in 1..=100u64 {
            assert!(!q.receive(SeqNum::new(s)).is_deliverable());
        }
        assert_eq!(q.total_delivered(), 100);
        assert_eq!(q.total_discarded(), 100);
    }

    #[test]
    fn section3_receiver_reset_accepts_unbounded_replays() {
        let mut p = BaselineSender::new();
        let mut q = BaselineReceiver::new(32);
        let x = 500; // pre-reset traffic, "unbounded" in the paper
        for _ in 0..x {
            q.receive(p.send_next());
        }
        q.reset_and_wake();
        // The adversary replays 1..=x in order: ALL are accepted.
        let mut accepted = 0;
        for s in 1..=x {
            if q.receive(SeqNum::new(s)).is_deliverable() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, x, "every replayed message accepted");
    }

    #[test]
    fn section3_sender_reset_discards_unbounded_fresh() {
        let mut p = BaselineSender::new();
        let mut q = BaselineReceiver::new(32);
        let y = 500;
        for _ in 0..y {
            q.receive(p.send_next());
        }
        p.reset_and_wake();
        // Fresh messages restart at 1: everything left of y − w + 1 is
        // discarded as a presumed replay.
        let mut discarded = 0;
        for _ in 0..400 {
            if !q.receive(p.send_next()).is_deliverable() {
                discarded += 1;
            }
        }
        assert_eq!(discarded, 400, "all fresh messages discarded");
    }

    #[test]
    fn section3_both_reset_blackhole_attack() {
        let mut p = BaselineSender::new();
        let mut q = BaselineReceiver::new(32);
        let z = 300u64; // highest recorded sequence number
        for _ in 0..z {
            q.receive(p.send_next());
        }
        p.reset_and_wake();
        q.reset_and_wake();
        // Adversary replays msg(z): q's fresh window accepts it and the
        // right edge jumps to z.
        assert!(q.receive(SeqNum::new(z)).is_deliverable());
        assert_eq!(q.right_edge(), SeqNum::new(z));
        // Every fresh message from p (1, 2, ...) is now blackholed.
        let mut blackholed = 0;
        for _ in 0..200 {
            if !q.receive(p.send_next()).is_deliverable() {
                blackholed += 1;
            }
        }
        assert_eq!(blackholed, 200);
    }

    #[test]
    fn counters_survive_resets() {
        let mut p = BaselineSender::new();
        p.send_next();
        p.reset_and_wake();
        p.send_next();
        assert_eq!(p.total_sent(), 2);
        assert_eq!(p.resets(), 1);
    }
}

//! Abstraction over anti-replay window implementations.
//!
//! The §2 semantics (three receive cases + sliding) admit several
//! realizations: the reference circular bitmap
//! ([`AntiReplayWindow`](crate::AntiReplayWindow)) and the RFC 6479
//! block-granular variant ([`BlockWindow`](crate::BlockWindow)).
//! [`ReplayWindow`] is the interface the SAVE/FETCH receiver needs, so
//! either can back the datapath.
//!
//! This trait is sealed: correctness of the convergence theorem depends
//! on window implementations honouring the verdict semantics exactly, so
//! implementations live (and are verified) in this crate.

use crate::block_window::BlockWindow;
use crate::seq::SeqNum;
use crate::window::{AntiReplayWindow, Verdict};

mod private {
    pub trait Sealed {}
    impl Sealed for super::AntiReplayWindow {}
    impl Sealed for super::BlockWindow {}
}

/// The operations the SAVE/FETCH receiver requires of a window.
///
/// Sealed — see the module docs.
pub trait ReplayWindow: private::Sealed {
    /// Classifies `seq` (the §2 three-case analysis) without mutating.
    fn check(&self, seq: SeqNum) -> Verdict;

    /// Records `seq` as received, sliding if beyond the right edge.
    fn accept(&mut self, seq: SeqNum);

    /// Check-and-accept in one call.
    fn check_and_accept(&mut self, seq: SeqNum) -> Verdict {
        let v = self.check(seq);
        if v == Verdict::Fresh {
            self.accept(seq);
        }
        v
    }

    /// The current right edge `r`.
    fn right_edge(&self) -> SeqNum;

    /// Rebuilds at `right` with every entry marked received — the §4
    /// wake-up ("every sequence number up to r should be assumed to be
    /// already received").
    fn resume_at(&mut self, right: SeqNum);

    /// The §3 naive restart (baseline experiments only).
    fn reset_naive(&mut self);
}

impl ReplayWindow for AntiReplayWindow {
    fn check(&self, seq: SeqNum) -> Verdict {
        AntiReplayWindow::check(self, seq)
    }
    fn accept(&mut self, seq: SeqNum) {
        AntiReplayWindow::accept(self, seq)
    }
    fn check_and_accept(&mut self, seq: SeqNum) -> Verdict {
        AntiReplayWindow::check_and_accept(self, seq)
    }
    fn right_edge(&self) -> SeqNum {
        AntiReplayWindow::right_edge(self)
    }
    fn resume_at(&mut self, right: SeqNum) {
        *self = AntiReplayWindow::with_right_edge(self.size(), right, true);
    }
    fn reset_naive(&mut self) {
        AntiReplayWindow::reset_naive(self)
    }
}

impl ReplayWindow for BlockWindow {
    fn check(&self, seq: SeqNum) -> Verdict {
        BlockWindow::check(self, seq)
    }
    fn accept(&mut self, seq: SeqNum) {
        BlockWindow::accept(self, seq)
    }
    fn check_and_accept(&mut self, seq: SeqNum) -> Verdict {
        BlockWindow::check_and_accept(self, seq)
    }
    fn right_edge(&self) -> SeqNum {
        BlockWindow::right_edge(self)
    }
    fn resume_at(&mut self, right: SeqNum) {
        BlockWindow::resume_at(self, right)
    }
    fn reset_naive(&mut self) {
        // Forget everything: edge to 0, ring cleared — the vulnerable
        // restart, for baseline experiments.
        *self = BlockWindow::new(self.effective_size());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<W: ReplayWindow>(mut w: W) {
        assert_eq!(w.check_and_accept(SeqNum::new(5)), Verdict::Fresh);
        assert_eq!(w.check_and_accept(SeqNum::new(5)), Verdict::Duplicate);
        w.resume_at(SeqNum::new(100));
        assert!(!w.check(SeqNum::new(50)).is_deliverable());
        assert_eq!(w.check(SeqNum::new(101)), Verdict::Fresh);
        w.reset_naive();
        assert_eq!(w.right_edge(), SeqNum::ZERO);
    }

    #[test]
    fn both_implementations_satisfy_the_contract() {
        exercise(AntiReplayWindow::new(64));
        exercise(BlockWindow::new(64));
    }

    #[test]
    fn trait_object_not_required_but_generics_work() {
        fn right_of<W: ReplayWindow>(w: &W) -> u64 {
            w.right_edge().value()
        }
        let mut a = AntiReplayWindow::new(32);
        a.accept(SeqNum::new(9));
        assert_eq!(right_of(&a), 9);
        let mut b = BlockWindow::new(32);
        b.accept(SeqNum::new(9));
        assert_eq!(right_of(&b), 9);
    }
}

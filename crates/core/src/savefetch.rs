//! The SAVE/FETCH-augmented anti-replay protocol — §4 of the paper.
//!
//! Sender `p` gains constants `Kp` (save interval) and a variable `lst`
//! (last sequence number handed to a SAVE); receiver `q` gains `Kq` and
//! `lst` likewise. Every `K` messages a **background** SAVE of the
//! current counter is issued; on wake-up after a reset the process
//! FETCHes the last durable counter, **leaps by `2K`**, synchronously
//! SAVEs the leaped value, and only then resumes.
//!
//! # Architecture: pure machine, thin driver
//!
//! All protocol *logic* lives in [`crate::machine::SfMachine`], a pure
//! transition function `step(SfEvent) → Vec<SfEffect>` with no store, no
//! clock and no allocation beyond its own state — which is what lets the
//! `reset-model` crate exhaustively enumerate every bounded interleaving
//! of sends, resets, save races and adversary schedules, and replay any
//! failing schedule as a one-line regression test.
//!
//! [`SfSender`] and [`SfReceiver`] are the *drivers*: each owns a
//! [`BackgroundSaver`] over a [`StableStore`] and translates machine
//! effects into store operations —
//! [`SaveIssued`](crate::machine::SfEffect::SaveIssued) becomes
//! [`BackgroundSaver::issue`], a wake-up FETCH feeds
//! [`BeginWakeup`](crate::machine::SfEvent::BeginWakeup), store faults
//! become [`FetchFault`](crate::machine::SfEvent::FetchFault) — and
//! keeps self-reported statistics. The driver API is exactly the
//! pre-refactor one.
//!
//! Lifecycle (both roles):
//!
//! ```text
//!   Running ──reset()──▶ Down ──begin_wakeup()──▶ Waking ──finish_wakeup()──▶ Running
//! ```
//!
//! `begin_wakeup` performs FETCH and *issues* the synchronous SAVE;
//! `finish_wakeup` marks its completion. The split exists because the
//! paper requires the sender to wait for that SAVE (and the receiver to
//! buffer arrivals) while it runs — and because another reset may strike
//! in between, which must recover the *old* counter and simply repeat the
//! wake-up. The one-call [`SfSender::wake_up`] /
//! [`SfReceiver::wake_up`] convenience does both steps atomically for
//! untimed runs.
//!
//! The receiver's wake-up buffer is **bounded**
//! ([`crate::machine::DEFAULT_WAKEUP_BUFFER`] entries unless
//! [`SfReceiver::set_buffer_limit`] says otherwise); arrivals beyond the
//! cap are reported as [`RxOutcome::DroppedDown`] rather than growing
//! memory without bound under a mid-wake-up frame flood.

use reset_stable::{BackgroundSaver, PendingSave, SlotId, StableError, StableStore};

use crate::machine::{FetchFaultKind, SfEffect, SfEvent, SfMachine};
use crate::seq::SeqNum;
use crate::window::AntiReplayWindow;
use crate::window_trait::ReplayWindow;

pub use crate::machine::{Phase, RxOutcome};

/// Projects a driver-level store error onto the machine's fault alphabet.
fn fault_kind(e: &StableError) -> FetchFaultKind {
    match e {
        StableError::Rollback { .. } => FetchFaultKind::Rollback,
        StableError::Corrupt { .. } => FetchFaultKind::Corrupt,
        _ => FetchFaultKind::Io,
    }
}

/// Counters the sender keeps about itself (for experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// Messages sent.
    pub sent: u64,
    /// Background SAVEs issued.
    pub saves_issued: u64,
    /// Resets experienced.
    pub resets: u64,
    /// Total sequence numbers actually made unusable by wake-up leaps
    /// (`resumed − s_pre_reset` summed over wake-ups, each ≤ `2K`). Note
    /// this is the *true* gap — when FETCH finds a fresh counter the gap
    /// is smaller than the nominal `2K` bound, and experiments no longer
    /// overcount.
    pub seqs_leaped: u64,
}

/// The paper's process `p` with SAVE and FETCH.
///
/// # Examples
///
/// ```
/// use anti_replay::SfSender;
/// use reset_stable::{MemStable, SlotId};
///
/// let mut p = SfSender::new(MemStable::new(), SlotId::sender(1), 25);
/// let s1 = p.send_next()?.unwrap();
/// assert_eq!(s1.value(), 1);
///
/// p.reset();
/// assert!(p.send_next()?.is_none()); // wait = true: nothing sent
/// let resumed = p.wake_up()?;
/// // Never saved, so FETCH finds nothing (0) and the leap gives 2K = 50;
/// // strictly above every previously used sequence number.
/// assert_eq!(resumed.value(), 50);
/// # Ok::<(), reset_stable::StableError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SfSender<S> {
    saver: BackgroundSaver<S>,
    slot: SlotId,
    machine: SfMachine,
    stats: SenderStats,
}

impl<S: StableStore> SfSender<S> {
    /// A sender persisting to `slot` of `store`, saving every `k`
    /// messages.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (the paper requires a positive save interval).
    pub fn new(store: S, slot: SlotId, k: u64) -> Self {
        SfSender {
            saver: BackgroundSaver::new(store),
            slot,
            machine: SfMachine::sender(k),
            stats: SenderStats::default(),
        }
    }

    /// The save interval `Kp`.
    pub fn k(&self) -> u64 {
        self.machine.k()
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.machine.phase()
    }

    /// The next sequence number that would be sent (paper's `s`).
    pub fn next_seq(&self) -> SeqNum {
        self.machine.next_seq().expect("sender machine")
    }

    /// The last counter value handed to a SAVE (paper's `lst`).
    pub fn last_stored(&self) -> u64 {
        self.machine.last_stored()
    }

    /// Self-reported statistics.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// The pure transition machine this driver wraps (read-only) — the
    /// state the `reset-model` explorer cross-checks against.
    pub fn machine(&self) -> &SfMachine {
        &self.machine
    }

    /// The background SAVE currently in flight, if any.
    pub fn pending_save(&self) -> Option<PendingSave> {
        self.saver.pending()
    }

    /// The paper's first action: `∼wait → send msg(s); s := s + 1;` then
    /// issue a background SAVE when `s ≥ Kp + lst`. Returns the sequence
    /// number to attach to the outgoing message, or `None` while down or
    /// waking (`wait = true`).
    ///
    /// # Errors
    ///
    /// Never errs itself; the `Result` mirrors the receiver API and keeps
    /// room for stores that fail on `issue` bookkeeping.
    pub fn send_next(&mut self) -> Result<Option<SeqNum>, StableError> {
        let mut sent = None;
        for effect in self.machine.step(SfEvent::Send) {
            match effect {
                SfEffect::Sent(seq) => {
                    self.stats.sent += 1;
                    sent = Some(seq);
                }
                SfEffect::SaveIssued(v) => {
                    self.saver.issue(self.slot, v);
                    self.stats.saves_issued += 1;
                }
                SfEffect::Blocked => {}
                other => unreachable!("Send produced {other:?}"),
            }
        }
        Ok(sent)
    }

    /// Completion event for a background SAVE (driven by the simulator
    /// after the device latency elapses).
    ///
    /// # Errors
    ///
    /// Propagates store failures; the pending save is retained for retry.
    pub fn save_completed(&mut self) -> Result<Option<PendingSave>, StableError> {
        self.saver.complete()
    }

    /// Drops the in-flight background SAVE without completing it — the
    /// device failed the write. Volatile protocol state is untouched
    /// (`lst` advanced at issue time), so a later FETCH simply finds an
    /// older durable value, which the `2K` leap already covers. A
    /// fault-injection hook for the `reset-model` explorer.
    pub fn drop_pending_save(&mut self) {
        self.saver.crash();
        self.machine.step(SfEvent::SaveLost);
    }

    /// The paper's second action: `(process p is reset) → wait := true`.
    /// All volatile state — `s`, `lst`, and any in-flight SAVE — is lost.
    pub fn reset(&mut self) {
        self.machine.step(SfEvent::Reset);
        self.saver.crash();
        self.stats.resets += 1;
    }

    /// First half of the wake-up action: FETCH, add the `2Kp` leap, and
    /// issue the synchronous SAVE of the leaped value. Returns the leaped
    /// counter. The sender stays unable to send until
    /// [`finish_wakeup`](Self::finish_wakeup).
    ///
    /// The FETCH is generation-checked: a store serving an *older*
    /// snapshot than the last acknowledged SAVE (rollback) fails the
    /// wake-up instead of leaping from a resurrected counter.
    ///
    /// # Errors
    ///
    /// Propagates FETCH failures — including [`StableError::Rollback`] and
    /// [`StableError::Corrupt`] — and the process stays `Down`; the layer
    /// above must fail closed (replace the SA) rather than retry blindly.
    ///
    /// # Panics
    ///
    /// Panics if the process is not `Down`.
    pub fn begin_wakeup(&mut self) -> Result<SeqNum, StableError> {
        assert_eq!(
            self.machine.phase(),
            Phase::Down,
            "wake_up requires a prior reset"
        );
        let fetched = match self.saver.fetch_checked(self.slot) {
            Ok(v) => v.unwrap_or(0),
            Err(e) => {
                self.machine.step(SfEvent::FetchFault(fault_kind(&e)));
                return Err(e);
            }
        };
        let effects = self.machine.step(SfEvent::BeginWakeup { fetched });
        let [SfEffect::SaveIssued(leaped)] = effects[..] else {
            unreachable!("BeginWakeup produced {effects:?}");
        };
        self.saver.issue(self.slot, leaped);
        Ok(SeqNum::new(leaped))
    }

    /// Second half of the wake-up: the synchronous SAVE completed; set
    /// `s` and `lst` to the leaped value and clear `wait`.
    ///
    /// # Errors
    ///
    /// Propagates store failures (the process stays `Waking`; retry).
    ///
    /// # Panics
    ///
    /// Panics if not `Waking`.
    pub fn finish_wakeup(&mut self) -> Result<SeqNum, StableError> {
        assert_eq!(
            self.machine.phase(),
            Phase::Waking,
            "no wake-up in progress"
        );
        self.saver.complete()?;
        let effects = self.machine.step(SfEvent::SaveDone);
        let [SfEffect::WokeUp {
            resumed,
            unusable_gap,
        }] = effects[..]
        else {
            unreachable!("sender SaveDone produced {effects:?}");
        };
        // Leap bookkeeping for the experiments: the *actual* unusable gap
        // (≤ 2Kp by §5 condition (i)), not the nominal bound.
        self.stats.seqs_leaped += unusable_gap;
        Ok(resumed)
    }

    /// Atomic wake-up for untimed runs: both halves back to back.
    ///
    /// # Errors
    ///
    /// Propagates store failures.
    pub fn wake_up(&mut self) -> Result<SeqNum, StableError> {
        self.begin_wakeup()?;
        self.finish_wakeup()
    }

    /// Access to the underlying store (assertions, teardown).
    pub fn store(&self) -> &S {
        self.saver.store()
    }

    /// Mutable access to the underlying store — SA teardown (erasing the
    /// slot) and fault-injection tests.
    pub fn store_mut(&mut self) -> &mut S {
        self.saver.store_mut()
    }
}

/// Counters the receiver keeps about itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReceiverStats {
    /// Messages delivered to the application.
    pub delivered: u64,
    /// Messages discarded as stale (left of window).
    pub discarded_stale: u64,
    /// Messages discarded as duplicates.
    pub discarded_duplicate: u64,
    /// Messages buffered during a wake-up.
    pub buffered: u64,
    /// Messages dropped because the machine was down — or because the
    /// bounded wake-up buffer was full.
    pub dropped_down: u64,
    /// Background SAVEs issued.
    pub saves_issued: u64,
    /// Resets experienced.
    pub resets: u64,
}

/// The paper's process `q` with SAVE and FETCH.
///
/// # Examples
///
/// ```
/// use anti_replay::{RxOutcome, SeqNum, SfReceiver};
/// use reset_stable::{MemStable, SlotId};
///
/// let mut q = SfReceiver::new(MemStable::new(), SlotId::receiver(1), 25, 64);
/// assert_eq!(q.receive(SeqNum::new(1))?, RxOutcome::Delivered);
/// assert_eq!(q.receive(SeqNum::new(1))?, RxOutcome::DiscardedDuplicate);
/// # Ok::<(), reset_stable::StableError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SfReceiver<S, W = AntiReplayWindow> {
    saver: BackgroundSaver<S>,
    slot: SlotId,
    machine: SfMachine<W>,
    stats: ReceiverStats,
}

impl<S: StableStore> SfReceiver<S, AntiReplayWindow> {
    /// A receiver persisting to `slot` of `store`, saving every `k`
    /// right-edge advances, with a reference anti-replay window of `w`
    /// entries. Use [`SfReceiver::with_window`] to pick a different
    /// window implementation (e.g. [`crate::BlockWindow`]).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `w == 0`.
    pub fn new(store: S, slot: SlotId, k: u64, w: u64) -> Self {
        Self::with_window(store, slot, k, AntiReplayWindow::new(w))
    }
}

impl<S: StableStore, W: ReplayWindow> SfReceiver<S, W> {
    /// A receiver over an explicit window implementation.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_window(store: S, slot: SlotId, k: u64, window: W) -> Self {
        SfReceiver {
            saver: BackgroundSaver::new(store),
            slot,
            machine: SfMachine::receiver_with_window(k, window),
            stats: ReceiverStats::default(),
        }
    }

    /// The save interval `Kq`.
    pub fn k(&self) -> u64 {
        self.machine.k()
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.machine.phase()
    }

    /// The anti-replay window (read-only).
    pub fn window(&self) -> &W {
        self.machine.window().expect("receiver machine")
    }

    /// The window's right edge `r`.
    pub fn right_edge(&self) -> SeqNum {
        self.window().right_edge()
    }

    /// The last counter value handed to a SAVE.
    pub fn last_stored(&self) -> u64 {
        self.machine.last_stored()
    }

    /// Self-reported statistics.
    pub fn stats(&self) -> ReceiverStats {
        self.stats
    }

    /// The pure transition machine this driver wraps (read-only) — the
    /// state the `reset-model` explorer cross-checks against.
    pub fn machine(&self) -> &SfMachine<W> {
        &self.machine
    }

    /// Caps the wake-up buffer at `limit` messages (clamped to ≥ 1).
    /// Default: [`crate::machine::DEFAULT_WAKEUP_BUFFER`]. Arrivals
    /// beyond the cap while `Waking` are dropped
    /// ([`RxOutcome::DroppedDown`]) instead of growing memory without
    /// bound.
    pub fn set_buffer_limit(&mut self, limit: usize) {
        self.machine.set_buffer_limit(limit);
    }

    /// The configured wake-up buffer cap.
    pub fn buffer_limit(&self) -> usize {
        self.machine.buffer_limit()
    }

    /// The background SAVE currently in flight, if any.
    pub fn pending_save(&self) -> Option<PendingSave> {
        self.saver.pending()
    }

    /// Applies one machine event and folds its effects into stats and
    /// store operations, returning the `Rx` outcomes in order.
    fn drive(&mut self, event: SfEvent) -> Vec<(SeqNum, RxOutcome)> {
        let mut outcomes = Vec::new();
        for effect in self.machine.step(event) {
            match effect {
                SfEffect::Rx { seq, outcome } => {
                    match outcome {
                        RxOutcome::Delivered => self.stats.delivered += 1,
                        RxOutcome::DiscardedStale => self.stats.discarded_stale += 1,
                        RxOutcome::DiscardedDuplicate => self.stats.discarded_duplicate += 1,
                        RxOutcome::Buffered => self.stats.buffered += 1,
                        RxOutcome::DroppedDown => self.stats.dropped_down += 1,
                    }
                    outcomes.push((seq, outcome));
                }
                SfEffect::SaveIssued(v) => {
                    self.saver.issue(self.slot, v);
                    self.stats.saves_issued += 1;
                }
                SfEffect::WokeUp { .. } => {}
                other => unreachable!("receiver event produced {other:?}"),
            }
        }
        outcomes
    }

    /// The paper's receive action: classify against the window, deliver
    /// or discard, then issue a background SAVE when `r ≥ Kq + lst`.
    /// While `Waking`, arrivals are buffered (up to
    /// [`SfReceiver::buffer_limit`]; beyond it they are dropped); while
    /// `Down`, dropped.
    ///
    /// # Errors
    ///
    /// Never errs today; mirrors the sender API for forward-compatible
    /// stores.
    pub fn receive(&mut self, seq: SeqNum) -> Result<RxOutcome, StableError> {
        let outcomes = self.drive(SfEvent::Receive(seq));
        let [(_, outcome)] = outcomes[..] else {
            unreachable!("Receive produced {outcomes:?}");
        };
        Ok(outcome)
    }

    /// Completion event for a background SAVE.
    ///
    /// # Errors
    ///
    /// Propagates store failures; the pending save is retained for retry.
    pub fn save_completed(&mut self) -> Result<Option<PendingSave>, StableError> {
        self.saver.complete()
    }

    /// Drops the in-flight background SAVE without completing it — see
    /// [`SfSender::drop_pending_save`].
    pub fn drop_pending_save(&mut self) {
        self.saver.crash();
        self.machine.step(SfEvent::SaveLost);
    }

    /// `(process q is reset) → wait := true`: volatile window, `lst` and
    /// in-flight SAVE are lost.
    pub fn reset(&mut self) {
        self.machine.step(SfEvent::Reset);
        self.saver.crash();
        self.stats.resets += 1;
    }

    /// First half of wake-up: FETCH, leap by `2Kq`, issue the synchronous
    /// SAVE. Arrivals from now until [`finish_wakeup`](Self::finish_wakeup)
    /// are buffered, exactly as §4 prescribes.
    ///
    /// The FETCH is generation-checked (see
    /// [`BackgroundSaver::fetch_checked`]): a rolled-back store would
    /// resume the replay window below sequence numbers already accepted,
    /// so it fails the wake-up instead.
    ///
    /// # Errors
    ///
    /// Propagates FETCH failures — including [`StableError::Rollback`] and
    /// [`StableError::Corrupt`] — and the process stays `Down`; the layer
    /// above must fail closed (replace the SA) rather than retry blindly.
    ///
    /// # Panics
    ///
    /// Panics if the process is not `Down`.
    pub fn begin_wakeup(&mut self) -> Result<SeqNum, StableError> {
        assert_eq!(
            self.machine.phase(),
            Phase::Down,
            "wake_up requires a prior reset"
        );
        let fetched = match self.saver.fetch_checked(self.slot) {
            Ok(v) => v.unwrap_or(0),
            Err(e) => {
                self.machine.step(SfEvent::FetchFault(fault_kind(&e)));
                return Err(e);
            }
        };
        let effects = self.machine.step(SfEvent::BeginWakeup { fetched });
        let [SfEffect::SaveIssued(leaped)] = effects[..] else {
            unreachable!("BeginWakeup produced {effects:?}");
        };
        self.saver.issue(self.slot, leaped);
        Ok(SeqNum::new(leaped))
    }

    /// Second half of wake-up: the SAVE completed. Rebuild the window at
    /// the leaped right edge with **every entry marked received** ("every
    /// sequence number up to r should be assumed to be already
    /// received"), then classify the buffered arrivals in order.
    ///
    /// # Errors
    ///
    /// Propagates store failures (stays `Waking`; retry).
    ///
    /// # Panics
    ///
    /// Panics if not `Waking`.
    pub fn finish_wakeup(&mut self) -> Result<Vec<(SeqNum, RxOutcome)>, StableError> {
        assert_eq!(
            self.machine.phase(),
            Phase::Waking,
            "no wake-up in progress"
        );
        self.saver.complete()?;
        Ok(self.drive(SfEvent::SaveDone))
    }

    /// Atomic wake-up (both halves) for untimed runs. Returns the leaped
    /// right edge.
    ///
    /// # Errors
    ///
    /// Propagates store failures.
    pub fn wake_up(&mut self) -> Result<SeqNum, StableError> {
        let leaped = self.begin_wakeup()?;
        self.finish_wakeup()?;
        Ok(leaped)
    }

    /// Access to the underlying store.
    pub fn store(&self) -> &S {
        self.saver.store()
    }

    /// Mutable access to the underlying store — SA teardown and
    /// fault-injection tests.
    pub fn store_mut(&mut self) -> &mut S {
        self.saver.store_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reset_stable::MemStable;

    fn sender(k: u64) -> SfSender<MemStable> {
        SfSender::new(MemStable::new(), SlotId::sender(1), k)
    }

    fn receiver(k: u64, w: u64) -> SfReceiver<MemStable> {
        SfReceiver::new(MemStable::new(), SlotId::receiver(1), k, w)
    }

    // ------------------------------------------------------------------
    // Sender
    // ------------------------------------------------------------------

    #[test]
    fn sender_counts_from_one() {
        let mut p = sender(5);
        for want in 1..=10u64 {
            assert_eq!(p.send_next().unwrap(), Some(SeqNum::new(want)));
        }
        assert_eq!(p.stats().sent, 10);
    }

    #[test]
    fn sender_saves_every_k() {
        let mut p = sender(5);
        // lst starts at 1; first save when s (post-increment) >= 5 + 1 = 6,
        // i.e. after sending seq 5.
        for _ in 0..4 {
            p.send_next().unwrap();
        }
        assert_eq!(p.pending_save(), None, "no save after 4 sends");
        p.send_next().unwrap(); // seq 5; s becomes 6 = K + lst
        let pending = p.pending_save().expect("save issued");
        assert_eq!(pending.value, 6);
        assert_eq!(p.last_stored(), 6);
        // Saves repeat every K sends.
        p.save_completed().unwrap();
        for _ in 0..5 {
            p.send_next().unwrap();
        }
        assert_eq!(p.pending_save().map(|s| s.value), Some(11));
        assert_eq!(p.stats().saves_issued, 2);
    }

    #[test]
    fn sender_reset_blocks_sending() {
        let mut p = sender(5);
        p.send_next().unwrap();
        p.reset();
        assert_eq!(p.phase(), Phase::Down);
        assert_eq!(p.send_next().unwrap(), None);
        assert_eq!(p.stats().resets, 1);
    }

    #[test]
    fn wakeup_without_any_save_leaps_from_zero() {
        let mut p = sender(25);
        for _ in 0..10 {
            p.send_next().unwrap();
        }
        p.reset();
        let resumed = p.wake_up().unwrap();
        assert_eq!(resumed.value(), 50, "0 + 2K");
        // Strictly above every used sequence number (max was 10).
        assert!(resumed.value() > 10);
        assert_eq!(p.send_next().unwrap(), Some(SeqNum::new(50)));
    }

    #[test]
    fn fig1_case1_reset_during_save_gap_at_most_2k() {
        // SAVE(s) in flight when the reset hits: FETCH returns s − K.
        let k = 10;
        let mut p = sender(k);
        // Drive until the second save is issued but NOT completed.
        // First save at s=11 (value 11), complete it; lst = 11.
        for _ in 0..10 {
            p.send_next().unwrap();
        }
        p.save_completed().unwrap();
        // Next save issues when s = 21.
        for _ in 0..10 {
            p.send_next().unwrap();
        }
        assert_eq!(p.pending_save().map(|s| s.value), Some(21));
        // Send t < K more messages, reset mid-save.
        for _ in 0..7 {
            p.send_next().unwrap();
        }
        let next_unused = p.next_seq(); // 28
        p.reset();
        let resumed = p.wake_up().unwrap();
        // FETCH found 11 (the stale value); resumed = 11 + 2K = 31.
        assert_eq!(resumed.value(), 31);
        // Freshness: strictly above everything previously used.
        assert!(resumed > next_unused);
        // Condition (i): the gap of unusable numbers is ≤ 2K.
        assert!(resumed.value() - next_unused.value() <= 2 * k);
    }

    #[test]
    fn fig1_case2_reset_after_save_gap_at_most_k() {
        let k = 10;
        let mut p = sender(k);
        for _ in 0..10 {
            p.send_next().unwrap();
        }
        p.save_completed().unwrap(); // SAVE(11) durable
        for _ in 0..6 {
            p.send_next().unwrap(); // u = 6 < K more sends
        }
        let next_unused = p.next_seq(); // 17
        p.reset();
        let resumed = p.wake_up().unwrap();
        // FETCH found 11; resumed = 31; gap = 31 − 17 = 14 ≤ 2K.
        assert_eq!(resumed.value(), 31);
        assert!(resumed.value() - next_unused.value() <= 2 * k);
        assert!(resumed > next_unused);
    }

    #[test]
    fn double_reset_before_first_save_still_fresh() {
        // §4's second consideration: a reset strikes again before the
        // post-wake-up state is used. The synchronous SAVE at wake-up is
        // what makes the second recovery safe.
        let mut p = sender(10);
        for _ in 0..5 {
            p.send_next().unwrap();
        }
        p.reset();
        let first = p.wake_up().unwrap(); // 0 + 20 = 20, durably saved
                                          // Immediately reset again — before any new background save.
        p.reset();
        let second = p.wake_up().unwrap();
        // FETCH finds 20 (saved synchronously at previous wake-up).
        assert_eq!(second.value(), 40);
        assert!(second > first, "every wake-up moves strictly forward");
    }

    #[test]
    fn reset_during_wakeup_save_recovers_old_value() {
        let mut p = sender(10);
        for _ in 0..10 {
            p.send_next().unwrap();
        }
        p.save_completed().unwrap(); // 11 durable
        p.reset();
        let target = p.begin_wakeup().unwrap();
        assert_eq!(target.value(), 31);
        assert_eq!(p.phase(), Phase::Waking);
        assert_eq!(p.send_next().unwrap(), None, "still waiting");
        // Reset strikes during the wake-up SAVE: it never became durable.
        p.reset();
        let resumed = p.wake_up().unwrap();
        assert_eq!(resumed.value(), 31, "FETCH saw 11 again, not 31");
    }

    #[test]
    fn leap_stat_records_true_gap_not_nominal_bound() {
        // Regression (pre-fix code recorded 2K per wake-up regardless):
        // FETCH finding a *fresh* value must shrink the recorded leap.
        let k = 5;
        let mut p = sender(k);
        for _ in 0..5 {
            p.send_next().unwrap(); // save of 6 issued at seq 5
        }
        p.save_completed().unwrap(); // 6 durable — perfectly fresh
        for _ in 0..2 {
            p.send_next().unwrap(); // next unused s = 8
        }
        p.reset();
        let resumed = p.wake_up().unwrap();
        assert_eq!(resumed.value(), 16, "6 + 2K");
        // The unusable gap is 16 − 8 = 8, strictly below the 2K = 10 the
        // old bookkeeping charged.
        assert_eq!(p.stats().seqs_leaped, 8);
        assert!(p.stats().seqs_leaped <= 2 * k);
    }

    #[test]
    fn save_threshold_near_sequence_ceiling_is_well_defined() {
        // Regression: the save-due comparison `s ≥ k + lst` overflowed
        // u64 once a FETCHed counter put lst near the ceiling (debug
        // panic / release wrap → spurious save). The checked form sends
        // fine and issues no save.
        let k = 3u64;
        let slot = SlotId::sender(1);
        let mut store = MemStable::new();
        use reset_stable::StableStore as _;
        store.store(slot, u64::MAX - 2 * k - 2).unwrap();
        let mut p = SfSender::new(store, slot, k);
        p.reset();
        let resumed = p.wake_up().unwrap();
        assert_eq!(resumed.value(), u64::MAX - 2);
        assert_eq!(
            p.send_next().unwrap(),
            Some(SeqNum::new(u64::MAX - 2)),
            "send near the ceiling must not overflow the save threshold"
        );
        assert_eq!(p.pending_save(), None, "no spurious save");
    }

    #[test]
    #[should_panic(expected = "requires a prior reset")]
    fn wakeup_while_running_panics() {
        let mut p = sender(5);
        let _ = p.begin_wakeup();
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_k_panics() {
        let _ = sender(0);
    }

    // ------------------------------------------------------------------
    // Receiver
    // ------------------------------------------------------------------

    #[test]
    fn receiver_delivers_fresh_discards_replay() {
        let mut q = receiver(5, 32);
        assert_eq!(q.receive(SeqNum::new(1)).unwrap(), RxOutcome::Delivered);
        assert_eq!(
            q.receive(SeqNum::new(1)).unwrap(),
            RxOutcome::DiscardedDuplicate
        );
        assert_eq!(q.stats().delivered, 1);
        assert_eq!(q.stats().discarded_duplicate, 1);
    }

    #[test]
    fn receiver_saves_every_k_edge_advances() {
        let mut q = receiver(5, 32);
        // lst = 0; save when r >= 5.
        for s in 1..=4u64 {
            q.receive(SeqNum::new(s)).unwrap();
        }
        assert_eq!(q.pending_save(), None);
        q.receive(SeqNum::new(5)).unwrap();
        assert_eq!(q.pending_save().map(|p| p.value), Some(5));
        assert_eq!(q.last_stored(), 5);
    }

    #[test]
    fn receiver_down_drops_waking_buffers() {
        let mut q = receiver(5, 32);
        q.receive(SeqNum::new(1)).unwrap();
        q.reset();
        assert_eq!(q.receive(SeqNum::new(2)).unwrap(), RxOutcome::DroppedDown);
        q.begin_wakeup().unwrap();
        assert_eq!(q.receive(SeqNum::new(3)).unwrap(), RxOutcome::Buffered);
        let outcomes = q.finish_wakeup().unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(q.stats().dropped_down, 1);
        assert_eq!(q.stats().buffered, 1);
    }

    #[test]
    fn wakeup_buffer_is_bounded_overflow_drops() {
        // Regression (pre-fix code buffered without bound — an OOM
        // vector under a mid-wake-up frame flood).
        let mut q = receiver(5, 32);
        q.set_buffer_limit(4);
        assert_eq!(q.buffer_limit(), 4);
        q.receive(SeqNum::new(1)).unwrap();
        q.reset();
        q.begin_wakeup().unwrap();
        for s in 10..14u64 {
            assert_eq!(q.receive(SeqNum::new(s)).unwrap(), RxOutcome::Buffered);
        }
        for s in 14..20u64 {
            assert_eq!(
                q.receive(SeqNum::new(s)).unwrap(),
                RxOutcome::DroppedDown,
                "arrival {s} beyond the cap must be dropped, not buffered"
            );
        }
        assert_eq!(q.stats().buffered, 4);
        assert_eq!(q.stats().dropped_down, 6);
        let outcomes = q.finish_wakeup().unwrap();
        assert_eq!(outcomes.len(), 4, "only the capped buffer is classified");
    }

    #[test]
    fn fig2_wakeup_rejects_all_old_replays() {
        let k = 10;
        let mut q = receiver(k, 32);
        // Receive 1..=25 in order; saves at r=10 (durable) and r=20
        // (in flight when the reset strikes).
        for s in 1..=25u64 {
            q.receive(SeqNum::new(s)).unwrap();
            if s == 10 {
                q.save_completed().unwrap();
            }
        }
        assert_eq!(q.pending_save().map(|p| p.value), Some(20));
        q.reset();
        let leaped = q.wake_up().unwrap();
        // FETCH found 10; leaped = 10 + 2K = 30 ≥ 25 (the real edge).
        assert_eq!(leaped.value(), 30);
        // The adversary replays the entire history: all rejected.
        for s in 1..=25u64 {
            let out = q.receive(SeqNum::new(s)).unwrap();
            assert!(
                matches!(
                    out,
                    RxOutcome::DiscardedStale | RxOutcome::DiscardedDuplicate
                ),
                "replayed {s} got {out:?}"
            );
        }
        // Condition (ii): fresh messages in (25, 30] are sacrificed, but
        // that's at most 2K; anything beyond the leap is accepted.
        assert_eq!(q.receive(SeqNum::new(31)).unwrap(), RxOutcome::Delivered);
    }

    #[test]
    fn fig2_discarded_fresh_bounded_by_2k() {
        let k = 10;
        let mut q = receiver(k, 64);
        for s in 1..=15u64 {
            q.receive(SeqNum::new(s)).unwrap();
            if s == 10 {
                q.save_completed().unwrap();
            }
        }
        q.reset();
        let leaped = q.wake_up().unwrap(); // 10 + 20 = 30
                                           // Sender continues from 16; fresh 16..=30 are discarded, 31+ flow.
        let mut discarded_fresh = 0;
        for s in 16..=40u64 {
            match q.receive(SeqNum::new(s)).unwrap() {
                RxOutcome::Delivered => {}
                _ => discarded_fresh += 1,
            }
        }
        assert_eq!(discarded_fresh, leaped.value() - 15);
        assert!(discarded_fresh <= 2 * k, "condition (ii) bound");
    }

    #[test]
    fn receiver_buffered_messages_classified_after_leap() {
        let k = 5;
        let mut q = receiver(k, 32);
        for s in 1..=12u64 {
            q.receive(SeqNum::new(s)).unwrap();
            if s == 5 {
                q.save_completed().unwrap();
            }
        }
        q.reset();
        q.begin_wakeup().unwrap(); // leap target = 5 + 10 = 15
                                   // While the wake-up SAVE runs: a replay (3) and a fresh-but-
                                   // sacrificed (13) and a genuinely new (16) arrive.
        q.receive(SeqNum::new(3)).unwrap();
        q.receive(SeqNum::new(13)).unwrap();
        q.receive(SeqNum::new(16)).unwrap();
        let outcomes = q.finish_wakeup().unwrap();
        assert_eq!(outcomes.len(), 3);
        assert!(!outcomes[0].1.is_delivered(), "replay rejected");
        assert!(!outcomes[1].1.is_delivered(), "sacrificed (≤ 2K) fresh");
        assert!(outcomes[2].1.is_delivered(), "post-leap fresh delivered");
    }

    #[test]
    fn receiver_double_reset_never_reaccepts() {
        let mut q = receiver(5, 32);
        for s in 1..=7u64 {
            q.receive(SeqNum::new(s)).unwrap();
        }
        q.reset();
        let first = q.wake_up().unwrap(); // 0or5 + 10
        q.reset();
        let second = q.wake_up().unwrap();
        assert!(second > first);
        // The full history replay still bounces.
        for s in 1..=7u64 {
            assert!(!q.receive(SeqNum::new(s)).unwrap().is_delivered());
        }
    }

    #[test]
    fn receiver_over_block_window_converges_identically() {
        // The RFC 6479 block window drives the same SAVE/FETCH logic; the
        // §4 wake-up still rejects every replay.
        use crate::block_window::BlockWindow;
        let mut q = SfReceiver::with_window(
            MemStable::new(),
            SlotId::receiver(9),
            10,
            BlockWindow::new(64),
        );
        for s in 1..=30u64 {
            assert!(q.receive(SeqNum::new(s)).unwrap().is_delivered());
        }
        q.save_completed().unwrap();
        q.reset();
        let leaped = q.wake_up().unwrap();
        assert!(leaped.value() >= 30);
        for s in 1..=30u64 {
            assert!(
                !q.receive(SeqNum::new(s)).unwrap().is_delivered(),
                "replayed {s} accepted under block window"
            );
        }
        // Convergence: fresh traffic flows within 2K + one block of
        // RFC 6479 conservativeness.
        let mut sacrificed = 0;
        let mut s = 31u64;
        loop {
            if q.receive(SeqNum::new(s)).unwrap().is_delivered() {
                break;
            }
            sacrificed += 1;
            s += 1;
            assert!(sacrificed <= 2 * 10 + 64, "never converged");
        }
    }

    #[test]
    fn sender_receiver_end_to_end_with_sender_reset_no_fresh_loss() {
        // Condition (i): sender reset, in-order channel ⇒ zero fresh
        // messages discarded (some sequence numbers are skipped, but
        // every *sent* message is delivered).
        let mut p = sender(10);
        let mut q = receiver(10, 64);
        let mut sent = 0u64;
        let mut delivered = 0u64;
        for round in 0..200u64 {
            if round == 90 {
                p.reset();
                p.wake_up().unwrap();
                continue;
            }
            if round % 25 == 24 {
                p.save_completed().unwrap();
            }
            if let Some(seq) = p.send_next().unwrap() {
                sent += 1;
                if q.receive(seq).unwrap().is_delivered() {
                    delivered += 1;
                }
            }
        }
        assert_eq!(sent, delivered, "no fresh message discarded");
    }
}

//! Block-based anti-replay window (RFC 6479 style) — an alternative
//! implementation of the §2 window used by production IPsec stacks.
//!
//! Where [`AntiReplayWindow`](crate::AntiReplayWindow) clears newly
//! entered bits one by one when the window slides, the block-based
//! variant rounds the window up to whole 64-bit blocks and clears at
//! *block* granularity, making the slide O(blocks touched) with a much
//! smaller constant — the trick introduced by RFC 6479 ("IPsec
//! Anti-Replay Algorithm without Bit Shifting").
//!
//! The observable semantics are identical for sequence numbers within
//! the *effective* window (which is `w` rounded up to a multiple of 64);
//! the equivalence is pinned by property tests against the reference
//! implementation.

use std::fmt;

use crate::seq::SeqNum;
use crate::window::Verdict;

const BLOCK_BITS: u64 = 64;

/// RFC 6479-style anti-replay window with block-granular sliding.
///
/// # Examples
///
/// ```
/// use anti_replay::{BlockWindow, SeqNum, Verdict};
///
/// let mut w = BlockWindow::new(128);
/// assert_eq!(w.check_and_accept(SeqNum::new(9)), Verdict::Fresh);
/// assert_eq!(w.check_and_accept(SeqNum::new(9)), Verdict::Duplicate);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BlockWindow {
    /// Ring of bitmap blocks; block for sequence s is
    /// `(s / 64) % blocks.len()`.
    blocks: Vec<u64>,
    /// Effective window size in bits (`blocks * 64 − 64`): one spare
    /// block absorbs the in-progress slide, per RFC 6479.
    w_effective: u64,
    right: u64,
}

impl BlockWindow {
    /// A window guaranteeing discrimination over at least `w` sequence
    /// numbers (rounded up to whole blocks + one spare block).
    ///
    /// # Panics
    ///
    /// Panics if `w == 0`.
    pub fn new(w: u64) -> Self {
        assert!(w > 0, "window size must be positive");
        let data_blocks = w.div_ceil(BLOCK_BITS);
        let total_blocks = data_blocks + 1; // spare block for the slide
        BlockWindow {
            // All-clear start (RFC 6479 style). The paper's "initially
            // true" array is observationally identical here because
            // sequence numbers start at 1 > right = 0, so the first
            // arrival always takes the slide path.
            blocks: vec![0; total_blocks as usize],
            w_effective: data_blocks * BLOCK_BITS,
            right: 0,
        }
    }

    /// The effective window size in sequence numbers.
    pub fn effective_size(&self) -> u64 {
        self.w_effective
    }

    /// The window's right edge.
    pub fn right_edge(&self) -> SeqNum {
        SeqNum::new(self.right)
    }

    fn block_index(&self, seq: u64) -> usize {
        ((seq / BLOCK_BITS) % self.blocks.len() as u64) as usize
    }

    fn bit(&self, seq: u64) -> bool {
        let b = self.block_index(seq);
        self.blocks[b] >> (seq % BLOCK_BITS) & 1 == 1
    }

    fn set_bit(&mut self, seq: u64) {
        let b = self.block_index(seq);
        self.blocks[b] |= 1 << (seq % BLOCK_BITS);
    }

    /// Classifies `seq` without mutating.
    pub fn check(&self, seq: SeqNum) -> Verdict {
        let s = seq.value();
        if s > self.right {
            Verdict::Fresh
        } else if s as u128 + self.w_effective as u128 <= self.right as u128 {
            Verdict::Stale
        } else if self.bit(s) {
            Verdict::Duplicate
        } else {
            Verdict::Fresh
        }
    }

    /// Records `seq`; slides block-wise when `seq` is beyond the edge.
    pub fn accept(&mut self, seq: SeqNum) {
        let s = seq.value();
        if s > self.right {
            let cur_top = self.right / BLOCK_BITS;
            let new_top = s / BLOCK_BITS;
            let diff = new_top - cur_top;
            if diff >= self.blocks.len() as u64 {
                // Jumped past the whole ring: clear everything.
                self.blocks.fill(0);
            } else {
                // Clear only the blocks the edge rolls into.
                for i in 1..=diff {
                    let idx = ((cur_top + i) % self.blocks.len() as u64) as usize;
                    self.blocks[idx] = 0;
                }
            }
            self.right = s;
        }
        self.set_bit(s);
    }

    /// [`check`](Self::check) + [`accept`](Self::accept) when fresh.
    pub fn check_and_accept(&mut self, seq: SeqNum) -> Verdict {
        let v = self.check(seq);
        if v == Verdict::Fresh {
            self.accept(seq);
        }
        v
    }

    /// Rebuilds at `right` with everything marked seen (wake-up leap).
    ///
    /// Block granularity makes the post-resume window *conservative*: a
    /// later slide clears whole blocks, so up to one block's worth of
    /// genuinely fresh numbers adjacent to resumed history may be
    /// discarded as duplicates. This errs on the safe side (never accepts
    /// a replay) and is bounded by 64 extra discards.
    pub fn resume_at(&mut self, right: SeqNum) {
        self.blocks.fill(u64::MAX);
        self.right = right.value();
    }
}

impl fmt::Display for BlockWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block_window[w_eff={}, r={}, blocks={}]",
            self.w_effective,
            self.right,
            self.blocks.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::AntiReplayWindow;

    fn n(v: u64) -> SeqNum {
        SeqNum::new(v)
    }

    #[test]
    fn basic_three_cases() {
        let mut w = BlockWindow::new(64);
        assert_eq!(w.check_and_accept(n(100)), Verdict::Fresh);
        assert_eq!(w.check_and_accept(n(100)), Verdict::Duplicate);
        assert_eq!(w.check_and_accept(n(90)), Verdict::Fresh);
        // Left of the effective window: stale.
        let left = 100 - w.effective_size();
        assert_eq!(w.check(n(left)), Verdict::Stale);
    }

    #[test]
    fn effective_size_rounds_up() {
        assert_eq!(BlockWindow::new(1).effective_size(), 64);
        assert_eq!(BlockWindow::new(64).effective_size(), 64);
        assert_eq!(BlockWindow::new(65).effective_size(), 128);
        assert_eq!(BlockWindow::new(1000).effective_size(), 1024);
    }

    #[test]
    fn in_order_stream_all_fresh() {
        let mut w = BlockWindow::new(128);
        for s in 1..=10_000u64 {
            assert_eq!(w.check_and_accept(n(s)), Verdict::Fresh, "seq {s}");
        }
    }

    #[test]
    fn replay_of_everything_rejected() {
        let mut w = BlockWindow::new(128);
        for s in 1..=500u64 {
            w.check_and_accept(n(s));
        }
        for s in 1..=500u64 {
            assert!(!w.check(n(s)).is_deliverable(), "seq {s}");
        }
    }

    #[test]
    fn giant_jump_clears_ring() {
        let mut w = BlockWindow::new(128);
        for s in 1..=100u64 {
            w.check_and_accept(n(s));
        }
        w.accept(n(1_000_000));
        assert_eq!(w.right_edge(), n(1_000_000));
        // New in-window numbers below the edge are fresh (ring cleared).
        assert_eq!(w.check(n(999_990)), Verdict::Fresh);
        assert_eq!(w.check(n(100)), Verdict::Stale);
    }

    #[test]
    fn never_double_delivers_vs_reference() {
        // Drive both implementations with the same adversarial stream;
        // neither may deliver a sequence number twice, and within the
        // block window's effective size their verdicts agree.
        let mut rng = reset_sim::DetRng::new(77);
        let w_bits = 128u64;
        let mut blk = BlockWindow::new(w_bits);
        let mut reference = AntiReplayWindow::new(blk.effective_size());
        let mut delivered_blk = std::collections::HashSet::new();
        for _ in 0..20_000 {
            let s = 1 + rng.below(4_000);
            let vb = blk.check_and_accept(n(s));
            let vr = reference.check_and_accept(n(s));
            assert_eq!(vb, vr, "divergence at seq {s}");
            if vb.is_deliverable() {
                assert!(delivered_blk.insert(s), "double delivery of {s}");
            }
        }
    }

    #[test]
    fn resume_at_blocks_history() {
        let mut w = BlockWindow::new(64);
        for s in 1..=30u64 {
            w.check_and_accept(n(s));
        }
        w.resume_at(n(80)); // the 2K leap
        for s in 1..=80u64 {
            assert!(!w.check(n(s)).is_deliverable(), "seq {s} after leap");
        }
        assert_eq!(w.check(n(81)), Verdict::Fresh);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_panics() {
        let _ = BlockWindow::new(0);
    }

    #[test]
    fn display_renders() {
        let w = BlockWindow::new(100);
        let s = w.to_string();
        assert!(s.contains("w_eff=128"));
    }
}

//! # anti-replay — IPsec anti-replay with SAVE/FETCH reset convergence
//!
//! A faithful, executable reproduction of the protocols in:
//!
//! > Chin-Tser Huang, Mohamed G. Gouda, E.N. Elnozahy.
//! > *Convergence of IPsec in Presence of Resets.* ICDCS 2003
//! > (journal version: J. High Speed Networks 15(2), 2006).
//!
//! IPsec's anti-replay service keeps a sequence counter at the sender and
//! a sliding window at the receiver — both in volatile memory. A reset of
//! either peer therefore admits **unbounded** replay acceptance or
//! **unbounded** fresh-message loss (§3). The paper's fix: **SAVE** the
//! counter to persistent memory every `K` messages (in the background),
//! and on wake-up **FETCH** it, **leap by `2K`**, synchronously SAVE the
//! leaped value, and resume. The `2K` leap covers the worst-case
//! staleness of a FETCH that races an in-flight SAVE, giving (§5):
//!
//! * no replayed message is ever accepted,
//! * a sender reset wastes ≤ `2Kp` sequence numbers (and, without
//!   reorder, loses **zero** fresh messages),
//! * a receiver reset discards ≤ `2Kq` fresh messages.
//!
//! # Layout
//!
//! * [`SeqNum`] — sequence numbers (the paper's unbounded integers).
//! * [`AntiReplayWindow`] / [`Verdict`] — the §2 window with its three
//!   receive cases.
//! * [`BaselineSender`] / [`BaselineReceiver`] — the §2 protocol with the
//!   §3 naive restart (the vulnerable baseline).
//! * [`SfMachine`] ([`machine`]) — the §4 protocol as a **pure
//!   transition function** `step(SfEvent) → Vec<SfEffect>`: no store, no
//!   clock, hashable state — the substrate the `reset-model` bounded
//!   exhaustive explorer enumerates and cross-checks.
//! * [`SfSender`] / [`SfReceiver`] — thin **drivers** over [`SfMachine`]
//!   that own the stable store: the §4 protocol with SAVE/FETCH,
//!   background-save races, wake-up leap and (bounded) receive buffering.
//! * [`Monitor`] / [`Report`] — online ground-truth checking of the §5
//!   theorem.
//! * [`apn_model`] — the same processes transcribed into the Abstract
//!   Protocol Notation runtime for exhaustive interleaving exploration.
//!
//! This crate is the root of the workspace's dependency graph; the
//! repo-level `ARCHITECTURE.md` maps the crates built on top of it
//! (wire format, IPsec substrate, stores, harnesses) and the
//! invariants they share.
//!
//! # Performance
//!
//! The paper's premise is that the anti-replay check must be negligible
//! next to a ~4 µs per-message budget. The window datapath is tuned
//! accordingly (numbers from `BENCH_datapath.json`, the repository's
//! perf-trajectory seed, 10k-packet in-order streams, release profile):
//!
//! * [`AntiReplayWindow::check_and_accept`] is fused: the in-window path
//!   computes the bit index once and tests-and-sets in a single pass;
//!   the slide path clears newly entered bits at **word** granularity
//!   (whole `u64` stores, masked edges) instead of one bit at a time,
//!   and skips the accepted bit entirely — the dominant in-order slide
//!   (distance 1) clears nothing.
//! * Result: ~2.8 ns per in-order packet at `w = 1024` (was ~5.4 ns for
//!   the seed's bit-loop slide), now matching the RFC 6479
//!   [`BlockWindow`] while keeping exact (non-rounded) window semantics.
//!   Equivalence with the seed behaviour is pinned by a 100k-packet
//!   three-way oracle test (`tests/it_properties.rs`) and a
//!   slide-distance sweep against a bit-model in `window.rs`.
//! * The surrounding ESP pipeline amortizes the remaining per-packet
//!   costs: precomputed per-SA HMAC key schedules (1.59× ICV throughput
//!   on 64-byte payloads), zero-copy payload delivery, and a recycled
//!   decryption arena (`reset-ipsec`'s `Inbound::process_batch`).
//!
//! # Examples
//!
//! The §3 attack and the §4 defence, side by side:
//!
//! ```
//! use anti_replay::{BaselineReceiver, SeqNum, SfReceiver};
//! use reset_stable::{MemStable, SlotId};
//!
//! // Baseline: receiver reset forgets the window...
//! let mut naive = BaselineReceiver::new(32);
//! for s in 1..=100u64 {
//!     naive.receive(SeqNum::new(s));
//! }
//! naive.reset_and_wake();
//! // ...so a replayed old message is accepted:
//! assert!(naive.receive(SeqNum::new(1)).is_deliverable());
//!
//! // SAVE/FETCH: the counter was saved every K = 10 messages.
//! let mut patched = SfReceiver::new(MemStable::new(), SlotId::receiver(1), 10, 32);
//! for s in 1..=100u64 {
//!     patched.receive(SeqNum::new(s))?;
//!     patched.save_completed()?; // background save completes promptly
//! }
//! patched.reset();
//! patched.wake_up()?; // FETCH + leap 2K
//! // Every replay of old traffic is rejected:
//! for s in 1..=100u64 {
//!     assert!(!patched.receive(SeqNum::new(s))?.is_delivered());
//! }
//! # Ok::<(), reset_stable::StableError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apn_model;
mod baseline;
mod block_window;
mod convergence;
pub mod machine;
mod savefetch;
mod seq;
mod window;
mod window_trait;

pub use baseline::{BaselineReceiver, BaselineSender};
pub use block_window::BlockWindow;
pub use convergence::{Monitor, MsgId, Origin, Report, Violation};
pub use machine::{FetchFaultKind, SfEffect, SfEvent, SfMachine};
pub use savefetch::{Phase, ReceiverStats, RxOutcome, SenderStats, SfReceiver, SfSender};
pub use seq::SeqNum;
pub use window::{AntiReplayWindow, Verdict};
pub use window_trait::ReplayWindow;

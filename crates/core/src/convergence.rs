//! Online convergence monitor — ground truth for the paper's theorem.
//!
//! Experiments attach a [`Monitor`] next to the protocol under test and
//! feed it every send, delivery and discard. The monitor checks, *while
//! the run executes*, the three §5 guarantees:
//!
//! * **No replay accepted** — no sequence number is ever delivered twice
//!   (Discrimination). Under the broken §3 baseline this is also what an
//!   accepted adversary replay or a reused post-reset counter produces.
//! * **Condition (i)** — a sender reset wastes at most `2Kp` sequence
//!   numbers, and (absent reorder) no fresh message is discarded.
//! * **Condition (ii)** — a receiver reset causes at most `2Kq` fresh
//!   discards.
//!
//! Identity model: every *send* is one **instance** with a caller-chosen
//! [`MsgId`]; channel duplicates and adversary copies carry the same id
//! as the instance they copy. Sequence numbers alone cannot serve as
//! identity because the broken baseline *reuses* them after a reset —
//! precisely the behaviour under test. The monitor is deliberately
//! independent of the protocol code: it keeps its own delivered sets, so
//! a protocol bug cannot hide from it.

use std::collections::HashSet;

use crate::seq::SeqNum;

/// Identity of one sent message instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgId(pub u64);

/// Where a received packet copy came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// The sender's original transmission.
    Original,
    /// A duplicate created by the channel.
    ChannelDup,
    /// A copy injected by the adversary (a replay).
    Adversary,
}

/// A violation detected by the monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A sequence number was delivered more than once — Discrimination
    /// broken; equivalently, a replayed (or counter-reusing) message was
    /// accepted.
    DoubleDelivery {
        /// The offending sequence number.
        seq: SeqNum,
    },
    /// A sender wake-up resumed at or below a previously used number.
    StaleResume {
        /// Where the sender resumed.
        resumed: SeqNum,
        /// The highest sequence number used before the reset.
        max_used: SeqNum,
    },
    /// More sequence numbers were wasted by a leap than `2K`.
    LeapTooLarge {
        /// Observed waste.
        lost: u64,
        /// The `2K` bound.
        bound: u64,
    },
}

/// Aggregated results of a monitored run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Messages sent by the sender (original instances).
    pub sent: u64,
    /// Instances that reached the application (through any copy).
    pub fresh_delivered: u64,
    /// Original instances discarded without ever being delivered — the
    /// §5(ii) casualty count.
    pub fresh_discarded: u64,
    /// Sequence numbers delivered twice — accepted replays / reuse. Must
    /// be 0 under SAVE/FETCH; grows without bound under the §3 baseline.
    pub replays_accepted: u64,
    /// Adversary-injected copies rejected by the receiver.
    pub replays_rejected: u64,
    /// Adversary copies that were the *first* delivery of their instance
    /// (the original was lost). Benign: Discrimination still holds; the
    /// adversary merely played postman.
    pub adversary_first_deliveries: u64,
    /// Sequence numbers wasted by sender leaps (§5(i)).
    pub seqs_lost_to_leaps: u64,
    /// Detected violations (empty = the theorem held).
    pub violations: Vec<Violation>,
}

impl Report {
    /// True iff no guarantee was violated.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Folds another SA's report into this one: counters sum,
    /// violations concatenate. Fleet experiments (one [`Monitor`] per
    /// SA) merge their per-SA reports into one aggregate this way —
    /// the fold lives here, next to the fields, so a counter added to
    /// [`Report`] cannot be silently dropped from aggregates.
    pub fn merge(&mut self, other: &Report) {
        let Report {
            sent,
            fresh_delivered,
            fresh_discarded,
            replays_accepted,
            replays_rejected,
            adversary_first_deliveries,
            seqs_lost_to_leaps,
            violations,
        } = other;
        self.sent += sent;
        self.fresh_delivered += fresh_delivered;
        self.fresh_discarded += fresh_discarded;
        self.replays_accepted += replays_accepted;
        self.replays_rejected += replays_rejected;
        self.adversary_first_deliveries += adversary_first_deliveries;
        self.seqs_lost_to_leaps += seqs_lost_to_leaps;
        self.violations.extend(violations.iter().cloned());
    }
}

/// Ground-truth tracker for one unidirectional SA.
///
/// # Examples
///
/// ```
/// use anti_replay::{Monitor, MsgId, Origin, SeqNum};
///
/// let mut m = Monitor::new();
/// m.on_send(MsgId(0), SeqNum::new(1));
/// m.on_deliver(Some(MsgId(0)), SeqNum::new(1), Origin::Original);
/// // The adversary replays it; the protocol (correctly) rejects:
/// m.on_discard(Some(MsgId(0)), SeqNum::new(1), Origin::Adversary);
/// let report = m.into_report();
/// assert!(report.clean());
/// assert_eq!(report.replays_rejected, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Monitor {
    delivered_seqs: HashSet<u64>,
    delivered_instances: HashSet<MsgId>,
    discarded_instances: HashSet<MsgId>,
    max_used: u64,
    report: Report,
}

impl Monitor {
    /// A fresh monitor.
    pub fn new() -> Self {
        Monitor::default()
    }

    /// Records an original transmission.
    pub fn on_send(&mut self, id: MsgId, seq: SeqNum) {
        let _ = id;
        self.report.sent += 1;
        self.max_used = self.max_used.max(seq.value());
    }

    /// Records a delivery of a copy of instance `id` (if known) carrying
    /// `seq`, received via `origin`.
    pub fn on_deliver(&mut self, id: Option<MsgId>, seq: SeqNum, origin: Origin) {
        if !self.delivered_seqs.insert(seq.value()) {
            // Discrimination broken: this sequence number already reached
            // the application once.
            self.report
                .violations
                .push(Violation::DoubleDelivery { seq });
            self.report.replays_accepted += 1;
            return;
        }
        let first_for_instance = match id {
            Some(id) => self.delivered_instances.insert(id),
            None => true,
        };
        if first_for_instance {
            self.report.fresh_delivered += 1;
        }
        if origin == Origin::Adversary {
            self.report.adversary_first_deliveries += 1;
        }
    }

    /// Records a discard of a copy of instance `id` carrying `seq`.
    pub fn on_discard(&mut self, id: Option<MsgId>, seq: SeqNum, origin: Origin) {
        let _ = seq;
        match origin {
            Origin::Original => {
                // A discarded original whose instance never got delivered
                // through any other copy is a lost fresh message. Count
                // each instance at most once.
                let delivered = id
                    .map(|i| self.delivered_instances.contains(&i))
                    .unwrap_or(false);
                let already = id
                    .map(|i| !self.discarded_instances.insert(i))
                    .unwrap_or(false);
                if !delivered && !already {
                    self.report.fresh_discarded += 1;
                }
            }
            Origin::Adversary => self.report.replays_rejected += 1,
            Origin::ChannelDup => {}
        }
    }

    /// Records a sender wake-up: it previously would have used
    /// `old_next`, and resumed at `resumed`. Checks freshness and the
    /// `2K` waste bound.
    pub fn on_sender_wakeup(&mut self, old_next: SeqNum, resumed: SeqNum, k: u64) {
        if resumed.value() <= self.max_used {
            self.report.violations.push(Violation::StaleResume {
                resumed,
                max_used: SeqNum::new(self.max_used),
            });
        }
        let lost = resumed.gap_from(old_next);
        self.report.seqs_lost_to_leaps += lost;
        if lost > 2 * k {
            self.report
                .violations
                .push(Violation::LeapTooLarge { lost, bound: 2 * k });
        }
    }

    /// Highest sequence number used by the sender so far.
    pub fn max_used(&self) -> SeqNum {
        SeqNum::new(self.max_used)
    }

    /// Whether sequence number `seq` has been delivered already.
    pub fn seq_was_delivered(&self, seq: SeqNum) -> bool {
        self.delivered_seqs.contains(&seq.value())
    }

    /// Read access to the running report.
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// Finalizes the run.
    pub fn into_report(self) -> Report {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> SeqNum {
        SeqNum::new(v)
    }

    #[test]
    fn merge_sums_counters_and_concatenates_violations() {
        let mut a = Monitor::new();
        a.on_send(MsgId(0), n(1));
        a.on_deliver(Some(MsgId(0)), n(1), Origin::Original);
        a.on_discard(Some(MsgId(0)), n(1), Origin::Adversary);
        let mut b = Monitor::new();
        b.on_send(MsgId(1), n(1));
        b.on_deliver(Some(MsgId(1)), n(1), Origin::Original);
        b.on_deliver(Some(MsgId(1)), n(1), Origin::Adversary); // double
        let mut total = a.into_report();
        total.merge(&b.into_report());
        assert_eq!(total.sent, 2);
        assert_eq!(total.fresh_delivered, 2);
        assert_eq!(total.replays_rejected, 1);
        assert_eq!(total.replays_accepted, 1);
        assert_eq!(total.violations.len(), 1);
        assert!(!total.clean(), "one dirty SA dirties the aggregate");
    }

    #[test]
    fn clean_run_reports_clean() {
        let mut m = Monitor::new();
        for s in 1..=10u64 {
            m.on_send(MsgId(s), n(s));
            m.on_deliver(Some(MsgId(s)), n(s), Origin::Original);
        }
        let r = m.into_report();
        assert!(r.clean());
        assert_eq!(r.sent, 10);
        assert_eq!(r.fresh_delivered, 10);
        assert_eq!(r.fresh_discarded, 0);
    }

    #[test]
    fn double_delivery_is_flagged() {
        let mut m = Monitor::new();
        m.on_send(MsgId(0), n(1));
        m.on_deliver(Some(MsgId(0)), n(1), Origin::Original);
        m.on_deliver(Some(MsgId(0)), n(1), Origin::Adversary);
        let r = m.into_report();
        assert!(!r.clean());
        assert_eq!(r.replays_accepted, 1);
        assert!(matches!(
            r.violations[0],
            Violation::DoubleDelivery { seq } if seq == n(1)
        ));
    }

    #[test]
    fn seq_reuse_across_incarnations_is_double_delivery() {
        // The §3 baseline reuses sequence numbers after a sender reset;
        // delivering the reused number is indistinguishable from an
        // accepted replay.
        let mut m = Monitor::new();
        m.on_send(MsgId(0), n(1));
        m.on_deliver(Some(MsgId(0)), n(1), Origin::Original);
        m.on_send(MsgId(1), n(1)); // reused counter, new instance
        m.on_deliver(Some(MsgId(1)), n(1), Origin::Original);
        assert_eq!(m.report().replays_accepted, 1);
    }

    #[test]
    fn adversary_first_delivery_is_benign_but_counted() {
        // Original was lost in transit; adversary's copy delivered first.
        let mut m = Monitor::new();
        m.on_send(MsgId(0), n(5));
        m.on_deliver(Some(MsgId(0)), n(5), Origin::Adversary);
        let r = m.into_report();
        assert_eq!(r.adversary_first_deliveries, 1);
        assert_eq!(r.replays_accepted, 0);
        assert!(r.clean(), "discrimination not violated");
    }

    #[test]
    fn discarded_fresh_counted_once_per_instance() {
        let mut m = Monitor::new();
        m.on_send(MsgId(0), n(1));
        m.on_deliver(Some(MsgId(0)), n(1), Origin::Original);
        m.on_discard(Some(MsgId(0)), n(1), Origin::ChannelDup); // dup rejected: fine
        m.on_send(MsgId(1), n(2));
        m.on_discard(Some(MsgId(1)), n(2), Origin::Original); // real fresh loss
        m.on_discard(Some(MsgId(1)), n(2), Origin::Original); // repeat not recounted
        let r = m.into_report();
        assert_eq!(r.fresh_discarded, 1);
        assert!(r.clean());
    }

    #[test]
    fn discard_after_adversary_delivered_instance_not_fresh_loss() {
        // Adversary copy beat the original; the late original's discard
        // is not a loss — the instance reached the application.
        let mut m = Monitor::new();
        m.on_send(MsgId(0), n(3));
        m.on_deliver(Some(MsgId(0)), n(3), Origin::Adversary);
        m.on_discard(Some(MsgId(0)), n(3), Origin::Original);
        let r = m.into_report();
        assert_eq!(r.fresh_discarded, 0);
        assert_eq!(r.fresh_delivered, 1);
    }

    #[test]
    fn sender_wakeup_freshness_checked() {
        let mut m = Monitor::new();
        for s in 1..=30u64 {
            m.on_send(MsgId(s), n(s));
        }
        // Good resume: above max_used, waste within 2K.
        m.on_sender_wakeup(n(31), n(41), 10);
        assert!(m.report().clean());
        assert_eq!(m.report().seqs_lost_to_leaps, 10);
        // Bad resume: at or below max_used.
        m.on_sender_wakeup(n(31), n(30), 10);
        assert!(matches!(
            m.report().violations[0],
            Violation::StaleResume { .. }
        ));
    }

    #[test]
    fn oversized_leap_flagged() {
        let mut m = Monitor::new();
        m.on_send(MsgId(0), n(1));
        m.on_sender_wakeup(n(2), n(100), 10);
        assert!(m.report().violations.iter().any(|v| matches!(
            v,
            Violation::LeapTooLarge {
                lost: 98,
                bound: 20
            }
        )));
    }

    #[test]
    fn replay_rejection_counted() {
        let mut m = Monitor::new();
        m.on_send(MsgId(0), n(1));
        m.on_deliver(Some(MsgId(0)), n(1), Origin::Original);
        for _ in 0..5 {
            m.on_discard(Some(MsgId(0)), n(1), Origin::Adversary);
        }
        assert_eq!(m.report().replays_rejected, 5);
    }

    #[test]
    fn seq_delivery_queries() {
        let mut m = Monitor::new();
        m.on_deliver(Some(MsgId(0)), n(9), Origin::Original);
        assert!(m.seq_was_delivered(n(9)));
        assert!(!m.seq_was_delivered(n(10)));
    }
}

//! The SAVE/FETCH protocol as a **pure transition function**.
//!
//! [`SfMachine`] is the §4 protocol with every effectful dependency —
//! the stable store, the save device, the clock — factored out. It holds
//! only the *volatile* protocol variables (`s` or the window, `lst`, the
//! phase, the wake-up target) and advances exclusively through
//! [`SfMachine::step`], which consumes one [`SfEvent`] and returns the
//! [`SfEffect`]s the environment must perform. Nothing in here performs
//! I/O, reads time, or touches randomness: `step` is a total function of
//! `(state, event)`, so any schedule can be replayed verbatim and any
//! state can be hashed, compared and enumerated.
//!
//! Two layers sit on top:
//!
//! * [`SfSender`](crate::SfSender) / [`SfReceiver`](crate::SfReceiver)
//!   (`savefetch.rs`) are thin **drivers**: they own a
//!   [`reset_stable::BackgroundSaver`] and translate effects into store
//!   operations (`SaveIssued` → `issue`, a wake-up FETCH → the
//!   [`SfEvent::BeginWakeup`] payload) while keeping the public API of
//!   the pre-refactor endpoints byte-identical.
//! * `reset-model`'s bounded explorer enumerates *all* interleavings of
//!   sends, resets, save completions/losses and adversary
//!   replay/reorder/drop for small bounds, asserting the §3/§4
//!   invariants at every reachable state and cross-checking the machine
//!   against the real driver endpoints on every trace.
//!
//! # Event/effect dictionary
//!
//! | Event | Meaning | Effects produced |
//! |---|---|---|
//! | [`Send`](SfEvent::Send) | the application asks to send | [`Sent`](SfEffect::Sent) (+ [`SaveIssued`](SfEffect::SaveIssued)) or [`Blocked`](SfEffect::Blocked) |
//! | [`Receive`](SfEvent::Receive) | a message arrives | [`Rx`](SfEffect::Rx) (+ [`SaveIssued`](SfEffect::SaveIssued)) |
//! | [`Reset`](SfEvent::Reset) | the process crashes | none (volatile state is gone) |
//! | [`BeginWakeup`](SfEvent::BeginWakeup) | FETCH returned | [`SaveIssued`](SfEffect::SaveIssued) — the synchronous SAVE of the leaped counter |
//! | [`SaveDone`](SfEvent::SaveDone) | the in-flight SAVE became durable | [`WokeUp`](SfEffect::WokeUp) + buffered [`Rx`](SfEffect::Rx)s when `Waking`, nothing when `Running` |
//! | [`SaveLost`](SfEvent::SaveLost) | the device dropped the in-flight background SAVE | none |
//! | [`FetchFault`](SfEvent::FetchFault) | FETCH failed (rollback/corrupt/IO) | [`FailedClosed`](SfEffect::FailedClosed) — the machine stays `Down` |

use crate::seq::SeqNum;
use crate::window::{AntiReplayWindow, Verdict};
use crate::window_trait::ReplayWindow;

/// Liveness state of a SAVE/FETCH process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Normal operation (`wait = false` in the paper).
    Running,
    /// Reset has struck; volatile state is gone (`wait = true`).
    Down,
    /// Woken up; the synchronous SAVE of the leaped counter is in flight.
    Waking,
}

/// Outcome of handing one received sequence number to the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RxOutcome {
    /// Delivered to the application.
    Delivered,
    /// Discarded: left of the window (assumed replayed).
    DiscardedStale,
    /// Discarded: already received (definite replay).
    DiscardedDuplicate,
    /// Held in the wake-up buffer; resolved when the wake-up finishes.
    Buffered,
    /// The machine is down (or its wake-up buffer is full); the packet
    /// evaporates.
    DroppedDown,
}

impl RxOutcome {
    pub(crate) fn from_verdict(v: Verdict) -> RxOutcome {
        match v {
            Verdict::Fresh => RxOutcome::Delivered,
            Verdict::Stale => RxOutcome::DiscardedStale,
            Verdict::Duplicate => RxOutcome::DiscardedDuplicate,
        }
    }

    /// True iff the message reached the application.
    pub fn is_delivered(self) -> bool {
        self == RxOutcome::Delivered
    }
}

/// Default cap on the wake-up buffer: messages arriving while the
/// synchronous wake-up SAVE is in flight are held for classification, and
/// without a bound a frame flood mid-wake-up is an OOM vector. Overflow
/// is reported as [`RxOutcome::DroppedDown`] — indistinguishable, to the
/// peer, from the message having arrived a moment earlier while the
/// process was still down.
pub const DEFAULT_WAKEUP_BUFFER: usize = 1024;

/// Why a FETCH failed (the driver's
/// [`reset_stable::StableError`] projected onto the pure machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchFaultKind {
    /// The store served state older than a witnessed durable SAVE.
    Rollback,
    /// The store served unparseable state.
    Corrupt,
    /// The device failed outright.
    Io,
}

/// One input to the pure transition function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfEvent {
    /// The application hands the sender one message to send.
    Send,
    /// One message arrives at the receiver.
    Receive(SeqNum),
    /// The process is reset: all volatile state is lost.
    Reset,
    /// Wake-up begins: the environment performed the FETCH and reports
    /// the last durable counter (`0` when nothing was ever saved). The
    /// machine computes the `2K` leap and issues the synchronous SAVE.
    BeginWakeup {
        /// The FETCHed durable counter value.
        fetched: u64,
    },
    /// The SAVE most recently issued by this machine became durable.
    /// While `Waking` this is the synchronous wake-up SAVE and completes
    /// the wake-up; while `Running` it is a background SAVE completing.
    SaveDone,
    /// The in-flight *background* SAVE was dropped by the device without
    /// becoming durable (write failure). The machine's variables are
    /// unaffected — `lst` already advanced at issue time, exactly like
    /// the driver, so a later FETCH simply finds an older value.
    SaveLost,
    /// The wake-up FETCH failed; the process must stay down and the
    /// layer above fails closed.
    FetchFault(FetchFaultKind),
}

/// One obligation or observation handed back to the environment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SfEffect {
    /// Send the message under this sequence number.
    Sent(SeqNum),
    /// The send was refused: the process is down or waking.
    Blocked,
    /// The receive outcome for `seq` (delivery, discard, buffering…).
    Rx {
        /// The classified sequence number.
        seq: SeqNum,
        /// What happened to it.
        outcome: RxOutcome,
    },
    /// Hand `SAVE(value)` to the save device. During a wake-up this is
    /// the synchronous SAVE the process must wait for; otherwise it is a
    /// background SAVE.
    SaveIssued(u64),
    /// The wake-up completed and the process is `Running` again.
    WokeUp {
        /// The leaped counter the process resumed at.
        resumed: SeqNum,
        /// Sender only: the *actual* number of sequence numbers made
        /// unusable by this wake-up (`resumed − s_pre_reset`), which the
        /// §5 theorem bounds by `2K`. Receivers report `0` — their
        /// sacrifice is a property of the traffic, not the machine.
        unusable_gap: u64,
    },
    /// A FETCH fault was recorded; the machine remains `Down`.
    FailedClosed(FetchFaultKind),
}

/// Role-specific volatile state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Role<W> {
    Sender {
        /// Next sequence number to send (paper's `s`, initially 1).
        s: SeqNum,
        /// The value of `s` when the most recent `Running → Down`
        /// transition happened: the first sequence number that was never
        /// used. Survives further resets while down/waking (the counter
        /// never resumed in between), so the wake-up can report the true
        /// unusable gap instead of the nominal `2K` bound.
        pre_reset_s: u64,
    },
    Receiver {
        /// The anti-replay window (volatile).
        window: W,
        /// Messages that arrived while the wake-up SAVE was in flight.
        buffer: Vec<SeqNum>,
        /// Hard cap on `buffer` (see [`DEFAULT_WAKEUP_BUFFER`]).
        buffer_limit: usize,
    },
}

/// The §4 SAVE/FETCH process as a pure state machine — see the
/// [module docs](self) for the architecture.
///
/// # Examples
///
/// A sender that crashes before its first SAVE resumes at `2K`:
///
/// ```
/// use anti_replay::machine::{SfEffect, SfEvent, SfMachine};
/// use anti_replay::{Phase, SeqNum};
///
/// let mut m = SfMachine::sender(25);
/// assert_eq!(m.step(SfEvent::Send), vec![SfEffect::Sent(SeqNum::new(1))]);
/// m.step(SfEvent::Reset);
/// assert_eq!(m.phase(), Phase::Down);
/// // The environment FETCHed nothing (0); the machine leaps 2K = 50 and
/// // issues the synchronous SAVE of the leaped value.
/// let fx = m.step(SfEvent::BeginWakeup { fetched: 0 });
/// assert_eq!(fx, vec![SfEffect::SaveIssued(50)]);
/// // The SAVE becomes durable: the machine resumes, reporting the true
/// // unusable gap (50 − 2 = 48 ≤ 2K; sequence number 1 was used).
/// let fx = m.step(SfEvent::SaveDone);
/// assert_eq!(
///     fx,
///     vec![SfEffect::WokeUp { resumed: SeqNum::new(50), unusable_gap: 48 }]
/// );
/// assert_eq!(m.step(SfEvent::Send), vec![SfEffect::Sent(SeqNum::new(50))]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SfMachine<W = AntiReplayWindow> {
    k: u64,
    /// Last counter value handed to a SAVE (paper's `lst`).
    lst: u64,
    phase: Phase,
    /// The leaped counter chosen at `BeginWakeup`, applied at `SaveDone`.
    waking_target: Option<SeqNum>,
    role: Role<W>,
}

impl SfMachine<AntiReplayWindow> {
    /// A sender machine saving every `k` messages (paper's process `p`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn sender(k: u64) -> Self {
        assert!(k > 0, "save interval must be positive");
        SfMachine {
            k,
            lst: SeqNum::FIRST.value(),
            phase: Phase::Running,
            waking_target: None,
            role: Role::Sender {
                s: SeqNum::FIRST,
                pre_reset_s: SeqNum::FIRST.value(),
            },
        }
    }

    /// A receiver machine saving every `k` right-edge advances over a
    /// reference window of `w` entries (paper's process `q`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `w == 0`.
    pub fn receiver(k: u64, w: u64) -> Self {
        Self::receiver_with_window(k, AntiReplayWindow::new(w))
    }
}

impl<W: ReplayWindow> SfMachine<W> {
    /// A receiver machine over an explicit window implementation.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn receiver_with_window(k: u64, window: W) -> Self {
        assert!(k > 0, "save interval must be positive");
        SfMachine {
            k,
            lst: 0,
            phase: Phase::Running,
            waking_target: None,
            role: Role::Receiver {
                window,
                buffer: Vec::new(),
                buffer_limit: DEFAULT_WAKEUP_BUFFER,
            },
        }
    }

    /// Caps the receiver's wake-up buffer at `limit` messages (clamped
    /// to ≥ 1); arrivals beyond it while `Waking` are reported as
    /// [`RxOutcome::DroppedDown`]. No effect on sender machines.
    pub fn set_buffer_limit(&mut self, limit: usize) {
        if let Role::Receiver { buffer_limit, .. } = &mut self.role {
            *buffer_limit = limit.max(1);
        }
    }

    /// The receiver's wake-up buffer cap ([`DEFAULT_WAKEUP_BUFFER`]
    /// unless overridden); `usize::MAX` reported for senders.
    pub fn buffer_limit(&self) -> usize {
        match &self.role {
            Role::Receiver { buffer_limit, .. } => *buffer_limit,
            Role::Sender { .. } => usize::MAX,
        }
    }

    /// The save interval `K`.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Last counter value handed to a SAVE (paper's `lst`).
    pub fn last_stored(&self) -> u64 {
        self.lst
    }

    /// The leaped counter a wake-up in progress will resume at.
    pub fn waking_target(&self) -> Option<SeqNum> {
        self.waking_target
    }

    /// Sender: the next sequence number that would be sent. `None` for
    /// receivers.
    pub fn next_seq(&self) -> Option<SeqNum> {
        match &self.role {
            Role::Sender { s, .. } => Some(*s),
            Role::Receiver { .. } => None,
        }
    }

    /// Receiver: the anti-replay window. `None` for senders.
    pub fn window(&self) -> Option<&W> {
        match &self.role {
            Role::Receiver { window, .. } => Some(window),
            Role::Sender { .. } => None,
        }
    }

    /// Receiver: sequence numbers currently held in the wake-up buffer
    /// (empty for senders).
    pub fn buffered(&self) -> &[SeqNum] {
        match &self.role {
            Role::Receiver { buffer, .. } => buffer,
            Role::Sender { .. } => &[],
        }
    }

    /// `k + lst` with the overflow made well-defined: near the `SeqNum`
    /// ceiling the sum can exceed `u64::MAX`, in which case the threshold
    /// is unreachable (no counter value can satisfy it) and no SAVE is
    /// due — the sequence space runs into the documented
    /// [`SeqNum::next`] overflow panic first. The unchecked form
    /// (`value >= self.k + self.lst`) panicked in debug builds and
    /// wrapped in release, issuing spurious saves.
    fn save_due(&self, value: u64) -> bool {
        self.k.checked_add(self.lst).is_some_and(|t| value >= t)
    }

    /// Classifies `seq` against the window and issues a background SAVE
    /// when the right edge crosses the threshold. Running phase only.
    fn classify(&mut self, seq: SeqNum, effects: &mut Vec<SfEffect>) {
        let Role::Receiver { window, .. } = &mut self.role else {
            panic!("Receive is a receiver event");
        };
        let outcome = RxOutcome::from_verdict(window.check_and_accept(seq));
        effects.push(SfEffect::Rx { seq, outcome });
        let r = window.right_edge().value();
        if self.save_due(r) {
            self.lst = r;
            effects.push(SfEffect::SaveIssued(r));
        }
    }

    /// Advances the machine by one event. Pure: the only outputs are the
    /// returned effects and the updated `self`.
    ///
    /// # Panics
    ///
    /// * [`SfEvent::BeginWakeup`] / [`SfEvent::FetchFault`] while not
    ///   `Down` ("wake_up requires a prior reset") — the same contract
    ///   the driver endpoints always had.
    /// * [`SfEvent::Send`] on a receiver, [`SfEvent::Receive`] on a
    ///   sender.
    /// * Sequence-number overflow (the documented [`SeqNum`] ceiling).
    pub fn step(&mut self, event: SfEvent) -> Vec<SfEffect> {
        let mut effects = Vec::new();
        match event {
            SfEvent::Send => {
                if self.phase != Phase::Running {
                    effects.push(SfEffect::Blocked);
                    return effects;
                }
                let Role::Sender { s, .. } = &mut self.role else {
                    panic!("Send is a sender event");
                };
                let seq = *s;
                *s = s.next();
                let next = s.value();
                effects.push(SfEffect::Sent(seq));
                if self.save_due(next) {
                    self.lst = next;
                    effects.push(SfEffect::SaveIssued(next));
                }
            }
            SfEvent::Receive(seq) => {
                match self.phase {
                    Phase::Down => {
                        effects.push(SfEffect::Rx {
                            seq,
                            outcome: RxOutcome::DroppedDown,
                        });
                    }
                    Phase::Waking => {
                        let Role::Receiver {
                            buffer,
                            buffer_limit,
                            ..
                        } = &mut self.role
                        else {
                            panic!("Receive is a receiver event");
                        };
                        // The cap is what keeps a frame flood mid-wake-up
                        // from growing the buffer without bound.
                        let outcome = if buffer.len() < *buffer_limit {
                            buffer.push(seq);
                            RxOutcome::Buffered
                        } else {
                            RxOutcome::DroppedDown
                        };
                        effects.push(SfEffect::Rx { seq, outcome });
                    }
                    Phase::Running => self.classify(seq, &mut effects),
                }
            }
            SfEvent::Reset => {
                self.phase = Phase::Down;
                self.waking_target = None;
                self.lst = 0;
                match &mut self.role {
                    Role::Sender { s, pre_reset_s } => {
                        // Record the first never-used number only when the
                        // counter was actually live; a reset while already
                        // down/waking leaves the last live value in place.
                        if s.value() != SeqNum::ZERO.value() {
                            *pre_reset_s = s.value();
                        }
                        // Poison the volatile counter so misuse is loud.
                        *s = SeqNum::ZERO;
                    }
                    Role::Receiver { window, buffer, .. } => {
                        buffer.clear();
                        window.reset_naive(); // poison: rebuilt on wake-up
                    }
                }
            }
            SfEvent::BeginWakeup { fetched } => {
                assert_eq!(self.phase, Phase::Down, "wake_up requires a prior reset");
                let leaped = SeqNum::new(fetched).leap(2 * self.k);
                self.waking_target = Some(leaped);
                self.phase = Phase::Waking;
                effects.push(SfEffect::SaveIssued(leaped.value()));
            }
            SfEvent::SaveDone => {
                if self.phase != Phase::Waking {
                    // A background SAVE completed; `lst` already advanced
                    // at issue time, so there is nothing to update.
                    return effects;
                }
                let leaped = self.waking_target.take().expect("set by BeginWakeup");
                self.lst = leaped.value();
                self.phase = Phase::Running;
                let mut buffered = Vec::new();
                match &mut self.role {
                    Role::Sender { s, pre_reset_s } => {
                        // The true unusable gap: everything in
                        // [pre_reset_s, leaped) was skipped. When the slot
                        // only ever held this machine's own saves the FETCHed
                        // value never exceeds the last live counter, so the
                        // gap is ≤ 2K (§5, condition (i)) — an invariant the
                        // explorer asserts on every trace. A machine adopting
                        // a foreign slot (new SA over an old store) can see a
                        // larger gap, which is still the honest number.
                        let gap = leaped.value().saturating_sub(*pre_reset_s);
                        *s = leaped;
                        effects.push(SfEffect::WokeUp {
                            resumed: leaped,
                            unusable_gap: gap,
                        });
                    }
                    Role::Receiver { window, buffer, .. } => {
                        window.resume_at(leaped);
                        buffered = std::mem::take(buffer);
                        effects.push(SfEffect::WokeUp {
                            resumed: leaped,
                            unusable_gap: 0,
                        });
                    }
                }
                for seq in buffered {
                    self.classify(seq, &mut effects);
                }
            }
            SfEvent::SaveLost => {
                // The device dropped a background write. Volatile state is
                // untouched: `lst` tracks what was *handed* to the device,
                // so the next threshold crossing is unchanged and a later
                // FETCH simply finds an older durable value — the exact
                // situation the 2K leap already covers.
            }
            SfEvent::FetchFault(kind) => {
                assert_eq!(self.phase, Phase::Down, "wake_up requires a prior reset");
                effects.push(SfEffect::FailedClosed(kind));
            }
        }
        effects
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(fx: &[SfEffect]) -> Option<SeqNum> {
        fx.iter().find_map(|e| match e {
            SfEffect::Sent(s) => Some(*s),
            _ => None,
        })
    }

    #[test]
    fn sender_counts_and_saves() {
        let mut m = SfMachine::sender(5);
        for want in 1..=4u64 {
            let fx = m.step(SfEvent::Send);
            assert_eq!(sent(&fx), Some(SeqNum::new(want)));
            assert_eq!(fx.len(), 1, "no save yet: {fx:?}");
        }
        let fx = m.step(SfEvent::Send); // s becomes 6 = K + lst
        assert_eq!(fx[1], SfEffect::SaveIssued(6));
        assert_eq!(m.last_stored(), 6);
    }

    #[test]
    fn sender_blocked_while_down_and_waking() {
        let mut m = SfMachine::sender(5);
        m.step(SfEvent::Reset);
        assert_eq!(m.step(SfEvent::Send), vec![SfEffect::Blocked]);
        m.step(SfEvent::BeginWakeup { fetched: 0 });
        assert_eq!(m.step(SfEvent::Send), vec![SfEffect::Blocked]);
    }

    #[test]
    fn sender_true_gap_reported_not_nominal_2k() {
        let k = 5;
        let mut m = SfMachine::sender(k);
        for _ in 0..5 {
            m.step(SfEvent::Send); // save issued at s = 6
        }
        m.step(SfEvent::SaveDone); // background: 6 durable
        m.step(SfEvent::Send);
        m.step(SfEvent::Send); // s = 8 next
        m.step(SfEvent::Reset);
        m.step(SfEvent::BeginWakeup { fetched: 6 });
        let fx = m.step(SfEvent::SaveDone);
        // Leaped to 16; the true gap is 16 − 8 = 8, strictly below 2K=10.
        assert_eq!(
            fx,
            vec![SfEffect::WokeUp {
                resumed: SeqNum::new(16),
                unusable_gap: 8
            }]
        );
    }

    #[test]
    fn double_reset_keeps_pre_reset_s() {
        let mut m = SfMachine::sender(5);
        m.step(SfEvent::Send); // used 1; s = 2
        m.step(SfEvent::Reset);
        m.step(SfEvent::BeginWakeup { fetched: 0 });
        m.step(SfEvent::Reset); // reset mid-wake-up
        m.step(SfEvent::BeginWakeup { fetched: 0 });
        let fx = m.step(SfEvent::SaveDone);
        // Still measured against s = 2, the only counter ever live.
        assert_eq!(
            fx,
            vec![SfEffect::WokeUp {
                resumed: SeqNum::new(10),
                unusable_gap: 8
            }]
        );
    }

    #[test]
    fn save_threshold_near_ceiling_does_not_overflow() {
        // lst near u64::MAX: the unchecked `k + lst` comparison overflowed
        // (debug panic / release wrap-and-spurious-save). The checked form
        // treats the unreachable threshold as "no save due".
        let k = 3;
        let mut m = SfMachine::sender(k);
        m.step(SfEvent::Reset);
        m.step(SfEvent::BeginWakeup {
            fetched: u64::MAX - 2 * k - 2,
        });
        m.step(SfEvent::SaveDone); // s = lst = u64::MAX − 2
        let fx = m.step(SfEvent::Send);
        assert_eq!(sent(&fx), Some(SeqNum::new(u64::MAX - 2)));
        assert_eq!(fx.len(), 1, "no spurious save near the ceiling: {fx:?}");
    }

    #[test]
    fn receiver_threshold_near_ceiling_does_not_overflow() {
        let k = 3;
        let mut m = SfMachine::receiver(k, 8);
        m.step(SfEvent::Reset);
        m.step(SfEvent::BeginWakeup {
            fetched: u64::MAX - 2 * k - 2,
        });
        m.step(SfEvent::SaveDone);
        let fx = m.step(SfEvent::Receive(SeqNum::new(u64::MAX - 1)));
        assert_eq!(
            fx,
            vec![SfEffect::Rx {
                seq: SeqNum::new(u64::MAX - 1),
                outcome: RxOutcome::Delivered
            }],
            "delivered with no spurious save"
        );
    }

    #[test]
    fn receiver_buffers_until_limit_then_drops() {
        let mut m = SfMachine::receiver(5, 8);
        m.set_buffer_limit(3);
        m.step(SfEvent::Reset);
        m.step(SfEvent::BeginWakeup { fetched: 0 });
        for s in 1..=3u64 {
            let fx = m.step(SfEvent::Receive(SeqNum::new(s)));
            assert_eq!(
                fx[0],
                SfEffect::Rx {
                    seq: SeqNum::new(s),
                    outcome: RxOutcome::Buffered
                }
            );
        }
        let fx = m.step(SfEvent::Receive(SeqNum::new(4)));
        assert_eq!(
            fx[0],
            SfEffect::Rx {
                seq: SeqNum::new(4),
                outcome: RxOutcome::DroppedDown
            },
            "overflow counts as DroppedDown"
        );
        assert_eq!(m.buffered().len(), 3);
        // finish_wakeup classifies exactly the capped buffer.
        let fx = m.step(SfEvent::SaveDone);
        let rx: Vec<_> = fx
            .iter()
            .filter(|e| matches!(e, SfEffect::Rx { .. }))
            .collect();
        assert_eq!(rx.len(), 3);
    }

    #[test]
    fn receiver_wakeup_rejects_history() {
        let k = 10;
        let mut m = SfMachine::receiver(k, 32);
        for s in 1..=25u64 {
            m.step(SfEvent::Receive(SeqNum::new(s)));
            if s == 10 {
                m.step(SfEvent::SaveDone);
            }
        }
        m.step(SfEvent::Reset);
        m.step(SfEvent::BeginWakeup { fetched: 10 });
        let fx = m.step(SfEvent::SaveDone);
        assert_eq!(
            fx[0],
            SfEffect::WokeUp {
                resumed: SeqNum::new(30),
                unusable_gap: 0
            }
        );
        for s in 1..=25u64 {
            let fx = m.step(SfEvent::Receive(SeqNum::new(s)));
            assert!(
                matches!(
                    fx[0],
                    SfEffect::Rx {
                        outcome: RxOutcome::DiscardedStale | RxOutcome::DiscardedDuplicate,
                        ..
                    }
                ),
                "replayed {s}: {fx:?}"
            );
        }
    }

    #[test]
    fn fetch_fault_stays_down() {
        let mut m = SfMachine::sender(5);
        m.step(SfEvent::Reset);
        let fx = m.step(SfEvent::FetchFault(FetchFaultKind::Rollback));
        assert_eq!(fx, vec![SfEffect::FailedClosed(FetchFaultKind::Rollback)]);
        assert_eq!(m.phase(), Phase::Down);
        // A later healthy wake-up still works.
        m.step(SfEvent::BeginWakeup { fetched: 0 });
        m.step(SfEvent::SaveDone);
        assert_eq!(m.phase(), Phase::Running);
    }

    #[test]
    fn save_lost_leaves_variables_untouched() {
        let mut m = SfMachine::sender(5);
        for _ in 0..5 {
            m.step(SfEvent::Send);
        }
        let before = m.clone();
        assert_eq!(m.step(SfEvent::SaveLost), vec![]);
        assert_eq!(m, before);
    }

    #[test]
    #[should_panic(expected = "requires a prior reset")]
    fn begin_wakeup_while_running_panics() {
        let mut m = SfMachine::sender(5);
        let _ = m.step(SfEvent::BeginWakeup { fetched: 0 });
    }
}

//! The paper's processes, transcribed into the APN runtime.
//!
//! This module wires the protocol state machines into
//! [`reset_apn::System`] so the *exact* nondeterministic semantics of the
//! paper — one action at a time, weak fairness, background SAVEs whose
//! completion races with everything else — can be executed and
//! exhaustively explored.
//!
//! The background SAVE is modelled as its *own action* (`save completes`)
//! whose guard is "a SAVE is pending": the scheduler is free to delay it
//! arbitrarily, which is precisely the paper's "the execution of SAVE
//! takes some time". A reset injected while that action has not fired
//! reproduces the Fig 1/Fig 2 stale-FETCH races without any clock.

use reset_apn::{ApnProcess, GuardKind, Outbox, ProcId, Schedule, System};
use reset_stable::{MemStable, SlotId};

use crate::baseline::{BaselineReceiver, BaselineSender};
use crate::savefetch::{SfReceiver, SfSender};
use crate::seq::SeqNum;

/// Process index of the sender `p`.
pub const P: ProcId = 0;
/// Process index of the receiver `q`.
pub const Q: ProcId = 1;

/// A process of either protocol variant (original §2 or SAVE/FETCH §4).
///
/// Heterogeneous systems need one enum type; the four variants are the
/// paper's two protocols × two roles.
#[derive(Debug, Clone)]
pub enum PaperProc {
    /// §2 sender: one action, `true → send msg(s); s := s + 1`.
    OrigP(BaselineSender),
    /// §2 receiver: one receive action with the three-case window logic.
    OrigQ(BaselineReceiver),
    /// §4 sender: send action + background-SAVE-completes action.
    SfP(SfSender<MemStable>),
    /// §4 receiver: receive action + background-SAVE-completes action.
    SfQ(SfReceiver<MemStable>),
}

impl PaperProc {
    /// The underlying SAVE/FETCH sender, if this is one.
    pub fn as_sf_sender(&self) -> Option<&SfSender<MemStable>> {
        match self {
            PaperProc::SfP(p) => Some(p),
            _ => None,
        }
    }

    /// The underlying SAVE/FETCH receiver, if this is one.
    pub fn as_sf_receiver(&self) -> Option<&SfReceiver<MemStable>> {
        match self {
            PaperProc::SfQ(q) => Some(q),
            _ => None,
        }
    }

    /// The underlying baseline receiver, if this is one.
    pub fn as_orig_receiver(&self) -> Option<&BaselineReceiver> {
        match self {
            PaperProc::OrigQ(q) => Some(q),
            _ => None,
        }
    }
}

impl ApnProcess for PaperProc {
    type Msg = SeqNum;

    fn name(&self) -> &'static str {
        match self {
            PaperProc::OrigP(_) | PaperProc::SfP(_) => "p",
            PaperProc::OrigQ(_) | PaperProc::SfQ(_) => "q",
        }
    }

    fn action_count(&self) -> usize {
        match self {
            PaperProc::OrigP(_) | PaperProc::OrigQ(_) => 1,
            PaperProc::SfP(_) | PaperProc::SfQ(_) => 2,
        }
    }

    fn guard(&self, action: usize) -> GuardKind {
        match self {
            PaperProc::OrigP(_) | PaperProc::SfP(_) => GuardKind::Local,
            PaperProc::OrigQ(_) | PaperProc::SfQ(_) => {
                if action == 0 {
                    GuardKind::Receive { from: P }
                } else {
                    GuardKind::Local
                }
            }
        }
    }

    fn local_enabled(&self, action: usize) -> bool {
        match self {
            // §2 sender: its single action's guard is literally `true`.
            PaperProc::OrigP(_) => action == 0,
            PaperProc::OrigQ(_) => false,
            PaperProc::SfP(p) => match action {
                0 => p.phase() == crate::savefetch::Phase::Running,
                1 => p.pending_save().is_some(),
                _ => false,
            },
            PaperProc::SfQ(q) => match action {
                1 => q.pending_save().is_some(),
                _ => false,
            },
        }
    }

    fn fire_local(&mut self, action: usize, out: &mut Outbox<SeqNum>) {
        match self {
            PaperProc::OrigP(p) => out.send(Q, p.send_next()),
            PaperProc::OrigQ(_) => unreachable!("orig q has no local action"),
            PaperProc::SfP(p) => match action {
                0 => {
                    if let Some(seq) = p.send_next().expect("mem store is infallible") {
                        out.send(Q, seq);
                    }
                }
                _ => {
                    p.save_completed().expect("mem store is infallible");
                }
            },
            PaperProc::SfQ(q) => {
                q.save_completed().expect("mem store is infallible");
            }
        }
    }

    fn fire_receive(
        &mut self,
        _action: usize,
        _from: ProcId,
        msg: SeqNum,
        _out: &mut Outbox<SeqNum>,
    ) {
        match self {
            PaperProc::OrigQ(q) => {
                let _ = q.receive(msg);
            }
            PaperProc::SfQ(q) => {
                let _ = q.receive(msg).expect("mem store is infallible");
            }
            _ => unreachable!("p has no receive action"),
        }
    }

    fn on_reset(&mut self) {
        match self {
            // The baseline has no down phase: reset and wake collapse.
            PaperProc::OrigP(p) => p.reset_and_wake(),
            PaperProc::OrigQ(q) => q.reset_and_wake(),
            PaperProc::SfP(p) => p.reset(),
            PaperProc::SfQ(q) => q.reset(),
        }
    }

    fn on_wakeup(&mut self) {
        // The paper's wake-up action is only enabled after a reset; an
        // environment wake of a running process is a no-op, which keeps
        // fault-injection schedules (and exhaustive explorers) free to
        // fire hooks in any order.
        match self {
            PaperProc::OrigP(_) | PaperProc::OrigQ(_) => {}
            PaperProc::SfP(p) => {
                if p.phase() == crate::savefetch::Phase::Down {
                    p.wake_up().expect("mem store is infallible");
                }
            }
            PaperProc::SfQ(q) => {
                if q.phase() == crate::savefetch::Phase::Down {
                    q.wake_up().expect("mem store is infallible");
                }
            }
        }
    }
}

/// Builds the §2 (original) protocol system.
///
/// # Examples
///
/// ```
/// use anti_replay::apn_model::{original_system, Q};
/// use reset_apn::Schedule;
///
/// let mut sys = original_system(32, Schedule::RoundRobin);
/// sys.run(100);
/// let q = sys.proc(Q).as_orig_receiver().unwrap();
/// assert!(q.total_delivered() > 0);
/// ```
pub fn original_system(w: u64, schedule: Schedule) -> System<PaperProc> {
    System::new(
        vec![
            PaperProc::OrigP(BaselineSender::new()),
            PaperProc::OrigQ(BaselineReceiver::new(w)),
        ],
        schedule,
    )
}

/// Builds the §4 (SAVE/FETCH) protocol system with save intervals `kp`
/// and `kq` and window size `w`. Each process gets its own in-memory
/// persistent store, surviving injected resets.
pub fn savefetch_system(kp: u64, kq: u64, w: u64, schedule: Schedule) -> System<PaperProc> {
    System::new(
        vec![
            PaperProc::SfP(SfSender::new(MemStable::new(), SlotId::sender(1), kp)),
            PaperProc::SfQ(SfReceiver::new(
                MemStable::new(),
                SlotId::receiver(1),
                kq,
                w,
            )),
        ],
        schedule,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use reset_sim::DetRng;

    #[test]
    fn original_protocol_delivers_in_order_traffic() {
        let mut sys = original_system(32, Schedule::RoundRobin);
        sys.run(200);
        let q = sys.proc(Q).as_orig_receiver().unwrap();
        assert!(
            q.total_delivered() >= 90,
            "delivered {}",
            q.total_delivered()
        );
        assert_eq!(q.total_discarded(), 0, "clean channel, no discards");
    }

    #[test]
    fn savefetch_protocol_runs_and_saves() {
        let mut sys = savefetch_system(5, 5, 32, Schedule::RoundRobin);
        sys.run(300);
        let p = sys.proc(P).as_sf_sender().unwrap();
        let q = sys.proc(Q).as_sf_receiver().unwrap();
        assert!(p.stats().sent > 50);
        assert!(q.stats().delivered > 50);
        assert!(p.stats().saves_issued > 0);
        assert!(q.stats().saves_issued > 0);
    }

    #[test]
    fn reset_wakeup_roundtrip_under_apn() {
        let mut sys = savefetch_system(5, 5, 32, Schedule::RoundRobin);
        sys.run(100);
        let edge_before = sys.proc(Q).as_sf_receiver().unwrap().right_edge();
        sys.inject_reset(Q);
        sys.inject_wakeup(Q);
        let edge_after = sys.proc(Q).as_sf_receiver().unwrap().right_edge();
        assert!(
            edge_after >= edge_before,
            "leaped edge {edge_after} must cover pre-reset edge {edge_before}"
        );
        // Continue running: traffic eventually flows again (sender seqs
        // catch up past the leaped edge).
        sys.run(2000);
        let q = sys.proc(Q).as_sf_receiver().unwrap();
        assert!(q.stats().delivered > 0);
    }

    #[test]
    fn random_schedule_reproducible() {
        let run = |seed: u64| {
            let mut sys = savefetch_system(3, 3, 16, Schedule::Random(DetRng::new(seed)));
            sys.run(500);
            let q = sys.proc(Q).as_sf_receiver().unwrap();
            (q.stats().delivered, q.right_edge())
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn adversary_injection_under_apn_is_rejected() {
        let mut sys = savefetch_system(5, 5, 32, Schedule::RoundRobin);
        sys.run(200);
        let delivered_before = sys.proc(Q).as_sf_receiver().unwrap().stats().delivered;
        // Replay sequence number 1 three times.
        for _ in 0..3 {
            sys.inject(P, Q, SeqNum::new(1));
        }
        sys.run(50);
        let q = sys.proc(Q).as_sf_receiver().unwrap();
        assert!(q.stats().discarded_stale + q.stats().discarded_duplicate >= 3);
        // Deliveries continue but none of the replays got through: the
        // delivered count only grows by fresh traffic (seq > edge).
        assert!(q.stats().delivered >= delivered_before);
    }
}

//! Sequence numbers.
//!
//! The paper treats sequence numbers as unbounded integers starting at 1;
//! we use `u64` (with explicit overflow checks) which at the paper's
//! 4 µs-per-message rate would take ~2.3 million years to exhaust.

use std::fmt;

/// A message sequence number.
///
/// # Examples
///
/// ```
/// use anti_replay::SeqNum;
///
/// let s = SeqNum::FIRST;
/// assert_eq!(s.value(), 1);
/// assert_eq!(s.next().value(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SeqNum(u64);

impl SeqNum {
    /// The first sequence number a sender uses (the paper's `s` starts
    /// at 1).
    pub const FIRST: SeqNum = SeqNum(1);

    /// The receiver's initial right edge (the paper's `r` starts at 0).
    pub const ZERO: SeqNum = SeqNum(0);

    /// Wraps a raw value.
    pub const fn new(v: u64) -> SeqNum {
        SeqNum(v)
    }

    /// The raw value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// The successor.
    ///
    /// # Panics
    ///
    /// Panics on `u64` overflow — per RFC 2406 a sequence space must be
    /// retired before wrapping, and the paper assumes unbounded integers.
    pub fn next(self) -> SeqNum {
        SeqNum(self.0.checked_add(1).expect("sequence number overflow"))
    }

    /// `self + k` (used for the leap `fetched + 2K`).
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub fn leap(self, k: u64) -> SeqNum {
        SeqNum(self.0.checked_add(k).expect("sequence number overflow"))
    }

    /// Distance `self - earlier`, saturating at zero.
    pub fn gap_from(self, earlier: SeqNum) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl From<u64> for SeqNum {
    fn from(v: u64) -> Self {
        SeqNum(v)
    }
}

impl From<SeqNum> for u64 {
    fn from(s: SeqNum) -> u64 {
        s.0
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(SeqNum::FIRST.value(), 1);
        assert_eq!(SeqNum::ZERO.value(), 0);
    }

    #[test]
    fn next_and_leap() {
        assert_eq!(SeqNum::new(10).next(), SeqNum::new(11));
        assert_eq!(SeqNum::new(100).leap(50), SeqNum::new(150));
    }

    #[test]
    fn gap_saturates() {
        assert_eq!(SeqNum::new(10).gap_from(SeqNum::new(3)), 7);
        assert_eq!(SeqNum::new(3).gap_from(SeqNum::new(10)), 0);
    }

    #[test]
    fn conversions() {
        let s: SeqNum = 42u64.into();
        let v: u64 = s.into();
        assert_eq!(v, 42);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let _ = SeqNum::new(u64::MAX).next();
    }

    #[test]
    fn display() {
        assert_eq!(SeqNum::new(7).to_string(), "#7");
    }

    #[test]
    fn ordering() {
        assert!(SeqNum::new(2) > SeqNum::new(1));
        assert!(SeqNum::ZERO < SeqNum::FIRST);
    }
}

//! §6 prolonged-reset recovery: bidirectional peers, secured recovery
//! notifies, and the replayed-notify attack.
//!
//! The paper's closing remarks sketch the full picture: IPsec traffic is
//! usually bidirectional, so each host owns an outbound and an inbound
//! SA. When a host detects its peer's unavailability it keeps both SAs
//! alive for a bounded grace period. When the reset host wakes up, it
//! runs FETCH + leap, then sends a **secured message** announcing the new
//! sequence number. The surviving host accepts that message iff its
//! sequence number exceeds the right edge of its anti-replay window —
//! "because every sequence number used after a reset should be larger
//! than all sequence numbers used before the reset". A replayed notify
//! therefore bounces off the window, defeating the attack the paper warns
//! about for naive "let's both reset to 1" schemes.
//!
//! The whole scheme leans on the paper's assumption that persistent
//! memory is trustworthy. [`IpsecPeer::recover`] therefore runs the
//! generation-checked FETCH: when the store serves a corrupt record or an
//! *older* snapshot than the peer last acknowledged durable (a rollback —
//! the state that would leap *below* sequence numbers already used),
//! recovery errors out and the peer **stays down**. No recovery notify is
//! emitted from untrusted state; the operator (or the gateway layer's
//! [`crate::GatewayEvent::FailedClosed`] machinery) must replace the SA
//! pair instead.

use bytes::Bytes;
use reset_stable::{StableError, StableStore};

use anti_replay::SeqNum;

use crate::dpd::{DpdConfig, DpdDetector};
use crate::esp::{Inbound, Outbound, RxResult};
use crate::sa::SecurityAssociation;
use crate::IpsecError;

/// Control-plane payload tags carried inside protected packets.
const TAG_DATA: u8 = 0;
const TAG_RECOVERY: u8 = 1;
const TAG_PROBE: u8 = 2;
const TAG_PROBE_ACK: u8 = 3;

/// What a processed inbound packet meant to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerEvent {
    /// Application data.
    Data(Bytes),
    /// The peer announced it recovered from a reset; its new send counter
    /// starts at `seq`.
    PeerRecovered {
        /// The announced (leaped) sequence number.
        seq: SeqNum,
    },
    /// The peer asked "R U THERE"; answer with
    /// [`IpsecPeer::make_probe_ack`].
    ProbeReceived,
    /// The peer answered our probe.
    ProbeAck,
    /// Authenticated but rejected by anti-replay (includes replayed
    /// recovery notifies — the §6 attack).
    Rejected,
    /// Dropped (endpoint down) or buffered (waking).
    NotProcessed,
}

/// One host's half of a bidirectional SA pair with DPD and recovery.
///
/// # Examples
///
/// See [`crate`] docs and `tests/it_recovery.rs` for the full §6
/// scenario.
#[derive(Debug, Clone)]
pub struct IpsecPeer<S> {
    name: &'static str,
    out: Outbound<S>,
    inb: Inbound<S>,
    dpd: DpdDetector,
}

impl<S: StableStore> IpsecPeer<S> {
    /// Builds a peer from its two directional SAs and stores.
    // One parameter per SA-pair ingredient; a builder would obscure that
    // the two directions are symmetric.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &'static str,
        sa_out: SecurityAssociation,
        sa_in: SecurityAssociation,
        store_out: S,
        store_in: S,
        k: u64,
        w: u64,
        dpd: DpdConfig,
    ) -> Self {
        IpsecPeer {
            name,
            out: Outbound::new(sa_out, store_out, k),
            inb: Inbound::new(sa_in, store_in, k, w),
            dpd: DpdDetector::new(dpd),
        }
    }

    /// This peer's name (for traces).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The outbound endpoint.
    pub fn outbound(&self) -> &Outbound<S> {
        &self.out
    }

    /// The inbound endpoint.
    pub fn inbound(&self) -> &Inbound<S> {
        &self.inb
    }

    /// The DPD detector.
    pub fn dpd(&self) -> &DpdDetector {
        &self.dpd
    }

    /// Mutable DPD access (for polling).
    pub fn dpd_mut(&mut self) -> &mut DpdDetector {
        &mut self.dpd
    }

    /// Mutable outbound access — escape hatch for store fault injection.
    pub fn outbound_mut(&mut self) -> &mut Outbound<S> {
        &mut self.out
    }

    /// Mutable inbound access — escape hatch for store fault injection.
    pub fn inbound_mut(&mut self) -> &mut Inbound<S> {
        &mut self.inb
    }

    /// Protects application data. `None` while down/waking.
    ///
    /// # Errors
    ///
    /// Propagates datapath errors.
    pub fn send_data(&mut self, payload: &[u8]) -> Result<Option<Bytes>, IpsecError> {
        let mut framed = Vec::with_capacity(payload.len() + 1);
        framed.push(TAG_DATA);
        framed.extend_from_slice(payload);
        self.out.protect(&framed)
    }

    /// Builds an R-U-THERE probe.
    ///
    /// # Errors
    ///
    /// Propagates datapath errors.
    pub fn make_probe(&mut self) -> Result<Option<Bytes>, IpsecError> {
        self.out.protect(&[TAG_PROBE])
    }

    /// Builds a probe acknowledgement.
    ///
    /// # Errors
    ///
    /// Propagates datapath errors.
    pub fn make_probe_ack(&mut self) -> Result<Option<Bytes>, IpsecError> {
        self.out.protect(&[TAG_PROBE_ACK])
    }

    /// Background-save completion passthroughs (simulator hooks).
    ///
    /// # Errors
    ///
    /// Store failures (retryable).
    pub fn save_completed_out(&mut self) -> Result<(), StableError> {
        self.out.save_completed()
    }

    /// See [`IpsecPeer::save_completed_out`].
    ///
    /// # Errors
    ///
    /// Store failures (retryable).
    pub fn save_completed_in(&mut self) -> Result<(), StableError> {
        self.inb.save_completed()
    }

    /// A reset strikes this host: both directions lose volatile state.
    pub fn reset(&mut self) {
        self.out.reset();
        self.inb.reset();
    }

    /// Wake up after a reset: FETCH + leap both directions, then build
    /// the §6 secured recovery notify carrying the new sequence number
    /// (in its authenticated header).
    ///
    /// # Errors
    ///
    /// Store failures.
    pub fn recover(&mut self) -> Result<Bytes, IpsecError> {
        self.out.wake_up()?;
        self.inb.wake_up()?;
        let wire = self
            .out
            .protect(&[TAG_RECOVERY])?
            .expect("endpoint is up right after wake_up");
        Ok(wire)
    }

    /// Processes one inbound wire packet at `now_ns` (for DPD).
    ///
    /// # Errors
    ///
    /// Wire/auth errors (forgery, foreign SPI). Replays are NOT errors —
    /// they surface as [`PeerEvent::Rejected`].
    pub fn handle_wire(&mut self, wire: &[u8], now_ns: u64) -> Result<PeerEvent, IpsecError> {
        match self.inb.process(wire)? {
            RxResult::Delivered { payload, seq } => {
                // Authenticated traffic proves liveness.
                self.dpd.on_traffic(now_ns);
                Ok(match payload.first() {
                    Some(&TAG_DATA) => PeerEvent::Data(payload.slice(1..)),
                    Some(&TAG_RECOVERY) => PeerEvent::PeerRecovered { seq },
                    Some(&TAG_PROBE) => PeerEvent::ProbeReceived,
                    Some(&TAG_PROBE_ACK) => PeerEvent::ProbeAck,
                    _ => PeerEvent::Data(payload), // untagged legacy data
                })
            }
            RxResult::AntiReplay { .. } | RxResult::Rejected(_) => Ok(PeerEvent::Rejected),
            RxResult::Buffered | RxResult::DroppedDown => Ok(PeerEvent::NotProcessed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::SaKeys;
    use reset_stable::MemStable;

    /// Builds the two ends of a bidirectional pair (A⇄B).
    fn peer_pair(k: u64, w: u64) -> (IpsecPeer<MemStable>, IpsecPeer<MemStable>) {
        let keys_ab = SaKeys::derive(b"master", b"a->b");
        let keys_ba = SaKeys::derive(b"master", b"b->a");
        let sa_ab = |spi| SecurityAssociation::new(spi, keys_ab.clone());
        let sa_ba = |spi| SecurityAssociation::new(spi, keys_ba.clone());
        let a = IpsecPeer::new(
            "A",
            sa_ab(0xA2B),
            sa_ba(0xB2A),
            MemStable::new(),
            MemStable::new(),
            k,
            w,
            DpdConfig::default(),
        );
        let b = IpsecPeer::new(
            "B",
            sa_ba(0xB2A),
            sa_ab(0xA2B),
            MemStable::new(),
            MemStable::new(),
            k,
            w,
            DpdConfig::default(),
        );
        (a, b)
    }

    #[test]
    fn bidirectional_data_flow() {
        let (mut a, mut b) = peer_pair(10, 64);
        let wire = a.send_data(b"hello b").unwrap().unwrap();
        assert_eq!(
            b.handle_wire(&wire, 0).unwrap(),
            PeerEvent::Data(Bytes::from_static(b"hello b"))
        );
        let wire = b.send_data(b"hello a").unwrap().unwrap();
        assert_eq!(
            a.handle_wire(&wire, 0).unwrap(),
            PeerEvent::Data(Bytes::from_static(b"hello a"))
        );
    }

    #[test]
    fn probe_round_trip() {
        let (mut a, mut b) = peer_pair(10, 64);
        let probe = a.make_probe().unwrap().unwrap();
        assert_eq!(b.handle_wire(&probe, 0).unwrap(), PeerEvent::ProbeReceived);
        let ack = b.make_probe_ack().unwrap().unwrap();
        assert_eq!(a.handle_wire(&ack, 0).unwrap(), PeerEvent::ProbeAck);
    }

    #[test]
    fn section6_recovery_accepted_replay_rejected() {
        let (mut a, mut b) = peer_pair(10, 64);
        // Steady traffic both ways.
        for i in 0..30u32 {
            let w1 = a.send_data(format!("a{i}").as_bytes()).unwrap().unwrap();
            b.handle_wire(&w1, i as u64).unwrap();
            let w2 = b.send_data(format!("b{i}").as_bytes()).unwrap().unwrap();
            a.handle_wire(&w2, i as u64).unwrap();
        }
        // Make B's saves durable, then crash B.
        b.save_completed_out().unwrap();
        b.save_completed_in().unwrap();
        b.reset();
        // B wakes and emits the secured recovery notify.
        let notify = b.recover().unwrap();
        // A accepts it: the notify's sequence number exceeds A's window
        // edge (leap guarantees it).
        match a.handle_wire(&notify, 1_000).unwrap() {
            PeerEvent::PeerRecovered { seq } => {
                assert!(seq.value() > 30, "leaped seq {seq}");
            }
            other => panic!("{other:?}"),
        }
        // The adversary replays the very same notify later: rejected by
        // the anti-replay window (not by authentication).
        assert_eq!(a.handle_wire(&notify, 2_000).unwrap(), PeerEvent::Rejected);
        // Traffic resumes in both directions. B→A is immediate (B's send
        // counter leaped above A's window). A→B sacrifices at most 2K
        // fresh messages — A's counter sits inside B's leaped window —
        // then flows again: exactly §5 condition (ii).
        let w = b.send_data(b"back online").unwrap().unwrap();
        assert!(matches!(
            a.handle_wire(&w, 3_000).unwrap(),
            PeerEvent::Data(_)
        ));
        let mut sacrificed = 0u64;
        loop {
            let w = a.send_data(b"welcome back").unwrap().unwrap();
            match b.handle_wire(&w, 3_000).unwrap() {
                PeerEvent::Data(_) => break,
                PeerEvent::Rejected => sacrificed += 1,
                other => panic!("{other:?}"),
            }
            assert!(sacrificed <= 2 * 10, "condition (ii) bound violated");
        }
        assert!(sacrificed <= 2 * 10);
    }

    #[test]
    fn replayed_old_data_rejected_after_recovery() {
        let (mut a, mut b) = peer_pair(10, 64);
        let mut recorded = Vec::new();
        for i in 0..25u32 {
            let w = b.send_data(format!("pre-{i}").as_bytes()).unwrap().unwrap();
            recorded.push(w.clone());
            a.handle_wire(&w, i as u64).unwrap();
        }
        b.save_completed_out().unwrap();
        b.reset();
        let notify = b.recover().unwrap();
        a.handle_wire(&notify, 100).unwrap();
        // Replaying all pre-reset traffic from B: every packet rejected.
        for w in &recorded {
            assert_eq!(a.handle_wire(w, 200).unwrap(), PeerEvent::Rejected);
        }
    }

    #[test]
    fn rolled_back_store_keeps_the_peer_down() {
        use reset_stable::{Fault, FaultyStable};
        let keys_ab = SaKeys::derive(b"master", b"a->b");
        let keys_ba = SaKeys::derive(b"master", b"b->a");
        let mut b = IpsecPeer::new(
            "B",
            SecurityAssociation::new(0xB2A, keys_ba),
            SecurityAssociation::new(0xA2B, keys_ab),
            FaultyStable::new(MemStable::new()),
            FaultyStable::new(MemStable::new()),
            10,
            64,
            DpdConfig::default(),
        );
        // Two SAVE generations become durable for the send counter.
        for _ in 0..15 {
            b.send_data(b"x").unwrap().unwrap();
        }
        b.save_completed_out().unwrap();
        for _ in 0..10 {
            b.send_data(b"x").unwrap().unwrap();
        }
        b.save_completed_out().unwrap();
        b.reset();
        // The disk was restored from backup: FETCH serves the *first*
        // generation. Leaping from it would re-use live sequence numbers,
        // so recovery must fail closed — no notify, peer stays down.
        b.outbound_mut().store_mut().push_fault(Fault::RollbackLoad);
        let err = b.recover().expect_err("rollback must fail recovery");
        assert!(err.to_string().contains("rollback"), "{err}");
        assert!(
            b.send_data(b"still down").unwrap().is_none(),
            "no traffic from untrusted recovery state"
        );
    }

    #[test]
    fn down_peer_drops_traffic() {
        let (mut a, mut b) = peer_pair(10, 64);
        b.reset();
        let w = a.send_data(b"into the void").unwrap().unwrap();
        assert_eq!(b.handle_wire(&w, 0).unwrap(), PeerEvent::NotProcessed);
        assert!(b.send_data(b"from the void").unwrap().is_none());
    }

    #[test]
    fn double_reset_recovery_still_monotone() {
        let (mut a, mut b) = peer_pair(10, 64);
        for i in 0..15u32 {
            let w = b.send_data(b"x").unwrap().unwrap();
            a.handle_wire(&w, i as u64).unwrap();
        }
        b.save_completed_out().unwrap();
        b.reset();
        let n1 = b.recover().unwrap();
        let s1 = match a.handle_wire(&n1, 100).unwrap() {
            PeerEvent::PeerRecovered { seq } => seq,
            other => panic!("{other:?}"),
        };
        // Immediately reset again (before any further background save).
        b.reset();
        let n2 = b.recover().unwrap();
        let s2 = match a.handle_wire(&n2, 200).unwrap() {
            PeerEvent::PeerRecovered { seq } => seq,
            other => panic!("{other:?}"),
        };
        assert!(s2 > s1, "second recovery strictly beyond the first");
    }
}

//! SA rekeying (quick-mode style) — the lifecycle event SAVE/FETCH does
//! *not* eliminate.
//!
//! The paper's point is that a **reset** should not force renegotiation,
//! because only the counters were lost. Rekeying for *lifetime expiry*
//! (RFC 2401 byte/packet limits, or the §6 warning that an SA left alive
//! too long invites cryptanalysis) is still required — but a rekey under
//! an existing phase-1 secret is a cheap 3-message quick mode, not the
//! full 6-message main mode.
//!
//! Rekeying also changes the adversary's position: every packet recorded
//! under the old SA fails authentication under the new keys, so a rekey
//! (unlike a SAVE/FETCH recovery) wipes the replay library.

use reset_crypto::{hmac_sha256, prf_plus};

use crate::sa::{CryptoSuite, SaKeys, SaLifetime, SecurityAssociation};
use crate::HandshakeCost;

/// Inputs for a quick-mode rekey under an existing phase-1 SKEYID.
#[derive(Debug, Clone)]
pub struct RekeyRequest {
    /// The phase-1 shared secret both peers already hold.
    pub skeyid: Vec<u8>,
    /// Fresh initiator nonce.
    pub nonce_i: [u8; 16],
    /// Fresh responder nonce.
    pub nonce_r: [u8; 16],
    /// SPI for the replacement SA.
    pub new_spi: u32,
    /// Suite for the replacement SA. A rekey may migrate the SA to a
    /// different transform (e.g. legacy HMAC+keystream → ChaCha20-
    /// Poly1305); the suite id is bound into both the key derivation
    /// and the quick-mode authentication tag, so a downgraded or
    /// up-graded exchange cannot be spliced from another rekey's
    /// messages.
    pub suite: CryptoSuite,
}

/// Outcome of a rekey: the replacement SA and the exchange's cost ledger.
#[derive(Debug, Clone)]
pub struct RekeyOutcome {
    /// The replacement SA (fresh keys, zeroed usage).
    pub sa: SecurityAssociation,
    /// Cost of the 3-message quick mode (no DH unless PFS is requested;
    /// this model omits PFS, matching the cheap path).
    pub cost: HandshakeCost,
}

/// Derives the replacement SA. Both peers call this with the same inputs
/// and obtain identical keys — the quick-mode exchange itself only
/// transports the nonces and authenticates with SKEYID.
///
/// # Examples
///
/// ```
/// use reset_ipsec::{rekey, RekeyRequest};
///
/// let out = rekey(&RekeyRequest {
///     skeyid: b"phase-1-shared-secret".to_vec(),
///     nonce_i: [1; 16],
///     nonce_r: [2; 16],
///     new_spi: 0x2002,
///     suite: reset_ipsec::CryptoSuite::ChaCha20Poly1305,
/// });
/// assert_eq!(out.sa.spi(), 0x2002);
/// assert_eq!(out.sa.suite(), reset_ipsec::CryptoSuite::ChaCha20Poly1305);
/// assert_eq!(out.cost.messages, 3);
/// assert_eq!(out.cost.modexps, 0); // no DH on the cheap path
/// ```
pub fn rekey(req: &RekeyRequest) -> RekeyOutcome {
    // KEYMAT = prf+(SKEYID, Ni | Nr | SPI | suite-id), per the RFC 2409
    // quick-mode shape (protocol id folded into the SPI here; the suite
    // id keeps keymat domains separate across transform migrations).
    let mut seed = Vec::with_capacity(37);
    seed.extend_from_slice(&req.nonce_i);
    seed.extend_from_slice(&req.nonce_r);
    seed.extend_from_slice(&req.new_spi.to_be_bytes());
    seed.push(req.suite.wire_id());
    let keymat = prf_plus(&req.skeyid, &seed, 64);
    let keys = SaKeys {
        auth: keymat[..32].to_vec(),
        enc: keymat[32..].to_vec(),
    };
    // 3 messages: HDR+HASH+SA+Ni / HDR+HASH+SA+Nr / HDR+HASH. Each
    // carries one HMAC; key derivation adds two PRF expansions per side.
    let cost = HandshakeCost {
        messages: 3,
        round_trips: 2,
        modexps: 0,
        prf_calls: 3 + 4,
        bytes: 3 * 76,
    };
    RekeyOutcome {
        sa: SecurityAssociation::new(req.new_spi, keys).with_suite(req.suite),
        cost,
    }
}

/// Convenience: is this SA due for a rekey under `lifetime`?
pub fn rekey_due(sa: &SecurityAssociation, lifetime: &SaLifetime) -> bool {
    sa.usage().packets >= lifetime.max_packets || sa.usage().bytes >= lifetime.max_bytes
}

/// Authenticated rekey-notify tag (binds the nonces, SPI and suite id
/// to SKEYID), so the 3 quick-mode messages cannot be mixed and matched
/// across rekeys — nor a suite migration downgraded in flight.
pub fn rekey_auth_tag(req: &RekeyRequest) -> [u8; 32] {
    let mut msg = Vec::with_capacity(37);
    msg.extend_from_slice(&req.nonce_i);
    msg.extend_from_slice(&req.nonce_r);
    msg.extend_from_slice(&req.new_spi.to_be_bytes());
    msg.push(req.suite.wire_id());
    hmac_sha256(&req.skeyid, &msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::esp::{Inbound, Outbound};
    use reset_stable::MemStable;

    fn req(spi: u32) -> RekeyRequest {
        RekeyRequest {
            skeyid: b"phase1-skeyid".to_vec(),
            nonce_i: [0xAA; 16],
            nonce_r: [0xBB; 16],
            new_spi: spi,
            suite: CryptoSuite::default(),
        }
    }

    #[test]
    fn both_sides_derive_identical_keys() {
        let a = rekey(&req(0x30));
        let b = rekey(&req(0x30));
        assert_eq!(a.sa.keys(), b.sa.keys());
    }

    #[test]
    fn nonces_and_spi_separate_keys() {
        let base = rekey(&req(0x30));
        let mut r = req(0x30);
        r.nonce_i = [0xCC; 16];
        assert_ne!(rekey(&r).sa.keys(), base.sa.keys());
        assert_ne!(rekey(&req(0x31)).sa.keys(), base.sa.keys());
    }

    #[test]
    fn rekey_is_much_cheaper_than_main_mode() {
        use crate::CostModel;
        let quick = rekey(&req(1)).cost;
        assert_eq!(quick.modexps, 0);
        let model = CostModel::paper_era();
        // Main mode: 4 modexps ≈ 40 ms alone. Quick mode: PRF + 2 RTTs.
        assert!(quick.estimate_ns(&model) < 100_000_000);
        assert!(quick.estimate_ns(&model) > 0);
    }

    #[test]
    fn old_recorded_traffic_useless_after_rekey() {
        // The adversary's replay library dies with the old keys.
        let old = rekey(&req(0x40));
        let mut tx_old = Outbound::new(old.sa.clone(), MemStable::new(), 25);
        let recorded: Vec<_> = (0..10)
            .map(|_| tx_old.protect(b"old").unwrap().unwrap())
            .collect();

        let new = rekey(&RekeyRequest {
            nonce_i: [0xDD; 16],
            ..req(0x40) // same SPI reused for the replacement
        });
        let mut rx_new = Inbound::new(new.sa, MemStable::new(), 25, 64);
        for w in &recorded {
            assert!(rx_new.process(w).is_err(), "old-SA packet authenticated");
        }
    }

    #[test]
    fn new_sa_starts_counters_from_scratch() {
        let out = rekey(&req(0x50));
        let sa = out.sa.clone();
        let mut tx = Outbound::new(sa.clone(), MemStable::new(), 25);
        let mut rx = Inbound::new(sa, MemStable::new(), 25, 64);
        let w = tx.protect(b"first").unwrap().unwrap();
        match rx.process(&w).unwrap() {
            crate::RxResult::Delivered { seq, .. } => assert_eq!(seq.value(), 1),
            other => panic!("{other:?}"),
        }
        assert_eq!(out.sa.usage().packets, 0, "usage zeroed");
    }

    #[test]
    fn rekey_due_tracks_lifetime() {
        let out = rekey(&req(0x60));
        let mut sa = out.sa;
        let lt = SaLifetime {
            max_packets: 2,
            max_bytes: u64::MAX,
        };
        assert!(!rekey_due(&sa, &lt));
        sa.account(10);
        sa.account(10);
        assert!(rekey_due(&sa, &lt));
    }

    #[test]
    fn auth_tag_binds_all_inputs() {
        let t0 = rekey_auth_tag(&req(1));
        let mut r = req(1);
        r.nonce_r = [0; 16];
        assert_ne!(rekey_auth_tag(&r), t0);
        assert_ne!(rekey_auth_tag(&req(2)), t0);
        let mut s = req(1);
        s.suite = CryptoSuite::HmacSha256WithKeystream;
        assert_ne!(rekey_auth_tag(&s), t0, "suite id must be bound");
        assert_eq!(rekey_auth_tag(&req(1)), t0);
    }

    #[test]
    fn suite_migration_derives_distinct_keys_and_installs_suite() {
        let aead = rekey(&req(0x70)); // default suite: the AEAD
        let mut r = req(0x70);
        r.suite = CryptoSuite::HmacSha256WithKeystream;
        let legacy = rekey(&r);
        assert_eq!(aead.sa.suite(), CryptoSuite::ChaCha20Poly1305);
        assert_eq!(legacy.sa.suite(), CryptoSuite::HmacSha256WithKeystream);
        assert_ne!(
            legacy.sa.keys(),
            aead.sa.keys(),
            "keymat domains separated by suite id"
        );
    }
}

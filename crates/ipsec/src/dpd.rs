//! Dead peer detection — the §6 trigger for keeping SAs alive.
//!
//! The paper's prolonged-reset scheme: a host that notices its peer is
//! unreachable (the paper mentions ICMP unreachable, RFC 792; the IETF
//! drafts it cites use traffic-based DPD probes) keeps the SA pair alive
//! for a bounded grace period instead of deleting it. If the peer wakes
//! up and proves liveness within the grace period, the SAs resume via
//! SAVE/FETCH; if not, they are torn down — the paper warns the wait
//! cannot be unbounded "otherwise an adversary will have enough time to
//! apply cryptographic analysis".
//!
//! Timing here is plain `u64` nanoseconds so the type works under the
//! simulator or a real clock.

/// What the DPD state machine wants the host to do now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpdAction {
    /// Nothing to do.
    Idle,
    /// Send an R-U-THERE probe to the peer.
    SendProbe,
    /// The peer is presumed down: keep SAs alive, start the grace timer.
    PeerPresumedDown,
    /// The grace period expired: tear the SAs down (IETF behaviour).
    TearDown,
}

/// Configuration of the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpdConfig {
    /// Silence after which we start probing.
    pub idle_timeout_ns: u64,
    /// Gap between successive probes.
    pub probe_interval_ns: u64,
    /// Probes without answer before declaring the peer down.
    pub max_probes: u32,
    /// How long SAs stay alive awaiting the peer's recovery (§6: bounded!).
    pub grace_period_ns: u64,
}

impl Default for DpdConfig {
    fn default() -> Self {
        DpdConfig {
            idle_timeout_ns: 10_000_000_000,  // 10 s
            probe_interval_ns: 2_000_000_000, // 2 s
            max_probes: 3,
            grace_period_ns: 60_000_000_000, // 60 s
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DpdPhase {
    /// Traffic (or probe replies) flowing normally.
    Alive,
    /// Probing after silence.
    Probing {
        probes_sent: u32,
        last_probe_ns: u64,
    },
    /// Peer presumed down; grace timer running.
    Grace { since_ns: u64 },
    /// SAs torn down.
    Dead,
}

/// Traffic-based dead peer detection with a §6 grace period.
///
/// # Examples
///
/// ```
/// use reset_ipsec::{DpdAction, DpdConfig, DpdDetector};
///
/// let cfg = DpdConfig {
///     idle_timeout_ns: 1_000,
///     probe_interval_ns: 500,
///     max_probes: 2,
///     grace_period_ns: 10_000,
/// };
/// let mut dpd = DpdDetector::new(cfg);
/// dpd.on_traffic(0);
/// assert_eq!(dpd.poll(500), DpdAction::Idle);      // recent traffic
/// assert_eq!(dpd.poll(1_500), DpdAction::SendProbe); // silence
/// ```
#[derive(Debug, Clone)]
pub struct DpdDetector {
    cfg: DpdConfig,
    last_heard_ns: u64,
    phase: DpdPhase,
}

impl DpdDetector {
    /// A detector that assumes the peer was alive at time 0.
    pub fn new(cfg: DpdConfig) -> Self {
        DpdDetector {
            cfg,
            last_heard_ns: 0,
            phase: DpdPhase::Alive,
        }
    }

    /// Notes authenticated traffic (or a probe ack) from the peer.
    /// Anything unauthenticated must NOT reach this method — otherwise an
    /// adversary could keep a dead SA alive forever.
    pub fn on_traffic(&mut self, now_ns: u64) {
        self.last_heard_ns = now_ns;
        if self.phase != DpdPhase::Dead {
            self.phase = DpdPhase::Alive;
        }
    }

    /// True while the SAs should still exist (alive, probing or grace).
    pub fn sas_alive(&self) -> bool {
        self.phase != DpdPhase::Dead
    }

    /// True once the peer is presumed down but within grace — the window
    /// in which a §6 recovery notify will be honoured.
    pub fn in_grace(&self) -> bool {
        matches!(self.phase, DpdPhase::Grace { .. })
    }

    /// The earliest instant at which [`DpdDetector::poll`] could do
    /// anything other than return [`DpdAction::Idle`] — the deadline a
    /// timer wheel should arm for this detector. `None` means the
    /// detector never transitions again on its own: either it is
    /// `Dead`, or the deadline arithmetic would overflow `u64`
    /// nanoseconds (in which case `poll`'s saturating subtraction can
    /// never reach the threshold either, so "never" is exact, not an
    /// approximation).
    pub fn next_deadline(&self) -> Option<u64> {
        match self.phase {
            DpdPhase::Alive => self.last_heard_ns.checked_add(self.cfg.idle_timeout_ns),
            // Both the next probe and the presumed-down verdict fire
            // one probe interval after the last probe.
            DpdPhase::Probing { last_probe_ns, .. } => {
                last_probe_ns.checked_add(self.cfg.probe_interval_ns)
            }
            DpdPhase::Grace { since_ns } => since_ns.checked_add(self.cfg.grace_period_ns),
            DpdPhase::Dead => None,
        }
    }

    /// Advances the detector to `now_ns` and reports the action to take.
    pub fn poll(&mut self, now_ns: u64) -> DpdAction {
        match self.phase {
            DpdPhase::Dead => DpdAction::TearDown,
            DpdPhase::Alive => {
                if now_ns.saturating_sub(self.last_heard_ns) >= self.cfg.idle_timeout_ns {
                    self.phase = DpdPhase::Probing {
                        probes_sent: 1,
                        last_probe_ns: now_ns,
                    };
                    DpdAction::SendProbe
                } else {
                    DpdAction::Idle
                }
            }
            DpdPhase::Probing {
                probes_sent,
                last_probe_ns,
            } => {
                if now_ns.saturating_sub(last_probe_ns) < self.cfg.probe_interval_ns {
                    return DpdAction::Idle;
                }
                if probes_sent >= self.cfg.max_probes {
                    self.phase = DpdPhase::Grace { since_ns: now_ns };
                    DpdAction::PeerPresumedDown
                } else {
                    self.phase = DpdPhase::Probing {
                        probes_sent: probes_sent + 1,
                        last_probe_ns: now_ns,
                    };
                    DpdAction::SendProbe
                }
            }
            DpdPhase::Grace { since_ns } => {
                if now_ns.saturating_sub(since_ns) >= self.cfg.grace_period_ns {
                    self.phase = DpdPhase::Dead;
                    DpdAction::TearDown
                } else {
                    DpdAction::Idle
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DpdConfig {
        DpdConfig {
            idle_timeout_ns: 1_000,
            probe_interval_ns: 500,
            max_probes: 3,
            grace_period_ns: 10_000,
        }
    }

    #[test]
    fn quiet_then_probe_sequence() {
        let mut d = DpdDetector::new(cfg());
        d.on_traffic(100);
        assert_eq!(d.poll(500), DpdAction::Idle);
        assert_eq!(d.poll(1_200), DpdAction::SendProbe); // probe 1
        assert_eq!(d.poll(1_400), DpdAction::Idle); // too soon
        assert_eq!(d.poll(1_800), DpdAction::SendProbe); // probe 2
        assert_eq!(d.poll(2_400), DpdAction::SendProbe); // probe 3
        assert_eq!(d.poll(3_000), DpdAction::PeerPresumedDown);
        assert!(d.in_grace());
        assert!(d.sas_alive(), "grace keeps SAs");
    }

    #[test]
    fn traffic_during_probing_revives() {
        let mut d = DpdDetector::new(cfg());
        d.on_traffic(0);
        assert_eq!(d.poll(1_100), DpdAction::SendProbe);
        d.on_traffic(1_200); // probe answered
        assert_eq!(d.poll(1_700), DpdAction::Idle);
        assert!(d.sas_alive());
        assert!(!d.in_grace());
    }

    #[test]
    fn grace_expiry_tears_down() {
        let mut d = DpdDetector::new(cfg());
        d.on_traffic(0);
        d.poll(1_100); // probe 1
        d.poll(1_700); // probe 2
        d.poll(2_300); // probe 3
        assert_eq!(d.poll(2_900), DpdAction::PeerPresumedDown);
        assert_eq!(d.poll(5_000), DpdAction::Idle); // in grace
        assert_eq!(d.poll(13_000), DpdAction::TearDown);
        assert!(!d.sas_alive());
        // Dead is terminal.
        assert_eq!(d.poll(20_000), DpdAction::TearDown);
    }

    #[test]
    fn recovery_during_grace_revives() {
        let mut d = DpdDetector::new(cfg());
        d.on_traffic(0);
        d.poll(1_100);
        d.poll(1_700);
        d.poll(2_300);
        d.poll(2_900); // presumed down, grace starts
        assert!(d.in_grace());
        // §6: the reset host wakes up and its secured notify arrives
        // within the grace period.
        d.on_traffic(6_000);
        assert!(d.sas_alive());
        assert!(!d.in_grace());
        assert_eq!(d.poll(6_500), DpdAction::Idle);
    }

    /// `next_deadline` must predict exactly when `poll` stops being
    /// `Idle`, in every phase: one tick earlier is `Idle`, at the
    /// deadline it transitions.
    #[test]
    fn next_deadline_predicts_every_transition() {
        let mut d = DpdDetector::new(cfg());
        d.on_traffic(100);
        // Alive: idle timeout after last traffic.
        assert_eq!(d.next_deadline(), Some(1_100));
        assert_eq!(d.poll(1_099), DpdAction::Idle);
        assert_eq!(d.poll(1_100), DpdAction::SendProbe);
        // Probing: one probe interval after the last probe — both for
        // the next probe and for the presumed-down verdict.
        assert_eq!(d.next_deadline(), Some(1_600));
        assert_eq!(d.poll(1_599), DpdAction::Idle);
        assert_eq!(d.poll(1_600), DpdAction::SendProbe); // probe 2
        assert_eq!(d.next_deadline(), Some(2_100));
        assert_eq!(d.poll(2_100), DpdAction::SendProbe); // probe 3
        assert_eq!(d.next_deadline(), Some(2_600));
        assert_eq!(d.poll(2_599), DpdAction::Idle);
        assert_eq!(d.poll(2_600), DpdAction::PeerPresumedDown);
        // Grace: grace period after entering it.
        assert_eq!(d.next_deadline(), Some(12_600));
        assert_eq!(d.poll(12_599), DpdAction::Idle);
        assert_eq!(d.poll(12_600), DpdAction::TearDown);
        // Dead is terminal: nothing left to arm.
        assert_eq!(d.next_deadline(), None);
    }

    /// Regression (the u64-overflow class PR 7 fixed in the save-due
    /// threshold): deadlines computed near `u64::MAX` must not wrap.
    /// A naive `last_heard_ns + idle_timeout_ns` would overflow here —
    /// panicking in debug, or wrapping to a tiny deadline in release
    /// that fires a probe for a peer heard from 10 ns ago.
    #[test]
    fn deadline_arithmetic_near_u64_max_does_not_wrap() {
        let mut d = DpdDetector::new(cfg());
        d.on_traffic(u64::MAX - 10);
        // The true deadline overflows: the detector can never go
        // silent long enough, so there is nothing to arm...
        assert_eq!(d.next_deadline(), None);
        // ...which matches poll: even at the end of time the idle gap
        // (10 ns) is below the timeout.
        assert_eq!(d.poll(u64::MAX), DpdAction::Idle);
        assert!(d.sas_alive());

        // Same class in the probing phase: a probe sent near the end
        // of time never gets a follow-up deadline.
        let mut d = DpdDetector::new(cfg());
        d.on_traffic(u64::MAX - 2_000);
        assert_eq!(d.poll(u64::MAX - 100), DpdAction::SendProbe);
        assert_eq!(d.next_deadline(), None);
        assert_eq!(d.poll(u64::MAX), DpdAction::Idle);

        // And in grace: entering grace near the end of time keeps the
        // SAs alive (bounded only by the clock itself).
        let cfg_short = DpdConfig {
            idle_timeout_ns: 100,
            probe_interval_ns: 10,
            max_probes: 1,
            grace_period_ns: u64::MAX,
        };
        let mut d = DpdDetector::new(cfg_short);
        d.on_traffic(0);
        assert_eq!(d.poll(200), DpdAction::SendProbe);
        assert_eq!(d.poll(300), DpdAction::PeerPresumedDown);
        assert_eq!(d.next_deadline(), None);
        assert_eq!(d.poll(u64::MAX), DpdAction::Idle);
        assert!(d.in_grace());
    }

    #[test]
    fn default_config_is_sane() {
        let c = DpdConfig::default();
        assert!(c.grace_period_ns > c.idle_timeout_ns);
        assert!(c.max_probes >= 1);
    }
}

//! Hierarchical timer wheel for O(due) deadline dispatch.
//!
//! [`Gateway::tick`](crate::Gateway::tick) used to sweep every DPD
//! detector and every SADB entry on every call — O(fleet) work even
//! when nothing was due. This wheel replaces the sweep: deadlines are
//! bucketed into a Tokio-style hierarchy of 11 levels × 64 slots
//! (6 bits per level, 66 bits total, so any `u64` nanosecond deadline
//! is schedulable, including `u64::MAX`), and [`TimerWheel::expire_into`]
//! does work proportional to the timers that actually fire plus the
//! occasional cascade.
//!
//! Steady-state operation is allocation-free:
//!
//! * the idle path (`now < next_due`) is a cached-bound comparison and
//!   an immediate return — zero work, zero allocation;
//! * firing drains a slot `Vec` into the caller's reusable scratch and
//!   puts the emptied `Vec` (capacity retained) back into the slot;
//! * cascading re-inserts entries into strictly lower levels, so the
//!   taken slot `Vec` can likewise be returned with its capacity.
//!
//! The wheel never reorders equal work: level-0 slots hold exact
//! deadlines, and entries within a slot fire in insertion order, so
//! dispatch order is a pure function of (deadline, insertion order) —
//! independent of fleet size and of when `expire_into` is called.
//! Deadlines at or before the wheel's current time clamp into the
//! current level-0 slot and fire on the next expiry call.
//!
//! There is no `cancel`: callers that need revocation (the gateway's
//! DPD integration) keep a side map of the single *live* deadline per
//! key and ignore stale entries when they fire. Stale entries are
//! bounded by the number of supersede/remove operations and cost one
//! slot visit each when their bucket comes due.

/// Six bits per level: 64 slots.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Slot index mask.
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// 11 levels × 6 bits = 66 bits ≥ the 64-bit deadline space.
const LEVELS: usize = 11;

/// One level: a 64-bit occupancy bitmap plus 64 slot buckets holding
/// `(deadline, value)` pairs.
struct Level<T> {
    occupied: u64,
    slots: [Vec<(u64, T)>; SLOTS],
}

impl<T> Level<T> {
    fn new() -> Self {
        Self {
            occupied: 0,
            slots: std::array::from_fn(|_| Vec::new()),
        }
    }
}

/// A hierarchical timer wheel mapping `u64` deadlines to values of
/// type `T`. See the module docs for the design.
pub(crate) struct TimerWheel<T> {
    levels: Vec<Level<T>>,
    /// The wheel's notion of "now": the last slot deadline processed
    /// (or the last `expire_into` instant). Only ever moves forward.
    elapsed: u64,
    /// Cached lower bound on the earliest scheduled deadline; `None`
    /// when the wheel is empty. The idle fast path compares against
    /// this and returns without touching any level.
    next_due: Option<u64>,
    len: usize,
}

/// The level an entry belongs to: the highest 6-bit group in which
/// `when` differs from `elapsed` (level 0 when they agree above the
/// slot bits).
fn level_for(elapsed: u64, when: u64) -> usize {
    let masked = (elapsed ^ when) | SLOT_MASK;
    let significant = 63 - masked.leading_zeros() as usize;
    significant / LEVEL_BITS as usize
}

impl<T> TimerWheel<T> {
    pub(crate) fn new() -> Self {
        Self {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            elapsed: 0,
            next_due: None,
            len: 0,
        }
    }

    /// Number of scheduled (not yet fired) entries, stale ones included.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Lower bound on the earliest scheduled deadline; `None` when
    /// empty. `expire_into(now, ..)` with `now < next_due()` is
    /// guaranteed to be a no-op.
    #[cfg(test)]
    pub(crate) fn next_due(&self) -> Option<u64> {
        self.next_due
    }

    /// Schedule `value` to fire once `expire_into` is called with
    /// `now >= deadline`. Deadlines at or before the wheel's current
    /// time fire on the very next expiry call.
    pub(crate) fn schedule(&mut self, deadline: u64, value: T) {
        self.insert(deadline, value);
        self.len += 1;
        // A clamped past deadline fires at the wheel's current time,
        // not at its nominal (already elapsed) deadline.
        let effective = deadline.max(self.elapsed);
        self.next_due = Some(match self.next_due {
            Some(d) => d.min(effective),
            None => effective,
        });
    }

    /// Placement only — no length or `next_due` bookkeeping (shared by
    /// `schedule` and the cascade path, which re-inserts entries that
    /// are already counted).
    fn insert(&mut self, deadline: u64, value: T) {
        let (level, slot) = if deadline <= self.elapsed {
            // Already due: clamp into the current level-0 slot.
            (0, (self.elapsed & SLOT_MASK) as usize)
        } else {
            let level = level_for(self.elapsed, deadline);
            let slot = ((deadline >> (LEVEL_BITS as u64 * level as u64)) & SLOT_MASK) as usize;
            (level, slot)
        };
        let lv = &mut self.levels[level];
        lv.occupied |= 1u64 << slot;
        lv.slots[slot].push((deadline, value));
    }

    /// Fire every entry with `deadline <= now` into `out` (appending,
    /// in deadline-then-insertion order), cascading higher-level slots
    /// as the wheel's time advances. Allocation-free when nothing is
    /// due; otherwise allocates only if `out` or a slot bucket must
    /// grow beyond its retained capacity.
    pub(crate) fn expire_into(&mut self, now: u64, out: &mut Vec<(u64, T)>) {
        // Time only moves forward: a stale `now` can still legitimately
        // fire entries that were already due (clamped ones), but must
        // never fire future ones.
        let now = now.max(self.elapsed);
        match self.next_due {
            None => return,
            Some(d) if now < d => return,
            Some(_) => {}
        }
        loop {
            let Some((level, slot)) = self.next_occupied_slot() else {
                self.elapsed = now;
                self.next_due = None;
                return;
            };
            let deadline = self.slot_deadline(level, slot);
            if deadline > now {
                // `deadline` is the earliest slot start, which lower-
                // bounds every remaining entry's deadline.
                self.next_due = Some(deadline);
                self.elapsed = now;
                return;
            }
            debug_assert!(
                deadline >= self.elapsed,
                "slot deadline regressed: {deadline} < elapsed {}",
                self.elapsed
            );
            self.elapsed = deadline;
            let mut entries = std::mem::take(&mut self.levels[level].slots[slot]);
            self.levels[level].occupied &= !(1u64 << slot);
            if level == 0 {
                // A level-0 slot holds exact deadlines (clamped entries
                // may carry an earlier nominal deadline — still due).
                debug_assert!(entries.iter().all(|(d, _)| *d <= deadline));
                self.len -= entries.len();
                out.append(&mut entries);
            } else {
                // Cascade: with `elapsed` now at the slot start, every
                // entry re-inserts at a strictly lower level, so the
                // taken bucket is never the re-insertion target.
                for (d, v) in entries.drain(..) {
                    self.insert(d, v);
                }
            }
            // Hand the emptied bucket back with its capacity intact.
            self.levels[level].slots[slot] = entries;
        }
    }

    /// The earliest occupied slot, scanning levels bottom-up. Within
    /// each level every occupied slot is at or after the current
    /// position (entries behind it would already have been processed),
    /// and every level-`l` deadline precedes every level-`l+1`
    /// deadline, so the first hit is the global minimum.
    fn next_occupied_slot(&self) -> Option<(usize, usize)> {
        self.levels
            .iter()
            .enumerate()
            .find(|(_, lv)| lv.occupied != 0)
            .map(|(level, lv)| (level, lv.occupied.trailing_zeros() as usize))
    }

    /// Absolute time at which `slot` of `level` comes due: the slot's
    /// start within the level's current rotation. Computed in `u128`
    /// because level 10's rotation (2^66 ns) overflows `u64`.
    fn slot_deadline(&self, level: usize, slot: usize) -> u64 {
        let level_range = 1u128 << (LEVEL_BITS as u128 * (level as u128 + 1));
        let slot_range = 1u128 << (LEVEL_BITS as u128 * level as u128);
        let level_start = self.elapsed as u128 - (self.elapsed as u128 % level_range);
        (level_start + slot as u128 * slot_range) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain everything due at `now` into a fresh Vec of values.
    fn fire(wheel: &mut TimerWheel<u32>, now: u64) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        wheel.expire_into(now, &mut out);
        out
    }

    #[test]
    fn level_assignment_matches_bit_groups() {
        assert_eq!(level_for(0, 0), 0);
        assert_eq!(level_for(0, 63), 0);
        assert_eq!(level_for(0, 64), 1);
        assert_eq!(level_for(0, (1 << 12) - 1), 1);
        assert_eq!(level_for(0, 1 << 12), 2);
        assert_eq!(level_for(0, u64::MAX), LEVELS - 1);
        // Only the differing bits matter.
        assert_eq!(level_for(1 << 30, (1 << 30) + 5), 0);
    }

    #[test]
    fn fires_exactly_at_deadline_not_before() {
        let mut w = TimerWheel::new();
        w.schedule(100, 1);
        assert!(fire(&mut w, 99).is_empty());
        assert_eq!(fire(&mut w, 100), vec![(100, 1)]);
        assert_eq!(w.len(), 0);
        assert!(fire(&mut w, 100_000).is_empty());
    }

    #[test]
    fn cascade_boundaries_fire_in_order() {
        // Deadlines straddling the level-0/1 and level-1/2 boundaries.
        let mut w = TimerWheel::new();
        for (d, v) in [(63, 0), (64, 1), (65, 2), (4095, 3), (4096, 4), (4097, 5)] {
            w.schedule(d, v);
        }
        assert!(fire(&mut w, 62).is_empty());
        assert_eq!(fire(&mut w, 63), vec![(63, 0)]);
        assert_eq!(fire(&mut w, 64), vec![(64, 1)]);
        // Jump over several boundaries at once: everything due fires,
        // ordered by deadline.
        assert_eq!(fire(&mut w, 4096), vec![(65, 2), (4095, 3), (4096, 4)]);
        assert_eq!(fire(&mut w, u64::MAX), vec![(4097, 5)]);
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn far_future_deadlines_cascade_down_to_exact_fire() {
        let mut w = TimerWheel::new();
        let far = (1u64 << 40) + 12345;
        w.schedule(far, 7);
        assert!(fire(&mut w, far - 1).is_empty());
        assert_eq!(fire(&mut w, far), vec![(far, 7)]);
    }

    #[test]
    fn deadline_exactly_at_the_horizon_is_schedulable() {
        let mut w = TimerWheel::new();
        w.schedule(u64::MAX, 9);
        assert!(fire(&mut w, u64::MAX - 1).is_empty());
        assert_eq!(fire(&mut w, u64::MAX), vec![(u64::MAX, 9)]);
        // The wheel remains usable pinned at the horizon: already-due
        // deadlines still clamp and fire.
        w.schedule(5, 10);
        assert_eq!(fire(&mut w, u64::MAX), vec![(5, 10)]);
    }

    #[test]
    fn re_arm_after_fire_keeps_relative_order() {
        let mut w = TimerWheel::new();
        w.schedule(1_000, 1);
        assert_eq!(fire(&mut w, 1_000), vec![(1_000, 1)]);
        // Re-arm from the new elapsed position, same level-0 window and
        // across a cascade boundary.
        w.schedule(1_001, 2);
        w.schedule(1_000 + 4096, 3);
        assert_eq!(fire(&mut w, 1_001), vec![(1_001, 2)]);
        assert_eq!(fire(&mut w, 1_000 + 4096), vec![(1_000 + 4096, 3)]);
    }

    #[test]
    fn past_deadlines_clamp_and_fire_next_expiry() {
        let mut w = TimerWheel::new();
        w.schedule(500, 1);
        assert_eq!(fire(&mut w, 500), vec![(500, 1)]);
        // Nominal deadline already elapsed: fires on the next call, at
        // any `now`, reporting its nominal (stale) deadline.
        w.schedule(100, 2);
        assert_eq!(w.next_due(), Some(500));
        assert_eq!(fire(&mut w, 500), vec![(100, 2)]);
    }

    #[test]
    fn idle_expire_is_a_no_op() {
        let mut w = TimerWheel::new();
        w.schedule(1 << 20, 1);
        let due = w.next_due().unwrap();
        assert!(due <= 1 << 20);
        let mut out = Vec::new();
        w.expire_into(due - 1, &mut out);
        assert!(out.is_empty());
        assert_eq!(w.len(), 1);
        // Empty wheel: also a no-op at any time.
        assert_eq!(fire(&mut w, u64::MAX), vec![((1 << 20), 1)]);
        w.expire_into(u64::MAX, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn equal_deadlines_fire_in_insertion_order() {
        let mut w = TimerWheel::new();
        for v in 0..8 {
            w.schedule(777, v);
        }
        assert_eq!(
            fire(&mut w, 777),
            (0..8).map(|v| (777, v)).collect::<Vec<_>>()
        );
    }

    /// Differential against a sorted reference model: pseudo-random
    /// schedules and expiries must fire exactly the due set, in
    /// deadline order, at every step.
    #[test]
    fn random_schedule_matches_reference_model() {
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut w: TimerWheel<u32> = TimerWheel::new();
        let mut model: Vec<(u64, u32)> = Vec::new();
        let mut now = 0u64;
        let mut next_id = 0u32;
        for step in 0..2_000 {
            if rng() % 3 != 0 {
                // Mixed magnitudes: same-slot, same-level, far-future.
                let span = match rng() % 4 {
                    0 => rng() % 64,
                    1 => rng() % 4_096,
                    2 => rng() % (1 << 20),
                    _ => rng() % (1 << 44),
                };
                let deadline = now.saturating_add(span);
                w.schedule(deadline, next_id);
                model.push((deadline, next_id));
                next_id += 1;
            } else {
                now += rng() % (1 << (rng() % 24));
                let mut fired = Vec::new();
                w.expire_into(now, &mut fired);
                let (due, pending): (Vec<_>, Vec<_>) = model.iter().partition(|(d, _)| *d <= now);
                model = pending;
                // Same multiset, and the wheel's order is sorted by
                // deadline (insertion order breaks ties, which the
                // model preserves by construction).
                let mut want = due;
                want.sort_by_key(|(d, _)| *d);
                assert_eq!(fired, want, "step {step} now {now}");
                assert_eq!(w.len(), model.len(), "step {step}");
            }
        }
    }
}

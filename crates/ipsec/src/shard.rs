//! The sharded gateway: one engine, N persistent worker shards, zero
//! shared locks on any datapath.
//!
//! The paper's SAVE/FETCH guarantees are *per SA* — nothing in the §4
//! protocol couples one SA's counters to another's — so a gateway
//! serving a large SA fleet is embarrassingly parallel. A
//! [`ShardedGateway`] exploits exactly that: the SADB is partitioned by
//! SPI hash ([`reset_wire::spi_shard`]) across N inner [`Gateway`]
//! shards, each shard owning its SAs outright — counters, replay
//! windows, persistent-store slots, DPD detectors and rekey generations
//! all live inside one shard and are never touched by another. The only
//! shared state is the builder's store factory, consulted (briefly,
//! behind a mutex) when an SA is installed or rekeyed, never per packet.
//!
//! # Threading model: a persistent worker pool
//!
//! [`GatewayBuilder::build_sharded`] spawns one long-lived worker
//! thread per shard and moves that shard's [`Gateway`] into it
//! permanently (see [`crate::pool`]'s internals). Every verb on
//! [`ShardedGateway`] is a *job* submitted over the owning shard's
//! work queue:
//!
//! * Routed verbs ([`ShardedGateway::protect`],
//!   [`ShardedGateway::push_wire`], installs, the read accessors) are
//!   one job on the owning shard, awaited synchronously.
//! * Fleet verbs ([`ShardedGateway::push_wire_batch`],
//!   [`ShardedGateway::tick`], [`ShardedGateway::reset`], the recovery
//!   halves) submit one job to every (non-idle) shard and then wait on
//!   the completions **in shard index order** — the completion barrier
//!   that makes the event merge deterministic, below.
//! * The pipelined pair [`ShardedGateway::submit_batch`] /
//!   [`ShardedGateway::drain_events`] splits `push_wire_batch` into its
//!   fan-out and its barrier, so a driver can seal the *next* batch
//!   while the shards chew on the current one.
//!
//! No thread is spawned per call anywhere — the per-batch scoped-spawn
//! model this replaced paid ~30 µs per thread per verb on the CI
//! kernel, which swamped the per-shard work at realistic batch sizes.
//! Each shard's queue is single-producer single-consumer and processed
//! strictly in submission order, so per-shard sequencing is a property
//! of the queue; no interior mutability, no `unsafe`, no datapath lock.
//!
//! # Determinism: why single-shard ≡ [`Gateway`]
//!
//! Every event-producing job ends by draining its own shard's event
//! queue and shipping those events back with the completion; the
//! caller appends them to one merged queue in **stable
//! shard-then-arrival order** (shard 0's events first, in the order
//! that shard produced them, then shard 1's, and so on). Thread
//! scheduling can reorder *execution*, but never the merge — the
//! merged stream is a pure function of the inputs, so seeded
//! experiments stay bit-for-bit reproducible at any shard count. Two
//! consequences, both locked by `tests/it_sharded.rs`:
//!
//! * with one shard the merge is the identity, so a
//!   `ShardedGateway` built with `.shards(1)` emits **exactly** the
//!   event stream a plain [`Gateway`] would — same events, same order;
//! * with N shards the *global* interleaving across SPIs changes (one
//!   batch's events appear grouped by shard), but the **per-SPI
//!   subsequence is identical** to the single-gateway stream: an SPI
//!   lives in exactly one shard and each shard preserves arrival order,
//!   so per-SA verdict sequences — the unit the paper's guarantees are
//!   stated in — cannot differ. Global verdict *counts* are therefore
//!   also identical.
//!
//! The one deliberate event rewrite: [`ShardedGateway::finish_recover`]
//! coalesces the shards' per-shard [`GatewayEvent::Recovered`] events
//! into a single fleet-wide `Recovered { sas }` (summed), placed before
//! the buffered-frame verdicts, matching the single-gateway shape.
//!
//! # Shutdown and failure semantics
//!
//! Dropping a [`ShardedGateway`] closes every shard's work queue and
//! joins the workers; jobs already queued are drained first, so a drop
//! with work in flight is a clean, bounded shutdown. A job that
//! *panics* is caught on the worker, and the panic surfaces on the
//! caller — as [`IpsecError::WorkerPanicked`] from the fallible verbs,
//! or re-raised as a panic from the infallible ones — never as a hang.
//! The shard's worker survives a job panic and keeps serving; its
//! state is whatever the interrupted operation left, exactly as a
//! panic mid-call leaves a plain [`Gateway`].
//!
//! # Reset storms
//!
//! [`ShardedGateway::reset`] and the recovery halves run shard-parallel
//! so a reset storm's FETCH + `2K` leap + synchronous SAVE cost is
//! amortized across cores — the multi-core analogue of the paper's §3
//! argument that SAVE/FETCH beats per-SA renegotiation on a gateway
//! with "multiple SAs existing at the same time".

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::thread;

use bytes::Bytes;
use reset_stable::{MemStable, StableError, StableStore};

use anti_replay::{Phase, SeqNum};

use crate::gateway::{Gateway, GatewayBuilder, GatewayEvent, SaDirection, SentFrame};
use crate::pool::{Completion, ShardWorker};
use crate::sa::SecurityAssociation;
use crate::IpsecError;

/// The builder's store factory, shared across shards behind a mutex
/// (consulted at install/rekey time only — never on a datapath).
type SharedStoreFactory<S> = Arc<Mutex<Box<dyn FnMut(u32, SaDirection) -> S + Send>>>;

/// What one shard reports back for a batch job: the verb's result plus
/// the events the shard produced, in arrival order.
type BatchDone = (Result<(), IpsecError>, Vec<GatewayEvent>);

/// What one shard reports back for a recovery job: recovered direction
/// count plus the shard's events.
type RecoverDone = (Result<usize, IpsecError>, Vec<GatewayEvent>);

impl GatewayBuilder<MemStable> {
    /// [`GatewayBuilder::in_memory`] pre-set to `shards` worker shards —
    /// shorthand for the common test/bench fleet setup.
    pub fn in_memory_sharded(shards: usize) -> Self {
        GatewayBuilder::in_memory().shards(shards)
    }
}

impl<S: StableStore + Send + 'static> GatewayBuilder<S> {
    /// Builds a [`ShardedGateway`] with the builder's shard count (or
    /// the host's available parallelism when unset), spawning the
    /// persistent worker threads that own the shards for the value's
    /// whole lifetime. All engine-wide policy — suite, window, save
    /// interval, rekey/DPD, skeyid — is replicated into every shard;
    /// the store factory is shared behind a mutex (contended only when
    /// several shards install or rekey SAs at the same instant).
    pub fn build_sharded(self) -> ShardedGateway<S> {
        let n = self
            .shards
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
            .max(1);
        let factory: SharedStoreFactory<S> = Arc::new(Mutex::new(self.make_store));
        let workers = (0..n)
            .map(|idx| {
                let f = Arc::clone(&factory);
                let mut gateway = GatewayBuilder {
                    suite: self.suite,
                    k: self.k,
                    w: self.w,
                    rekey_after: self.rekey_after,
                    dpd: self.dpd,
                    skeyid: self.skeyid.clone(),
                    shards: None,
                    wakeup_buffer: self.wakeup_buffer,
                    // Every shard records into the one shared handle,
                    // each attributing its events to its own slot.
                    telemetry: self.telemetry.clone(),
                    make_store: Box::new(move |spi, dir| {
                        (f.lock().expect("store factory poisoned"))(spi, dir)
                    }),
                }
                .build();
                gateway.set_shard_index(idx);
                if n == 1 {
                    // The degenerate pool: one shard spawns no thread —
                    // jobs run inline, keeping `shards(1)` identical to
                    // a plain `Gateway` in cost as well as output.
                    ShardWorker::inline(idx, gateway)
                } else {
                    ShardWorker::spawn(idx, gateway)
                }
            })
            .collect();
        ShardedGateway {
            in_flight: VecDeque::new(),
            stashed_error: None,
            events: VecDeque::new(),
            workers,
        }
    }
}

/// N-shard wrapper over [`Gateway`]: same verbs, same events, SA fleet
/// partitioned by SPI hash, batch datapath and reset recovery running
/// on a persistent worker pool. See the [crate docs](crate) for the
/// threading, determinism and shutdown model.
///
/// # Examples
///
/// ```
/// use reset_ipsec::{GatewayBuilder, GatewayEvent};
///
/// let mut p = GatewayBuilder::in_memory_sharded(4).build_sharded();
/// let mut q = GatewayBuilder::in_memory_sharded(4).build_sharded();
/// for spi in 1..=64 {
///     p.add_peer(spi, b"fleet-master");
///     q.add_peer(spi, b"fleet-master");
/// }
/// let frames: Vec<_> = (1..=64)
///     .map(|spi| p.protect(spi, b"hello").unwrap().expect("up").wire)
///     .collect();
/// q.push_wire_batch(&frames)?; // the worker shards drain their queues in parallel
/// let events = q.poll_events();
/// assert_eq!(events.len(), 64);
/// assert!(events.iter().all(|e| matches!(e, GatewayEvent::Delivered { .. })));
/// # Ok::<(), reset_ipsec::IpsecError>(())
/// ```
pub struct ShardedGateway<S> {
    /// Batch submissions not yet waited on, FIFO. Each entry is one
    /// `submit_batch` call's per-shard completions in shard index
    /// order. (Declared before `workers` so pending completions drop
    /// before the workers are joined.)
    in_flight: VecDeque<Vec<Completion<BatchDone>>>,
    /// An error observed while flushing in-flight work from a verb
    /// with no error channel; returned by the next fallible verb.
    stashed_error: Option<IpsecError>,
    /// The merged event queue, filled in stable shard-then-arrival
    /// order as completions are waited on.
    events: VecDeque<GatewayEvent>,
    /// One persistent worker per shard, each owning its `Gateway`.
    workers: Vec<ShardWorker<S>>,
}

impl<S> std::fmt::Debug for ShardedGateway<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedGateway")
            .field("shards", &self.workers.len())
            .field("pending_events", &self.events.len())
            .field("in_flight_batches", &self.in_flight.len())
            .finish_non_exhaustive()
    }
}

impl<S: StableStore + Send + 'static> ShardedGateway<S> {
    // ------------------------------------------------------------------
    // Routing
    // ------------------------------------------------------------------

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.workers.len()
    }

    /// Which shard owns `spi` — [`reset_wire::spi_shard`], the one
    /// routing definition install and dispatch share.
    pub fn shard_of(&self, spi: u32) -> usize {
        reset_wire::spi_shard(spi, self.workers.len())
    }

    /// Runs `f` against one shard's inner engine on that shard's worker
    /// thread and returns its result (diagnostics, tests, occupancy
    /// inspection). The replacement for handing out `&Gateway`
    /// references, which cannot outlive a worker-owned shard.
    pub fn with_shard<R: Send + 'static>(
        &self,
        idx: usize,
        f: impl FnOnce(&Gateway<S>) -> R + Send + 'static,
    ) -> R {
        self.workers[idx].run(move |g| f(&*g))
    }

    /// Every installed SPI across all shards, ascending.
    pub fn spis(&self) -> Vec<u32> {
        let mut spis: Vec<u32> = self
            .gather(|g| g.sadb().spis())
            .into_iter()
            .flatten()
            .collect();
        spis.sort_unstable();
        spis
    }

    /// Total installed SA endpoints across all shards (both directions).
    pub fn sa_endpoints(&self) -> usize {
        self.gather(|g| g.sadb().len()).into_iter().sum()
    }

    /// Submits a read job to every shard in parallel and returns the
    /// results in shard index order.
    fn gather<R: Send + 'static>(
        &self,
        f: impl Fn(&mut Gateway<S>) -> R + Clone + Send + 'static,
    ) -> Vec<R> {
        let completions: Vec<_> = self
            .workers
            .iter()
            .map(|w| {
                let f = f.clone();
                w.submit(move |g| f(g))
            })
            .collect();
        completions
            .into_iter()
            .map(|c| c.wait().unwrap_or_else(|p| p.resume()))
            .collect()
    }

    /// Waits on one fleet submission's completions in shard index
    /// order, appending each shard's events to the merged queue.
    /// Returns the first error (a shard's verb error, or a job panic
    /// mapped to [`IpsecError::WorkerPanicked`]).
    fn barrier(&mut self, completions: Vec<Completion<BatchDone>>) -> Option<IpsecError> {
        let mut first = None;
        for completion in completions {
            match completion.wait() {
                Ok((result, events)) => {
                    self.events.extend(events);
                    if let Err(e) = result {
                        first.get_or_insert(e);
                    }
                }
                Err(panic) => {
                    first.get_or_insert(panic.into_error());
                }
            }
        }
        first
    }

    /// Completes every in-flight `submit_batch`, oldest first, merging
    /// events. Returns the first error (including one stashed by an
    /// earlier infallible verb).
    fn flush_in_flight(&mut self) -> Option<IpsecError> {
        let mut first = self.stashed_error.take();
        while let Some(group) = self.in_flight.pop_front() {
            if let Some(e) = self.barrier(group) {
                first.get_or_insert(e);
            }
        }
        first
    }

    /// [`ShardedGateway::flush_in_flight`] for verbs that can return
    /// the error to the caller.
    fn flushed(&mut self) -> Result<(), IpsecError> {
        match self.flush_in_flight() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// [`ShardedGateway::flush_in_flight`] for verbs with no error
    /// channel: an error is stashed and surfaces from the next
    /// fallible verb instead of being dropped.
    fn flush_stashing(&mut self) {
        if let Some(e) = self.flush_in_flight() {
            self.stashed_error = Some(e);
        }
    }

    // ------------------------------------------------------------------
    // SA installation (routed to the owning shard)
    // ------------------------------------------------------------------

    /// [`Gateway::add_peer`] on the shard owning `spi`.
    pub fn add_peer(&mut self, spi: u32, master: &[u8]) {
        let master = master.to_vec();
        self.workers[self.shard_of(spi)].run(move |g| g.add_peer(spi, &master));
    }

    /// [`Gateway::add_peer_between`] on the shard owning `spi`.
    pub fn add_peer_between(&mut self, spi: u32, master: &[u8], local: &[u8], remote: &[u8]) {
        let (master, local, remote) = (master.to_vec(), local.to_vec(), remote.to_vec());
        self.workers[self.shard_of(spi)]
            .run(move |g| g.add_peer_between(spi, &master, &local, &remote));
    }

    /// [`Gateway::install_pair`] on the shard owning the SA's SPI.
    pub fn install_pair(&mut self, sa: SecurityAssociation) {
        self.workers[self.shard_of(sa.spi())].run(move |g| g.install_pair(sa));
    }

    /// [`Gateway::install_outbound`] on the shard owning the SA's SPI.
    pub fn install_outbound(&mut self, sa: SecurityAssociation) {
        self.workers[self.shard_of(sa.spi())].run(move |g| g.install_outbound(sa));
    }

    /// [`Gateway::install_inbound`] on the shard owning the SA's SPI.
    pub fn install_inbound(&mut self, sa: SecurityAssociation) {
        self.workers[self.shard_of(sa.spi())].run(move |g| g.install_inbound(sa));
    }

    /// [`Gateway::remove_peer`] on the shard owning `spi`.
    pub fn remove_peer(&mut self, spi: u32) -> bool {
        self.workers[self.shard_of(spi)].run(move |g| g.remove_peer(spi))
    }

    // ------------------------------------------------------------------
    // Datapath
    // ------------------------------------------------------------------

    /// Seals `payload` on the outbound SA `spi` (one job on the owning
    /// shard; see [`Gateway::protect`]).
    ///
    /// # Errors
    ///
    /// [`IpsecError::UnknownSa`], lifetime exhaustion, store failures,
    /// or [`IpsecError::WorkerPanicked`] — including an error stashed
    /// by an earlier infallible verb, surfaced here like from every
    /// other fallible verb.
    pub fn protect(&mut self, spi: u32, payload: &[u8]) -> Result<Option<SentFrame>, IpsecError> {
        self.flushed()?;
        let worker = &self.workers[self.shard_of(spi)];
        if let Some(result) = worker.run_borrowed(|g| g.protect(spi, payload)) {
            return result; // single-shard inline: no copy, no queue
        }
        let payload = payload.to_vec();
        worker
            .submit(move |g| g.protect(spi, &payload))
            .wait()
            .unwrap_or_else(|p| Err(p.into_error()))
    }

    /// Feeds one received frame to the shard owning its SPI. Frames too
    /// short to carry an SPI route to the shard owning SPI 0, which
    /// reports them as [`GatewayEvent::AuthFailed`] with `spi: 0` —
    /// exactly what a plain [`Gateway`] reports.
    ///
    /// # Errors
    ///
    /// Store failures or [`IpsecError::WorkerPanicked`]; per-packet
    /// failures are events.
    pub fn push_wire(&mut self, wire: &Bytes) -> Result<(), IpsecError> {
        self.flushed()?;
        let spi = reset_wire::peek_spi(wire).unwrap_or(0);
        let idx = self.shard_of(spi);
        if let Some((result, events)) =
            self.workers[idx].run_borrowed(|g| (g.push_wire(wire), g.poll_events()))
        {
            // Single-shard inline: no frame clone, no queue round-trip.
            self.events.extend(events);
            return result;
        }
        let wire = wire.clone();
        let done = self.workers[idx]
            .submit(move |g| (g.push_wire(&wire), g.poll_events()))
            .wait();
        match done {
            Ok((result, events)) => {
                self.events.extend(events);
                result
            }
            Err(panic) => Err(panic.into_error()),
        }
    }

    /// Feeds a burst of frames through the fleet and waits for every
    /// shard: frames fan out to their owning shards by
    /// [`reset_wire::peek_spi`] (arrival order preserved within each
    /// shard), every non-idle shard drains its queue through
    /// [`Gateway::push_wire_batch`] on its persistent worker, and the
    /// shards' event streams are merged in stable shard-then-arrival
    /// order. One event per frame; per-SPI event order is identical to
    /// pushing the same burst through one [`Gateway`]. Equivalent to
    /// [`ShardedGateway::submit_batch`] + [`ShardedGateway::drain_events`].
    ///
    /// # Errors
    ///
    /// First shard store failure or worker panic (other shards' events
    /// are still merged).
    pub fn push_wire_batch(&mut self, wires: &[Bytes]) -> Result<(), IpsecError> {
        self.flushed()?;
        if let Some((result, events)) =
            self.workers[0].run_borrowed(|g| (g.push_wire_batch(wires), g.poll_events()))
        {
            // Single-shard inline: the burst is borrowed straight into
            // the engine — no fan-out clone, byte-identical in cost to
            // a plain `Gateway` drain.
            self.events.extend(events);
            return result;
        }
        self.submit_batch(wires);
        self.flushed()
    }

    /// First half of a pipelined [`ShardedGateway::push_wire_batch`]:
    /// fans `wires` out to the owning shards' work queues and returns
    /// **without waiting**. The shards process while the caller does
    /// other work (sealing the next batch, generating traffic);
    /// [`ShardedGateway::drain_events`] is the matching barrier.
    /// Submissions queue FIFO — submitting twice before draining is
    /// fine, and the merged event order is the same as two sequential
    /// `push_wire_batch` calls.
    ///
    /// The fan-out is zero-copy: the batch is shared (`Arc<[Bytes]>`,
    /// one reference-count bump per frame total) and each shard receives
    /// only the *indices* of its frames, in arrival order — no per-shard
    /// `Bytes` clones, no per-destination queue materialization.
    pub fn submit_batch(&mut self, wires: &[Bytes]) {
        let n = self.workers.len();
        let batch: Arc<[Bytes]> = Arc::from(wires);
        let mut routes: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, wire) in batch.iter().enumerate() {
            let spi = reset_wire::peek_spi(wire).unwrap_or(0);
            routes[reset_wire::spi_shard(spi, n)].push(i as u32);
        }
        let group: Vec<Completion<BatchDone>> = self
            .workers
            .iter()
            .zip(routes)
            .filter(|(_, route)| !route.is_empty())
            .map(|(w, route)| {
                let batch = Arc::clone(&batch);
                w.submit(move |g| (g.push_wire_routed(&batch, &route), g.poll_events()))
            })
            .collect();
        self.in_flight.push_back(group);
    }

    /// Barrier for [`ShardedGateway::submit_batch`]: waits for every
    /// in-flight submission (oldest first, shards in index order),
    /// merges their events, and drains the merged queue.
    ///
    /// # Errors
    ///
    /// First shard store failure or worker panic across the flushed
    /// submissions (all completed shards' events are still returned on
    /// the next call).
    pub fn drain_events(&mut self) -> Result<Vec<GatewayEvent>, IpsecError> {
        self.flushed()?;
        Ok(self.events.drain(..).collect())
    }

    /// Drains the merged event queue (see the [crate docs](crate) for
    /// the merge order). Completes any in-flight
    /// [`ShardedGateway::submit_batch`] first; an error discovered
    /// while doing so is deferred to the next fallible verb.
    pub fn poll_events(&mut self) -> Vec<GatewayEvent> {
        self.flush_stashing();
        self.events.drain(..).collect()
    }

    /// Merged events queued but not yet polled (does not count events
    /// still inside in-flight batch submissions).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    // ------------------------------------------------------------------
    // Clock-driven policies
    // ------------------------------------------------------------------

    /// Advances every shard's clock (one job per shard, events merged
    /// in shard index order — DPD and rekey work is independent per
    /// shard, so parallel execution with an index-ordered barrier is
    /// indistinguishable from the sequential sweep).
    pub fn tick(&mut self, now_ns: u64) {
        self.flush_stashing();
        let group: Vec<Completion<BatchDone>> = self
            .workers
            .iter()
            .map(|w| {
                w.submit(move |g| {
                    g.tick(now_ns);
                    (Ok(()), g.poll_events())
                })
            })
            .collect();
        if let Some(e) = self.barrier(group) {
            // Keep the *first* stashed error (an earlier flush may
            // already hold one the caller hasn't seen yet).
            self.stashed_error.get_or_insert(e);
        }
    }

    /// [`Gateway::rekey_now`] on the shard owning `spi`.
    pub fn rekey_now(&mut self, spi: u32) {
        self.flush_stashing();
        let events = self.workers[self.shard_of(spi)].run(move |g| {
            g.rekey_now(spi);
            g.poll_events()
        });
        self.events.extend(events);
    }

    // ------------------------------------------------------------------
    // Reset and recovery (shard-parallel)
    // ------------------------------------------------------------------

    /// The host crashes: every SA in every shard loses its volatile
    /// counters, in parallel.
    pub fn reset(&mut self) {
        self.flush_stashing();
        let group: Vec<Completion<BatchDone>> = self
            .workers
            .iter()
            .map(|w| {
                w.submit(|g| {
                    g.reset();
                    (Ok(()), Vec::new())
                })
            })
            .collect();
        if let Some(e) = self.barrier(group) {
            // Keep the *first* stashed error, as in `tick`.
            self.stashed_error.get_or_insert(e);
        }
    }

    /// SAVE/FETCH recovery of the whole fleet: both halves fused into
    /// **one job per shard** (half the completion barriers of calling
    /// the halves separately — this is the reset-storm hot verb).
    /// Emits one coalesced [`GatewayEvent::Recovered`]. Returns the
    /// number of SA directions recovered.
    ///
    /// # Errors
    ///
    /// First shard store failure or worker panic. On a partial failure
    /// the *other* shards complete both halves (with the split calls a
    /// begin-error would leave them merely begun); retrying `recover`
    /// wakes the failed shard and re-runs no-op halves on the rest.
    pub fn recover(&mut self) -> Result<usize, IpsecError> {
        self.flushed()?;
        let completions: Vec<_> = self
            .workers
            .iter()
            .map(|w| {
                w.submit(|g| {
                    (
                        g.begin_recover().and_then(|()| g.finish_recover()),
                        g.poll_events(),
                    )
                })
            })
            .collect();
        self.coalesce_recovered(completions)
    }

    /// First recovery half on every shard in parallel: FETCH + leap +
    /// issue the synchronous SAVE on every down SA. Frames pushed until
    /// [`ShardedGateway::finish_recover`] are buffered per SA.
    ///
    /// # Errors
    ///
    /// First shard store failure (its shard stays down; others may
    /// already be waking — retry, exactly as with [`Gateway`]).
    pub fn begin_recover(&mut self) -> Result<(), IpsecError> {
        self.flushed()?;
        let group: Vec<Completion<BatchDone>> = self
            .workers
            .iter()
            .map(|w| w.submit(|g| (g.begin_recover(), Vec::new())))
            .collect();
        match self.barrier(group) {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Second recovery half on every shard in parallel. The shards'
    /// individual `Recovered` events are coalesced into one fleet-wide
    /// `Recovered { sas }` (summed), followed by the buffered-frame
    /// verdicts in shard-then-SPI order — the same shape a single
    /// [`Gateway`] emits. Returns the recovered direction count.
    ///
    /// # Errors
    ///
    /// First shard store failure or worker panic (successful shards'
    /// events are still merged after the coalesced `Recovered`).
    pub fn finish_recover(&mut self) -> Result<usize, IpsecError> {
        self.flushed()?;
        let completions: Vec<_> = self
            .workers
            .iter()
            .map(|w| w.submit(|g| (g.finish_recover(), g.poll_events())))
            .collect();
        self.coalesce_recovered(completions)
    }

    /// Waits (shard index order) on per-shard recovery completions,
    /// coalescing their `Recovered` events into one fleet-wide event
    /// placed before the buffered-frame verdicts.
    fn coalesce_recovered(
        &mut self,
        completions: Vec<Completion<RecoverDone>>,
    ) -> Result<usize, IpsecError> {
        let mut total = 0usize;
        let mut first_err = None;
        let mut verdicts: Vec<GatewayEvent> = Vec::new();
        for completion in completions {
            match completion.wait() {
                Ok((result, events)) => {
                    match result {
                        Ok(sas) => total += sas,
                        Err(e) => {
                            first_err.get_or_insert(e);
                        }
                    }
                    for ev in events {
                        match ev {
                            GatewayEvent::Recovered { .. } => {} // re-emitted coalesced below
                            other => verdicts.push(other),
                        }
                    }
                }
                Err(panic) => {
                    first_err.get_or_insert(panic.into_error());
                }
            }
        }
        // On a partial failure the successful shards' recovery is still
        // *reported* (their counts would otherwise be lost — a retried
        // finish_recover returns 0 for already-woken shards), keeping
        // the Recovered-before-verdicts shape; the caller retries the
        // failed shard via another finish_recover, which emits a second
        // Recovered for the remainder.
        if total > 0 || first_err.is_none() {
            self.events
                .push_back(GatewayEvent::Recovered { sas: total });
        }
        self.events.extend(verdicts);
        match first_err {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    // ------------------------------------------------------------------
    // Background-save plumbing and introspection (routed / swept)
    // ------------------------------------------------------------------

    /// True iff any SA in any shard has a background SAVE in flight.
    /// (Queries ride the same per-shard queues as mutations, so the
    /// answer reflects every previously submitted job.)
    pub fn pending_save(&self) -> bool {
        self.gather(|g| g.pending_save()).into_iter().any(|p| p)
    }

    /// Completes every in-flight background SAVE across all shards, in
    /// parallel.
    ///
    /// # Errors
    ///
    /// First store failure in shard index order (pending saves are
    /// retained for retry).
    pub fn save_completed(&mut self) -> Result<(), StableError> {
        self.flush_stashing();
        self.gather(|g| g.save_completed())
            .into_iter()
            .find(|r| r.is_err())
            .unwrap_or(Ok(()))
    }

    /// The next sequence number the outbound SA `spi` would send.
    pub fn next_seq(&self, spi: u32) -> Option<SeqNum> {
        self.workers[self.shard_of(spi)].run(move |g| g.next_seq(spi))
    }

    /// The inbound SA's anti-replay right edge.
    pub fn right_edge(&self, spi: u32) -> Option<SeqNum> {
        self.workers[self.shard_of(spi)].run(move |g| g.right_edge(spi))
    }

    /// The SA's liveness phase (see [`Gateway::phase`]).
    pub fn phase(&self, spi: u32) -> Option<Phase> {
        self.workers[self.shard_of(spi)].run(move |g| g.phase(spi))
    }

    /// Whether `spi`'s DPD detector is inside the §6 grace window.
    pub fn in_grace(&self, spi: u32) -> Option<bool> {
        self.workers[self.shard_of(spi)].run(move |g| g.in_grace(spi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::CryptoSuite;

    fn fleet(shards: usize, sas: u32) -> (ShardedGateway<MemStable>, ShardedGateway<MemStable>) {
        let mut p = GatewayBuilder::in_memory_sharded(shards)
            .save_interval(10)
            .build_sharded();
        let mut q = GatewayBuilder::in_memory_sharded(shards)
            .save_interval(10)
            .build_sharded();
        for spi in 1..=sas {
            p.add_peer(spi, b"shard-test-master");
            q.add_peer(spi, b"shard-test-master");
        }
        (p, q)
    }

    #[test]
    fn installs_route_by_spi_hash_and_cover_all_shards() {
        let (p, _) = fleet(4, 64);
        assert_eq!(p.shard_count(), 4);
        assert_eq!(p.spis().len(), 64);
        assert_eq!(p.sa_endpoints(), 128);
        for idx in 0..4 {
            assert!(
                !p.with_shard(idx, |g| g.sadb().is_empty()),
                "shard {idx} owns no SA out of 64"
            );
        }
        for spi in 1..=64 {
            assert!(p.with_shard(p.shard_of(spi), move |g| g.sadb().outbound(spi).is_some()));
        }
    }

    #[test]
    fn fleet_traffic_flows_on_every_sa() {
        let (mut p, mut q) = fleet(3, 32);
        let frames: Vec<Bytes> = (1..=32)
            .map(|spi| p.protect(spi, b"data").unwrap().unwrap().wire)
            .collect();
        q.push_wire_batch(&frames).unwrap();
        let events = q.poll_events();
        assert_eq!(events.len(), 32);
        assert!(events
            .iter()
            .all(|e| matches!(e, GatewayEvent::Delivered { .. })));
        // Merged in shard-then-arrival order: each SPI appears once, and
        // SPIs of the same shard keep their arrival order.
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); 3];
        for e in &events {
            if let GatewayEvent::Delivered { spi, .. } = e {
                per_shard[q.shard_of(*spi)].push(*spi);
            }
        }
        let mut arrival: Vec<Vec<u32>> = vec![Vec::new(); 3];
        for spi in 1..=32 {
            arrival[q.shard_of(spi)].push(spi);
        }
        assert_eq!(per_shard, arrival);
    }

    #[test]
    fn single_shard_stream_is_bit_identical_to_gateway() {
        let mut reference = GatewayBuilder::in_memory().save_interval(10).build();
        let (mut p, mut q) = fleet(1, 8);
        for spi in 1..=8 {
            reference.add_peer(spi, b"shard-test-master");
        }
        let mut wires: Vec<Bytes> = Vec::new();
        for round in 0..5u32 {
            for spi in 1..=8 {
                wires.push(
                    p.protect(spi, format!("r{round}").as_bytes())
                        .unwrap()
                        .unwrap()
                        .wire,
                );
            }
        }
        wires.push(wires[3].clone()); // replay
        wires.push(Bytes::copy_from_slice(&[9, 9])); // runt
        reference.push_wire_batch(&wires).unwrap();
        q.push_wire_batch(&wires).unwrap();
        assert_eq!(reference.poll_events(), q.poll_events());
    }

    #[test]
    fn submit_drain_split_matches_push_wire_batch() {
        let (mut p, mut q_sync) = fleet(4, 16);
        let (_, mut q_pipelined) = fleet(4, 16);
        let chunks: Vec<Vec<Bytes>> = (0..4)
            .map(|round| {
                (1..=16)
                    .map(|spi| {
                        p.protect(spi, format!("c{round}").as_bytes())
                            .unwrap()
                            .unwrap()
                            .wire
                    })
                    .collect()
            })
            .collect();
        let mut sync_events = Vec::new();
        for chunk in &chunks {
            q_sync.push_wire_batch(chunk).unwrap();
            sync_events.extend(q_sync.poll_events());
        }
        // Pipelined: all four chunks in flight before the one barrier.
        for chunk in &chunks {
            q_pipelined.submit_batch(chunk);
        }
        let pipelined_events = q_pipelined.drain_events().unwrap();
        assert_eq!(sync_events, pipelined_events);
    }

    #[test]
    fn reset_storm_recovers_shard_parallel_with_coalesced_event() {
        for shards in [1usize, 4] {
            let (mut p, mut q) = fleet(shards, 24);
            let mut recorded: Vec<Bytes> = Vec::new();
            for _ in 0..12 {
                for spi in 1..=24 {
                    let f = p.protect(spi, b"pre").unwrap().unwrap();
                    recorded.push(f.wire);
                }
            }
            q.push_wire_batch(&recorded).unwrap();
            q.save_completed().unwrap();
            q.poll_events();
            q.reset();
            assert_eq!(q.phase(1), Some(Phase::Down));
            let sas = q.recover().unwrap();
            assert_eq!(sas, 48, "24 SAs x 2 directions, shards={shards}");
            let events = q.poll_events();
            assert_eq!(
                events[0],
                GatewayEvent::Recovered { sas: 48 },
                "one coalesced Recovered, shards={shards}"
            );
            // The §3 replay of the entire fleet history: nothing lands.
            q.push_wire_batch(&recorded).unwrap();
            assert!(
                q.poll_events()
                    .iter()
                    .all(|e| matches!(e, GatewayEvent::ReplayDropped { .. })),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn buffered_frames_resolve_after_parallel_finish() {
        let (mut p, mut q) = fleet(4, 16);
        for spi in 1..=16 {
            for _ in 0..12 {
                let f = p.protect(spi, b"pre").unwrap().unwrap();
                q.push_wire(&f.wire).unwrap();
            }
        }
        q.save_completed().unwrap();
        q.poll_events();
        q.reset();
        q.begin_recover().unwrap();
        // Push the senders past the leap, then one fresh frame per SA
        // arrives mid-wake-up.
        let fresh: Vec<Bytes> = (1..=16)
            .map(|spi| {
                for _ in 0..25 {
                    p.protect(spi, b"skip").unwrap();
                }
                p.protect(spi, b"fresh").unwrap().unwrap().wire
            })
            .collect();
        q.push_wire_batch(&fresh).unwrap();
        let buffered = q.poll_events();
        assert_eq!(buffered.len(), 16);
        assert!(buffered
            .iter()
            .all(|e| matches!(e, GatewayEvent::Buffered { .. })));
        q.finish_recover().unwrap();
        let events = q.poll_events();
        assert!(matches!(events[0], GatewayEvent::Recovered { sas: 32 }));
        assert_eq!(events.len(), 17, "Recovered + one verdict per buffered");
        assert!(events[1..]
            .iter()
            .all(|e| matches!(e, GatewayEvent::Delivered { .. })));
    }

    #[test]
    fn rekey_routes_to_owner_and_stays_in_lockstep() {
        let (mut p, mut q) = fleet(4, 8);
        let old = p.protect(5, b"old").unwrap().unwrap();
        q.push_wire(&old.wire).unwrap();
        q.poll_events();
        p.rekey_now(5);
        q.rekey_now(5);
        assert!(p
            .poll_events()
            .contains(&GatewayEvent::RekeyStarted { spi: 5 }));
        q.poll_events();
        q.push_wire(&old.wire).unwrap();
        assert_eq!(
            q.poll_events(),
            vec![GatewayEvent::AuthFailed { spi: 5 }],
            "old generation died with the rekey"
        );
        let fresh = p.protect(5, b"new").unwrap().unwrap();
        assert_eq!(fresh.seq.value(), 1);
        q.push_wire(&fresh.wire).unwrap();
        assert!(matches!(
            q.poll_events()[..],
            [GatewayEvent::Delivered { .. }]
        ));
    }

    #[test]
    fn default_shard_count_is_available_parallelism() {
        let gw: ShardedGateway<MemStable> = GatewayBuilder::in_memory().build_sharded();
        let expect = thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert_eq!(gw.shard_count(), expect);
    }

    #[test]
    fn unknown_and_runt_frames_become_events_on_any_shard_count() {
        for shards in [1usize, 2, 8] {
            let (mut p, mut q) = fleet(shards, 4);
            let good = p.protect(2, b"ok").unwrap().unwrap().wire;
            let mut foreign = good.to_vec();
            foreign[0..4].copy_from_slice(&0xDEAD_BEEFu32.to_be_bytes());
            let wires = vec![
                good.clone(),
                Bytes::from(foreign),
                Bytes::new(),
                Bytes::copy_from_slice(&[1, 2, 3]),
            ];
            q.push_wire_batch(&wires).unwrap();
            let mut events = q.poll_events();
            assert_eq!(events.len(), 4, "shards={shards}");
            // Global order varies with the shard count; verdict
            // multiset must not.
            events.sort_by_key(|e| match e {
                GatewayEvent::Delivered { .. } => 0,
                GatewayEvent::UnknownSa { .. } => 1,
                GatewayEvent::AuthFailed { .. } => 2,
                _ => 3,
            });
            assert!(matches!(events[0], GatewayEvent::Delivered { spi: 2, .. }));
            assert!(matches!(
                events[1],
                GatewayEvent::UnknownSa { spi: 0xDEAD_BEEF }
            ));
            assert!(matches!(events[2], GatewayEvent::AuthFailed { spi: 0 }));
            assert!(matches!(events[3], GatewayEvent::AuthFailed { spi: 0 }));
        }
    }

    #[test]
    fn suites_sweep_through_the_sharded_path() {
        for &suite in CryptoSuite::ALL {
            let mut p = GatewayBuilder::in_memory_sharded(2)
                .suite(suite)
                .build_sharded();
            let mut q = GatewayBuilder::in_memory_sharded(2)
                .suite(suite)
                .build_sharded();
            for spi in 1..=6 {
                p.add_peer(spi, b"suite-master");
                q.add_peer(spi, b"suite-master");
            }
            let frames: Vec<Bytes> = (1..=6)
                .map(|spi| p.protect(spi, b"x").unwrap().unwrap().wire)
                .collect();
            q.push_wire_batch(&frames).unwrap();
            assert_eq!(q.poll_events().len(), 6, "{suite:?}");
        }
    }

    #[test]
    fn drop_with_batches_in_flight_shuts_down_cleanly() {
        let (mut p, mut q) = fleet(4, 32);
        let frames: Vec<Bytes> = (0..8)
            .flat_map(|_| {
                (1..=32)
                    .map(|spi| p.protect(spi, b"queued").unwrap().unwrap().wire)
                    .collect::<Vec<_>>()
            })
            .collect();
        for chunk in frames.chunks(64) {
            q.submit_batch(chunk);
        }
        // Dropped with four workers' queues full: the pool must drain
        // and join without hanging or panicking.
        drop(q);
    }

    #[test]
    fn index_fanout_is_byte_identical_and_attributes_shard_frames() {
        use reset_telemetry::Telemetry;
        let shards = 4;
        let t = Telemetry::with_shards(shards);
        let mut tx = GatewayBuilder::in_memory().save_interval(10).build();
        let mut reference = GatewayBuilder::in_memory().save_interval(10).build();
        let mut rx = GatewayBuilder::in_memory_sharded(shards)
            .save_interval(10)
            .telemetry(t.clone())
            .build_sharded();
        let spis: Vec<u32> = (1..=24).collect();
        for &spi in &spis {
            tx.add_peer(spi, b"fanout-master");
            reference.add_peer(spi, b"fanout-master");
            rx.add_peer(spi, b"fanout-master");
        }
        let mut wires: Vec<Bytes> = Vec::new();
        for round in 0..6u32 {
            for &spi in &spis {
                wires.push(
                    tx.protect(spi, format!("r{round} s{spi}").as_bytes())
                        .unwrap()
                        .unwrap()
                        .wire,
                );
            }
        }
        wires.push(wires[10].clone()); // replay
        let mut forged = wires[11].to_vec();
        *forged.last_mut().unwrap() ^= 0x01;
        wires.push(Bytes::from(forged)); // bad ICV
        wires.push(Bytes::copy_from_slice(&[7])); // runt → spi 0
        reference.push_wire_batch(&wires).unwrap();
        rx.submit_batch(&wires); // the shared-batch + index-route path
        let sharded = rx.drain_events().unwrap();
        let plain = reference.poll_events();
        assert_eq!(sharded.len(), plain.len());
        // Byte-identical per-SPI event subsequences (payload bytes
        // included — `GatewayEvent`'s `Eq` compares them).
        let spi_of = |e: &GatewayEvent| match e {
            GatewayEvent::Delivered { spi, .. }
            | GatewayEvent::ReplayDropped { spi, .. }
            | GatewayEvent::AuthFailed { spi }
            | GatewayEvent::UnknownSa { spi }
            | GatewayEvent::Buffered { spi }
            | GatewayEvent::DroppedDown { spi } => *spi,
            _ => u32::MAX,
        };
        for &spi in spis.iter().chain([0u32].iter()) {
            let a: Vec<_> = plain.iter().filter(|e| spi_of(e) == spi).collect();
            let b: Vec<_> = sharded.iter().filter(|e| spi_of(e) == spi).collect();
            assert_eq!(a, b, "per-SPI stream diverged for spi {spi}");
        }
        // Telemetry attributed every routed frame to its owning shard —
        // the occupancy signal deferred rebalancing (ROADMAP 2(iv))
        // will consume.
        let mut expected = vec![0u64; shards];
        for wire in &wires {
            let spi = reset_wire::peek_spi(wire).unwrap_or(0);
            expected[reset_wire::spi_shard(spi, shards)] += 1;
        }
        assert_eq!(t.snapshot().shard_frames(), expected);
    }

    #[test]
    fn telemetry_attributes_events_to_their_shards() {
        use reset_telemetry::{EventKind, Telemetry};
        let shards = 4;
        let t = Telemetry::with_shards(shards);
        let mut tx = GatewayBuilder::in_memory().build();
        let mut rx = GatewayBuilder::in_memory()
            .shards(shards)
            .telemetry(t.clone())
            .build_sharded();
        let spis: Vec<u32> = (1..=32).collect();
        for &spi in &spis {
            tx.add_peer(spi, b"shard-telemetry");
            rx.add_peer(spi, b"shard-telemetry");
        }
        let frames: Vec<_> = spis
            .iter()
            .map(|&spi| tx.protect(spi, b"x").unwrap().unwrap().wire)
            .collect();
        rx.push_wire_batch(&frames).unwrap();
        let events = rx.poll_events();
        assert_eq!(events.len(), 32);

        let snap = t.snapshot();
        assert_eq!(t.event_count(EventKind::Delivered), 32);
        // Each frame was counted on the shard its SPI hashes to.
        let mut expected = vec![0u64; shards];
        for &spi in &spis {
            expected[reset_wire::spi_shard(spi, shards)] += 1;
        }
        assert_eq!(snap.shard_frames(), expected);
        for (idx, shard) in snap.shards.iter().enumerate() {
            let delivered = shard
                .events
                .iter()
                .find(|(name, _)| *name == "delivered")
                .unwrap()
                .1;
            assert_eq!(delivered, expected[idx], "shard {idx}");
        }
    }
}

//! The sharded gateway: one engine, N worker shards, zero shared locks.
//!
//! The paper's SAVE/FETCH guarantees are *per SA* — nothing in the §4
//! protocol couples one SA's counters to another's — so a gateway
//! serving a large SA fleet is embarrassingly parallel. A
//! [`ShardedGateway`] exploits exactly that: the SADB is partitioned by
//! SPI hash ([`reset_wire::spi_shard`]) across N inner [`Gateway`]
//! shards, each shard owning its SAs outright — counters, replay
//! windows, persistent-store slots, DPD detectors and rekey generations
//! all live inside one shard and are never touched by another. There is
//! no cross-shard lock on any datapath; the only shared state is the
//! builder's store factory, consulted (briefly, behind a mutex) when an
//! SA is installed or rekeyed, never per packet.
//!
//! # Threading model
//!
//! Shards are plain owned values; parallelism is *scoped*: the batched
//! verbs ([`ShardedGateway::push_wire_batch`],
//! [`ShardedGateway::reset`], [`ShardedGateway::begin_recover`] /
//! [`ShardedGateway::finish_recover`]) fan work out to one scoped
//! thread per non-idle shard and join before returning. Between calls
//! no thread exists and no shard is borrowed, so the type needs no
//! interior mutability and no `unsafe`. Single-frame verbs
//! ([`ShardedGateway::protect`], [`ShardedGateway::push_wire`]) route
//! directly to the owning shard on the caller's thread.
//!
//! # Determinism: why single-shard ≡ [`Gateway`]
//!
//! Every mutating verb ends by draining the shards' event queues into
//! one merged queue in **stable shard-then-arrival order**: shard 0's
//! events first (in the order that shard produced them), then shard
//! 1's, and so on. Thread scheduling can reorder *execution*, but never
//! the merge — the merged stream is a pure function of the inputs, so
//! seeded experiments stay bit-for-bit reproducible at any shard count.
//! Two consequences, both locked by `tests/it_sharded.rs`:
//!
//! * with one shard the merge is the identity, so a
//!   `ShardedGateway` built with `.shards(1)` emits **exactly** the
//!   event stream a plain [`Gateway`] would — same events, same order;
//! * with N shards the *global* interleaving across SPIs changes (one
//!   batch's events appear grouped by shard), but the **per-SPI
//!   subsequence is identical** to the single-gateway stream: an SPI
//!   lives in exactly one shard and each shard preserves arrival order,
//!   so per-SA verdict sequences — the unit the paper's guarantees are
//!   stated in — cannot differ. Global verdict *counts* are therefore
//!   also identical.
//!
//! The one deliberate event rewrite: [`ShardedGateway::finish_recover`]
//! coalesces the shards' per-shard [`GatewayEvent::Recovered`] events
//! into a single fleet-wide `Recovered { sas }` (summed), placed before
//! the buffered-frame verdicts, matching the single-gateway shape.
//!
//! # Reset storms
//!
//! [`ShardedGateway::reset`] and the recovery halves run shard-parallel
//! so a reset storm's FETCH + `2K` leap + synchronous SAVE cost is
//! amortized across cores — the multi-core analogue of the paper's §3
//! argument that SAVE/FETCH beats per-SA renegotiation on a gateway
//! with "multiple SAs existing at the same time".

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::thread;

use bytes::Bytes;
use reset_stable::{MemStable, StableError, StableStore};

use anti_replay::{Phase, SeqNum};

use crate::gateway::{Gateway, GatewayBuilder, GatewayEvent, SaDirection, SentFrame};
use crate::sa::SecurityAssociation;
use crate::sadb::Sadb;
use crate::IpsecError;

/// The builder's store factory, shared across shards behind a mutex
/// (consulted at install/rekey time only — never on a datapath).
type SharedStoreFactory<S> = Arc<Mutex<Box<dyn FnMut(u32, SaDirection) -> S + Send>>>;

impl GatewayBuilder<MemStable> {
    /// [`GatewayBuilder::in_memory`] pre-set to `shards` worker shards —
    /// shorthand for the common test/bench fleet setup.
    pub fn in_memory_sharded(shards: usize) -> Self {
        GatewayBuilder::in_memory().shards(shards)
    }
}

impl<S: StableStore + Send + 'static> GatewayBuilder<S> {
    /// Builds a [`ShardedGateway`] with the builder's shard count (or
    /// the host's available parallelism when unset). All engine-wide
    /// policy — suite, window, save interval, rekey/DPD, skeyid — is
    /// replicated into every shard; the store factory is shared (SAs
    /// are installed from the caller's thread, so the factory mutex is
    /// uncontended).
    pub fn build_sharded(self) -> ShardedGateway<S> {
        let n = self
            .shards
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
            .max(1);
        let factory: SharedStoreFactory<S> = Arc::new(Mutex::new(self.make_store));
        let shards = (0..n)
            .map(|_| {
                let f = Arc::clone(&factory);
                GatewayBuilder {
                    suite: self.suite,
                    k: self.k,
                    w: self.w,
                    rekey_after: self.rekey_after,
                    dpd: self.dpd,
                    skeyid: self.skeyid.clone(),
                    shards: None,
                    make_store: Box::new(move |spi, dir| {
                        (f.lock().expect("store factory poisoned"))(spi, dir)
                    }),
                }
                .build()
            })
            .collect();
        ShardedGateway {
            shards,
            events: VecDeque::new(),
        }
    }
}

/// N-shard wrapper over [`Gateway`]: same verbs, same events, SA fleet
/// partitioned by SPI hash, batch datapath and reset recovery running
/// shard-parallel. See the [module docs](self) for the threading and
/// determinism model.
///
/// # Examples
///
/// ```
/// use reset_ipsec::{GatewayBuilder, GatewayEvent};
///
/// let mut p = GatewayBuilder::in_memory_sharded(4).build_sharded();
/// let mut q = GatewayBuilder::in_memory_sharded(4).build_sharded();
/// for spi in 1..=64 {
///     p.add_peer(spi, b"fleet-master");
///     q.add_peer(spi, b"fleet-master");
/// }
/// let frames: Vec<_> = (1..=64)
///     .map(|spi| p.protect(spi, b"hello").unwrap().expect("up").wire)
///     .collect();
/// q.push_wire_batch(&frames)?; // shards drain their queues in parallel
/// let events = q.poll_events();
/// assert_eq!(events.len(), 64);
/// assert!(events.iter().all(|e| matches!(e, GatewayEvent::Delivered { .. })));
/// # Ok::<(), reset_ipsec::IpsecError>(())
/// ```
pub struct ShardedGateway<S> {
    shards: Vec<Gateway<S>>,
    /// The merged event queue, filled in stable shard-then-arrival
    /// order after every mutating verb.
    events: VecDeque<GatewayEvent>,
}

impl<S> std::fmt::Debug for ShardedGateway<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedGateway")
            .field("shards", &self.shards.len())
            .field("pending_events", &self.events.len())
            .finish_non_exhaustive()
    }
}

impl<S: StableStore + Send> ShardedGateway<S> {
    // ------------------------------------------------------------------
    // Routing
    // ------------------------------------------------------------------

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns `spi` — [`reset_wire::spi_shard`], the one
    /// routing definition install and dispatch share.
    pub fn shard_of(&self, spi: u32) -> usize {
        reset_wire::spi_shard(spi, self.shards.len())
    }

    /// Read access to one shard's inner engine (diagnostics, tests).
    pub fn shard(&self, idx: usize) -> &Gateway<S> {
        &self.shards[idx]
    }

    /// Every installed SPI across all shards, ascending.
    pub fn spis(&self) -> Vec<u32> {
        let mut spis: Vec<u32> = self.shards.iter().flat_map(|g| g.sadb().spis()).collect();
        spis.sort_unstable();
        spis
    }

    /// Total installed SA endpoints across all shards (both directions).
    pub fn sa_endpoints(&self) -> usize {
        self.shards.iter().map(|g| g.sadb().len()).sum()
    }

    /// Read access to the SADB shard that owns `spi` (fault injection,
    /// occupancy inspection).
    pub fn sadb_of(&self, spi: u32) -> &Sadb<S> {
        self.shards[self.shard_of(spi)].sadb()
    }

    fn owner_mut(&mut self, spi: u32) -> &mut Gateway<S> {
        let idx = self.shard_of(spi);
        &mut self.shards[idx]
    }

    /// Appends every shard's pending events to the merged queue, shard
    /// index order first, each shard's events in its arrival order.
    fn drain_shards(&mut self) {
        for g in &mut self.shards {
            self.events.extend(g.poll_events());
        }
    }

    /// Runs `f` over every shard, one scoped thread per shard (inline
    /// when only one shard exists — no thread is spawned, keeping the
    /// single-shard path identical in side effects *and* cost profile).
    /// Results come back in shard index order regardless of scheduling.
    fn on_all_shards<R: Send>(&mut self, f: impl Fn(&mut Gateway<S>) -> R + Sync) -> Vec<R> {
        if self.shards.len() == 1 {
            return vec![f(&mut self.shards[0])];
        }
        let f = &f;
        // Shards 1..n get their own scoped threads; shard 0 runs on the
        // caller's thread while they work — one fewer spawn per call.
        let (first, rest) = self.shards.split_at_mut(1);
        thread::scope(|scope| {
            let handles: Vec<_> = rest.iter_mut().map(|g| scope.spawn(move || f(g))).collect();
            let mut results = vec![f(&mut first[0])];
            results.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked")),
            );
            results
        })
    }

    // ------------------------------------------------------------------
    // SA installation (routed to the owning shard)
    // ------------------------------------------------------------------

    /// [`Gateway::add_peer`] on the shard owning `spi`.
    pub fn add_peer(&mut self, spi: u32, master: &[u8]) {
        self.owner_mut(spi).add_peer(spi, master);
    }

    /// [`Gateway::add_peer_between`] on the shard owning `spi`.
    pub fn add_peer_between(&mut self, spi: u32, master: &[u8], local: &[u8], remote: &[u8]) {
        self.owner_mut(spi)
            .add_peer_between(spi, master, local, remote);
    }

    /// [`Gateway::install_pair`] on the shard owning the SA's SPI.
    pub fn install_pair(&mut self, sa: SecurityAssociation) {
        self.owner_mut(sa.spi()).install_pair(sa);
    }

    /// [`Gateway::install_outbound`] on the shard owning the SA's SPI.
    pub fn install_outbound(&mut self, sa: SecurityAssociation) {
        self.owner_mut(sa.spi()).install_outbound(sa);
    }

    /// [`Gateway::install_inbound`] on the shard owning the SA's SPI.
    pub fn install_inbound(&mut self, sa: SecurityAssociation) {
        self.owner_mut(sa.spi()).install_inbound(sa);
    }

    /// [`Gateway::remove_peer`] on the shard owning `spi`.
    pub fn remove_peer(&mut self, spi: u32) -> bool {
        self.owner_mut(spi).remove_peer(spi)
    }

    // ------------------------------------------------------------------
    // Datapath
    // ------------------------------------------------------------------

    /// Seals `payload` on the outbound SA `spi` (routed; see
    /// [`Gateway::protect`]).
    ///
    /// # Errors
    ///
    /// [`IpsecError::UnknownSa`], lifetime exhaustion, or store
    /// failures.
    pub fn protect(&mut self, spi: u32, payload: &[u8]) -> Result<Option<SentFrame>, IpsecError> {
        self.owner_mut(spi).protect(spi, payload)
    }

    /// Feeds one received frame to the shard owning its SPI. Frames too
    /// short to carry an SPI route to the shard owning SPI 0, which
    /// reports them as [`GatewayEvent::AuthFailed`] with `spi: 0` —
    /// exactly what a plain [`Gateway`] reports.
    ///
    /// # Errors
    ///
    /// Store failures only; per-packet failures are events.
    pub fn push_wire(&mut self, wire: &Bytes) -> Result<(), IpsecError> {
        let spi = reset_wire::peek_spi(wire).unwrap_or(0);
        let r = self.owner_mut(spi).push_wire(wire);
        self.drain_shards();
        r
    }

    /// Feeds a burst of frames through the fleet: frames fan out to
    /// their owning shards by [`reset_wire::peek_spi`] (arrival order
    /// preserved within each shard), every non-idle shard drains its
    /// queue through [`Gateway::push_wire_batch`] on its own thread, and
    /// the shards' event streams are merged in stable shard-then-arrival
    /// order. One event per frame; per-SPI event order is identical to
    /// pushing the same burst through one [`Gateway`].
    ///
    /// # Errors
    ///
    /// First shard store failure (other shards' events are still
    /// merged).
    pub fn push_wire_batch(&mut self, wires: &[Bytes]) -> Result<(), IpsecError> {
        let n = self.shards.len();
        let r = if n == 1 {
            // No fan-out copy, no thread: byte-identical to Gateway.
            self.shards[0].push_wire_batch(wires)
        } else {
            let mut queues: Vec<Vec<Bytes>> = vec![Vec::new(); n];
            for wire in wires {
                let spi = reset_wire::peek_spi(wire).unwrap_or(0);
                queues[reset_wire::spi_shard(spi, n)].push(wire.clone());
            }
            let results = thread::scope(|scope| {
                // The first non-idle shard drains on the caller's
                // thread; the rest get scoped threads.
                let mut work = self
                    .shards
                    .iter_mut()
                    .zip(&queues)
                    .filter(|(_, q)| !q.is_empty());
                let local = work.next();
                let handles: Vec<_> = work
                    .map(|(g, q)| scope.spawn(move || g.push_wire_batch(q)))
                    .collect();
                let mut results = Vec::with_capacity(handles.len() + 1);
                if let Some((g, q)) = local {
                    results.push(g.push_wire_batch(q));
                }
                results.extend(
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard worker panicked")),
                );
                results
            });
            results.into_iter().find(|r| r.is_err()).unwrap_or(Ok(()))
        };
        self.drain_shards();
        r
    }

    /// Drains the merged event queue (see the [module docs](self) for
    /// the merge order).
    pub fn poll_events(&mut self) -> Vec<GatewayEvent> {
        self.events.drain(..).collect()
    }

    /// Merged events queued but not yet polled.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    // ------------------------------------------------------------------
    // Clock-driven policies
    // ------------------------------------------------------------------

    /// Advances every shard's clock in shard index order (DPD and rekey
    /// work is negligible next to the datapath, so ticks stay
    /// sequential and trivially deterministic).
    pub fn tick(&mut self, now_ns: u64) {
        for g in &mut self.shards {
            g.tick(now_ns);
        }
        self.drain_shards();
    }

    /// [`Gateway::rekey_now`] on the shard owning `spi`.
    pub fn rekey_now(&mut self, spi: u32) {
        self.owner_mut(spi).rekey_now(spi);
        self.drain_shards();
    }

    // ------------------------------------------------------------------
    // Reset and recovery (shard-parallel)
    // ------------------------------------------------------------------

    /// The host crashes: every SA in every shard loses its volatile
    /// counters, in parallel.
    pub fn reset(&mut self) {
        self.on_all_shards(|g| g.reset());
    }

    /// SAVE/FETCH recovery of the whole fleet: both halves, shard-
    /// parallel. Emits one coalesced [`GatewayEvent::Recovered`].
    /// Returns the number of SA directions recovered.
    ///
    /// # Errors
    ///
    /// First shard store failure.
    pub fn recover(&mut self) -> Result<usize, IpsecError> {
        self.begin_recover()?;
        self.finish_recover()
    }

    /// First recovery half on every shard in parallel: FETCH + leap +
    /// issue the synchronous SAVE on every down SA. Frames pushed until
    /// [`ShardedGateway::finish_recover`] are buffered per SA.
    ///
    /// # Errors
    ///
    /// First shard store failure (its shard stays down; others may
    /// already be waking — retry, exactly as with [`Gateway`]).
    pub fn begin_recover(&mut self) -> Result<(), IpsecError> {
        self.on_all_shards(|g| g.begin_recover())
            .into_iter()
            .find(|r| r.is_err())
            .unwrap_or(Ok(()))
    }

    /// Second recovery half on every shard in parallel. The shards'
    /// individual `Recovered` events are coalesced into one fleet-wide
    /// `Recovered { sas }` (summed), followed by the buffered-frame
    /// verdicts in shard-then-SPI order — the same shape a single
    /// [`Gateway`] emits. Returns the recovered direction count.
    ///
    /// # Errors
    ///
    /// First shard store failure (successful shards' events are still
    /// merged after the coalesced `Recovered`).
    pub fn finish_recover(&mut self) -> Result<usize, IpsecError> {
        let results = self.on_all_shards(|g| g.finish_recover());
        let mut total = 0usize;
        let mut first_err = None;
        let mut verdicts: Vec<GatewayEvent> = Vec::new();
        for (g, r) in self.shards.iter_mut().zip(results) {
            match r {
                Ok(sas) => total += sas,
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
            for ev in g.poll_events() {
                match ev {
                    GatewayEvent::Recovered { .. } => {} // re-emitted coalesced below
                    other => verdicts.push(other),
                }
            }
        }
        // On a partial failure the successful shards' recovery is still
        // *reported* (their counts would otherwise be lost — a retried
        // finish_recover returns 0 for already-woken shards), keeping
        // the Recovered-before-verdicts shape; the caller retries the
        // failed shard via another finish_recover, which emits a second
        // Recovered for the remainder.
        if total > 0 || first_err.is_none() {
            self.events
                .push_back(GatewayEvent::Recovered { sas: total });
        }
        self.events.extend(verdicts);
        match first_err {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    // ------------------------------------------------------------------
    // Background-save plumbing and introspection (routed / swept)
    // ------------------------------------------------------------------

    /// True iff any SA in any shard has a background SAVE in flight.
    pub fn pending_save(&self) -> bool {
        self.shards.iter().any(|g| g.pending_save())
    }

    /// Completes every in-flight background SAVE across all shards.
    ///
    /// # Errors
    ///
    /// First store failure (pending saves are retained for retry).
    pub fn save_completed(&mut self) -> Result<(), StableError> {
        for g in &mut self.shards {
            g.save_completed()?;
        }
        Ok(())
    }

    /// The next sequence number the outbound SA `spi` would send.
    pub fn next_seq(&self, spi: u32) -> Option<SeqNum> {
        self.shards[self.shard_of(spi)].next_seq(spi)
    }

    /// The inbound SA's anti-replay right edge.
    pub fn right_edge(&self, spi: u32) -> Option<SeqNum> {
        self.shards[self.shard_of(spi)].right_edge(spi)
    }

    /// The SA's liveness phase (see [`Gateway::phase`]).
    pub fn phase(&self, spi: u32) -> Option<Phase> {
        self.shards[self.shard_of(spi)].phase(spi)
    }

    /// Whether `spi`'s DPD detector is inside the §6 grace window.
    pub fn in_grace(&self, spi: u32) -> Option<bool> {
        self.shards[self.shard_of(spi)].in_grace(spi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::CryptoSuite;

    fn fleet(shards: usize, sas: u32) -> (ShardedGateway<MemStable>, ShardedGateway<MemStable>) {
        let mut p = GatewayBuilder::in_memory_sharded(shards)
            .save_interval(10)
            .build_sharded();
        let mut q = GatewayBuilder::in_memory_sharded(shards)
            .save_interval(10)
            .build_sharded();
        for spi in 1..=sas {
            p.add_peer(spi, b"shard-test-master");
            q.add_peer(spi, b"shard-test-master");
        }
        (p, q)
    }

    #[test]
    fn installs_route_by_spi_hash_and_cover_all_shards() {
        let (p, _) = fleet(4, 64);
        assert_eq!(p.shard_count(), 4);
        assert_eq!(p.spis().len(), 64);
        assert_eq!(p.sa_endpoints(), 128);
        for idx in 0..4 {
            assert!(
                !p.shard(idx).sadb().is_empty(),
                "shard {idx} owns no SA out of 64"
            );
        }
        for spi in 1..=64 {
            assert!(p.sadb_of(spi).outbound(spi).is_some());
        }
    }

    #[test]
    fn fleet_traffic_flows_on_every_sa() {
        let (mut p, mut q) = fleet(3, 32);
        let frames: Vec<Bytes> = (1..=32)
            .map(|spi| p.protect(spi, b"data").unwrap().unwrap().wire)
            .collect();
        q.push_wire_batch(&frames).unwrap();
        let events = q.poll_events();
        assert_eq!(events.len(), 32);
        assert!(events
            .iter()
            .all(|e| matches!(e, GatewayEvent::Delivered { .. })));
        // Merged in shard-then-arrival order: each SPI appears once, and
        // SPIs of the same shard keep their arrival order.
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); 3];
        for e in &events {
            if let GatewayEvent::Delivered { spi, .. } = e {
                per_shard[q.shard_of(*spi)].push(*spi);
            }
        }
        let mut arrival: Vec<Vec<u32>> = vec![Vec::new(); 3];
        for spi in 1..=32 {
            arrival[q.shard_of(spi)].push(spi);
        }
        assert_eq!(per_shard, arrival);
    }

    #[test]
    fn single_shard_stream_is_bit_identical_to_gateway() {
        let mut reference = GatewayBuilder::in_memory().save_interval(10).build();
        let (mut p, mut q) = fleet(1, 8);
        for spi in 1..=8 {
            reference.add_peer(spi, b"shard-test-master");
        }
        let mut wires: Vec<Bytes> = Vec::new();
        for round in 0..5u32 {
            for spi in 1..=8 {
                wires.push(
                    p.protect(spi, format!("r{round}").as_bytes())
                        .unwrap()
                        .unwrap()
                        .wire,
                );
            }
        }
        wires.push(wires[3].clone()); // replay
        wires.push(Bytes::copy_from_slice(&[9, 9])); // runt
        reference.push_wire_batch(&wires).unwrap();
        q.push_wire_batch(&wires).unwrap();
        assert_eq!(reference.poll_events(), q.poll_events());
    }

    #[test]
    fn reset_storm_recovers_shard_parallel_with_coalesced_event() {
        for shards in [1usize, 4] {
            let (mut p, mut q) = fleet(shards, 24);
            let mut recorded: Vec<Bytes> = Vec::new();
            for _ in 0..12 {
                for spi in 1..=24 {
                    let f = p.protect(spi, b"pre").unwrap().unwrap();
                    recorded.push(f.wire);
                }
            }
            q.push_wire_batch(&recorded).unwrap();
            q.save_completed().unwrap();
            q.poll_events();
            q.reset();
            assert_eq!(q.phase(1), Some(Phase::Down));
            let sas = q.recover().unwrap();
            assert_eq!(sas, 48, "24 SAs x 2 directions, shards={shards}");
            let events = q.poll_events();
            assert_eq!(
                events[0],
                GatewayEvent::Recovered { sas: 48 },
                "one coalesced Recovered, shards={shards}"
            );
            // The §3 replay of the entire fleet history: nothing lands.
            q.push_wire_batch(&recorded).unwrap();
            assert!(
                q.poll_events()
                    .iter()
                    .all(|e| matches!(e, GatewayEvent::ReplayDropped { .. })),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn buffered_frames_resolve_after_parallel_finish() {
        let (mut p, mut q) = fleet(4, 16);
        for spi in 1..=16 {
            for _ in 0..12 {
                let f = p.protect(spi, b"pre").unwrap().unwrap();
                q.push_wire(&f.wire).unwrap();
            }
        }
        q.save_completed().unwrap();
        q.poll_events();
        q.reset();
        q.begin_recover().unwrap();
        // Push the senders past the leap, then one fresh frame per SA
        // arrives mid-wake-up.
        let fresh: Vec<Bytes> = (1..=16)
            .map(|spi| {
                for _ in 0..25 {
                    p.protect(spi, b"skip").unwrap();
                }
                p.protect(spi, b"fresh").unwrap().unwrap().wire
            })
            .collect();
        q.push_wire_batch(&fresh).unwrap();
        let buffered = q.poll_events();
        assert_eq!(buffered.len(), 16);
        assert!(buffered
            .iter()
            .all(|e| matches!(e, GatewayEvent::Buffered { .. })));
        q.finish_recover().unwrap();
        let events = q.poll_events();
        assert!(matches!(events[0], GatewayEvent::Recovered { sas: 32 }));
        assert_eq!(events.len(), 17, "Recovered + one verdict per buffered");
        assert!(events[1..]
            .iter()
            .all(|e| matches!(e, GatewayEvent::Delivered { .. })));
    }

    #[test]
    fn rekey_routes_to_owner_and_stays_in_lockstep() {
        let (mut p, mut q) = fleet(4, 8);
        let old = p.protect(5, b"old").unwrap().unwrap();
        q.push_wire(&old.wire).unwrap();
        q.poll_events();
        p.rekey_now(5);
        q.rekey_now(5);
        assert!(p
            .poll_events()
            .contains(&GatewayEvent::RekeyStarted { spi: 5 }));
        q.poll_events();
        q.push_wire(&old.wire).unwrap();
        assert_eq!(
            q.poll_events(),
            vec![GatewayEvent::AuthFailed { spi: 5 }],
            "old generation died with the rekey"
        );
        let fresh = p.protect(5, b"new").unwrap().unwrap();
        assert_eq!(fresh.seq.value(), 1);
        q.push_wire(&fresh.wire).unwrap();
        assert!(matches!(
            q.poll_events()[..],
            [GatewayEvent::Delivered { .. }]
        ));
    }

    #[test]
    fn default_shard_count_is_available_parallelism() {
        let gw: ShardedGateway<MemStable> = GatewayBuilder::in_memory().build_sharded();
        let expect = thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert_eq!(gw.shard_count(), expect);
    }

    #[test]
    fn unknown_and_runt_frames_become_events_on_any_shard_count() {
        for shards in [1usize, 2, 8] {
            let (mut p, mut q) = fleet(shards, 4);
            let good = p.protect(2, b"ok").unwrap().unwrap().wire;
            let mut foreign = good.to_vec();
            foreign[0..4].copy_from_slice(&0xDEAD_BEEFu32.to_be_bytes());
            let wires = vec![
                good.clone(),
                Bytes::from(foreign),
                Bytes::new(),
                Bytes::copy_from_slice(&[1, 2, 3]),
            ];
            q.push_wire_batch(&wires).unwrap();
            let mut events = q.poll_events();
            assert_eq!(events.len(), 4, "shards={shards}");
            // Global order varies with the shard count; verdict
            // multiset must not.
            events.sort_by_key(|e| match e {
                GatewayEvent::Delivered { .. } => 0,
                GatewayEvent::UnknownSa { .. } => 1,
                GatewayEvent::AuthFailed { .. } => 2,
                _ => 3,
            });
            assert!(matches!(events[0], GatewayEvent::Delivered { spi: 2, .. }));
            assert!(matches!(
                events[1],
                GatewayEvent::UnknownSa { spi: 0xDEAD_BEEF }
            ));
            assert!(matches!(events[2], GatewayEvent::AuthFailed { spi: 0 }));
            assert!(matches!(events[3], GatewayEvent::AuthFailed { spi: 0 }));
        }
    }

    #[test]
    fn suites_sweep_through_the_sharded_path() {
        for &suite in CryptoSuite::ALL {
            let mut p = GatewayBuilder::in_memory_sharded(2)
                .suite(suite)
                .build_sharded();
            let mut q = GatewayBuilder::in_memory_sharded(2)
                .suite(suite)
                .build_sharded();
            for spi in 1..=6 {
                p.add_peer(spi, b"suite-master");
                q.add_peer(spi, b"suite-master");
            }
            let frames: Vec<Bytes> = (1..=6)
                .map(|spi| p.protect(spi, b"x").unwrap().unwrap().wire)
                .collect();
            q.push_wire_batch(&frames).unwrap();
            assert_eq!(q.poll_events().len(), 6, "{suite:?}");
        }
    }
}

//! Simplified ISAKMP/Oakley handshake — the expensive baseline.
//!
//! The IETF remedy for a reset peer is to delete and re-establish the
//! whole SA (paper §3, citing the DPD drafts). Re-establishment runs a
//! key-management exchange: proposals, a Diffie–Hellman exchange and
//! mutual authentication — six messages in ISAKMP main mode (RFC 2408 /
//! RFC 2412, the paper's references [8] and [9]).
//!
//! This module implements a faithful *shape* of that exchange: real DH
//! over the OAKLEY groups, real PRF key derivation, real transcript
//! authentication with a pre-shared key, and an exact cost ledger
//! (messages, round trips, modular exponentiations, PRF invocations,
//! bytes). Experiment t5 compares this ledger against the SAVE/FETCH
//! recovery path, reproducing the paper's cost argument.

use reset_crypto::{ct_eq, hmac_sha256, prf_plus, BigUint, DhGroup, DhKeyPair};

use crate::sa::{CryptoSuite, SaKeys, SecurityAssociation};
use crate::IpsecError;

/// One ISAKMP-like message. Phase-1 main mode: SA proposal/accept, key
/// exchange with nonces, and authentication hashes.
#[derive(Debug, Clone, PartialEq)]
pub enum IkeMessage {
    /// Message 1 (I→R): offered suites + initiator cookie.
    Proposal {
        /// Offered transforms, in preference order.
        suites: Vec<CryptoSuite>,
        /// Initiator nonce/cookie.
        nonce_i: [u8; 16],
    },
    /// Message 2 (R→I): chosen suite + responder cookie.
    Accept {
        /// Chosen transform.
        suite: CryptoSuite,
        /// Responder nonce/cookie.
        nonce_r: [u8; 16],
    },
    /// Message 3 (I→R): initiator DH public value.
    KeyExchangeI {
        /// `g^i mod p`, big-endian.
        public: Vec<u8>,
    },
    /// Message 4 (R→I): responder DH public value.
    KeyExchangeR {
        /// `g^r mod p`, big-endian.
        public: Vec<u8>,
    },
    /// Message 5 (I→R): initiator transcript authentication.
    AuthI {
        /// `HMAC(skeyid, transcript || "I")`.
        tag: [u8; 32],
    },
    /// Message 6 (R→I): responder transcript authentication.
    AuthR {
        /// `HMAC(skeyid, transcript || "R")`.
        tag: [u8; 32],
    },
}

impl IkeMessage {
    /// Approximate on-the-wire size in bytes (for the cost ledger).
    pub fn wire_len(&self) -> usize {
        match self {
            IkeMessage::Proposal { suites, .. } => 28 + suites.len() * 8 + 16,
            IkeMessage::Accept { .. } => 28 + 8 + 16,
            IkeMessage::KeyExchangeI { public } | IkeMessage::KeyExchangeR { public } => {
                28 + public.len()
            }
            IkeMessage::AuthI { .. } | IkeMessage::AuthR { .. } => 28 + 32,
        }
    }
}

/// Cost ledger of a handshake (both sides summed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HandshakeCost {
    /// Messages exchanged.
    pub messages: u64,
    /// Network round trips (messages / 2 for this ping-pong exchange).
    pub round_trips: u64,
    /// Modular exponentiations performed (the dominant CPU cost).
    pub modexps: u64,
    /// PRF/HMAC invocations.
    pub prf_calls: u64,
    /// Total bytes on the wire.
    pub bytes: u64,
}

impl HandshakeCost {
    /// Estimated wall time under a [`CostModel`].
    pub fn estimate_ns(&self, m: &CostModel) -> u64 {
        self.modexps * m.modexp_ns
            + self.prf_calls * m.prf_ns
            + self.round_trips * m.rtt_ns
            + self.bytes * m.per_byte_ns
    }
}

/// Unit costs used to turn a [`HandshakeCost`] ledger into time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// One modular exponentiation.
    pub modexp_ns: u64,
    /// One PRF/HMAC invocation.
    pub prf_ns: u64,
    /// One network round trip.
    pub rtt_ns: u64,
    /// Per wire byte (serialization + transmission).
    pub per_byte_ns: u64,
}

impl CostModel {
    /// Costs in the paper's hardware era (Pentium III 730 MHz, WAN):
    /// ~10 ms per 768-bit modexp, ~5 µs per HMAC, 40 ms RTT.
    pub const fn paper_era() -> CostModel {
        CostModel {
            modexp_ns: 10_000_000,
            prf_ns: 5_000,
            rtt_ns: 40_000_000,
            per_byte_ns: 80, // ~100 Mb/s effective
        }
    }

    /// LAN-era costs: 1 ms modexp, 1 µs PRF, 500 µs RTT.
    pub const fn modern_lan() -> CostModel {
        CostModel {
            modexp_ns: 1_000_000,
            prf_ns: 1_000,
            rtt_ns: 500_000,
            per_byte_ns: 1,
        }
    }
}

/// Result of a completed handshake: one SA per direction plus the ledger.
#[derive(Debug, Clone)]
pub struct EstablishedPair {
    /// SA protecting initiator→responder traffic.
    pub sa_i2r: SecurityAssociation,
    /// SA protecting responder→initiator traffic.
    pub sa_r2i: SecurityAssociation,
    /// Combined cost of the exchange.
    pub cost: HandshakeCost,
}

fn transcript_digest(
    nonce_i: &[u8; 16],
    nonce_r: &[u8; 16],
    pub_i: &[u8],
    pub_r: &[u8],
) -> Vec<u8> {
    let mut t = Vec::with_capacity(32 + pub_i.len() + pub_r.len());
    t.extend_from_slice(nonce_i);
    t.extend_from_slice(nonce_r);
    t.extend_from_slice(pub_i);
    t.extend_from_slice(pub_r);
    t
}

/// Runs the full six-message exchange in-process and returns the
/// established SA pair with its cost ledger.
///
/// `secret_i` / `secret_r` are the two sides' DH secrets (caller-supplied
/// so simulations stay deterministic); `psk` authenticates the exchange;
/// `spi_i2r` / `spi_r2i` name the resulting SAs.
///
/// # Errors
///
/// [`IpsecError::HandshakeAuthFailed`] if the PSKs differ.
///
/// # Examples
///
/// ```
/// use reset_crypto::toy_group;
/// use reset_ipsec::run_handshake;
///
/// let pair = run_handshake(
///     toy_group(),
///     b"pre-shared-key",
///     b"initiator-dh-secret",
///     b"responder-dh-secret",
///     0x1000,
///     0x2000,
/// )?;
/// assert_eq!(pair.cost.messages, 6);
/// assert_eq!(pair.cost.modexps, 4);
/// # Ok::<(), reset_ipsec::IpsecError>(())
/// ```
pub fn run_handshake(
    group: DhGroup,
    psk: &[u8],
    secret_i: &[u8],
    secret_r: &[u8],
    spi_i2r: u32,
    spi_r2i: u32,
) -> Result<EstablishedPair, IpsecError> {
    run_handshake_with_suites(
        group,
        psk,
        secret_i,
        secret_r,
        spi_i2r,
        spi_r2i,
        CryptoSuite::ALL,
    )
}

/// [`run_handshake`] with an explicit suite proposal list (preference
/// order). The responder accepts the first offered suite it supports —
/// in-repo that is always `offered[0]` — and both SAs are installed with
/// it, so experiments can sweep transforms by varying the offer.
///
/// # Errors
///
/// [`IpsecError::HandshakeAuthFailed`] if the PSKs differ.
///
/// # Panics
///
/// Panics if `offered` is empty (an IKE proposal must carry at least
/// one transform).
pub fn run_handshake_with_suites(
    group: DhGroup,
    psk: &[u8],
    secret_i: &[u8],
    secret_r: &[u8],
    spi_i2r: u32,
    spi_r2i: u32,
    offered: &[CryptoSuite],
) -> Result<EstablishedPair, IpsecError> {
    assert!(!offered.is_empty(), "empty suite proposal");
    let mut cost = HandshakeCost::default();
    let mut ledger = |m: &IkeMessage| {
        cost.messages += 1;
        cost.bytes += m.wire_len() as u64;
    };

    // Messages 1-2: proposal / accept. The proposal carries the suites'
    // wire ids ([`CryptoSuite::wire_id`]); the responder echoes its
    // choice back in the accept.
    let nonce_i = derive_nonce(psk, secret_i, b"ni");
    let nonce_r = derive_nonce(psk, secret_r, b"nr");
    cost.prf_calls += 2;
    let m1 = IkeMessage::Proposal {
        suites: offered.to_vec(),
        nonce_i,
    };
    ledger(&m1);
    let suite = match &m1 {
        IkeMessage::Proposal { suites, .. } => {
            // Responder-side selection, modelled through the id codec a
            // real wire format would round-trip.
            CryptoSuite::from_wire_id(suites[0].wire_id()).expect("offered suites are known")
        }
        _ => unreachable!(),
    };
    let m2 = IkeMessage::Accept { suite, nonce_r };
    ledger(&m2);

    // Messages 3-4: DH exchange (2 modexps per side: keygen + shared).
    let kp_i = DhKeyPair::from_secret(group.clone(), secret_i);
    let kp_r = DhKeyPair::from_secret(group, secret_r);
    cost.modexps += 2;
    let pub_i = kp_i.public().to_be_bytes();
    let pub_r = kp_r.public().to_be_bytes();
    let m3 = IkeMessage::KeyExchangeI {
        public: pub_i.clone(),
    };
    ledger(&m3);
    let m4 = IkeMessage::KeyExchangeR {
        public: pub_r.clone(),
    };
    ledger(&m4);
    let shared_i = kp_i.shared_secret(&BigUint::from_be_bytes(&pub_r));
    let shared_r = kp_r.shared_secret(&BigUint::from_be_bytes(&pub_i));
    cost.modexps += 2;
    debug_assert_eq!(shared_i, shared_r);

    // SKEYID = prf(psk, Ni | Nr | g^ir), as in RFC 2409 PSK mode.
    let mut skeyid_seed = Vec::new();
    skeyid_seed.extend_from_slice(&nonce_i);
    skeyid_seed.extend_from_slice(&nonce_r);
    skeyid_seed.extend_from_slice(&shared_i);
    let skeyid_i = prf_plus(psk, &skeyid_seed, 32);
    let skeyid_r = prf_plus(psk, &skeyid_seed, 32);
    cost.prf_calls += 2;

    // Messages 5-6: transcript authentication.
    let transcript = transcript_digest(&nonce_i, &nonce_r, &pub_i, &pub_r);
    let tag_i = auth_tag(&skeyid_i, &transcript, b"I");
    let tag_r = auth_tag(&skeyid_r, &transcript, b"R");
    cost.prf_calls += 4; // each side computes its tag and verifies peer's
    let m5 = IkeMessage::AuthI { tag: tag_i };
    ledger(&m5);
    let m6 = IkeMessage::AuthR { tag: tag_r };
    ledger(&m6);
    // Verification (both sides share the PSK, so this succeeds; a PSK
    // mismatch surfaces here).
    let verify_i = auth_tag(&skeyid_r, &transcript, b"I");
    let verify_r = auth_tag(&skeyid_i, &transcript, b"R");
    if !ct_eq(&tag_i, &verify_i) || !ct_eq(&tag_r, &verify_r) {
        return Err(IpsecError::HandshakeAuthFailed);
    }

    cost.round_trips = cost.messages / 2;

    // Derive the directional SA keys from SKEYID.
    let keys_i2r = SaKeys::derive(&skeyid_i, b"i2r");
    let keys_r2i = SaKeys::derive(&skeyid_i, b"r2i");
    cost.prf_calls += 2;

    Ok(EstablishedPair {
        sa_i2r: SecurityAssociation::new(spi_i2r, keys_i2r).with_suite(suite),
        sa_r2i: SecurityAssociation::new(spi_r2i, keys_r2i).with_suite(suite),
        cost,
    })
}

/// Simulates a handshake where the responder holds a different PSK; the
/// transcript tags then disagree.
///
/// # Errors
///
/// Always returns [`IpsecError::HandshakeAuthFailed`] when the keys
/// differ (this function exists so tests and experiments can exercise the
/// failure path deterministically).
pub fn run_handshake_mismatched_psk(
    group: DhGroup,
    psk_i: &[u8],
    psk_r: &[u8],
    secret_i: &[u8],
    secret_r: &[u8],
) -> Result<EstablishedPair, IpsecError> {
    if psk_i == psk_r {
        return run_handshake(group, psk_i, secret_i, secret_r, 1, 2);
    }
    // Tags computed under different SKEYIDs can only collide with
    // negligible probability; model the rejection directly.
    let _ = (group, secret_i, secret_r);
    Err(IpsecError::HandshakeAuthFailed)
}

fn derive_nonce(psk: &[u8], secret: &[u8], label: &[u8]) -> [u8; 16] {
    let mut seed = Vec::new();
    seed.extend_from_slice(secret);
    seed.extend_from_slice(label);
    let h = hmac_sha256(psk, &seed);
    let mut out = [0u8; 16];
    out.copy_from_slice(&h[..16]);
    out
}

fn auth_tag(skeyid: &[u8], transcript: &[u8], role: &[u8]) -> [u8; 32] {
    let mut msg = Vec::with_capacity(transcript.len() + role.len());
    msg.extend_from_slice(transcript);
    msg.extend_from_slice(role);
    hmac_sha256(skeyid, &msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reset_crypto::toy_group;

    fn pair() -> EstablishedPair {
        run_handshake(toy_group(), b"psk", b"dh-secret-i", b"dh-secret-r", 10, 20).unwrap()
    }

    #[test]
    fn six_messages_three_round_trips() {
        let p = pair();
        assert_eq!(p.cost.messages, 6);
        assert_eq!(p.cost.round_trips, 3);
        assert_eq!(p.cost.modexps, 4);
        assert!(p.cost.prf_calls >= 8);
        assert!(p.cost.bytes > 100);
    }

    #[test]
    fn directional_keys_differ() {
        let p = pair();
        assert_ne!(p.sa_i2r.keys(), p.sa_r2i.keys());
        assert_eq!(p.sa_i2r.spi(), 10);
        assert_eq!(p.sa_r2i.spi(), 20);
    }

    #[test]
    fn deterministic_for_same_inputs() {
        let a = pair();
        let b = pair();
        assert_eq!(a.sa_i2r.keys(), b.sa_i2r.keys());
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn different_secrets_different_keys() {
        let a = pair();
        let b =
            run_handshake(toy_group(), b"psk", b"other-secret", b"dh-secret-r", 10, 20).unwrap();
        assert_ne!(a.sa_i2r.keys(), b.sa_i2r.keys());
    }

    #[test]
    fn negotiating_each_suite_installs_it() {
        for &suite in CryptoSuite::ALL {
            let p = run_handshake_with_suites(toy_group(), b"psk", b"si", b"sr", 1, 2, &[suite])
                .unwrap();
            assert_eq!(p.sa_i2r.suite(), suite);
            assert_eq!(p.sa_r2i.suite(), suite);
        }
    }

    #[test]
    fn preference_order_decides() {
        let p = run_handshake_with_suites(
            toy_group(),
            b"psk",
            b"si",
            b"sr",
            1,
            2,
            &[
                CryptoSuite::ChaCha20Poly1305,
                CryptoSuite::HmacSha256WithKeystream,
            ],
        )
        .unwrap();
        assert_eq!(p.sa_i2r.suite(), CryptoSuite::ChaCha20Poly1305);
    }

    #[test]
    fn psk_mismatch_fails_auth() {
        let err = run_handshake_mismatched_psk(toy_group(), b"psk-a", b"psk-b", b"si", b"sr")
            .unwrap_err();
        assert!(matches!(err, IpsecError::HandshakeAuthFailed));
    }

    #[test]
    fn cost_model_estimates_scale() {
        let p = pair();
        let paper = p.cost.estimate_ns(&CostModel::paper_era());
        let lan = p.cost.estimate_ns(&CostModel::modern_lan());
        assert!(paper > lan);
        // Paper-era full handshake: ≥ 4 modexps × 10 ms = 40 ms at least.
        assert!(paper >= 40_000_000, "paper-era estimate {paper} ns");
    }

    #[test]
    fn wire_lengths_nonzero() {
        let p = IkeMessage::Proposal {
            suites: vec![CryptoSuite::HmacSha256WithKeystream],
            nonce_i: [0; 16],
        };
        assert!(p.wire_len() > 16);
        assert!(IkeMessage::AuthR { tag: [0; 32] }.wire_len() >= 60);
    }
}

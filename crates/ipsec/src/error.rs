//! Error type for the IPsec substrate.

use std::error::Error;
use std::fmt;

use reset_stable::StableError;
use reset_wire::WireError;

/// Errors surfaced by SA management and the ESP pipeline.
#[derive(Debug)]
pub enum IpsecError {
    /// Packet framing or authentication failed (includes replayed bytes
    /// tampered with in flight).
    Wire(WireError),
    /// Persistent memory failed.
    Stable(StableError),
    /// No SA is installed for this SPI.
    UnknownSa {
        /// The SPI the packet named.
        spi: u32,
    },
    /// The SA exists but its lifetime is exhausted (RFC 2401 requires
    /// rekeying).
    LifetimeExpired {
        /// The affected SPI.
        spi: u32,
    },
    /// The handshake state machine received a message it cannot accept in
    /// its current state.
    HandshakeOutOfOrder {
        /// What the state machine was doing.
        state: &'static str,
    },
    /// Peer authentication failed during the handshake.
    HandshakeAuthFailed,
    /// The endpoint is down (reset and not yet woken up).
    EndpointDown,
    /// A [`ShardedGateway`](crate::ShardedGateway) worker job panicked.
    /// The panic is reported here instead of hanging or killing the
    /// caller; the shard's worker thread survives and keeps serving,
    /// with its state left exactly as the interrupted operation left it.
    WorkerPanicked {
        /// Index of the shard whose job panicked.
        shard: usize,
        /// The panic message, best-effort stringified.
        message: String,
    },
}

impl fmt::Display for IpsecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpsecError::Wire(e) => write!(f, "wire layer: {e}"),
            IpsecError::Stable(e) => write!(f, "persistent memory: {e}"),
            IpsecError::UnknownSa { spi } => write!(f, "no SA for spi {spi:#x}"),
            IpsecError::LifetimeExpired { spi } => {
                write!(f, "SA lifetime expired for spi {spi:#x}")
            }
            IpsecError::HandshakeOutOfOrder { state } => {
                write!(f, "handshake message unexpected in state {state}")
            }
            IpsecError::HandshakeAuthFailed => write!(f, "handshake authentication failed"),
            IpsecError::EndpointDown => write!(f, "endpoint is down after a reset"),
            IpsecError::WorkerPanicked { shard, message } => {
                write!(f, "shard {shard} worker job panicked: {message}")
            }
        }
    }
}

impl Error for IpsecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IpsecError::Wire(e) => Some(e),
            IpsecError::Stable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for IpsecError {
    fn from(e: WireError) -> Self {
        IpsecError::Wire(e)
    }
}

impl From<StableError> for IpsecError {
    fn from(e: StableError) -> Self {
        IpsecError::Stable(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(IpsecError::UnknownSa { spi: 0xff }
            .to_string()
            .contains("0xff"));
        assert!(IpsecError::HandshakeAuthFailed.to_string().contains("auth"));
    }

    #[test]
    fn sources_chain() {
        let e = IpsecError::from(WireError::IcvMismatch);
        assert!(e.source().is_some());
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IpsecError>();
    }
}

//! The ESP datapath: SAVE/FETCH-protected sequence numbers under real
//! authentication and (simulated) encryption.
//!
//! [`Outbound`] allocates sequence numbers through
//! [`anti_replay::SfSender`] and seals packets; [`Inbound`] verifies the
//! ICV **first** (RFC 2406 order: authentication before replay check),
//! reconstructs the full 64-bit sequence number (ESN), consults the
//! anti-replay window, then decrypts and delivers. Both endpoints survive
//! resets through their stable stores and the `2K` leap.

use bytes::Bytes;
use reset_crypto::xor_keystream;
use reset_stable::{SlotId, StableError, StableStore};
use reset_wire::{infer_esn, open, seal};

use anti_replay::{Phase, RxOutcome, SeqNum, SfReceiver, SfSender};

use crate::sa::{CryptoSuite, SecurityAssociation};
use crate::IpsecError;

/// Sender half of one SA's datapath.
///
/// # Examples
///
/// ```
/// use reset_ipsec::{Inbound, Outbound, RxResult, SaKeys, SecurityAssociation};
/// use reset_stable::MemStable;
///
/// let keys = SaKeys::derive(b"shared", b"a->b");
/// let sa = SecurityAssociation::new(7, keys);
/// let mut tx = Outbound::new(sa.clone(), MemStable::new(), 25);
/// let mut rx = Inbound::new(sa, MemStable::new(), 25, 64);
///
/// let wire = tx.protect(b"hello")?.expect("endpoint up");
/// match rx.process(&wire)? {
///     RxResult::Delivered { payload, seq } => {
///         assert_eq!(&payload[..], b"hello");
///         assert_eq!(seq.value(), 1);
///     }
///     other => panic!("{other:?}"),
/// }
/// # Ok::<(), reset_ipsec::IpsecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Outbound<S> {
    sa: SecurityAssociation,
    seq: SfSender<S>,
}

impl<S: StableStore> Outbound<S> {
    /// An outbound endpoint persisting its counter in `store` every `k`
    /// packets.
    pub fn new(sa: SecurityAssociation, store: S, k: u64) -> Self {
        let slot = SlotId::sender(sa.spi());
        Outbound {
            sa,
            seq: SfSender::new(store, slot, k),
        }
    }

    /// The SA this endpoint serves.
    pub fn sa(&self) -> &SecurityAssociation {
        &self.sa
    }

    /// The SAVE/FETCH sender (counters, phase, pending saves).
    pub fn seq_state(&self) -> &SfSender<S> {
        &self.seq
    }

    /// Protects one payload. Returns `None` while the endpoint is down or
    /// waking (nothing can be sent), `Some(wire)` otherwise.
    ///
    /// # Errors
    ///
    /// Lifetime exhaustion, sequence overflow, or store failures.
    pub fn protect(&mut self, payload: &[u8]) -> Result<Option<Bytes>, IpsecError> {
        self.sa.check_lifetime()?;
        let Some(seq) = self.seq.send_next()? else {
            return Ok(None);
        };
        let mut body = payload.to_vec();
        if self.sa.suite() == CryptoSuite::HmacSha256WithKeystream {
            xor_keystream(&self.sa.keys().enc, seq.value(), &mut body);
        }
        let wire = seal(
            self.sa.spi(),
            seq.value(),
            &body,
            &self.sa.keys().auth,
            self.sa.esn(),
        )?;
        self.sa.account(payload.len());
        Ok(Some(wire))
    }

    /// Background SAVE completion (simulator-driven).
    ///
    /// # Errors
    ///
    /// Store failures (retryable).
    pub fn save_completed(&mut self) -> Result<(), StableError> {
        self.seq.save_completed().map(|_| ())
    }

    /// Reset: volatile counter lost.
    pub fn reset(&mut self) {
        self.seq.reset();
    }

    /// Wake up: FETCH + leap `2K` + synchronous SAVE. Returns the resumed
    /// sequence number.
    ///
    /// # Errors
    ///
    /// Store failures.
    pub fn wake_up(&mut self) -> Result<SeqNum, StableError> {
        self.seq.wake_up()
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.seq.phase()
    }
}

/// What happened to one inbound packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxResult {
    /// Authenticated, fresh, decrypted: handed to the application.
    Delivered {
        /// The decrypted payload.
        payload: Bytes,
        /// The full (ESN-reconstructed) sequence number.
        seq: SeqNum,
    },
    /// Authenticated but rejected by the anti-replay window.
    AntiReplay {
        /// Stale or duplicate.
        outcome: RxOutcome,
        /// The rejected sequence number.
        seq: SeqNum,
    },
    /// Endpoint is waking; the packet is buffered and will be resolved by
    /// [`Inbound::finish_wakeup`].
    Buffered,
    /// Endpoint is down; the packet evaporates.
    DroppedDown,
}

impl RxResult {
    /// True iff the packet reached the application.
    pub fn is_delivered(&self) -> bool {
        matches!(self, RxResult::Delivered { .. })
    }
}

/// Receiver half of one SA's datapath.
#[derive(Debug, Clone)]
pub struct Inbound<S> {
    sa: SecurityAssociation,
    rx: SfReceiver<S>,
    /// Wire packets that arrived during a wake-up (the §4 buffer, held at
    /// the packet level so payloads survive to delivery).
    pending: Vec<Bytes>,
    /// Authentication failures seen (forgeries/corruption).
    auth_failures: u64,
}

impl<S: StableStore> Inbound<S> {
    /// An inbound endpoint persisting its right edge in `store` every `k`
    /// advances, with window size `w`.
    pub fn new(sa: SecurityAssociation, store: S, k: u64, w: u64) -> Self {
        let slot = SlotId::receiver(sa.spi());
        Inbound {
            sa,
            rx: SfReceiver::new(store, slot, k, w),
            pending: Vec::new(),
            auth_failures: 0,
        }
    }

    /// The SA this endpoint serves.
    pub fn sa(&self) -> &SecurityAssociation {
        &self.sa
    }

    /// The SAVE/FETCH receiver (window, phase, stats).
    pub fn seq_state(&self) -> &SfReceiver<S> {
        &self.rx
    }

    /// Authentication failures observed so far.
    pub fn auth_failures(&self) -> u64 {
        self.auth_failures
    }

    /// Processes one wire packet: authenticate → anti-replay → decrypt.
    ///
    /// # Errors
    ///
    /// * [`IpsecError::UnknownSa`] for a foreign SPI.
    /// * [`IpsecError::Wire`] for framing/ICV failures (also counted in
    ///   [`Inbound::auth_failures`]).
    pub fn process(&mut self, wire: &[u8]) -> Result<RxResult, IpsecError> {
        match self.rx.phase() {
            Phase::Down => return Ok(RxResult::DroppedDown),
            Phase::Waking => {
                self.pending.push(Bytes::copy_from_slice(wire));
                return Ok(RxResult::Buffered);
            }
            Phase::Running => {}
        }
        self.process_running(wire)
    }

    fn process_running(&mut self, wire: &[u8]) -> Result<RxResult, IpsecError> {
        // Pre-parse SPI and low sequence bits (unauthenticated so far).
        if wire.len() < 8 {
            self.auth_failures += 1;
            return Err(IpsecError::Wire(reset_wire::WireError::Truncated {
                needed: 8,
                got: wire.len(),
            }));
        }
        let spi = u32::from_be_bytes(wire[0..4].try_into().expect("fixed"));
        if spi != self.sa.spi() {
            return Err(IpsecError::UnknownSa { spi });
        }
        let seq_lo = u32::from_be_bytes(wire[4..8].try_into().expect("fixed"));
        let (seq64, esn_hi) = if self.sa.esn() {
            let inferred = infer_esn(seq_lo, self.rx.right_edge().value());
            (inferred, Some((inferred >> 32) as u32))
        } else {
            (seq_lo as u64, None)
        };
        // 1. Authenticate (a wrong ESN guess fails here too).
        let pkt = match open(wire, &self.sa.keys().auth, esn_hi) {
            Ok(p) => p,
            Err(e) => {
                self.auth_failures += 1;
                return Err(e.into());
            }
        };
        // 2. Anti-replay window.
        let seq = SeqNum::new(seq64);
        let outcome = self.rx.receive(seq)?;
        match outcome {
            RxOutcome::Delivered => {
                // 3. Decrypt and deliver.
                let mut body = pkt.payload.to_vec();
                if self.sa.suite() == CryptoSuite::HmacSha256WithKeystream {
                    xor_keystream(&self.sa.keys().enc, seq.value(), &mut body);
                }
                self.sa.account(body.len());
                Ok(RxResult::Delivered {
                    payload: Bytes::from(body),
                    seq,
                })
            }
            RxOutcome::DiscardedStale | RxOutcome::DiscardedDuplicate => {
                Ok(RxResult::AntiReplay { outcome, seq })
            }
            RxOutcome::Buffered | RxOutcome::DroppedDown => {
                unreachable!("phase checked before classification")
            }
        }
    }

    /// Background SAVE completion.
    ///
    /// # Errors
    ///
    /// Store failures (retryable).
    pub fn save_completed(&mut self) -> Result<(), StableError> {
        self.rx.save_completed().map(|_| ())
    }

    /// Reset: the window and any buffered packets are lost.
    pub fn reset(&mut self) {
        self.rx.reset();
        self.pending.clear();
    }

    /// First half of wake-up (FETCH + leap + issue synchronous SAVE);
    /// packets arriving until [`finish_wakeup`](Self::finish_wakeup) are
    /// buffered.
    ///
    /// # Errors
    ///
    /// Store failures.
    pub fn begin_wakeup(&mut self) -> Result<SeqNum, StableError> {
        self.rx.begin_wakeup()
    }

    /// Second half of wake-up: rebuild the window at the leaped edge and
    /// classify every buffered packet in arrival order.
    ///
    /// # Errors
    ///
    /// Store failures leave the endpoint `Waking` (retry); wire errors on
    /// buffered packets are reported per-packet inside the result vector
    /// as dropped (auth failures are counted).
    pub fn finish_wakeup(&mut self) -> Result<Vec<RxResult>, StableError> {
        self.rx.finish_wakeup()?;
        let pending = std::mem::take(&mut self.pending);
        let results = pending
            .into_iter()
            .map(|wire| match self.process_running(&wire) {
                Ok(r) => r,
                Err(_) => RxResult::DroppedDown, // unauthenticated buffered junk
            })
            .collect();
        Ok(results)
    }

    /// Atomic wake-up; returns classified buffered packets (normally
    /// empty since nothing arrived in between).
    ///
    /// # Errors
    ///
    /// Store failures.
    pub fn wake_up(&mut self) -> Result<Vec<RxResult>, StableError> {
        self.begin_wakeup()?;
        self.finish_wakeup()
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.rx.phase()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::SaKeys;
    use reset_stable::MemStable;

    fn endpoints(k: u64, w: u64) -> (Outbound<MemStable>, Inbound<MemStable>) {
        let keys = SaKeys::derive(b"shared-secret", b"a->b");
        let sa = SecurityAssociation::new(0x55, keys);
        (
            Outbound::new(sa.clone(), MemStable::new(), k),
            Inbound::new(sa, MemStable::new(), k, w),
        )
    }

    #[test]
    fn end_to_end_traffic() {
        let (mut tx, mut rx) = endpoints(25, 64);
        for i in 0..100u64 {
            let payload = format!("packet {i}");
            let wire = tx.protect(payload.as_bytes()).unwrap().unwrap();
            match rx.process(&wire).unwrap() {
                RxResult::Delivered { payload: got, seq } => {
                    assert_eq!(got, payload.as_bytes());
                    assert_eq!(seq.value(), i + 1);
                }
                other => panic!("packet {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn payload_is_actually_encrypted() {
        let (mut tx, _) = endpoints(25, 64);
        let wire = tx.protect(b"supersecret").unwrap().unwrap();
        let haystack = wire.to_vec();
        let needle = b"supersecret";
        let found = haystack
            .windows(needle.len())
            .any(|w| w == needle);
        assert!(!found, "plaintext leaked onto the wire");
    }

    #[test]
    fn auth_only_suite_skips_encryption() {
        let keys = SaKeys::derive(b"s", b"d");
        let sa = SecurityAssociation::new(1, keys).with_suite(CryptoSuite::HmacSha256AuthOnly);
        let mut tx = Outbound::new(sa.clone(), MemStable::new(), 25);
        let mut rx = Inbound::new(sa, MemStable::new(), 25, 64);
        let wire = tx.protect(b"visible").unwrap().unwrap();
        assert!(wire.windows(7).any(|w| w == b"visible"));
        assert!(rx.process(&wire).unwrap().is_delivered());
    }

    #[test]
    fn replayed_packet_rejected_by_window_not_auth() {
        let (mut tx, mut rx) = endpoints(25, 64);
        let wire = tx.protect(b"x").unwrap().unwrap();
        assert!(rx.process(&wire).unwrap().is_delivered());
        match rx.process(&wire).unwrap() {
            RxResult::AntiReplay { outcome, seq } => {
                assert_eq!(outcome, RxOutcome::DiscardedDuplicate);
                assert_eq!(seq.value(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(rx.auth_failures(), 0, "replay authenticates fine");
    }

    #[test]
    fn forged_packet_rejected_by_auth() {
        let (mut tx, mut rx) = endpoints(25, 64);
        let wire = tx.protect(b"x").unwrap().unwrap();
        let mut forged = wire.to_vec();
        let n = forged.len();
        forged[n - 1] ^= 0xFF;
        assert!(rx.process(&forged).is_err());
        assert_eq!(rx.auth_failures(), 1);
    }

    #[test]
    fn foreign_spi_rejected() {
        let (mut tx, _) = endpoints(25, 64);
        let keys = SaKeys::derive(b"shared-secret", b"a->b");
        let other_sa = SecurityAssociation::new(0x99, keys);
        let mut other_rx = Inbound::new(other_sa, MemStable::new(), 25, 64);
        let wire = tx.protect(b"x").unwrap().unwrap();
        assert!(matches!(
            other_rx.process(&wire),
            Err(IpsecError::UnknownSa { spi: 0x55 })
        ));
    }

    #[test]
    fn receiver_reset_then_wakeup_blocks_all_replays() {
        let (mut tx, mut rx) = endpoints(10, 64);
        let mut recorded = Vec::new();
        for _ in 0..30 {
            let wire = tx.protect(b"data").unwrap().unwrap();
            recorded.push(wire.clone());
            rx.process(&wire).unwrap();
        }
        // Let the receiver's background save land, then crash it.
        rx.save_completed().unwrap();
        rx.reset();
        assert_eq!(rx.process(&recorded[0]).unwrap(), RxResult::DroppedDown);
        rx.wake_up().unwrap();
        // Full history replay: nothing delivered.
        for wire in &recorded {
            let r = rx.process(wire).unwrap();
            assert!(!r.is_delivered(), "replay accepted: {r:?}");
        }
        // Fresh traffic beyond the leap flows once the sender catches up.
        let edge = rx.seq_state().right_edge().value();
        for _ in 0..(2 * 10 + 5) {
            let wire = tx.protect(b"new").unwrap().unwrap();
            let _ = rx.process(&wire).unwrap();
        }
        assert!(
            rx.seq_state().right_edge().value() > edge,
            "traffic resumed past the leap"
        );
    }

    #[test]
    fn sender_reset_resumes_fresh_without_discards() {
        let (mut tx, mut rx) = endpoints(10, 128);
        let mut delivered = 0u64;
        let mut sent = 0u64;
        for round in 0..100u64 {
            if round == 50 {
                tx.save_completed().unwrap();
                tx.reset();
                assert!(tx.protect(b"down").unwrap().is_none());
                tx.wake_up().unwrap();
            }
            if let Some(wire) = tx.protect(b"payload").unwrap() {
                sent += 1;
                if rx.process(&wire).unwrap().is_delivered() {
                    delivered += 1;
                }
            }
        }
        assert_eq!(sent, delivered, "condition (i): no fresh loss");
    }

    #[test]
    fn buffered_packets_resolved_after_wakeup() {
        let (mut tx, mut rx) = endpoints(5, 64);
        for _ in 0..12 {
            let wire = tx.protect(b"pre").unwrap().unwrap();
            rx.process(&wire).unwrap();
        }
        rx.save_completed().unwrap();
        rx.reset();
        rx.begin_wakeup().unwrap();
        // Old replay + genuinely fresh packet arrive during the wake-up
        // SAVE. (Sender counter is ahead of the leaped edge? Ensure fresh:
        // push sender far forward first.)
        for _ in 0..30 {
            tx.protect(b"skip").unwrap();
        }
        let fresh = tx.protect(b"fresh").unwrap().unwrap();
        assert_eq!(rx.process(&fresh).unwrap(), RxResult::Buffered);
        let results = rx.finish_wakeup().unwrap();
        assert_eq!(results.len(), 1);
        assert!(results[0].is_delivered(), "{results:?}");
    }

    #[test]
    fn esn_stream_crosses_32bit_boundary() {
        // Start the sender near the 2^32 boundary by leaping it there:
        // simulate with a store that already holds a huge counter.
        use reset_stable::{SlotId, StableStore};
        let keys = SaKeys::derive(b"s", b"d");
        let sa = SecurityAssociation::new(3, keys);
        let mut store = MemStable::new();
        let start = (1u64 << 32) - 5;
        store.store(SlotId::sender(3), start).unwrap();
        let mut tx = Outbound::new(sa.clone(), store, 10);
        // Wake from "reset" to adopt the stored counter (+2K leap).
        tx.reset();
        let resumed = tx.wake_up().unwrap();
        assert!(resumed.value() > u32::MAX as u64 - 30);

        // The receiver's last durable edge trails the sender's by one
        // save interval (2K = 20), so its leap lands exactly at `start`
        // and the sender's resumed counter is strictly beyond it.
        let mut rx_store = MemStable::new();
        rx_store
            .store(SlotId::receiver(3), start - 20)
            .unwrap();
        let mut rx = Inbound::new(sa, rx_store, 10, 64);
        rx.reset();
        rx.wake_up().unwrap();

        for i in 0..50u64 {
            let wire = tx.protect(format!("p{i}").as_bytes()).unwrap().unwrap();
            let r = rx.process(&wire).unwrap();
            assert!(r.is_delivered(), "packet {i} across boundary: {r:?}");
        }
        assert!(rx.seq_state().right_edge().value() > u32::MAX as u64);
    }
}

//! The ESP datapath: SAVE/FETCH-protected sequence numbers under real
//! authentication and (simulated) encryption.
//!
//! [`Outbound`] allocates sequence numbers through
//! [`anti_replay::SfSender`] and seals packets; [`Inbound`] verifies the
//! ICV **first** (RFC 2406 order: authentication before replay check),
//! reconstructs the full 64-bit sequence number (ESN), consults the
//! anti-replay window, then decrypts and delivers. Both endpoints survive
//! resets through their stable stores and the `2K` leap.
//!
//! # Hot-path design
//!
//! The paper's premise is a ~4 µs per-message budget, so the receive
//! pipeline is allocation-free after warm-up:
//!
//! * all crypto dispatches through the SA's precomputed
//!   [`reset_crypto::CipherSuite`] — no per-packet key schedule for any
//!   suite;
//! * [`reset_wire::verify_frame_with`] authenticates in place, without
//!   materializing an intermediate packet;
//! * delivered payloads are either zero-copy slices of the input
//!   (non-encrypting suites, via [`Inbound::process_bytes`]) or
//!   decrypted into a recycled arena whose allocation is reclaimed once
//!   the consumer drops the previous payload;
//! * [`Inbound::process_batch`] amortizes the arena across a whole NIC
//!   queue drain *and* verifies all ICVs of the batch through
//!   [`reset_crypto::CipherSuite::verify_batch`], so the HMAC suite's
//!   two-pass amortized verifier kicks in per SA run.

use bytes::{Bytes, BytesMut};
use reset_crypto::FrameToVerify;
use reset_stable::{SlotId, StableError, StableStore};
use reset_wire::{
    check_frame_length, infer_esn, seal_frame, verify_frame_with, WireError, HEADER_LEN,
};

use anti_replay::machine::DEFAULT_WAKEUP_BUFFER;
use anti_replay::{Phase, RxOutcome, SeqNum, SfReceiver, SfSender};

use crate::sa::SecurityAssociation;
use crate::IpsecError;

/// Sender half of one SA's datapath.
///
/// # Examples
///
/// ```
/// use reset_ipsec::{Inbound, Outbound, RxResult, SaKeys, SecurityAssociation};
/// use reset_stable::MemStable;
///
/// let keys = SaKeys::derive(b"shared", b"a->b");
/// let sa = SecurityAssociation::new(7, keys);
/// let mut tx = Outbound::new(sa.clone(), MemStable::new(), 25);
/// let mut rx = Inbound::new(sa, MemStable::new(), 25, 64);
///
/// let wire = tx.protect(b"hello")?.expect("endpoint up");
/// match rx.process(&wire)? {
///     RxResult::Delivered { payload, seq } => {
///         assert_eq!(&payload[..], b"hello");
///         assert_eq!(seq.value(), 1);
///     }
///     other => panic!("{other:?}"),
/// }
/// # Ok::<(), reset_ipsec::IpsecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Outbound<S> {
    sa: SecurityAssociation,
    seq: SfSender<S>,
}

impl<S: StableStore> Outbound<S> {
    /// An outbound endpoint persisting its counter in `store` every `k`
    /// packets.
    pub fn new(sa: SecurityAssociation, store: S, k: u64) -> Self {
        let slot = SlotId::sender(sa.spi());
        Outbound {
            sa,
            seq: SfSender::new(store, slot, k),
        }
    }

    /// The SA this endpoint serves.
    pub fn sa(&self) -> &SecurityAssociation {
        &self.sa
    }

    /// The SAVE/FETCH sender (counters, phase, pending saves).
    pub fn seq_state(&self) -> &SfSender<S> {
        &self.seq
    }

    /// Protects one payload. Returns `None` while the endpoint is down or
    /// waking (nothing can be sent), `Some(wire)` otherwise.
    ///
    /// # Errors
    ///
    /// Lifetime exhaustion, sequence overflow, or store failures.
    pub fn protect(&mut self, payload: &[u8]) -> Result<Option<Bytes>, IpsecError> {
        self.sa.check_lifetime()?;
        let Some(seq) = self.seq.send_next()? else {
            return Ok(None);
        };
        // The suite encrypts in place inside the wire buffer, so the
        // only per-packet allocation is the returned buffer itself.
        let wire = seal_frame(
            self.sa.spi(),
            seq.value(),
            payload,
            self.sa.cipher(),
            self.sa.esn(),
        )?;
        self.sa.account(payload.len());
        Ok(Some(wire))
    }

    /// Background SAVE completion (simulator-driven).
    ///
    /// # Errors
    ///
    /// Store failures (retryable).
    pub fn save_completed(&mut self) -> Result<(), StableError> {
        self.seq.save_completed().map(|_| ())
    }

    /// Reset: volatile counter lost.
    pub fn reset(&mut self) {
        self.seq.reset();
    }

    /// Wake up: FETCH + leap `2K` + synchronous SAVE. Returns the resumed
    /// sequence number.
    ///
    /// # Errors
    ///
    /// Store failures.
    pub fn wake_up(&mut self) -> Result<SeqNum, StableError> {
        self.seq.wake_up()
    }

    /// First half of wake-up (FETCH + leap + issue the synchronous
    /// SAVE); the endpoint stays unable to send until
    /// [`finish_wakeup`](Self::finish_wakeup). Timed drivers (the
    /// harness) split the halves around the store's save latency.
    ///
    /// # Errors
    ///
    /// Store failures (the endpoint stays down).
    pub fn begin_wakeup(&mut self) -> Result<SeqNum, StableError> {
        self.seq.begin_wakeup()
    }

    /// Second half of wake-up: the synchronous SAVE completed; sending
    /// resumes at the leaped counter.
    ///
    /// # Errors
    ///
    /// Store failures (the endpoint stays waking; retry).
    pub fn finish_wakeup(&mut self) -> Result<SeqNum, StableError> {
        self.seq.finish_wakeup()
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.seq.phase()
    }

    /// Mutable access to the persistent store — SA teardown (a correct
    /// teardown erases `SlotId::sender(spi)` so a later FETCH cannot
    /// resurrect this SA's counters into a reused SPI's number space)
    /// and fault-injection tests.
    pub fn store_mut(&mut self) -> &mut S {
        self.seq.store_mut()
    }
}

/// Why a packet was rejected before reaching the anti-replay window
/// (batch-path reporting; the single-packet API surfaces these as
/// [`IpsecError`]s instead).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxReject {
    /// Framing or ICV failure (forged, corrupted or malformed bytes).
    Wire(WireError),
    /// No SA is installed for the packet's SPI.
    UnknownSa {
        /// The SPI the packet named.
        spi: u32,
    },
    /// The receiver's stable store failed while classifying this packet
    /// (batch path only; the single-packet API returns the error
    /// instead). Retryable: resubmit once the store recovers.
    Store {
        /// The store failure, rendered.
        reason: String,
    },
}

/// What happened to one inbound packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RxResult {
    /// Authenticated, fresh, decrypted: handed to the application.
    Delivered {
        /// The decrypted payload.
        payload: Bytes,
        /// The full (ESN-reconstructed) sequence number.
        seq: SeqNum,
    },
    /// Authenticated but rejected by the anti-replay window.
    AntiReplay {
        /// Stale or duplicate.
        outcome: RxOutcome,
        /// The rejected sequence number.
        seq: SeqNum,
    },
    /// Rejected before the window: bad framing, failed authentication or
    /// an unknown SPI. Produced by the batch APIs, which report
    /// per-packet failures in-line rather than aborting the batch.
    Rejected(RxReject),
    /// Endpoint is waking; the packet is buffered and will be resolved by
    /// [`Inbound::finish_wakeup`].
    Buffered,
    /// Endpoint is down; the packet evaporates.
    DroppedDown,
}

impl RxResult {
    /// True iff the packet reached the application.
    pub fn is_delivered(&self) -> bool {
        matches!(self, RxResult::Delivered { .. })
    }
}

/// Receiver half of one SA's datapath.
#[derive(Debug, Clone)]
pub struct Inbound<S> {
    sa: SecurityAssociation,
    rx: SfReceiver<S>,
    /// Wire packets that arrived during a wake-up (the §4 buffer, held at
    /// the packet level so payloads survive to delivery). Bounded by
    /// `wakeup_buffer`; overflow is dropped, not stored.
    pending: Vec<Bytes>,
    /// Cap on `pending`: a frame flood while the wake-up SAVE is in
    /// flight must not grow memory without bound.
    wakeup_buffer: usize,
    /// Authentication failures seen (forgeries/corruption).
    auth_failures: u64,
    /// Handle onto the most recent delivery arena. Once the consumer
    /// drops its payload(s), this handle is the unique owner and the
    /// allocation is recycled for the next packet/batch — the
    /// steady-state receive path allocates nothing.
    scratch: Bytes,
}

impl<S: StableStore> Inbound<S> {
    /// An inbound endpoint persisting its right edge in `store` every `k`
    /// advances, with window size `w`.
    pub fn new(sa: SecurityAssociation, store: S, k: u64, w: u64) -> Self {
        let slot = SlotId::receiver(sa.spi());
        Inbound {
            sa,
            rx: SfReceiver::new(store, slot, k, w),
            pending: Vec::new(),
            wakeup_buffer: DEFAULT_WAKEUP_BUFFER,
            auth_failures: 0,
            scratch: Bytes::new(),
        }
    }

    /// Caps the wake-up packet buffer at `limit` frames (clamped to ≥ 1;
    /// default [`DEFAULT_WAKEUP_BUFFER`]). Frames arriving while `Waking`
    /// beyond the cap are reported [`RxResult::DroppedDown`] instead of
    /// growing memory without bound. The same limit is mirrored onto the
    /// inner [`SfReceiver`]'s sequence-number buffer.
    pub fn set_wakeup_buffer(&mut self, limit: usize) {
        self.wakeup_buffer = limit.max(1);
        self.rx.set_buffer_limit(limit);
    }

    /// The configured wake-up packet-buffer cap.
    pub fn wakeup_buffer(&self) -> usize {
        self.wakeup_buffer
    }

    /// The SA this endpoint serves.
    pub fn sa(&self) -> &SecurityAssociation {
        &self.sa
    }

    /// The SAVE/FETCH receiver (window, phase, stats).
    pub fn seq_state(&self) -> &SfReceiver<S> {
        &self.rx
    }

    /// Authentication failures observed so far.
    pub fn auth_failures(&self) -> u64 {
        self.auth_failures
    }

    /// Processes one wire packet: authenticate → anti-replay → decrypt.
    ///
    /// The payload is produced through the recycled arena (no per-packet
    /// allocation after warm-up, provided the consumer drops the previous
    /// payload first). When the input is already a [`Bytes`], prefer
    /// [`Inbound::process_bytes`], which additionally delivers auth-only
    /// payloads as zero-copy slices of the input.
    ///
    /// # Errors
    ///
    /// * [`IpsecError::UnknownSa`] for a foreign SPI.
    /// * [`IpsecError::Wire`] for framing/ICV failures (also counted in
    ///   [`Inbound::auth_failures`]).
    pub fn process(&mut self, wire: &[u8]) -> Result<RxResult, IpsecError> {
        match self.rx.phase() {
            Phase::Down => return Ok(RxResult::DroppedDown),
            Phase::Waking => {
                if self.pending.len() >= self.wakeup_buffer {
                    return Ok(RxResult::DroppedDown);
                }
                self.pending.push(Bytes::copy_from_slice(wire));
                return Ok(RxResult::Buffered);
            }
            Phase::Running => {}
        }
        self.process_running(wire, None)
    }

    /// [`Inbound::process`] for shared buffers: buffering during wake-up
    /// is a reference-count bump, and auth-only payloads come back as
    /// zero-copy slices of `wire`.
    ///
    /// # Errors
    ///
    /// Same as [`Inbound::process`].
    pub fn process_bytes(&mut self, wire: &Bytes) -> Result<RxResult, IpsecError> {
        match self.rx.phase() {
            Phase::Down => return Ok(RxResult::DroppedDown),
            Phase::Waking => {
                if self.pending.len() >= self.wakeup_buffer {
                    return Ok(RxResult::DroppedDown);
                }
                self.pending.push(wire.clone());
                return Ok(RxResult::Buffered);
            }
            Phase::Running => {}
        }
        self.process_running(wire, Some(wire))
    }

    /// Drains a burst of packets for this SA in arrival order.
    ///
    /// Two amortizations over the single-packet path, with results
    /// guaranteed identical to calling [`Inbound::process`] per packet
    /// (differential-tested in `tests/it_suites.rs`):
    ///
    /// * **Batched ICV verification.** All well-framed frames of the
    ///   batch go through [`reset_crypto::CipherSuite::verify_batch`]
    ///   in one call; the HMAC suite's two-pass verifier amortizes the
    ///   one-shot SHA-256 padding assembly and outer-hash bookkeeping
    ///   across the run (see `BENCH_datapath.json`,
    ///   `datapath/icv_batch_64B`). ESN high halves are guessed at the
    ///   batch-start right edge; the rare frame whose guess is
    ///   invalidated by the window advancing across a 2³² boundary
    ///   mid-batch is re-verified individually, preserving sequential
    ///   semantics exactly.
    /// * **One decryption arena.** The whole batch shares one buffer
    ///   (recycled from the previous batch once its payloads were
    ///   dropped), so a gateway draining a NIC queue performs zero
    ///   buffer allocations per delivered packet: non-encrypting suites
    ///   slice the input buffers, encrypting suites slice the arena.
    ///
    /// Per-packet failures (bad ICV, foreign SPI, malformed framing,
    /// store hiccups) are reported in-line as [`RxResult::Rejected`]
    /// without aborting the batch; background SAVEs issued while the
    /// batch advances the window coalesce into the single newest pending
    /// save (the disk queue collapses, see
    /// [`reset_stable::BackgroundSaver::issue`]).
    ///
    /// Memory caveat: every encrypted payload of a batch is a slice of
    /// the one shared arena, so *retaining* any single payload pins the
    /// whole batch's buffer (and forces the next batch to allocate a
    /// fresh arena). Consumers that keep payloads beyond the drain loop
    /// should copy them out (`Bytes::copy_from_slice`).
    ///
    /// # Errors
    ///
    /// Reserved for non-per-packet infrastructure failures; today all
    /// failures are reported in-line and the call returns `Ok`.
    pub fn process_batch(&mut self, wires: &[Bytes]) -> Result<Vec<RxResult>, IpsecError> {
        self.process_batch_gather(wires.len(), wires.iter())
    }

    /// Gather form of [`Inbound::process_batch`]: drains `n` frames
    /// yielded by `wires` — e.g. route indices into a shard-shared batch
    /// — without materializing a contiguous `Vec<Bytes>` first. This *is*
    /// the slice form's implementation, so the two cannot drift.
    pub(crate) fn process_batch_gather<'w, I>(
        &mut self,
        n: usize,
        wires: I,
    ) -> Result<Vec<RxResult>, IpsecError>
    where
        I: Iterator<Item = &'w Bytes> + Clone,
    {
        // The phase only changes through external calls, never inside a
        // drain, so it gates the whole batch at once.
        match self.rx.phase() {
            Phase::Down => return Ok(wires.map(|_| RxResult::DroppedDown).collect()),
            Phase::Waking => {
                return Ok(wires
                    .map(|wire| {
                        if self.pending.len() >= self.wakeup_buffer {
                            RxResult::DroppedDown
                        } else {
                            self.pending.push(wire.clone());
                            RxResult::Buffered
                        }
                    })
                    .collect());
            }
            Phase::Running => {}
        }

        /// Phase-A classification of one frame.
        enum Parsed {
            /// Framing failure (counted as an auth failure, matching the
            /// sequential path).
            Bad(WireError),
            /// Foreign SPI: rejected before any crypto.
            Foreign(u32),
            /// Well-framed; its ICV verdict sits in the batch at `slot`.
            Frame {
                seq_lo: u32,
                payload_len: usize,
                guess_hi: Option<u32>,
                slot: usize,
            },
        }

        // ---- Phase A: parse every frame, then verify all ICVs in one
        // suite call. ESN high halves are inferred against the right
        // edge as of batch start and re-checked in phase B.
        let esn = self.sa.esn();
        let edge0 = self.rx.right_edge().value();
        let cipher = self.sa.cipher();
        let overhead = HEADER_LEN + cipher.iv_len() + cipher.icv_len();
        let body_off = HEADER_LEN + cipher.iv_len();
        let mut parsed: Vec<Parsed> = Vec::with_capacity(n);
        let mut to_verify: Vec<FrameToVerify<'_>> = Vec::with_capacity(n);
        for wire in wires.clone() {
            if wire.len() < 8 {
                parsed.push(Parsed::Bad(WireError::Truncated {
                    needed: 8,
                    got: wire.len(),
                }));
                continue;
            }
            let spi = u32::from_be_bytes(wire[0..4].try_into().expect("fixed"));
            if spi != self.sa.spi() {
                parsed.push(Parsed::Foreign(spi));
                continue;
            }
            // Framing rules shared with the sequential path — one
            // definition in reset_wire, so the two cannot drift.
            let (_, seq_lo, declared) = match check_frame_length(wire, overhead) {
                Ok(parts) => parts,
                Err(e) => {
                    parsed.push(Parsed::Bad(e));
                    continue;
                }
            };
            let (seq, guess_hi) = if esn {
                let inferred = infer_esn(seq_lo, edge0);
                (inferred, Some((inferred >> 32) as u32))
            } else {
                (seq_lo as u64, None)
            };
            let ct_end = wire.len() - cipher.icv_len();
            to_verify.push(FrameToVerify {
                seq,
                header: &wire[..body_off],
                ciphertext: &wire[body_off..ct_end],
                esn_hi: guess_hi,
                icv: &wire[ct_end..],
            });
            parsed.push(Parsed::Frame {
                seq_lo,
                payload_len: declared,
                guess_hi,
                slot: to_verify.len() - 1,
            });
        }
        let mut verdicts: Vec<bool> = Vec::with_capacity(to_verify.len());
        cipher.verify_batch(&to_verify, &mut verdicts);

        // ---- Phase B: consume verdicts in arrival order, driving the
        // window, accounting and the shared decryption arena.
        enum Slot {
            Ready(RxResult),
            /// Delivered, payload decrypted into the arena at `start..start+len`.
            Arena {
                seq: SeqNum,
                start: usize,
                len: usize,
            },
        }
        let mut slots: Vec<Slot> = Vec::with_capacity(n);
        let mut arena = BytesMut::recycle(std::mem::take(&mut self.scratch), 0);
        // Decryption is deferred: Phase B appends raw ciphertext to the
        // arena and records (seq, range) jobs, then one batched suite
        // call below decrypts everything — SIMD backends fill their
        // lanes across packet boundaries.
        let mut decrypt_jobs: Vec<(u64, std::ops::Range<usize>)> = Vec::new();
        for (wire, p) in wires.zip(parsed) {
            let (seq_lo, payload_len, guess_hi, slot) = match p {
                Parsed::Bad(e) => {
                    self.auth_failures += 1;
                    slots.push(Slot::Ready(RxResult::Rejected(RxReject::Wire(e))));
                    continue;
                }
                Parsed::Foreign(spi) => {
                    slots.push(Slot::Ready(RxResult::Rejected(RxReject::UnknownSa { spi })));
                    continue;
                }
                Parsed::Frame {
                    seq_lo,
                    payload_len,
                    guess_hi,
                    slot,
                } => (seq_lo, payload_len, guess_hi, slot),
            };
            let (seq64, esn_hi) = if esn {
                let inferred = infer_esn(seq_lo, self.rx.right_edge().value());
                (inferred, Some((inferred >> 32) as u32))
            } else {
                (seq_lo as u64, None)
            };
            let ok = if esn_hi == guess_hi {
                verdicts[slot]
            } else {
                // The window crossed an ESN boundary mid-batch and
                // invalidated the batch-start guess; re-verify with the
                // live inference, exactly as the sequential path would.
                verify_frame_with(wire, self.sa.cipher(), esn_hi).is_ok()
            };
            if !ok {
                self.auth_failures += 1;
                slots.push(Slot::Ready(RxResult::Rejected(RxReject::Wire(
                    WireError::IcvMismatch,
                ))));
                continue;
            }
            let seq = SeqNum::new(seq64);
            let outcome = match self.rx.receive(seq) {
                Ok(o) => o,
                Err(e) => {
                    // Report in-line like every other per-packet failure:
                    // aborting here would discard the results of packets
                    // that already advanced the window.
                    slots.push(Slot::Ready(RxResult::Rejected(RxReject::Store {
                        reason: e.to_string(),
                    })));
                    continue;
                }
            };
            match outcome {
                RxOutcome::Delivered => {
                    self.sa.account(payload_len);
                    if !self.sa.cipher().encrypts() {
                        // Zero-copy: the payload is a slice of the input.
                        slots.push(Slot::Ready(RxResult::Delivered {
                            payload: wire.slice(body_off..body_off + payload_len),
                            seq,
                        }));
                    } else {
                        let start = arena.len();
                        arena.extend_from_slice(&wire[body_off..body_off + payload_len]);
                        decrypt_jobs.push((seq.value(), start..start + payload_len));
                        slots.push(Slot::Arena {
                            seq,
                            start,
                            len: payload_len,
                        });
                    }
                }
                outcome @ (RxOutcome::DiscardedStale | RxOutcome::DiscardedDuplicate) => {
                    slots.push(Slot::Ready(RxResult::AntiReplay { outcome, seq }));
                }
                RxOutcome::Buffered | RxOutcome::DroppedDown => {
                    unreachable!("phase checked before classification")
                }
            }
        }
        if !decrypt_jobs.is_empty() {
            self.sa
                .cipher()
                .decrypt_batch(arena.as_mut(), &decrypt_jobs);
        }
        let frozen = arena.freeze();
        self.scratch = frozen.clone();
        Ok(slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Ready(r) => r,
                Slot::Arena { seq, start, len } => RxResult::Delivered {
                    payload: frozen.slice(start..start + len),
                    seq,
                },
            })
            .collect())
    }

    /// Where the (possibly encrypted) payload starts inside a frame of
    /// this SA's suite.
    fn body_offset(&self) -> usize {
        HEADER_LEN + self.sa.cipher().iv_len()
    }

    /// Parses and authenticates one frame against this SA. On success
    /// returns the ESN-reconstructed sequence number and the payload
    /// length (the payload sits at `wire[self.body_offset()..][..len]`).
    fn verify_one(&mut self, wire: &[u8]) -> Result<(SeqNum, usize), IpsecError> {
        // Pre-parse SPI and low sequence bits (unauthenticated so far).
        if wire.len() < 8 {
            self.auth_failures += 1;
            return Err(IpsecError::Wire(WireError::Truncated {
                needed: 8,
                got: wire.len(),
            }));
        }
        let spi = u32::from_be_bytes(wire[0..4].try_into().expect("fixed"));
        if spi != self.sa.spi() {
            return Err(IpsecError::UnknownSa { spi });
        }
        let seq_lo = u32::from_be_bytes(wire[4..8].try_into().expect("fixed"));
        let (seq64, esn_hi) = if self.sa.esn() {
            let inferred = infer_esn(seq_lo, self.rx.right_edge().value());
            (inferred, Some((inferred >> 32) as u32))
        } else {
            (seq_lo as u64, None)
        };
        // Authenticate (a wrong ESN guess fails here too). The SA's
        // suite holds precomputed key schedules, so none runs per packet.
        match verify_frame_with(wire, self.sa.cipher(), esn_hi) {
            Ok((_, _, payload_len)) => Ok((SeqNum::new(seq64), payload_len)),
            Err(e) => {
                self.auth_failures += 1;
                Err(e.into())
            }
        }
    }

    /// Appends the (possibly encrypted) `body` to `buf`, decrypting the
    /// appended region in place when the suite encrypts. Returns the
    /// appended range as `(start, len)`. Shared by the single-packet and
    /// batch delivery paths so the suite dispatch lives in one place.
    fn decrypt_append(&self, seq: SeqNum, body: &[u8], buf: &mut BytesMut) -> (usize, usize) {
        let start = buf.len();
        buf.extend_from_slice(body);
        self.sa
            .cipher()
            .decrypt(seq.value(), &mut buf.as_mut()[start..]);
        (start, body.len())
    }

    /// Shared running-phase path. `zc` carries the input as `Bytes` when
    /// the caller has one, enabling zero-copy delivery for auth-only
    /// suites.
    fn process_running(&mut self, wire: &[u8], zc: Option<&Bytes>) -> Result<RxResult, IpsecError> {
        // 1. Authenticate.
        let (seq, payload_len) = self.verify_one(wire)?;
        // 2. Anti-replay window.
        let outcome = self.rx.receive(seq)?;
        match outcome {
            RxOutcome::Delivered => {
                // 3. Decrypt and deliver.
                self.sa.account(payload_len);
                let start = self.body_offset();
                let payload = match zc {
                    Some(shared) if !self.sa.cipher().encrypts() => {
                        // Zero-copy: the payload is a slice of the input.
                        shared.slice(start..start + payload_len)
                    }
                    _ => {
                        // Copy into the recycled arena (and decrypt in
                        // place when the suite encrypts).
                        let mut buf =
                            BytesMut::recycle(std::mem::take(&mut self.scratch), payload_len);
                        self.decrypt_append(seq, &wire[start..start + payload_len], &mut buf);
                        let payload = buf.freeze();
                        self.scratch = payload.clone();
                        payload
                    }
                };
                Ok(RxResult::Delivered { payload, seq })
            }
            RxOutcome::DiscardedStale | RxOutcome::DiscardedDuplicate => {
                Ok(RxResult::AntiReplay { outcome, seq })
            }
            RxOutcome::Buffered | RxOutcome::DroppedDown => {
                unreachable!("phase checked before classification")
            }
        }
    }

    /// Background SAVE completion.
    ///
    /// # Errors
    ///
    /// Store failures (retryable).
    pub fn save_completed(&mut self) -> Result<(), StableError> {
        self.rx.save_completed().map(|_| ())
    }

    /// Reset: the window and any buffered packets are lost.
    pub fn reset(&mut self) {
        self.rx.reset();
        self.pending.clear();
    }

    /// First half of wake-up (FETCH + leap + issue synchronous SAVE);
    /// packets arriving until [`finish_wakeup`](Self::finish_wakeup) are
    /// buffered.
    ///
    /// # Errors
    ///
    /// Store failures.
    pub fn begin_wakeup(&mut self) -> Result<SeqNum, StableError> {
        self.rx.begin_wakeup()
    }

    /// Second half of wake-up: rebuild the window at the leaped edge and
    /// classify every buffered packet in arrival order.
    ///
    /// # Errors
    ///
    /// Store failures leave the endpoint `Waking` (retry); wire errors on
    /// buffered packets are reported per-packet inside the result vector
    /// as dropped (auth failures are counted).
    pub fn finish_wakeup(&mut self) -> Result<Vec<RxResult>, StableError> {
        self.rx.finish_wakeup()?;
        let pending = std::mem::take(&mut self.pending);
        let results = pending
            .into_iter()
            .map(|wire| match self.process_running(&wire, Some(&wire)) {
                Ok(r) => r,
                Err(_) => RxResult::DroppedDown, // unauthenticated buffered junk
            })
            .collect();
        Ok(results)
    }

    /// Atomic wake-up; returns classified buffered packets (normally
    /// empty since nothing arrived in between).
    ///
    /// # Errors
    ///
    /// Store failures.
    pub fn wake_up(&mut self) -> Result<Vec<RxResult>, StableError> {
        self.begin_wakeup()?;
        self.finish_wakeup()
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.rx.phase()
    }

    /// Mutable access to the persistent store — SA teardown (erase
    /// `SlotId::receiver(spi)`) and fault-injection tests.
    pub fn store_mut(&mut self) -> &mut S {
        self.rx.store_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::{CryptoSuite, SaKeys};
    use reset_stable::MemStable;

    fn endpoints(k: u64, w: u64) -> (Outbound<MemStable>, Inbound<MemStable>) {
        let keys = SaKeys::derive(b"shared-secret", b"a->b");
        let sa = SecurityAssociation::new(0x55, keys);
        (
            Outbound::new(sa.clone(), MemStable::new(), k),
            Inbound::new(sa, MemStable::new(), k, w),
        )
    }

    #[test]
    fn end_to_end_traffic() {
        let (mut tx, mut rx) = endpoints(25, 64);
        for i in 0..100u64 {
            let payload = format!("packet {i}");
            let wire = tx.protect(payload.as_bytes()).unwrap().unwrap();
            match rx.process(&wire).unwrap() {
                RxResult::Delivered { payload: got, seq } => {
                    assert_eq!(got, payload.as_bytes());
                    assert_eq!(seq.value(), i + 1);
                }
                other => panic!("packet {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn payload_is_actually_encrypted() {
        let (mut tx, _) = endpoints(25, 64);
        let wire = tx.protect(b"supersecret").unwrap().unwrap();
        let haystack = wire.to_vec();
        let needle = b"supersecret";
        let found = haystack.windows(needle.len()).any(|w| w == needle);
        assert!(!found, "plaintext leaked onto the wire");
    }

    #[test]
    fn auth_only_suite_skips_encryption() {
        let keys = SaKeys::derive(b"s", b"d");
        let sa = SecurityAssociation::new(1, keys).with_suite(CryptoSuite::HmacSha256AuthOnly);
        let mut tx = Outbound::new(sa.clone(), MemStable::new(), 25);
        let mut rx = Inbound::new(sa, MemStable::new(), 25, 64);
        let wire = tx.protect(b"visible").unwrap().unwrap();
        assert!(wire.windows(7).any(|w| w == b"visible"));
        assert!(rx.process(&wire).unwrap().is_delivered());
    }

    #[test]
    fn replayed_packet_rejected_by_window_not_auth() {
        let (mut tx, mut rx) = endpoints(25, 64);
        let wire = tx.protect(b"x").unwrap().unwrap();
        assert!(rx.process(&wire).unwrap().is_delivered());
        match rx.process(&wire).unwrap() {
            RxResult::AntiReplay { outcome, seq } => {
                assert_eq!(outcome, RxOutcome::DiscardedDuplicate);
                assert_eq!(seq.value(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(rx.auth_failures(), 0, "replay authenticates fine");
    }

    #[test]
    fn forged_packet_rejected_by_auth() {
        let (mut tx, mut rx) = endpoints(25, 64);
        let wire = tx.protect(b"x").unwrap().unwrap();
        let mut forged = wire.to_vec();
        let n = forged.len();
        forged[n - 1] ^= 0xFF;
        assert!(rx.process(&forged).is_err());
        assert_eq!(rx.auth_failures(), 1);
    }

    #[test]
    fn foreign_spi_rejected() {
        let (mut tx, _) = endpoints(25, 64);
        let keys = SaKeys::derive(b"shared-secret", b"a->b");
        let other_sa = SecurityAssociation::new(0x99, keys);
        let mut other_rx = Inbound::new(other_sa, MemStable::new(), 25, 64);
        let wire = tx.protect(b"x").unwrap().unwrap();
        assert!(matches!(
            other_rx.process(&wire),
            Err(IpsecError::UnknownSa { spi: 0x55 })
        ));
    }

    #[test]
    fn receiver_reset_then_wakeup_blocks_all_replays() {
        let (mut tx, mut rx) = endpoints(10, 64);
        let mut recorded = Vec::new();
        for _ in 0..30 {
            let wire = tx.protect(b"data").unwrap().unwrap();
            recorded.push(wire.clone());
            rx.process(&wire).unwrap();
        }
        // Let the receiver's background save land, then crash it.
        rx.save_completed().unwrap();
        rx.reset();
        assert_eq!(rx.process(&recorded[0]).unwrap(), RxResult::DroppedDown);
        rx.wake_up().unwrap();
        // Full history replay: nothing delivered.
        for wire in &recorded {
            let r = rx.process(wire).unwrap();
            assert!(!r.is_delivered(), "replay accepted: {r:?}");
        }
        // Fresh traffic beyond the leap flows once the sender catches up.
        let edge = rx.seq_state().right_edge().value();
        for _ in 0..(2 * 10 + 5) {
            let wire = tx.protect(b"new").unwrap().unwrap();
            let _ = rx.process(&wire).unwrap();
        }
        assert!(
            rx.seq_state().right_edge().value() > edge,
            "traffic resumed past the leap"
        );
    }

    #[test]
    fn sender_reset_resumes_fresh_without_discards() {
        let (mut tx, mut rx) = endpoints(10, 128);
        let mut delivered = 0u64;
        let mut sent = 0u64;
        for round in 0..100u64 {
            if round == 50 {
                tx.save_completed().unwrap();
                tx.reset();
                assert!(tx.protect(b"down").unwrap().is_none());
                tx.wake_up().unwrap();
            }
            if let Some(wire) = tx.protect(b"payload").unwrap() {
                sent += 1;
                if rx.process(&wire).unwrap().is_delivered() {
                    delivered += 1;
                }
            }
        }
        assert_eq!(sent, delivered, "condition (i): no fresh loss");
    }

    #[test]
    fn buffered_packets_resolved_after_wakeup() {
        let (mut tx, mut rx) = endpoints(5, 64);
        for _ in 0..12 {
            let wire = tx.protect(b"pre").unwrap().unwrap();
            rx.process(&wire).unwrap();
        }
        rx.save_completed().unwrap();
        rx.reset();
        rx.begin_wakeup().unwrap();
        // Old replay + genuinely fresh packet arrive during the wake-up
        // SAVE. (Sender counter is ahead of the leaped edge? Ensure fresh:
        // push sender far forward first.)
        for _ in 0..30 {
            tx.protect(b"skip").unwrap();
        }
        let fresh = tx.protect(b"fresh").unwrap().unwrap();
        assert_eq!(rx.process(&fresh).unwrap(), RxResult::Buffered);
        let results = rx.finish_wakeup().unwrap();
        assert_eq!(results.len(), 1);
        assert!(results[0].is_delivered(), "{results:?}");
    }

    #[test]
    fn esn_stream_crosses_32bit_boundary() {
        // Start the sender near the 2^32 boundary by leaping it there:
        // simulate with a store that already holds a huge counter.
        use reset_stable::{SlotId, StableStore};
        let keys = SaKeys::derive(b"s", b"d");
        let sa = SecurityAssociation::new(3, keys);
        let mut store = MemStable::new();
        let start = (1u64 << 32) - 5;
        store.store(SlotId::sender(3), start).unwrap();
        let mut tx = Outbound::new(sa.clone(), store, 10);
        // Wake from "reset" to adopt the stored counter (+2K leap).
        tx.reset();
        let resumed = tx.wake_up().unwrap();
        assert!(resumed.value() > u32::MAX as u64 - 30);

        // The receiver's last durable edge trails the sender's by one
        // save interval (2K = 20), so its leap lands exactly at `start`
        // and the sender's resumed counter is strictly beyond it.
        let mut rx_store = MemStable::new();
        rx_store.store(SlotId::receiver(3), start - 20).unwrap();
        let mut rx = Inbound::new(sa, rx_store, 10, 64);
        rx.reset();
        rx.wake_up().unwrap();

        for i in 0..50u64 {
            let wire = tx.protect(format!("p{i}").as_bytes()).unwrap().unwrap();
            let r = rx.process(&wire).unwrap();
            assert!(r.is_delivered(), "packet {i} across boundary: {r:?}");
        }
        assert!(rx.seq_state().right_edge().value() > u32::MAX as u64);
    }

    #[test]
    fn process_batch_matches_sequential_process() {
        let (mut tx, mut rx_seq) = endpoints(25, 128);
        let mut rx_batch = rx_seq.clone();
        let mut wires: Vec<Bytes> = Vec::new();
        for i in 0..60u64 {
            wires.push(tx.protect(format!("m{i}").as_bytes()).unwrap().unwrap());
        }
        // Mix in replays and a forgery.
        wires.push(wires[3].clone());
        wires.push(wires[10].clone());
        let mut forged = wires[5].to_vec();
        forged[HEADER_LEN] ^= 0xAA;
        wires.push(Bytes::from(forged));

        let batch = rx_batch.process_batch(&wires).unwrap();
        assert_eq!(batch.len(), wires.len());
        for (i, wire) in wires.iter().enumerate() {
            let single = match rx_seq.process(wire) {
                Ok(r) => r,
                Err(IpsecError::Wire(e)) => RxResult::Rejected(RxReject::Wire(e)),
                Err(IpsecError::UnknownSa { spi }) => {
                    RxResult::Rejected(RxReject::UnknownSa { spi })
                }
                Err(other) => panic!("{other}"),
            };
            assert_eq!(batch[i], single, "packet {i}");
        }
        assert_eq!(rx_batch.auth_failures(), rx_seq.auth_failures());
    }

    #[test]
    fn batch_payloads_share_one_arena() {
        let (mut tx, mut rx) = endpoints(25, 128);
        let wires: Vec<Bytes> = (0..8u64)
            .map(|i| {
                tx.protect(format!("payload {i}").as_bytes())
                    .unwrap()
                    .unwrap()
            })
            .collect();
        let results = rx.process_batch(&wires).unwrap();
        let payloads: Vec<&Bytes> = results
            .iter()
            .map(|r| match r {
                RxResult::Delivered { payload, .. } => payload,
                other => panic!("{other:?}"),
            })
            .collect();
        // All delivered payloads point into one contiguous arena.
        let base = payloads[0].as_ptr() as usize;
        let mut offset = 0usize;
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(p.as_ptr() as usize, base + offset, "payload {i}");
            assert_eq!(&p[..], format!("payload {i}").as_bytes());
            offset += p.len();
        }
    }

    #[test]
    fn steady_state_recycles_the_arena() {
        // When the consumer drops each payload before the next packet,
        // the delivery buffer is reclaimed: the same allocation serves
        // every packet.
        let (mut tx, mut rx) = endpoints(25, 128);
        // Warm-up packet establishes the arena.
        let w0 = tx.protect(&[0u8; 64]).unwrap().unwrap();
        let first = match rx.process(&w0).unwrap() {
            RxResult::Delivered { payload, .. } => payload.as_ptr() as usize,
            other => panic!("{other:?}"),
        }; // payload dropped here
        for _ in 0..32 {
            let wire = tx.protect(&[7u8; 64]).unwrap().unwrap();
            match rx.process(&wire).unwrap() {
                RxResult::Delivered { payload, .. } => {
                    assert_eq!(payload.as_ptr() as usize, first, "arena was reallocated");
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn auth_only_process_bytes_is_zero_copy() {
        let keys = SaKeys::derive(b"s", b"d");
        let sa = SecurityAssociation::new(4, keys).with_suite(CryptoSuite::HmacSha256AuthOnly);
        let mut tx = Outbound::new(sa.clone(), MemStable::new(), 25);
        let mut rx = Inbound::new(sa, MemStable::new(), 25, 64);
        let wire = tx.protect(b"view me in place").unwrap().unwrap();
        match rx.process_bytes(&wire).unwrap() {
            RxResult::Delivered { payload, .. } => {
                let wire_range = wire.as_ptr() as usize..wire.as_ptr() as usize + wire.len();
                assert!(
                    wire_range.contains(&(payload.as_ptr() as usize)),
                    "payload must be a slice of the input"
                );
                assert_eq!(&payload[..], b"view me in place");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn every_suite_runs_end_to_end_with_batch_parity() {
        for &suite in CryptoSuite::ALL {
            let keys = SaKeys::derive(b"suite-e2e", b"d");
            let sa = SecurityAssociation::new(0x61, keys).with_suite(suite);
            let mut tx = Outbound::new(sa.clone(), MemStable::new(), 25);
            let mut rx_seq = Inbound::new(sa, MemStable::new(), 25, 128);
            let mut rx_batch = rx_seq.clone();
            let mut wires: Vec<Bytes> = (0..40u64)
                .map(|i| tx.protect(format!("s{i}").as_bytes()).unwrap().unwrap())
                .collect();
            wires.push(wires[2].clone()); // replay
            let mut forged = wires[5].to_vec();
            let n = forged.len();
            forged[n - 1] ^= 0x10; // tag corruption
            wires.push(Bytes::from(forged));
            let batch = rx_batch.process_batch(&wires).unwrap();
            for (i, wire) in wires.iter().enumerate() {
                let single = match rx_seq.process_bytes(wire) {
                    Ok(r) => r,
                    Err(IpsecError::Wire(e)) => RxResult::Rejected(RxReject::Wire(e)),
                    Err(IpsecError::UnknownSa { spi }) => {
                        RxResult::Rejected(RxReject::UnknownSa { spi })
                    }
                    Err(other) => panic!("{other}"),
                };
                assert_eq!(batch[i], single, "{suite:?} packet {i}");
            }
            assert_eq!(
                rx_batch.auth_failures(),
                rx_seq.auth_failures(),
                "{suite:?}"
            );
            assert_eq!(
                rx_batch.auth_failures(),
                1,
                "{suite:?}: exactly the forgery"
            );
        }
    }

    #[test]
    fn aead_frames_are_longer_but_confidential() {
        let keys = SaKeys::derive(b"aead", b"d");
        let sa = SecurityAssociation::new(0x62, keys).with_suite(CryptoSuite::ChaCha20Poly1305);
        let mut tx = Outbound::new(sa.clone(), MemStable::new(), 25);
        let mut rx = Inbound::new(sa, MemStable::new(), 25, 64);
        let wire = tx.protect(b"supersecret").unwrap().unwrap();
        // 16-byte Poly1305 tag instead of the 12-byte HMAC ICV.
        assert_eq!(wire.len(), HEADER_LEN + b"supersecret".len() + 16);
        assert!(!wire.windows(11).any(|w| w == b"supersecret"));
        match rx.process(&wire).unwrap() {
            RxResult::Delivered { payload, seq } => {
                assert_eq!(&payload[..], b"supersecret");
                assert_eq!(seq.value(), 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn frames_from_a_different_suite_fail_authentication() {
        // Same keys, different negotiated suite: every frame must be
        // rejected by the ICV check, not misparsed.
        let keys = SaKeys::derive(b"cross", b"d");
        let legacy = SecurityAssociation::new(0x63, keys.clone())
            .with_suite(CryptoSuite::HmacSha256WithKeystream);
        let aead = SecurityAssociation::new(0x63, keys).with_suite(CryptoSuite::ChaCha20Poly1305);
        let mut tx_legacy = Outbound::new(legacy.clone(), MemStable::new(), 25);
        let mut tx_aead = Outbound::new(aead.clone(), MemStable::new(), 25);
        let mut rx_legacy = Inbound::new(legacy, MemStable::new(), 25, 64);
        let mut rx_aead = Inbound::new(aead, MemStable::new(), 25, 64);
        for _ in 0..5 {
            let from_legacy = tx_legacy.protect(b"legacy frame").unwrap().unwrap();
            let from_aead = tx_aead.protect(b"aead frame").unwrap().unwrap();
            assert!(rx_aead.process(&from_legacy).is_err(), "stale-suite frame");
            assert!(rx_legacy.process(&from_aead).is_err(), "future-suite frame");
            assert!(rx_legacy.process(&from_legacy).unwrap().is_delivered());
            assert!(rx_aead.process(&from_aead).unwrap().is_delivered());
        }
        assert_eq!(rx_aead.auth_failures(), 5);
        assert_eq!(rx_legacy.auth_failures(), 5);
    }

    #[test]
    fn batch_during_wakeup_buffers_then_resolves() {
        let (mut tx, mut rx) = endpoints(5, 64);
        for _ in 0..12 {
            let wire = tx.protect(b"pre").unwrap().unwrap();
            rx.process(&wire).unwrap();
        }
        rx.save_completed().unwrap();
        rx.reset();
        rx.begin_wakeup().unwrap();
        for _ in 0..30 {
            tx.protect(b"skip").unwrap();
        }
        let fresh: Vec<Bytes> = (0..3)
            .map(|_| tx.protect(b"fresh").unwrap().unwrap())
            .collect();
        let during = rx.process_batch(&fresh).unwrap();
        assert!(during.iter().all(|r| *r == RxResult::Buffered));
        let resolved = rx.finish_wakeup().unwrap();
        assert_eq!(resolved.len(), 3);
        assert!(resolved.iter().all(|r| r.is_delivered()), "{resolved:?}");
    }

    #[test]
    fn wakeup_packet_buffer_is_bounded() {
        // Regression: pre-fix code buffered every frame arriving during
        // Waking without bound — a mid-wake-up frame flood was an OOM
        // vector. The cap drops overflow as DroppedDown.
        let (mut tx, mut rx) = endpoints(5, 32);
        rx.set_wakeup_buffer(4);
        assert_eq!(rx.wakeup_buffer(), 4);
        let wire = tx.protect(b"pre").unwrap().unwrap();
        rx.process(&wire).unwrap();
        rx.reset();
        rx.begin_wakeup().unwrap();
        // Push the sender past the leaped edge so buffered frames are
        // genuinely fresh.
        for _ in 0..20 {
            tx.protect(b"skip").unwrap();
        }
        let flood: Vec<Bytes> = (0..10)
            .map(|_| tx.protect(b"flood").unwrap().unwrap())
            .collect();
        for (i, wire) in flood.iter().enumerate() {
            let want = if i < 4 {
                RxResult::Buffered
            } else {
                RxResult::DroppedDown
            };
            assert_eq!(rx.process_bytes(wire).unwrap(), want, "frame {i}");
        }
        let resolved = rx.finish_wakeup().unwrap();
        assert_eq!(resolved.len(), 4, "only the capped buffer is classified");
        assert!(resolved.iter().all(|r| r.is_delivered()), "{resolved:?}");

        // The batch path honors the same cap.
        rx.reset();
        rx.begin_wakeup().unwrap();
        let batch: Vec<Bytes> = (0..6)
            .map(|_| tx.protect(b"batch").unwrap().unwrap())
            .collect();
        let during = rx.process_batch(&batch).unwrap();
        assert_eq!(
            during.iter().filter(|r| **r == RxResult::Buffered).count(),
            4
        );
        assert_eq!(
            during
                .iter()
                .filter(|r| **r == RxResult::DroppedDown)
                .count(),
            2
        );
    }
}

//! The `Gateway` engine: one event-driven entry point over the whole
//! IPsec substrate.
//!
//! Everything the paper's receiver-under-reset story needs — the SADB,
//! the ESP datapath, SAVE/FETCH recovery, DPD, lifetime-driven rekeys —
//! previously had to be hand-wired per experiment. A [`Gateway`] owns
//! all of it behind four verbs:
//!
//! * [`Gateway::protect`] — seal application data on an outbound SA;
//! * [`Gateway::push_wire`] / [`Gateway::push_wire_batch`] — feed
//!   received frames in; nothing is returned in-line, every per-packet
//!   verdict becomes a [`GatewayEvent`];
//! * [`Gateway::tick`] — advance wall-clock policies (DPD probing and
//!   grace expiry, lifetime-driven rekeys);
//! * [`Gateway::poll_events`] — drain what happened, in order.
//!
//! Resets are first-class: [`Gateway::reset`] models the host crash,
//! [`Gateway::recover`] (or the [`Gateway::begin_recover`] /
//! [`Gateway::finish_recover`] halves, for timed drivers that model the
//! wake-up SAVE's latency) runs the paper's FETCH + `2K` leap over every
//! SA and reports `Recovered`.
//!
//! Construction goes through [`GatewayBuilder`]: cipher suite, window
//! size, save interval, the persistent-store factory, and the optional
//! rekey/DPD policies are fixed up front, then SAs are added with
//! [`Gateway::add_peer`] (symmetric shortcut) or
//! [`Gateway::install_pair`] (e.g. from [`crate::run_handshake`]).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::time::Instant;

use bytes::Bytes;
use reset_crypto::hmac_sha256;
use reset_stable::{MemStable, SlotId, StableError, StableStore};
use reset_telemetry::{EventKind, Severity, Telemetry};

use anti_replay::{Phase, RxOutcome, SeqNum};

use crate::dpd::{DpdAction, DpdConfig, DpdDetector};
use crate::esp::{RxReject, RxResult};
use crate::rekey::{rekey, rekey_due, RekeyRequest};
use crate::sa::{CryptoSuite, SaKeys, SaLifetime, SecurityAssociation};
use crate::sadb::{RemovedSa, Sadb};
use crate::timer::TimerWheel;
use crate::IpsecError;

/// Which directional endpoint a store is being created for (the
/// argument to the [`GatewayBuilder::with_stores`] factory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaDirection {
    /// The sender half (persists the send counter).
    Outbound,
    /// The receiver half (persists the window's right edge).
    Inbound,
}

/// One sealed outbound frame: the wire bytes plus the sequence number
/// the frame carries (the harness monitor and tests correlate on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentFrame {
    /// The SA that sealed the frame.
    pub spi: u32,
    /// The full (64-bit) sequence number sealed into the frame.
    pub seq: SeqNum,
    /// The wire bytes.
    pub wire: Bytes,
}

/// What happened inside the gateway, in order. Drained by
/// [`Gateway::poll_events`]; each pushed frame produces exactly one of
/// the first six variants, lifecycle operations append the rest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayEvent {
    /// A frame authenticated, passed the anti-replay window, and its
    /// payload was delivered.
    Delivered {
        /// Receiving SA.
        spi: u32,
        /// ESN-reconstructed sequence number.
        seq: SeqNum,
        /// Decrypted payload.
        payload: Bytes,
    },
    /// A frame authenticated but the anti-replay window rejected it —
    /// a replay (or a fresh frame sacrificed inside the post-recovery
    /// leap, which the paper bounds by `2K`).
    ReplayDropped {
        /// Receiving SA.
        spi: u32,
        /// The rejected sequence number.
        seq: SeqNum,
        /// Stale or duplicate.
        outcome: RxOutcome,
    },
    /// A frame failed framing or ICV verification (forged, corrupted,
    /// or sealed under different keys/suite). `spi` is 0 when the frame
    /// was too short to carry one.
    AuthFailed {
        /// The SPI the frame named (0 if unparseable).
        spi: u32,
    },
    /// A frame named an SPI with no installed inbound SA.
    UnknownSa {
        /// The unknown SPI.
        spi: u32,
    },
    /// A frame arrived during a wake-up and was buffered; its verdict
    /// follows [`Gateway::finish_recover`] as a normal
    /// `Delivered`/`ReplayDropped` event.
    Buffered {
        /// Receiving SA.
        spi: u32,
    },
    /// A frame arrived while the gateway was down and evaporated.
    DroppedDown {
        /// Receiving SA.
        spi: u32,
    },
    /// The rekey policy found an SA due and began a quick-mode rekey.
    RekeyStarted {
        /// The SA being rekeyed.
        spi: u32,
    },
    /// The rekey completed; the SA now runs fresh keys (and counters)
    /// under `suite`.
    RekeyCompleted {
        /// The rekeyed SA.
        spi: u32,
        /// The replacement SA's transform.
        suite: CryptoSuite,
    },
    /// DPD wants an R-U-THERE probe sent for this SA pair (the caller
    /// owns actual transmission — the gateway has no wire of its own).
    ProbeDue {
        /// The silent peer's SA.
        spi: u32,
    },
    /// DPD's bounded grace period expired without the peer recovering;
    /// the SA pair was torn down (the paper's "the wait cannot be
    /// unbounded" rule).
    PeerDead {
        /// The torn-down SA.
        spi: u32,
    },
    /// SAVE/FETCH recovery completed: `sas` SA directions woke up via
    /// FETCH + `2K` leap (compare one IKE handshake *per SA* for the
    /// IETF remedy).
    Recovered {
        /// SA directions recovered.
        sas: usize,
    },
    /// An SA's wake-up FETCH hit untrusted persistent state — a torn or
    /// corrupt record, or a store serving an *older* generation than the
    /// SA last acknowledged durable (rollback) — and recovery **failed
    /// closed**: no window leaped from that state is safe, so instead of
    /// resurrecting replayable counters the gateway replaced the SA with
    /// a fresh generation (fresh keys, fresh counters; recorded replays
    /// die at authentication). A peer gateway sharing the builder's
    /// `skeyid` re-synchronizes by performing the same rekey generation
    /// ([`Gateway::rekey_now`]).
    FailedClosed {
        /// The replaced SA.
        spi: u32,
        /// The store error that made the persisted state untrusted.
        reason: String,
    },
}

/// The telemetry [`EventKind`] a [`GatewayEvent`] counts as (the enums
/// mirror each other variant-for-variant; telemetry sits below this
/// crate, so the mapping lives here).
fn event_kind(ev: &GatewayEvent) -> EventKind {
    match ev {
        GatewayEvent::Delivered { .. } => EventKind::Delivered,
        GatewayEvent::ReplayDropped { .. } => EventKind::ReplayDropped,
        GatewayEvent::AuthFailed { .. } => EventKind::AuthFailed,
        GatewayEvent::UnknownSa { .. } => EventKind::UnknownSa,
        GatewayEvent::Buffered { .. } => EventKind::Buffered,
        GatewayEvent::DroppedDown { .. } => EventKind::DroppedDown,
        GatewayEvent::RekeyStarted { .. } => EventKind::RekeyStarted,
        GatewayEvent::RekeyCompleted { .. } => EventKind::RekeyCompleted,
        GatewayEvent::ProbeDue { .. } => EventKind::ProbeDue,
        GatewayEvent::PeerDead { .. } => EventKind::PeerDead,
        GatewayEvent::Recovered { .. } => EventKind::Recovered,
        GatewayEvent::FailedClosed { .. } => EventKind::FailedClosed,
    }
}

/// Builds a [`Gateway`]: engine-wide policy is fixed here, SAs are
/// added to the built engine afterwards.
///
/// # Examples
///
/// ```
/// use reset_ipsec::{GatewayBuilder, CryptoSuite};
///
/// let mut gw = GatewayBuilder::in_memory()
///     .suite(CryptoSuite::ChaCha20Poly1305)
///     .save_interval(25)
///     .window(64)
///     .build();
/// gw.add_peer(0x1001, b"master-secret");
/// let frame = gw.protect(0x1001, b"hello")?.expect("endpoint up");
/// assert_eq!(frame.seq.value(), 1);
/// # Ok::<(), reset_ipsec::IpsecError>(())
/// ```
pub struct GatewayBuilder<S> {
    pub(crate) suite: CryptoSuite,
    pub(crate) k: u64,
    pub(crate) w: u64,
    pub(crate) rekey_after: Option<SaLifetime>,
    pub(crate) dpd: Option<DpdConfig>,
    pub(crate) skeyid: Vec<u8>,
    pub(crate) shards: Option<usize>,
    pub(crate) wakeup_buffer: usize,
    pub(crate) telemetry: Option<Telemetry>,
    pub(crate) make_store: Box<dyn FnMut(u32, SaDirection) -> S + Send>,
}

impl GatewayBuilder<MemStable> {
    /// A builder whose SAs persist to fresh in-memory stores — the
    /// simulation default.
    pub fn in_memory() -> Self {
        GatewayBuilder::with_stores(|_, _| MemStable::new())
    }
}

impl<S: StableStore> GatewayBuilder<S> {
    /// A builder creating one persistent store per SA direction through
    /// `make_store` (e.g. a [`reset_stable::FileStable`] directory per
    /// SPI).
    pub fn with_stores(make_store: impl FnMut(u32, SaDirection) -> S + Send + 'static) -> Self {
        GatewayBuilder {
            suite: CryptoSuite::default(),
            k: 25, // the paper's calibrated Pentium-III save interval
            w: 64,
            rekey_after: None,
            dpd: None,
            skeyid: b"gateway-phase1-skeyid".to_vec(),
            shards: None,
            wakeup_buffer: anti_replay::machine::DEFAULT_WAKEUP_BUFFER,
            telemetry: None,
            make_store: Box::new(make_store),
        }
    }

    /// Cipher suite applied to SAs added via [`Gateway::add_peer`] and
    /// to policy-driven rekeys. Default: [`CryptoSuite::default()`].
    pub fn suite(mut self, suite: CryptoSuite) -> Self {
        self.suite = suite;
        self
    }

    /// SAVE interval `K` (packets between background counter saves).
    /// Default 25.
    pub fn save_interval(mut self, k: u64) -> Self {
        self.k = k;
        self
    }

    /// Anti-replay window size `w`. Default 64.
    pub fn window(mut self, w: u64) -> Self {
        self.w = w;
        self
    }

    /// Enables the rekey policy: an SA whose usage reaches `lifetime` is
    /// marked in a due-set at accounting time (protect/deliver/install —
    /// wherever usage state changes), and the next [`Gateway::tick`]
    /// quick-mode-rekeys exactly the marked SAs (fresh keys and counters
    /// under the builder's suite; the adversary's replay library dies
    /// with the old keys). No per-tick fleet sweep happens: an idle tick
    /// stays O(1) no matter how large the SADB is. Disabled by default.
    pub fn rekey_after(mut self, lifetime: SaLifetime) -> Self {
        self.rekey_after = Some(lifetime);
        self
    }

    /// Enables dead-peer detection: [`Gateway::tick`] emits
    /// [`GatewayEvent::ProbeDue`] after silence and tears the pair down
    /// ([`GatewayEvent::PeerDead`]) when the §6 grace period expires.
    /// Probe/teardown deadlines live in a hierarchical timer wheel, so a
    /// tick visits only detectors whose deadline has arrived — never the
    /// whole fleet. Disabled by default.
    pub fn dpd(mut self, cfg: DpdConfig) -> Self {
        self.dpd = Some(cfg);
        self
    }

    /// The phase-1 shared secret rekeys derive from. Two gateways that
    /// share it (and the same suite/policies) derive identical
    /// replacement SAs from the same rekey generation.
    pub fn skeyid(mut self, skeyid: &[u8]) -> Self {
        self.skeyid = skeyid.to_vec();
        self
    }

    /// Worker-shard count for [`GatewayBuilder::build_sharded`] (clamped
    /// to ≥ 1). Ignored by [`GatewayBuilder::build`]. Default: the
    /// host's available parallelism.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Per-SPI cap on frames buffered while a wake-up SAVE is in flight
    /// (clamped to ≥ 1). Overflow is dropped, not stored — without a cap
    /// a frame flood aimed at a recovering SA grows its buffer without
    /// bound. Default:
    /// [`anti_replay::machine::DEFAULT_WAKEUP_BUFFER`].
    pub fn wakeup_buffer(mut self, limit: usize) -> Self {
        self.wakeup_buffer = limit.max(1);
        self
    }

    /// Attaches a shared [`Telemetry`] handle: the gateway then records
    /// per-event-kind counts, batch drain latencies, queue depths,
    /// recover/rekey latencies, per-SA-class lifecycle counters, and a
    /// lifecycle trace into it. Strictly opt-in — without a handle every
    /// recording site is a single `Option` branch, so the uninstrumented
    /// datapath cost is unchanged. [`GatewayBuilder::build_sharded`]
    /// clones the handle into every shard, attributing each shard's
    /// events to its own slot (size the handle with
    /// `Telemetry::with_shards` accordingly).
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Builds the engine (no SAs installed yet).
    pub fn build(self) -> Gateway<S> {
        Gateway {
            sadb: Sadb::new(),
            suite: self.suite,
            k: self.k,
            w: self.w,
            rekey_after: self.rekey_after,
            dpd_cfg: self.dpd,
            skeyid: self.skeyid,
            wakeup_buffer: self.wakeup_buffer,
            telemetry: self.telemetry,
            shard_index: 0,
            recover_started: None,
            make_store: self.make_store,
            dpd: BTreeMap::new(),
            dpd_unarmed: BTreeSet::new(),
            timer: TimerWheel::new(),
            dpd_timer: BTreeMap::new(),
            timer_scratch: Vec::new(),
            rekey_due: BTreeSet::new(),
            rekey_generation: BTreeMap::new(),
            pending_fail_closed: Vec::new(),
            events: VecDeque::new(),
            now_ns: 0,
        }
    }
}

impl<S> fmt::Debug for GatewayBuilder<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GatewayBuilder")
            .field("suite", &self.suite)
            .field("k", &self.k)
            .field("w", &self.w)
            .field("rekey_after", &self.rekey_after)
            .field("dpd", &self.dpd)
            .field("shards", &self.shards)
            .finish_non_exhaustive()
    }
}

/// The engine: owns the SADB and every lifecycle manager, exposes the
/// event-driven surface described in the [crate docs](crate).
///
/// # Examples
///
/// The §3 attack in six lines — record, reset, recover, replay:
///
/// ```
/// use reset_ipsec::{GatewayBuilder, GatewayEvent};
///
/// let mut p = GatewayBuilder::in_memory().build();
/// let mut q = GatewayBuilder::in_memory().build();
/// p.add_peer(7, b"shared-master");
/// q.add_peer(7, b"shared-master");
///
/// let frame = p.protect(7, b"secret")?.expect("up");
/// q.push_wire(&frame.wire)?;
/// q.save_completed()?; // the background SAVE reaches the disk
/// q.reset();
/// q.recover()?; // FETCH + 2K leap
/// q.push_wire(&frame.wire)?; // the adversary replays
/// let events = q.poll_events();
/// assert!(matches!(events[0], GatewayEvent::Delivered { .. }));
/// assert!(matches!(events[1], GatewayEvent::Recovered { .. }));
/// assert!(matches!(events[2], GatewayEvent::ReplayDropped { .. }));
/// # Ok::<(), reset_ipsec::IpsecError>(())
/// ```
pub struct Gateway<S> {
    sadb: Sadb<S>,
    suite: CryptoSuite,
    k: u64,
    w: u64,
    rekey_after: Option<SaLifetime>,
    dpd_cfg: Option<DpdConfig>,
    skeyid: Vec<u8>,
    /// Per-SPI cap on frames buffered during a wake-up (OOM guard).
    wakeup_buffer: usize,
    /// Optional instrumentation (see [`GatewayBuilder::telemetry`]).
    telemetry: Option<Telemetry>,
    /// Which telemetry shard slot this gateway records into (0 for a
    /// plain gateway; [`GatewayBuilder::build_sharded`] assigns each
    /// shard its index).
    shard_index: usize,
    /// Wall-clock start of an in-flight recovery: set by
    /// [`Gateway::begin_recover`], consumed when
    /// [`Gateway::finish_recover`] succeeds (so the recorded latency
    /// spans the whole FETCH → wake-up SAVE window, retries included).
    recover_started: Option<Instant>,
    make_store: Box<dyn FnMut(u32, SaDirection) -> S + Send>,
    /// One detector per inbound SPI (created when DPD is configured).
    dpd: BTreeMap<u32, DpdDetector>,
    /// Inbound SPIs whose detector has not been armed yet: arming waits
    /// for the first [`Gateway::tick`] (or delivered frame) so the idle
    /// clock starts at the driver's real time, not at install time.
    dpd_unarmed: BTreeSet<u32>,
    /// Hierarchical wheel holding every scheduled DPD deadline. Entries
    /// are SPIs; only the entry whose deadline matches `dpd_timer` is
    /// live — superseded or torn-down entries expire as stale no-ops.
    timer: TimerWheel<u32>,
    /// Deadline of the single *live* wheel entry per armed SPI. The
    /// invariant is that the live deadline never exceeds the detector's
    /// true next transition, so a tick can skip every SPI the wheel does
    /// not surface; an entry that fires early merely polls `Idle` and
    /// re-arms at the true deadline.
    dpd_timer: BTreeMap<u32, u64>,
    /// Reusable drain buffer for due timers — the idle tick touches it
    /// without allocating.
    timer_scratch: Vec<(u64, u32)>,
    /// SPIs whose usage crossed the rekey lifetime, marked at accounting
    /// time (protect / delivery / install) and drained by
    /// [`Gateway::tick`] — dueness is usage-driven, so it cannot be
    /// time-bucketed into the wheel.
    rekey_due: BTreeSet<u32>,
    /// Rekey generation per SPI: folded into the deterministic nonces so
    /// each generation derives fresh key material.
    rekey_generation: BTreeMap<u32, u32>,
    /// SAs whose wake-up FETCH failed in [`Gateway::begin_recover`],
    /// carried to [`Gateway::finish_recover`] where they are replaced
    /// (fail closed) after the healthy SAs' recovery is reported.
    pending_fail_closed: Vec<(u32, String)>,
    events: VecDeque<GatewayEvent>,
    /// Wall clock as of the last [`Gateway::tick`]; timestamps DPD
    /// liveness evidence from pushed frames.
    now_ns: u64,
}

impl<S> fmt::Debug for Gateway<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gateway")
            .field("suite", &self.suite)
            .field("k", &self.k)
            .field("w", &self.w)
            .field("sas", &self.sadb.len())
            .field("scheduled_timers", &self.timer.len())
            .field("pending_events", &self.events.len())
            .finish_non_exhaustive()
    }
}

impl<S: StableStore> Gateway<S> {
    // ------------------------------------------------------------------
    // SA installation
    // ------------------------------------------------------------------

    /// Installs a bidirectional SA pair under `spi` with keys derived
    /// from `master` and the builder's suite. Two gateways calling this
    /// with the same arguments interoperate (each direction uses the
    /// same derived keys on both ends).
    ///
    /// Because the two directions share one key, a host's own sent
    /// frames would authenticate against its own inbound SA — fine for
    /// loopback demos and unidirectional experiments, but a real
    /// bidirectional deployment should use [`Gateway::add_peer_between`]
    /// (direction-separated keys, reflection-proof) or install
    /// handshake-negotiated SAs via [`Gateway::install_pair`].
    pub fn add_peer(&mut self, spi: u32, master: &[u8]) {
        let keys = SaKeys::derive(master, &spi.to_be_bytes());
        let sa = SecurityAssociation::new(spi, keys).with_suite(self.suite);
        self.install_pair(sa);
    }

    /// Installs a bidirectional SA pair under `spi` with
    /// *direction-separated* keys: outbound protects `local → remote`,
    /// inbound expects `remote → local`. The peer gateway calls this
    /// with the names swapped, so the two interoperate while a frame a
    /// host sent can never be reflected back into that same host (it
    /// fails authentication, like [`IpsecPeer`](crate::IpsecPeer)'s
    /// directional SAs).
    pub fn add_peer_between(&mut self, spi: u32, master: &[u8], local: &[u8], remote: &[u8]) {
        let label = |from: &[u8], to: &[u8]| {
            let mut l = Vec::with_capacity(4 + from.len() + 2 + to.len());
            l.extend_from_slice(&spi.to_be_bytes());
            l.extend_from_slice(from);
            l.extend_from_slice(b"->");
            l.extend_from_slice(to);
            l
        };
        let out_keys = SaKeys::derive(master, &label(local, remote));
        let in_keys = SaKeys::derive(master, &label(remote, local));
        self.install_outbound(SecurityAssociation::new(spi, out_keys).with_suite(self.suite));
        self.install_inbound(SecurityAssociation::new(spi, in_keys).with_suite(self.suite));
    }

    /// Installs an externally built SA (e.g. from
    /// [`crate::run_handshake`] or [`crate::rekey`]) in both directions,
    /// with fresh stores from the builder's factory.
    pub fn install_pair(&mut self, sa: SecurityAssociation) {
        self.install_outbound(sa.clone());
        self.install_inbound(sa);
    }

    /// Installs an SA for sending only.
    pub fn install_outbound(&mut self, sa: SecurityAssociation) {
        let spi = sa.spi();
        if let Some(t) = &self.telemetry {
            t.class(sa.suite().name()).installs.incr();
        }
        // Due-at-install edge (a zero lifetime): the tick sweep is gone,
        // so dueness must be marked wherever usage state enters.
        if let Some(lifetime) = self.rekey_after {
            if rekey_due(&sa, &lifetime) {
                self.rekey_due.insert(spi);
            }
        }
        let store = (self.make_store)(spi, SaDirection::Outbound);
        self.sadb.install_outbound(sa, store, self.k);
    }

    /// Installs an SA for receiving only. When the builder configured
    /// DPD, the SPI's detector arms at the next [`Gateway::tick`] (not
    /// here — install happens before the driver's clock is known, and
    /// arming at a stale instant would make the first tick see a huge
    /// phantom idle gap).
    pub fn install_inbound(&mut self, sa: SecurityAssociation) {
        let spi = sa.spi();
        if let Some(t) = &self.telemetry {
            t.class(sa.suite().name()).installs.incr();
        }
        if let Some(lifetime) = self.rekey_after {
            if rekey_due(&sa, &lifetime) {
                self.rekey_due.insert(spi);
            }
        }
        let store = (self.make_store)(spi, SaDirection::Inbound);
        self.sadb
            .install_inbound(sa, store, self.k, self.w)
            .set_wakeup_buffer(self.wakeup_buffer);
        if self.dpd_cfg.is_some() {
            self.dpd_unarmed.insert(spi);
        }
    }

    /// Tears down both directions of `spi`. Best-effort erases the
    /// directions' persistent slots (so a later FETCH cannot resurrect
    /// this SA's counters into a reused SPI). Returns whether anything
    /// was removed.
    pub fn remove_peer(&mut self, spi: u32) -> bool {
        self.dpd.remove(&spi);
        self.dpd_unarmed.remove(&spi);
        // Any wheel entry the SPI still has goes stale with its
        // `dpd_timer` record gone; it expires as a no-op.
        self.dpd_timer.remove(&spi);
        self.rekey_due.remove(&spi);
        self.rekey_generation.remove(&spi);
        let removed = self.remove_and_erase(spi);
        if let (Some(t), Some(removed)) = (&self.telemetry, &removed) {
            for sa in [
                removed.outbound.as_ref().map(|o| o.sa()),
                removed.inbound.as_ref().map(|i| i.sa()),
            ]
            .into_iter()
            .flatten()
            {
                t.class(sa.suite().name()).removals.incr();
            }
        }
        removed.is_some()
    }

    /// [`Sadb::remove`] plus best-effort erasure of the removed
    /// endpoints' persistent slots — the teardown duty
    /// [`Sadb::remove`]'s docs assign to the caller. Erase failures are
    /// swallowed: the slot then merely retains a stale value, which is
    /// no worse than the pre-teardown state.
    fn remove_and_erase(&mut self, spi: u32) -> Option<RemovedSa<S>> {
        let mut removed = self.sadb.remove(spi)?;
        if let Some(o) = removed.outbound.as_mut() {
            let _ = o.store_mut().erase(SlotId::sender(spi));
        }
        if let Some(i) = removed.inbound.as_mut() {
            let _ = i.store_mut().erase(SlotId::receiver(spi));
        }
        Some(removed)
    }

    // ------------------------------------------------------------------
    // Datapath
    // ------------------------------------------------------------------

    /// Seals `payload` on the outbound SA `spi`. Returns `None` while
    /// the gateway is down or waking (nothing can be sent).
    ///
    /// # Errors
    ///
    /// [`IpsecError::UnknownSa`], lifetime exhaustion, or store
    /// failures.
    pub fn protect(&mut self, spi: u32, payload: &[u8]) -> Result<Option<SentFrame>, IpsecError> {
        let rekey_after = self.rekey_after;
        let out = self
            .sadb
            .outbound_mut(spi)
            .ok_or(IpsecError::UnknownSa { spi })?;
        let seq = out.seq_state().next_seq();
        let was_pending = out.seq_state().pending_save().is_some();
        let wire = out.protect(payload)?;
        // Capture while the borrow is live, record after it ends: the
        // pending-save index and the rekey due-set are what let
        // `save_completed` and `tick` skip the rest of the fleet.
        let now_pending = out.seq_state().pending_save().is_some();
        let due = rekey_after.is_some_and(|lifetime| rekey_due(out.sa(), &lifetime));
        if now_pending && !was_pending {
            self.sadb.note_outbound_save(spi);
        }
        if due {
            self.rekey_due.insert(spi);
        }
        Ok(wire.map(|wire| SentFrame { spi, seq, wire }))
    }

    /// Feeds one received frame through authenticate → anti-replay →
    /// decrypt. The verdict is appended to the event queue (exactly one
    /// event per frame); nothing is returned in-line.
    ///
    /// # Errors
    ///
    /// Store failures only — per-packet failures (forgery, unknown SPI,
    /// replay) are events, not errors.
    pub fn push_wire(&mut self, wire: &Bytes) -> Result<(), IpsecError> {
        let spi = reset_wire::peek_spi(wire).unwrap_or(0);
        let ev = match self.sadb.process_bytes(wire) {
            Ok(result) => self.event_from_rx(spi, result),
            Err(IpsecError::Wire(_)) => GatewayEvent::AuthFailed { spi },
            Err(IpsecError::UnknownSa { spi }) => GatewayEvent::UnknownSa { spi },
            Err(other) => return Err(other),
        };
        self.emit(ev);
        Ok(())
    }

    /// Feeds a burst of frames (a NIC queue drain) through the batched
    /// pipeline: ICVs verify through the suite's amortized
    /// [`reset_crypto::CipherSuite::verify_batch`] per SA run and
    /// delivered payloads share one decryption arena. One event per
    /// frame, in arrival order.
    ///
    /// # Errors
    ///
    /// Reserved for non-per-packet infrastructure failures.
    pub fn push_wire_batch(&mut self, wires: &[Bytes]) -> Result<(), IpsecError> {
        // Timing is gated on the handle so the uninstrumented path
        // never reads the clock.
        let started = self.telemetry.as_ref().map(|_| Instant::now());
        let results = self.sadb.process_batch(wires)?;
        for (wire, result) in wires.iter().zip(results) {
            let spi = reset_wire::peek_spi(wire).unwrap_or(0);
            let ev = self.event_from_rx(spi, result);
            self.emit(ev);
        }
        if let (Some(t), Some(started)) = (&self.telemetry, started) {
            t.record_drain(
                self.shard_index,
                wires.len() as u64,
                started.elapsed().as_nanos() as u64,
                self.events.len() as u64,
            );
        }
        Ok(())
    }

    /// Routed form of [`Gateway::push_wire_batch`] for the sharded
    /// fan-out: drains the frames of a *shared* batch selected by
    /// `route` (indices into `batch`, in arrival order), so shards read
    /// the one batch in place instead of receiving per-shard clones. One
    /// event per routed frame; per-shard telemetry counts the routed
    /// frames, keeping the occupancy signal for deferred rebalancing.
    pub(crate) fn push_wire_routed(
        &mut self,
        batch: &[Bytes],
        route: &[u32],
    ) -> Result<(), IpsecError> {
        let started = self.telemetry.as_ref().map(|_| Instant::now());
        let results = self.sadb.process_batch_routed(batch, route)?;
        for (&idx, result) in route.iter().zip(results) {
            let spi = reset_wire::peek_spi(&batch[idx as usize]).unwrap_or(0);
            let ev = self.event_from_rx(spi, result);
            self.emit(ev);
        }
        if let (Some(t), Some(started)) = (&self.telemetry, started) {
            t.record_drain(
                self.shard_index,
                route.len() as u64,
                started.elapsed().as_nanos() as u64,
                self.events.len() as u64,
            );
        }
        Ok(())
    }

    /// Appends `ev` to the event queue, counting its kind into the
    /// attached telemetry (one branch when uninstrumented).
    fn emit(&mut self, ev: GatewayEvent) {
        if let Some(t) = &self.telemetry {
            t.record_event(self.shard_index, event_kind(&ev));
        }
        self.events.push_back(ev);
    }

    /// Records a lifecycle trace event when telemetry is attached.
    fn trace(&self, severity: Severity, code: &'static str, spi: u32, detail: u64) {
        if let Some(t) = &self.telemetry {
            t.trace(self.now_ns, severity, code, spi, detail);
        }
    }

    /// Routes this gateway's telemetry into shard slot `index`
    /// (`build_sharded` assigns each shard its own).
    pub(crate) fn set_shard_index(&mut self, index: usize) {
        self.shard_index = index;
    }

    fn event_from_rx(&mut self, spi: u32, result: RxResult) -> GatewayEvent {
        match result {
            RxResult::Delivered { payload, seq } => {
                // Only authenticated traffic proves liveness (and arms a
                // detector still waiting for its first clock reading).
                self.arm_dpd(spi);
                if let Some(det) = self.dpd.get_mut(&spi) {
                    det.on_traffic(self.now_ns);
                    // Usually a no-op (traffic pushes the deadline
                    // later); a grace-exit can pull it earlier, which
                    // must supersede the live entry.
                    self.schedule_dpd(spi);
                }
                if let Some(lifetime) = self.rekey_after {
                    if let Some(i) = self.sadb.inbound(spi) {
                        if rekey_due(i.sa(), &lifetime) {
                            self.rekey_due.insert(spi);
                        }
                    }
                }
                GatewayEvent::Delivered { spi, seq, payload }
            }
            RxResult::AntiReplay { outcome, seq } => {
                GatewayEvent::ReplayDropped { spi, seq, outcome }
            }
            RxResult::Rejected(RxReject::UnknownSa { spi }) => GatewayEvent::UnknownSa { spi },
            RxResult::Rejected(_) => GatewayEvent::AuthFailed { spi },
            RxResult::Buffered => GatewayEvent::Buffered { spi },
            RxResult::DroppedDown => GatewayEvent::DroppedDown { spi },
        }
    }

    /// Drains everything that happened since the last poll, in order.
    pub fn poll_events(&mut self) -> Vec<GatewayEvent> {
        self.events.drain(..).collect()
    }

    /// Events queued but not yet polled.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    // ------------------------------------------------------------------
    // Clock-driven policies
    // ------------------------------------------------------------------

    /// Advances the gateway's clock and runs the *due* work only: DPD
    /// deadlines that the hierarchical timer wheel says have expired,
    /// and rekeys for SAs the accounting paths marked in the due-set
    /// since the last tick. There is no per-SA sweep — an idle tick
    /// (nothing due) is a single wheel comparison regardless of SADB
    /// size. Emits [`GatewayEvent::ProbeDue`], [`GatewayEvent::PeerDead`],
    /// [`GatewayEvent::RekeyStarted`]/[`GatewayEvent::RekeyCompleted`].
    pub fn tick(&mut self, now_ns: u64) {
        self.now_ns = now_ns;
        // Arm detectors installed since the last tick: their idle clock
        // starts now, the first instant the driver's time is known.
        while let Some(spi) = self.dpd_unarmed.pop_first() {
            self.arm_dpd_at_now(spi);
        }
        // DPD first: a peer torn down here must not be rekeyed below.
        // Only SPIs the wheel surfaces as due are polled — tick cost is
        // proportional to *due* timers, not fleet size, and an idle tick
        // (nothing due) allocates nothing.
        self.timer.expire_into(now_ns, &mut self.timer_scratch);
        if !self.timer_scratch.is_empty() {
            let mut due = std::mem::take(&mut self.timer_scratch);
            for &(deadline, spi) in &due {
                if self.dpd_timer.get(&spi) != Some(&deadline) {
                    continue; // superseded or torn down: stale entry
                }
                self.dpd_timer.remove(&spi);
                let Some(det) = self.dpd.get_mut(&spi) else {
                    continue;
                };
                match det.poll(now_ns) {
                    DpdAction::Idle | DpdAction::PeerPresumedDown => {}
                    DpdAction::SendProbe => self.emit(GatewayEvent::ProbeDue { spi }),
                    DpdAction::TearDown => {
                        self.remove_peer(spi);
                        self.trace(Severity::Warn, "peer_dead", spi, 0);
                        self.emit(GatewayEvent::PeerDead { spi });
                        continue; // detector gone; nothing to re-arm
                    }
                }
                self.schedule_dpd(spi);
            }
            due.clear();
            self.timer_scratch = due;
        }
        // Rekeys fire from the due-set populated at accounting time.
        // Drained by value so a rekey that immediately re-dues (e.g. a
        // zero lifetime) waits for the next tick instead of looping. The
        // set is a superset — dueness is re-verified against the live SA
        // so a mark staled by a reset or teardown does not force a rekey.
        if !self.rekey_due.is_empty() {
            let due = std::mem::take(&mut self.rekey_due);
            for spi in due {
                let still_due = self.rekey_after.is_some_and(|lifetime| {
                    self.sadb
                        .outbound(spi)
                        .is_some_and(|o| rekey_due(o.sa(), &lifetime))
                        || self
                            .sadb
                            .inbound(spi)
                            .is_some_and(|i| rekey_due(i.sa(), &lifetime))
                });
                if still_due {
                    self.rekey_now(spi);
                }
            }
        }
    }

    /// Creates `spi`'s DPD detector on its first clock reading (no-op
    /// once armed or when DPD is off / the SPI unknown).
    fn arm_dpd(&mut self, spi: u32) {
        if !self.dpd_unarmed.remove(&spi) {
            return;
        }
        self.arm_dpd_at_now(spi);
    }

    /// [`Gateway::arm_dpd`] after the unarmed-queue membership check.
    fn arm_dpd_at_now(&mut self, spi: u32) {
        let cfg = self.dpd_cfg.expect("only DPD-configured SPIs are queued");
        let mut det = DpdDetector::new(cfg);
        det.on_traffic(self.now_ns);
        self.dpd.insert(spi, det);
        self.schedule_dpd(spi);
    }

    /// (Re-)schedules `spi`'s live wheel entry at its detector's next
    /// transition deadline. An existing entry that is already at or
    /// before the new deadline stays live (it fires early and re-arms);
    /// a later one is superseded so detection is never delayed.
    fn schedule_dpd(&mut self, spi: u32) {
        let deadline = match self.dpd.get(&spi).and_then(|det| det.next_deadline()) {
            Some(d) => d,
            None => {
                // Dead detector or no detector: whatever wheel entry
                // remains is stale and will be ignored when it fires.
                self.dpd_timer.remove(&spi);
                return;
            }
        };
        match self.dpd_timer.get(&spi) {
            Some(&live) if live <= deadline => {}
            _ => {
                self.dpd_timer.insert(spi, deadline);
                self.timer.schedule(deadline, spi);
            }
        }
    }

    /// Quick-mode-rekeys `spi` immediately: fresh keys and counters
    /// under the builder's suite, derived deterministically from the
    /// shared `skeyid` and the per-SPI generation counter (so two peer
    /// gateways performing the same generation derive identical SAs).
    /// Emits `RekeyStarted` + `RekeyCompleted`.
    pub fn rekey_now(&mut self, spi: u32) {
        if self.sadb.outbound(spi).is_none() && self.sadb.inbound(spi).is_none() {
            return;
        }
        let started = self.telemetry.as_ref().map(|_| Instant::now());
        self.emit(GatewayEvent::RekeyStarted { spi });
        let generation = self.rekey_generation.entry(spi).or_insert(0);
        *generation += 1;
        let request = RekeyRequest {
            skeyid: self.skeyid.clone(),
            nonce_i: rekey_nonce(&self.skeyid, b"ni", spi, *generation),
            nonce_r: rekey_nonce(&self.skeyid, b"nr", spi, *generation),
            new_spi: spi,
            suite: self.suite,
        };
        let replacement = rekey(&request).sa;
        // Tear down the old generation *and* its persistent slots: the
        // replacement starts a fresh number space, and a stale FETCH
        // after a post-rekey crash must not leap the new SA to the old
        // generation's counters.
        let had = self.remove_and_erase(spi).expect("checked above");
        if had.outbound.is_some() {
            let store = (self.make_store)(spi, SaDirection::Outbound);
            self.sadb
                .install_outbound(replacement.clone(), store, self.k);
        }
        if had.inbound.is_some() {
            let store = (self.make_store)(spi, SaDirection::Inbound);
            self.sadb
                .install_inbound(replacement.clone(), store, self.k, self.w)
                .set_wakeup_buffer(self.wakeup_buffer);
        }
        let suite = replacement.suite();
        self.emit(GatewayEvent::RekeyCompleted { spi, suite });
        if let (Some(t), Some(started)) = (&self.telemetry, started) {
            let elapsed = started.elapsed().as_nanos() as u64;
            t.record_rekey_ns(elapsed);
            t.class(suite.name()).rekeys.incr();
            t.trace(self.now_ns, Severity::Info, "rekey", spi, elapsed);
        }
    }

    // ------------------------------------------------------------------
    // Reset and recovery
    // ------------------------------------------------------------------

    /// The host crashes: every SA loses its volatile counters and
    /// buffered frames. Traffic pushed while down evaporates
    /// ([`GatewayEvent::DroppedDown`]).
    pub fn reset(&mut self) {
        self.trace(Severity::Warn, "reset", 0, self.sadb.len() as u64);
        self.sadb.reset_all();
    }

    /// SAVE/FETCH recovery of the whole gateway in one call: FETCH +
    /// `2K` leap + synchronous SAVE on every SA. Emits
    /// [`GatewayEvent::Recovered`]. Returns the number of SA directions
    /// recovered.
    ///
    /// # Errors
    ///
    /// Store failures.
    pub fn recover(&mut self) -> Result<usize, IpsecError> {
        self.begin_recover()?;
        self.finish_recover()
    }

    /// First recovery half: FETCH + leap + issue the synchronous SAVE
    /// on every down SA. Frames pushed until [`Gateway::finish_recover`]
    /// are buffered ([`GatewayEvent::Buffered`]).
    ///
    /// A FETCH that hits untrusted state — a corrupt record or a
    /// generation rollback — does **not** abort the sweep or resurrect
    /// the SA: the failing SA is noted, stays down through
    /// [`Gateway::finish_recover`], and is then replaced (fail closed;
    /// see [`GatewayEvent::FailedClosed`]). Healthy SAs wake normally.
    ///
    /// # Errors
    ///
    /// Reserved for infrastructure failures; per-SA store failures are
    /// handled by failing the SA closed, not returned.
    pub fn begin_recover(&mut self) -> Result<(), IpsecError> {
        if self.telemetry.is_some() && self.recover_started.is_none() {
            self.recover_started = Some(Instant::now());
        }
        let failed = self.sadb.begin_recover_all();
        self.pending_fail_closed
            .extend(failed.into_iter().map(|(spi, e)| (spi, e.to_string())));
        Ok(())
    }

    /// Second recovery half: the wake-up SAVEs completed. Emits
    /// `Recovered { sas }` followed by one `Delivered`/`ReplayDropped`
    /// event per frame buffered during the wake-up (the §3 test: a
    /// replay stream spanning the reset must surface as `ReplayDropped`
    /// here, never `Delivered`). Finally, every SA whose FETCH failed in
    /// [`Gateway::begin_recover`] is **failed closed**: one
    /// [`GatewayEvent::FailedClosed`] followed by its replacement rekey's
    /// events. Returns the recovered direction count.
    ///
    /// # Errors
    ///
    /// Store failures completing the wake-up SAVEs (the gateway stays
    /// waking; retry — the paper's SAVE device is merely slow, not
    /// untrusted, so retrying the completion is safe).
    pub fn finish_recover(&mut self) -> Result<usize, IpsecError> {
        let (sas, buffered) = self.sadb.finish_recover_all()?;
        self.emit(GatewayEvent::Recovered { sas });
        for (spi, result) in buffered {
            let ev = self.event_from_rx(spi, result);
            self.emit(ev);
        }
        if let (Some(t), Some(started)) = (&self.telemetry, self.recover_started.take()) {
            let elapsed = started.elapsed().as_nanos() as u64;
            t.record_recovery_ns(elapsed);
            t.class(self.suite.name()).recoveries.incr();
            t.trace(self.now_ns, Severity::Info, "recovered", 0, elapsed);
        }
        // Replace every SA that woke into untrusted state. Dedupe: both
        // directions of one SPI may have failed, but the SA is replaced
        // (and the peer must resynchronize) exactly once.
        let failed = std::mem::take(&mut self.pending_fail_closed);
        let mut replaced = BTreeSet::new();
        for (spi, reason) in failed {
            if !replaced.insert(spi) {
                continue;
            }
            if let Some(t) = &self.telemetry {
                t.class(self.suite.name()).failed_closed.incr();
                t.trace(self.now_ns, Severity::Error, "failed_closed", spi, 0);
            }
            self.emit(GatewayEvent::FailedClosed { spi, reason });
            self.rekey_now(spi);
        }
        Ok(sas)
    }

    // ------------------------------------------------------------------
    // Background-save plumbing and introspection
    // ------------------------------------------------------------------

    /// True iff any SA has a background SAVE in flight (timed drivers
    /// schedule a completion after the device latency). Answered from
    /// the SADB's pending-save index — O(SAs owing a save), not a fleet
    /// sweep.
    pub fn pending_save(&self) -> bool {
        self.sadb.has_pending_save()
    }

    /// Completes every in-flight background SAVE (the device finished
    /// writing). Walks only the SADB's pending-save index, so a
    /// million-SA fleet pays for the saves it owes, not for its size.
    ///
    /// # Errors
    ///
    /// Store failures (pending saves are retained for retry).
    pub fn save_completed(&mut self) -> Result<(), StableError> {
        self.sadb.complete_pending_saves()
    }

    /// The next sequence number the outbound SA `spi` would send.
    pub fn next_seq(&self, spi: u32) -> Option<SeqNum> {
        self.sadb.outbound(spi).map(|o| o.seq_state().next_seq())
    }

    /// The inbound SA's anti-replay right edge.
    pub fn right_edge(&self, spi: u32) -> Option<SeqNum> {
        self.sadb.inbound(spi).map(|i| i.seq_state().right_edge())
    }

    /// The SA's liveness phase (outbound half preferred when both
    /// directions are installed; a reset strikes the whole host, so the
    /// two move together).
    pub fn phase(&self, spi: u32) -> Option<Phase> {
        self.sadb
            .outbound(spi)
            .map(|o| o.phase())
            .or_else(|| self.sadb.inbound(spi).map(|i| i.phase()))
    }

    /// Whether the DPD detector for `spi` is inside the §6 grace window
    /// (peer presumed down, SAs kept alive awaiting its recovery).
    /// `None` when DPD is not configured or the SPI unknown.
    pub fn in_grace(&self, spi: u32) -> Option<bool> {
        self.dpd.get(&spi).map(|d| d.in_grace())
    }

    /// Read access to the underlying SADB.
    pub fn sadb(&self) -> &Sadb<S> {
        &self.sadb
    }

    /// Mutable access to the underlying SADB — escape hatch for tests
    /// and store fault injection; normal operation goes through the
    /// event API.
    pub fn sadb_mut(&mut self) -> &mut Sadb<S> {
        &mut self.sadb
    }
}

/// Deterministic quick-mode nonce: both peers derive the same nonce for
/// the same (skeyid, role, spi, generation), so policy rekeys stay in
/// lockstep without an extra exchange being modelled.
fn rekey_nonce(skeyid: &[u8], role: &[u8], spi: u32, generation: u32) -> [u8; 16] {
    let mut msg = Vec::with_capacity(role.len() + 8);
    msg.extend_from_slice(role);
    msg.extend_from_slice(&spi.to_be_bytes());
    msg.extend_from_slice(&generation.to_be_bytes());
    let h = hmac_sha256(skeyid, &msg);
    let mut out = [0u8; 16];
    out.copy_from_slice(&h[..16]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(suite: CryptoSuite) -> (Gateway<MemStable>, Gateway<MemStable>) {
        let mut p = GatewayBuilder::in_memory()
            .suite(suite)
            .save_interval(10)
            .window(64)
            .build();
        let mut q = GatewayBuilder::in_memory()
            .suite(suite)
            .save_interval(10)
            .window(64)
            .build();
        p.add_peer(0x11, b"gw-test-master");
        q.add_peer(0x11, b"gw-test-master");
        (p, q)
    }

    #[test]
    fn traffic_flows_and_events_carry_payloads() {
        let (mut p, mut q) = pair(CryptoSuite::default());
        for i in 0..20u32 {
            let f = p
                .protect(0x11, format!("m{i}").as_bytes())
                .unwrap()
                .unwrap();
            assert_eq!(f.seq.value(), i as u64 + 1);
            q.push_wire(&f.wire).unwrap();
        }
        let events = q.poll_events();
        assert_eq!(events.len(), 20);
        for (i, ev) in events.iter().enumerate() {
            match ev {
                GatewayEvent::Delivered { spi, seq, payload } => {
                    assert_eq!(*spi, 0x11);
                    assert_eq!(seq.value(), i as u64 + 1);
                    assert_eq!(&payload[..], format!("m{i}").as_bytes());
                }
                other => panic!("packet {i}: {other:?}"),
            }
        }
        assert_eq!(q.pending_events(), 0);
    }

    #[test]
    fn batch_push_matches_sequential_push() {
        let (mut p, mut q_seq) = pair(CryptoSuite::default());
        let (_, mut q_batch) = pair(CryptoSuite::default());
        let mut wires = Vec::new();
        for i in 0..30u32 {
            wires.push(
                p.protect(0x11, format!("b{i}").as_bytes())
                    .unwrap()
                    .unwrap()
                    .wire,
            );
        }
        wires.push(wires[4].clone()); // replay
        let mut forged = wires[6].to_vec();
        let n = forged.len();
        forged[n - 1] ^= 0x40;
        wires.push(Bytes::from(forged));
        for w in &wires {
            q_seq.push_wire(w).unwrap();
        }
        q_batch.push_wire_batch(&wires).unwrap();
        assert_eq!(q_seq.poll_events(), q_batch.poll_events());
    }

    #[test]
    fn forged_and_foreign_frames_become_events_not_errors() {
        let (mut p, mut q) = pair(CryptoSuite::default());
        let f = p.protect(0x11, b"x").unwrap().unwrap();
        let mut forged = f.wire.to_vec();
        forged[9] ^= 0xFF;
        q.push_wire(&Bytes::from(forged)).unwrap();
        let mut foreign = f.wire.to_vec();
        foreign[3] = 0x99;
        q.push_wire(&Bytes::from(foreign)).unwrap();
        q.push_wire(&Bytes::copy_from_slice(&[1, 2])).unwrap();
        assert_eq!(
            q.poll_events(),
            vec![
                GatewayEvent::AuthFailed { spi: 0x11 },
                GatewayEvent::UnknownSa { spi: 0x99 },
                GatewayEvent::AuthFailed { spi: 0 },
            ]
        );
    }

    #[test]
    fn protect_on_unknown_spi_errors() {
        let (mut p, _) = pair(CryptoSuite::default());
        assert!(matches!(
            p.protect(0xDEAD, b"x"),
            Err(IpsecError::UnknownSa { spi: 0xDEAD })
        ));
    }

    #[test]
    fn rekey_now_replaces_keys_and_counters() {
        let (mut p, mut q) = pair(CryptoSuite::default());
        let old = p.protect(0x11, b"old traffic").unwrap().unwrap();
        q.push_wire(&old.wire).unwrap();
        p.rekey_now(0x11);
        q.rekey_now(0x11);
        let events = p.poll_events();
        assert!(events.contains(&GatewayEvent::RekeyStarted { spi: 0x11 }));
        assert!(matches!(
            events.last(),
            Some(GatewayEvent::RekeyCompleted { spi: 0x11, .. })
        ));
        q.poll_events();
        // The replay library died with the old keys.
        q.push_wire(&old.wire).unwrap();
        assert_eq!(
            q.poll_events(),
            vec![GatewayEvent::AuthFailed { spi: 0x11 }]
        );
        // Fresh traffic flows from sequence 1 under the new keys.
        let fresh = p.protect(0x11, b"new traffic").unwrap().unwrap();
        assert_eq!(fresh.seq.value(), 1);
        q.push_wire(&fresh.wire).unwrap();
        assert!(matches!(q.poll_events()[0], GatewayEvent::Delivered { .. }));
    }

    #[test]
    fn directional_peers_interoperate_but_reject_reflection() {
        let mut a = GatewayBuilder::in_memory().build();
        let mut b = GatewayBuilder::in_memory().build();
        a.add_peer_between(9, b"m", b"gw-a", b"gw-b");
        b.add_peer_between(9, b"m", b"gw-b", b"gw-a");
        let f = a.protect(9, b"to b").unwrap().unwrap();
        // The adversary reflects a's own frame back at a: the inbound SA
        // holds the other direction's keys, so authentication fails.
        a.push_wire(&f.wire).unwrap();
        assert_eq!(a.poll_events(), vec![GatewayEvent::AuthFailed { spi: 9 }]);
        // The intended receiver accepts it, and the reverse direction
        // interoperates too.
        b.push_wire(&f.wire).unwrap();
        assert!(matches!(
            b.poll_events()[..],
            [GatewayEvent::Delivered { .. }]
        ));
        let g = b.protect(9, b"to a").unwrap().unwrap();
        a.push_wire(&g.wire).unwrap();
        assert!(matches!(
            a.poll_events()[..],
            [GatewayEvent::Delivered { .. }]
        ));
    }

    #[test]
    fn rekey_policy_fires_from_tick() {
        let mut p = GatewayBuilder::in_memory()
            .save_interval(10)
            .rekey_after(SaLifetime {
                max_packets: 5,
                max_bytes: u64::MAX,
            })
            .build();
        p.add_peer(0x22, b"policy-master");
        for _ in 0..5 {
            p.protect(0x22, b"use it up").unwrap().unwrap();
        }
        p.tick(1_000);
        let events = p.poll_events();
        assert_eq!(
            events,
            vec![
                GatewayEvent::RekeyStarted { spi: 0x22 },
                GatewayEvent::RekeyCompleted {
                    spi: 0x22,
                    suite: CryptoSuite::default()
                },
            ]
        );
        // Counters restarted: the SA is usable again from sequence 1.
        let f = p.protect(0x22, b"gen 2").unwrap().unwrap();
        assert_eq!(f.seq.value(), 1);
    }

    #[test]
    fn dpd_probes_then_tears_down_silent_peer() {
        let mut p = GatewayBuilder::in_memory()
            .dpd(DpdConfig {
                idle_timeout_ns: 1_000,
                probe_interval_ns: 500,
                max_probes: 2,
                grace_period_ns: 5_000,
            })
            .build();
        p.add_peer(0x33, b"dpd-master");
        assert_eq!(p.poll_events(), vec![]);
        // The detector arms at the first tick — a later first tick must
        // not count install-to-tick wall time as peer silence.
        p.tick(500);
        assert_eq!(p.poll_events(), vec![], "no phantom idle at arming");
        p.tick(1_500);
        assert_eq!(p.poll_events(), vec![GatewayEvent::ProbeDue { spi: 0x33 }]);
        p.tick(2_100); // probe 2
        p.tick(2_700); // presumed down: grace starts
        assert_eq!(p.in_grace(0x33), Some(true));
        p.poll_events();
        p.tick(10_000); // grace expired
        assert_eq!(p.poll_events(), vec![GatewayEvent::PeerDead { spi: 0x33 }]);
        assert!(matches!(
            p.protect(0x33, b"gone"),
            Err(IpsecError::UnknownSa { spi: 0x33 })
        ));
    }

    #[test]
    fn authenticated_traffic_keeps_dpd_alive() {
        let dpd_cfg = DpdConfig {
            idle_timeout_ns: 1_000,
            probe_interval_ns: 500,
            max_probes: 1,
            grace_period_ns: 2_000,
        };
        let mut p = GatewayBuilder::in_memory().dpd(dpd_cfg).build();
        let mut q = GatewayBuilder::in_memory().build();
        p.add_peer(0x44, b"alive-master");
        q.add_peer(0x44, b"alive-master");
        for t in 0..10u64 {
            let f = q.protect(0x44, b"keepalive").unwrap().unwrap();
            p.tick(t * 900);
            p.push_wire(&f.wire).unwrap();
        }
        assert!(
            !p.poll_events()
                .iter()
                .any(|e| matches!(e, GatewayEvent::ProbeDue { .. })),
            "traffic within the idle timeout must suppress probes"
        );
    }

    #[test]
    fn corrupt_fetch_fails_closed_and_replaces_the_sa() {
        use reset_stable::{Fault, FaultyStable};
        let mut p = GatewayBuilder::in_memory().save_interval(10).build();
        let mut q = GatewayBuilder::with_stores(|_, _| FaultyStable::new(MemStable::new()))
            .save_interval(10)
            .build();
        p.add_peer(0x55, b"fail-closed-master");
        q.add_peer(0x55, b"fail-closed-master");

        let mut recorded = Vec::new();
        for i in 0..30u32 {
            let f = p
                .protect(0x55, format!("m{i}").as_bytes())
                .unwrap()
                .unwrap();
            recorded.push(f.wire.clone());
            q.push_wire(&f.wire).unwrap();
        }
        q.save_completed().unwrap();
        q.poll_events();

        // The reset strikes, and the receiver's persisted window record
        // comes back corrupt on FETCH.
        q.reset();
        q.sadb_mut()
            .inbound_mut(0x55)
            .unwrap()
            .store_mut()
            .push_fault(Fault::CorruptLoad);
        let sas = q.recover().unwrap();
        assert_eq!(sas, 1, "only the healthy outbound direction woke");
        let events = q.poll_events();
        assert!(matches!(events[0], GatewayEvent::Recovered { sas: 1 }));
        assert!(
            matches!(events[1], GatewayEvent::FailedClosed { spi: 0x55, .. }),
            "{events:?}"
        );
        assert!(matches!(
            events[2],
            GatewayEvent::RekeyStarted { spi: 0x55 }
        ));
        assert!(matches!(
            events[3],
            GatewayEvent::RekeyCompleted { spi: 0x55, .. }
        ));

        // The peer resynchronizes by performing the same rekey generation.
        p.rekey_now(0x55);
        p.poll_events();

        // The recorded history died with the old keys: 0 post-FETCH
        // replays, provably — they cannot even authenticate.
        for w in &recorded {
            q.push_wire(w).unwrap();
        }
        assert!(
            q.poll_events()
                .iter()
                .all(|e| matches!(e, GatewayEvent::AuthFailed { spi: 0x55 })),
            "replays against a replaced SA must fail authentication"
        );

        // Fresh traffic flows on the replacement.
        let f = p.protect(0x55, b"fresh start").unwrap().unwrap();
        assert_eq!(f.seq.value(), 1);
        q.push_wire(&f.wire).unwrap();
        assert!(matches!(
            q.poll_events()[..],
            [GatewayEvent::Delivered { .. }]
        ));
    }

    #[test]
    fn down_gateway_drops_then_recovery_reports_order() {
        let (mut p, mut q) = pair(CryptoSuite::default());
        let mut recorded = Vec::new();
        for i in 0..30u32 {
            let f = p
                .protect(0x11, format!("r{i}").as_bytes())
                .unwrap()
                .unwrap();
            recorded.push(f.wire.clone());
            q.push_wire(&f.wire).unwrap();
        }
        q.save_completed().unwrap();
        q.poll_events();
        q.reset();
        q.push_wire(&recorded[0]).unwrap();
        assert_eq!(
            q.poll_events(),
            vec![GatewayEvent::DroppedDown { spi: 0x11 }]
        );
        q.begin_recover().unwrap();
        q.push_wire(&recorded[1]).unwrap();
        assert_eq!(q.poll_events(), vec![GatewayEvent::Buffered { spi: 0x11 }]);
        let sas = q.finish_recover().unwrap();
        assert_eq!(sas, 2);
        let events = q.poll_events();
        assert!(matches!(events[0], GatewayEvent::Recovered { sas: 2 }));
        assert!(
            matches!(events[1], GatewayEvent::ReplayDropped { .. }),
            "buffered replay resolved after recovery: {events:?}"
        );
    }

    #[test]
    fn telemetry_counts_events_and_latencies() {
        use reset_telemetry::{EventKind, Telemetry};
        let t = Telemetry::new();
        let mut tx = GatewayBuilder::in_memory().build();
        let mut rx = GatewayBuilder::in_memory().telemetry(t.clone()).build();
        tx.add_peer(9, b"telemetry-master");
        rx.add_peer(9, b"telemetry-master");

        let frames: Vec<_> = (0..8)
            .map(|_| tx.protect(9, b"observed").unwrap().unwrap().wire)
            .collect();
        rx.push_wire_batch(&frames).unwrap();
        rx.push_wire(&frames[0]).unwrap(); // replay
        rx.save_completed().unwrap();
        rx.reset();
        rx.recover().unwrap();
        rx.rekey_now(9);
        let _ = rx.poll_events();

        assert_eq!(t.event_count(EventKind::Delivered), 8);
        assert_eq!(t.event_count(EventKind::ReplayDropped), 1);
        assert_eq!(t.event_count(EventKind::Recovered), 1);
        assert_eq!(t.event_count(EventKind::RekeyCompleted), 1);
        let s = t.snapshot();
        assert_eq!(s.recover_ns.count, 1);
        assert_eq!(s.rekey_ns.count, 1);
        assert_eq!(s.shards[0].batches, 1);
        assert_eq!(s.shards[0].frames, 8);
        assert_eq!(s.shards[0].drain_ns.count, 1);
        // add_peer installed both directions (rekey reinstalls go
        // straight to the SADB and count as rekeys, not installs).
        let class = &s.classes[0];
        assert_eq!(class.label, CryptoSuite::default().name());
        assert_eq!(class.installs, 2);
        assert_eq!(class.rekeys, 1);
        assert_eq!(class.recoveries, 1);
        // The reset and the recovery both left lifecycle trace events.
        let codes: Vec<&str> = s.trace.iter().map(|e| e.code).collect();
        assert!(codes.contains(&"reset"), "{codes:?}");
        assert!(codes.contains(&"recovered"), "{codes:?}");
        assert!(codes.contains(&"rekey"), "{codes:?}");
    }

    #[test]
    fn uninstrumented_gateway_behaves_identically() {
        let mk = |telemetry: Option<reset_telemetry::Telemetry>| {
            let mut b = GatewayBuilder::in_memory();
            if let Some(t) = telemetry {
                b = b.telemetry(t);
            }
            let mut tx = GatewayBuilder::in_memory().build();
            let mut rx = b.build();
            tx.add_peer(3, b"parity-master");
            rx.add_peer(3, b"parity-master");
            let frames: Vec<_> = (0..40)
                .map(|_| tx.protect(3, b"parity").unwrap().unwrap().wire)
                .collect();
            rx.push_wire_batch(&frames).unwrap();
            rx.save_completed().unwrap();
            rx.reset();
            rx.recover().unwrap();
            rx.push_wire_batch(&frames).unwrap(); // all replays
            rx.poll_events()
        };
        let plain = mk(None);
        let observed = mk(Some(reset_telemetry::Telemetry::new()));
        assert_eq!(plain, observed);
    }
}

//! # reset-ipsec — the IPsec substrate around the anti-replay core
//!
//! The paper's protocol lives inside a larger system: security
//! associations with keys and lifetimes (RFC 2401), an ESP datapath that
//! authenticates before it checks replay (RFC 2406), the ISAKMP/Oakley
//! key exchange whose cost motivates rescuing SAs instead of rebuilding
//! them (RFC 2408/2412), dead-peer detection (the drafts in the paper's
//! references \[3\] and \[7\]), and the §6 bidirectional recovery scheme.
//! This crate builds all of it on top of [`anti_replay`]:
//!
//! * [`SecurityAssociation`] / [`SaKeys`] / [`SaLifetime`] — SA state;
//!   only the counters change per packet, which is the whole point.
//! * [`Sadb`] — a host's SA database; `recover_all` is the cheap
//!   SAVE/FETCH reboot path.
//! * [`run_handshake`] / [`HandshakeCost`] / [`CostModel`] — the
//!   expensive IETF alternative, with an exact cost ledger.
//! * [`Outbound`] / [`Inbound`] / [`RxResult`] — the ESP datapath with
//!   SAVE/FETCH-protected counters and RFC 4304 ESN.
//! * [`DpdDetector`] — detects the peer's unavailability and opens the
//!   bounded §6 grace window.
//! * [`IpsecPeer`] / [`PeerEvent`] — bidirectional peer with the secured
//!   recovery notify ("I am up again; my counter is now X") that a
//!   replayed copy cannot spoof.
//!
//! # Examples
//!
//! ```
//! use reset_ipsec::{Inbound, Outbound, RxResult, SaKeys, SecurityAssociation};
//! use reset_stable::MemStable;
//!
//! // Establish an SA (normally via run_handshake) and move data.
//! let sa = SecurityAssociation::new(1, SaKeys::derive(b"ikm", b"a->b"));
//! let mut tx = Outbound::new(sa.clone(), MemStable::new(), 25);
//! let mut rx = Inbound::new(sa, MemStable::new(), 25, 64);
//!
//! let wire = tx.protect(b"payload")?.expect("up");
//! assert!(rx.process(&wire)?.is_delivered());
//! // A replay of the same bytes authenticates but is rejected:
//! assert!(!rx.process(&wire)?.is_delivered());
//! # Ok::<(), reset_ipsec::IpsecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dpd;
mod error;
mod esp;
mod ike;
mod recovery;
mod rekey;
mod sa;
mod sadb;

pub use dpd::{DpdAction, DpdConfig, DpdDetector};
pub use error::IpsecError;
pub use esp::{Inbound, Outbound, RxReject, RxResult};
pub use ike::{
    run_handshake, run_handshake_mismatched_psk, run_handshake_with_suites, CostModel,
    EstablishedPair, HandshakeCost, IkeMessage,
};
pub use recovery::{IpsecPeer, PeerEvent};
pub use rekey::{rekey, rekey_auth_tag, rekey_due, RekeyOutcome, RekeyRequest};
pub use sa::{CryptoSuite, SaKeys, SaLifetime, SaUsage, SecurityAssociation};
pub use sadb::Sadb;

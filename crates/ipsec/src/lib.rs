//! # reset-ipsec — the IPsec substrate around the anti-replay core
//!
//! The paper's protocol lives inside a larger system: security
//! associations with keys and lifetimes (RFC 2401), an ESP datapath that
//! authenticates before it checks replay (RFC 2406), the ISAKMP/Oakley
//! key exchange whose cost motivates rescuing SAs instead of rebuilding
//! them (RFC 2408/2412), dead-peer detection (the drafts in the paper's
//! references \[3\] and \[7\]), and the §6 bidirectional recovery scheme.
//!
//! The repo-level `ARCHITECTURE.md` maps how this crate sits on top of
//! `anti-replay`, `reset-wire`, `reset-crypto` and `reset-stable`, and
//! documents the gateway lifecycle and the shard determinism contract
//! in one place.
//!
//! # The `Gateway` engine
//!
//! The primary public API is [`Gateway`], an event-driven engine that
//! owns the whole receiver-under-reset story — SADB, datapath,
//! SAVE/FETCH recovery, DPD, and lifetime-driven rekeys — behind four
//! verbs: [`Gateway::protect`], [`Gateway::push_wire`] (and
//! [`Gateway::push_wire_batch`] for NIC-queue drains),
//! [`Gateway::tick`], and [`Gateway::poll_events`]. Configuration is
//! fixed up front in [`GatewayBuilder`] (suite, window, save interval,
//! store factory, rekey/DPD policies); every per-packet and lifecycle
//! verdict surfaces as a [`GatewayEvent`].
//!
//! ```
//! use reset_ipsec::{GatewayBuilder, GatewayEvent};
//!
//! // Two gateways sharing one SA pair (normally keyed via run_handshake).
//! let mut p = GatewayBuilder::in_memory().save_interval(25).window(64).build();
//! let mut q = GatewayBuilder::in_memory().save_interval(25).window(64).build();
//! p.add_peer(0x1001, b"master-secret");
//! q.add_peer(0x1001, b"master-secret");
//!
//! let frame = p.protect(0x1001, b"payload")?.expect("endpoint up");
//! q.push_wire(&frame.wire)?;
//! // A replay of the same bytes authenticates but is rejected:
//! q.push_wire(&frame.wire)?;
//! let events = q.poll_events();
//! assert!(matches!(events[0], GatewayEvent::Delivered { .. }));
//! assert!(matches!(events[1], GatewayEvent::ReplayDropped { .. }));
//! # Ok::<(), reset_ipsec::IpsecError>(())
//! ```
//!
//! # Scaling out: the `ShardedGateway`
//!
//! The paper's SAVE/FETCH guarantees are per-SA, so a gateway serving a
//! large SA fleet parallelizes without any cross-SA coordination.
//! [`ShardedGateway`] (built via [`GatewayBuilder::build_sharded`] /
//! [`GatewayBuilder::shards`]) partitions the SADB by SPI hash
//! ([`reset_wire::spi_shard`]) across N worker shards — each shard a
//! full [`Gateway`] owned **permanently by a long-lived worker
//! thread** spawned once at build time. Verbs are jobs on the owning
//! shard's work queue: the batched receive path, `tick`, `reset` and
//! recovery fan one job out per shard and wait on the completions in
//! shard index order, merging events in stable shard-then-arrival
//! order (no thread is ever spawned per call); the pipelined
//! [`ShardedGateway::submit_batch`] / [`ShardedGateway::drain_events`]
//! pair lets a driver overlap frame generation with shard processing.
//! Dropping the value closes the queues and joins the workers — a
//! clean, bounded shutdown even with jobs still queued — and a
//! panicking shard job surfaces on the caller (as
//! [`IpsecError::WorkerPanicked`] from fallible verbs), never as a
//! hang. Determinism is part of the contract: single-shard output is
//! bit-identical to [`Gateway`], and at any shard count the per-SPI
//! event subsequences (the unit the paper's guarantees are stated in)
//! are identical too — see the [`shard`](ShardedGateway) module docs
//! and `tests/it_sharded.rs`.
//!
//! # The million-SA control plane
//!
//! Three structural choices keep the control plane flat as the fleet
//! grows from thousands of SAs to a million (ROADMAP item 2):
//!
//! * **Hierarchical timer wheel.** Every DPD probe/teardown deadline
//!   lives in a private 11-level × 64-slot timer wheel (per-level
//!   occupancy bitmaps, a cached next-due lower bound), and rekey
//!   checks ride a due-set marked at accounting time, so
//!   [`Gateway::tick`] touches only *due* work: an idle tick is a
//!   single comparison — ~4ns and zero allocations whether the SADB
//!   holds 10³ or 10⁶ SAs (`tests/idle_tick_alloc.rs` pins the
//!   allocation claim with a counting global allocator;
//!   `gateway_fleet_1m/tick_idle` and a same-run 2× ratio ceiling in
//!   the bench gate pin the flatness).
//! * **Slab SADB.** [`Sadb`] stores endpoints in slab vectors (freed
//!   slots reused) so batch drains walk dense memory; the `BTreeMap`
//!   survives only as the deterministic SPI → slot index that fixes
//!   iteration order. A pending-save index over the slabs answers
//!   [`Gateway::pending_save`] / [`Gateway::save_completed`] without
//!   scanning a million endpoints; fleet-wide recovery sweeps defer
//!   its maintenance behind a stale flag rather than paying per-SA
//!   set surgery in the storm path.
//! * **Zero-copy shard fan-out.** [`ShardedGateway::submit_batch`]
//!   shares one `Arc<[Bytes]>` batch across the worker pool and routes
//!   per-shard *frame indices* (`Vec<u32>`) instead of cloning `Bytes`
//!   handles per shard; per-shard frame counts still flow to
//!   telemetry, feeding the occupancy signal the deferred
//!   rebalancing work (ROADMAP 2(iv)) will consume.
//!
//! ## Migrating from the free-standing style
//!
//! Earlier revisions of this crate were driven by hand-wiring the layer
//! types per use: `Outbound::new(sa, store, k)` +
//! `Inbound::new(sa, store, k, w)` (or a [`Sadb`] of them), with
//! `tx.protect(..)` / `rx.process(..)` / `sadb.recover_all()` calls and
//! per-call `match` on [`RxResult`]. That style still works — the layer
//! types below remain public, and [`Gateway`] is a facade over them,
//! not a replacement — but new code should prefer the engine:
//!
//! | free-standing (PR 1/2 style)            | `Gateway` engine                        |
//! |-----------------------------------------|-----------------------------------------|
//! | `Outbound::new` / `Inbound::new` / `Sadb::install_*` | [`GatewayBuilder`] + [`Gateway::add_peer`] / [`Gateway::install_pair`] |
//! | `tx.protect(payload)` → `Bytes`         | [`Gateway::protect`] → [`SentFrame`] (seq + bytes) |
//! | `rx.process(..)` → `match RxResult`     | [`Gateway::push_wire`] + [`Gateway::poll_events`] |
//! | `Inbound::process_batch` / `Sadb::process_batch` | [`Gateway::push_wire_batch`]   |
//! | `reset()` + `wake_up()` / `recover_all` | [`Gateway::reset`] + [`Gateway::recover`] (or the `begin`/`finish` halves) |
//! | `DpdDetector::poll` + `rekey_due` + `rekey` by hand | [`GatewayBuilder::dpd`] / [`GatewayBuilder::rekey_after`] + [`Gateway::tick`] |
//!
//! # Layer types
//!
//! The engine is built from these, all public:
//!
//! * [`SecurityAssociation`] / [`SaKeys`] / [`SaLifetime`] — SA state;
//!   only the counters change per packet, which is the whole point.
//! * [`Sadb`] — a host's SA database; `recover_all` is the cheap
//!   SAVE/FETCH reboot path.
//! * [`run_handshake`] / [`HandshakeCost`] / [`CostModel`] — the
//!   expensive IETF alternative, with an exact cost ledger.
//! * [`Outbound`] / [`Inbound`] / [`RxResult`] — the ESP datapath with
//!   SAVE/FETCH-protected counters and RFC 4304 ESN.
//! * [`DpdDetector`] — detects the peer's unavailability and opens the
//!   bounded §6 grace window.
//! * [`IpsecPeer`] / [`PeerEvent`] — bidirectional peer with the secured
//!   recovery notify ("I am up again; my counter is now X") that a
//!   replayed copy cannot spoof.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dpd;
mod error;
mod esp;
mod gateway;
mod ike;
mod pool;
mod recovery;
mod rekey;
mod sa;
mod sadb;
mod shard;
mod timer;

pub use dpd::{DpdAction, DpdConfig, DpdDetector};
pub use error::IpsecError;
pub use esp::{Inbound, Outbound, RxReject, RxResult};
pub use gateway::{Gateway, GatewayBuilder, GatewayEvent, SaDirection, SentFrame};
pub use ike::{
    run_handshake, run_handshake_mismatched_psk, run_handshake_with_suites, CostModel,
    EstablishedPair, HandshakeCost, IkeMessage,
};
pub use recovery::{IpsecPeer, PeerEvent};
pub use rekey::{rekey, rekey_auth_tag, rekey_due, RekeyOutcome, RekeyRequest};
pub use reset_crypto::Backend;
pub use sa::{CryptoSuite, SaKeys, SaLifetime, SaUsage, SecurityAssociation};
pub use sadb::{RemovedSa, Sadb};
pub use shard::ShardedGateway;

//! Security associations (RFC 2401 shape).
//!
//! The paper's observation that motivates SAVE/FETCH: of all the SA's
//! attributes, *only* the sequence number and the anti-replay window
//! change per packet. Keys, algorithms and lifetimes are stable for the
//! SA's lifetime — so persisting the two counters is enough to rescue the
//! whole SA across a reset, avoiding a full renegotiation.

use reset_crypto::{prf_plus, Backend, ChaCha20Poly1305Suite, CipherSuite, HmacSha256Suite};

use crate::IpsecError;

/// The negotiable cipher suites (RFC 2407-style transform identifiers).
/// Each maps to a concrete [`reset_crypto::CipherSuite`] implementation
/// built from the SA's derived key material; IKE proposals and rekeys
/// carry the [`CryptoSuite::wire_id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CryptoSuite {
    /// HMAC-SHA-256-96 integrity + HMAC-CTR keystream confidentiality
    /// (the original transform; still negotiable).
    HmacSha256WithKeystream,
    /// Integrity only (ESP with null encryption, RFC 2410 style).
    HmacSha256AuthOnly,
    /// ChaCha20-Poly1305 AEAD (RFC 8439): one transform providing both
    /// confidentiality and a 128-bit tag. The default — it runs the
    /// batched receive pipeline ~5× faster than the HMAC+keystream
    /// transform (see `BENCH_datapath.json`).
    #[default]
    ChaCha20Poly1305,
}

impl CryptoSuite {
    /// Every negotiable suite, in default preference order (the AEAD
    /// first: it is both the fastest and the only single-pass
    /// transform).
    pub const ALL: &'static [CryptoSuite] = &[
        CryptoSuite::ChaCha20Poly1305,
        CryptoSuite::HmacSha256WithKeystream,
        CryptoSuite::HmacSha256AuthOnly,
    ];

    /// Stable lowercase label (matches the concrete transform's
    /// [`reset_crypto::CipherSuite::name`]); telemetry uses it as the
    /// SA-class key.
    pub fn name(self) -> &'static str {
        match self {
            CryptoSuite::HmacSha256WithKeystream => "hmac-sha256-keystream",
            CryptoSuite::HmacSha256AuthOnly => "hmac-sha256-auth-only",
            CryptoSuite::ChaCha20Poly1305 => "chacha20-poly1305",
        }
    }

    /// The transform identifier carried in IKE proposals and rekey
    /// exchanges.
    pub fn wire_id(self) -> u8 {
        match self {
            CryptoSuite::HmacSha256WithKeystream => 1,
            CryptoSuite::HmacSha256AuthOnly => 2,
            CryptoSuite::ChaCha20Poly1305 => 3,
        }
    }

    /// Decodes a transform identifier (`None` for unknown ids, which a
    /// responder must reject rather than default).
    pub fn from_wire_id(id: u8) -> Option<CryptoSuite> {
        match id {
            1 => Some(CryptoSuite::HmacSha256WithKeystream),
            2 => Some(CryptoSuite::HmacSha256AuthOnly),
            3 => Some(CryptoSuite::ChaCha20Poly1305),
            _ => None,
        }
    }

    /// Builds the concrete transform for this suite from derived keys,
    /// with the crypto backend auto-selected
    /// ([`reset_crypto::Backend::select`]).
    fn build(self, keys: &SaKeys) -> SuiteState {
        match self {
            CryptoSuite::HmacSha256WithKeystream => {
                SuiteState::Hmac(HmacSha256Suite::with_keystream(&keys.auth, &keys.enc))
            }
            CryptoSuite::HmacSha256AuthOnly => {
                SuiteState::Hmac(HmacSha256Suite::auth_only(&keys.auth))
            }
            CryptoSuite::ChaCha20Poly1305 => {
                SuiteState::Aead(ChaCha20Poly1305Suite::from_material(&keys.enc))
            }
        }
    }

    /// As [`CryptoSuite::build`], but forcing a specific backend —
    /// benches and differential tests use this to pin the scalar oracle
    /// or a particular SIMD tier.
    fn build_with_backend(self, keys: &SaKeys, backend: Backend) -> SuiteState {
        match self.build(keys) {
            SuiteState::Hmac(s) => SuiteState::Hmac(s.with_backend(backend)),
            SuiteState::Aead(s) => SuiteState::Aead(s.with_backend(backend)),
        }
    }
}

/// The SA's instantiated transform: the enum keeps
/// [`SecurityAssociation`] `Clone + PartialEq` while
/// [`SecurityAssociation::cipher`] hands the datapath a `&dyn
/// CipherSuite`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)] // one per SA; boxing the HMAC
                                     // schedules would put a pointer chase on every packet's dispatch
enum SuiteState {
    Hmac(HmacSha256Suite),
    Aead(ChaCha20Poly1305Suite),
}

impl SuiteState {
    fn as_dyn(&self) -> &dyn CipherSuite {
        match self {
            SuiteState::Hmac(s) => s,
            SuiteState::Aead(s) => s,
        }
    }
}

/// Keys derived for one unidirectional SA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaKeys {
    /// Authentication (ICV) key.
    pub auth: Vec<u8>,
    /// Encryption key (unused for auth-only suites).
    pub enc: Vec<u8>,
}

impl SaKeys {
    /// Derives both keys from keying material (e.g. a DH shared secret)
    /// and a direction label, using the PRF+ expansion.
    pub fn derive(material: &[u8], label: &[u8]) -> SaKeys {
        let mut seed = Vec::with_capacity(label.len() + 4);
        seed.extend_from_slice(label);
        seed.extend_from_slice(b"-key");
        let okm = prf_plus(material, &seed, 64);
        SaKeys {
            auth: okm[..32].to_vec(),
            enc: okm[32..].to_vec(),
        }
    }
}

/// Usage limits of an SA (RFC 2401 lifetimes). The paper notes lifetimes
/// are among the attributes that *don't* change per packet — but usage
/// counts do, so the accounting lives in [`SaUsage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SaLifetime {
    /// Maximum packets this SA may protect.
    pub max_packets: u64,
    /// Maximum payload bytes this SA may protect.
    pub max_bytes: u64,
}

impl SaLifetime {
    /// Effectively unlimited (simulation default).
    pub const UNLIMITED: SaLifetime = SaLifetime {
        max_packets: u64::MAX,
        max_bytes: u64::MAX,
    };
}

impl Default for SaLifetime {
    fn default() -> Self {
        SaLifetime::UNLIMITED
    }
}

/// Per-SA usage accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SaUsage {
    /// Packets protected/verified so far.
    pub packets: u64,
    /// Payload bytes protected/verified so far.
    pub bytes: u64,
}

/// One unidirectional security association.
///
/// # Examples
///
/// ```
/// use reset_ipsec::{SaKeys, SecurityAssociation};
///
/// let keys = SaKeys::derive(b"shared-secret", b"initiator->responder");
/// let sa = SecurityAssociation::new(0x1001, keys);
/// assert_eq!(sa.spi(), 0x1001);
/// assert!(sa.check_lifetime().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityAssociation {
    spi: u32,
    keys: SaKeys,
    /// The instantiated transform: precomputed key schedules (HMAC
    /// ipad/opad states, ChaCha key words) built once at SA install so
    /// the per-packet path never reruns a key schedule.
    cipher: SuiteState,
    suite: CryptoSuite,
    lifetime: SaLifetime,
    usage: SaUsage,
    /// Extended sequence numbers enabled (64-bit counters on a 32-bit
    /// wire field) — the realistic approximation of the paper's unbounded
    /// integers.
    esn: bool,
}

impl SecurityAssociation {
    /// An SA with default suite, unlimited lifetime and ESN enabled.
    pub fn new(spi: u32, keys: SaKeys) -> Self {
        let suite = CryptoSuite::default();
        let cipher = suite.build(&keys);
        SecurityAssociation {
            spi,
            keys,
            cipher,
            suite,
            lifetime: SaLifetime::UNLIMITED,
            usage: SaUsage::default(),
            esn: true,
        }
    }

    /// Sets the crypto suite (builder style), rebuilding the transform
    /// from this SA's key material.
    pub fn with_suite(mut self, suite: CryptoSuite) -> Self {
        self.suite = suite;
        self.cipher = suite.build(&self.keys);
        self
    }

    /// Forces a specific crypto [`Backend`] (builder style), rebuilding
    /// the transform. By default SAs auto-select the strongest backend
    /// the host supports ([`Backend::select`]); forcing matters for the
    /// scalar-gated benches and backend differential tests.
    ///
    /// # Panics
    ///
    /// Panics if this host cannot run `backend`
    /// ([`Backend::is_supported`]).
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.cipher = self.suite.build_with_backend(&self.keys, backend);
        self
    }

    /// Sets the lifetime (builder style).
    pub fn with_lifetime(mut self, lifetime: SaLifetime) -> Self {
        self.lifetime = lifetime;
        self
    }

    /// Enables/disables extended sequence numbers (builder style).
    pub fn with_esn(mut self, esn: bool) -> Self {
        self.esn = esn;
        self
    }

    /// The SPI.
    pub fn spi(&self) -> u32 {
        self.spi
    }

    /// The negotiated keys.
    pub fn keys(&self) -> &SaKeys {
        &self.keys
    }

    /// The instantiated transform — what the ESP datapath hands to
    /// [`reset_wire::seal_frame_into`] and
    /// [`reset_wire::verify_frame_with`]. Key schedules are precomputed
    /// at SA install, so per-packet crypto never re-derives them.
    pub fn cipher(&self) -> &dyn CipherSuite {
        self.cipher.as_dyn()
    }

    /// The negotiated suite.
    pub fn suite(&self) -> CryptoSuite {
        self.suite
    }

    /// Whether ESN is enabled.
    pub fn esn(&self) -> bool {
        self.esn
    }

    /// Usage so far.
    pub fn usage(&self) -> SaUsage {
        self.usage
    }

    /// Records one protected/verified packet of `len` payload bytes.
    pub fn account(&mut self, len: usize) {
        self.usage.packets = self.usage.packets.saturating_add(1);
        self.usage.bytes = self.usage.bytes.saturating_add(len as u64);
    }

    /// Checks the lifetime.
    ///
    /// # Errors
    ///
    /// [`IpsecError::LifetimeExpired`] when either limit is reached.
    pub fn check_lifetime(&self) -> Result<(), IpsecError> {
        if self.usage.packets >= self.lifetime.max_packets
            || self.usage.bytes >= self.lifetime.max_bytes
        {
            Err(IpsecError::LifetimeExpired { spi: self.spi })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_derivation_is_deterministic_and_direction_separated() {
        let a = SaKeys::derive(b"secret", b"i->r");
        let b = SaKeys::derive(b"secret", b"i->r");
        let c = SaKeys::derive(b"secret", b"r->i");
        assert_eq!(a, b);
        assert_ne!(a.auth, c.auth);
        assert_ne!(a.enc, c.enc);
        assert_ne!(a.auth, a.enc, "auth and enc keys differ");
        assert_eq!(a.auth.len(), 32);
        assert_eq!(a.enc.len(), 32);
    }

    #[test]
    fn lifetime_enforced_on_packets() {
        let keys = SaKeys::derive(b"s", b"l");
        let mut sa = SecurityAssociation::new(1, keys).with_lifetime(SaLifetime {
            max_packets: 3,
            max_bytes: u64::MAX,
        });
        for _ in 0..3 {
            assert!(sa.check_lifetime().is_ok());
            sa.account(10);
        }
        assert!(matches!(
            sa.check_lifetime(),
            Err(IpsecError::LifetimeExpired { spi: 1 })
        ));
    }

    #[test]
    fn lifetime_enforced_on_bytes() {
        let keys = SaKeys::derive(b"s", b"l");
        let mut sa = SecurityAssociation::new(2, keys).with_lifetime(SaLifetime {
            max_packets: u64::MAX,
            max_bytes: 100,
        });
        sa.account(100);
        assert!(sa.check_lifetime().is_err());
    }

    #[test]
    fn builder_chain() {
        let keys = SaKeys::derive(b"s", b"l");
        let sa = SecurityAssociation::new(7, keys)
            .with_suite(CryptoSuite::HmacSha256AuthOnly)
            .with_esn(false);
        assert_eq!(sa.suite(), CryptoSuite::HmacSha256AuthOnly);
        assert!(!sa.esn());
    }

    #[test]
    fn wire_ids_round_trip() {
        for &s in CryptoSuite::ALL {
            assert_eq!(CryptoSuite::from_wire_id(s.wire_id()), Some(s));
        }
        assert_eq!(CryptoSuite::from_wire_id(0), None);
        assert_eq!(CryptoSuite::from_wire_id(99), None);
    }

    #[test]
    fn cipher_metadata_tracks_suite() {
        let keys = SaKeys::derive(b"s", b"m");
        let legacy = SecurityAssociation::new(1, keys.clone())
            .with_suite(CryptoSuite::HmacSha256WithKeystream);
        assert_eq!(legacy.cipher().icv_len(), 12);
        assert!(legacy.cipher().encrypts());
        let aead = legacy.clone().with_suite(CryptoSuite::ChaCha20Poly1305);
        assert_eq!(aead.cipher().icv_len(), 16);
        assert!(aead.cipher().encrypts());
        let auth_only =
            SecurityAssociation::new(1, keys).with_suite(CryptoSuite::HmacSha256AuthOnly);
        assert!(!auth_only.cipher().encrypts());
    }

    #[test]
    fn default_suite_is_the_aead() {
        let keys = SaKeys::derive(b"s", b"d");
        let sa = SecurityAssociation::new(1, keys);
        assert_eq!(sa.suite(), CryptoSuite::ChaCha20Poly1305);
        assert_eq!(CryptoSuite::ALL[0], CryptoSuite::default());
    }

    #[test]
    fn usage_accumulates() {
        let keys = SaKeys::derive(b"s", b"l");
        let mut sa = SecurityAssociation::new(1, keys);
        sa.account(10);
        sa.account(20);
        assert_eq!(sa.usage().packets, 2);
        assert_eq!(sa.usage().bytes, 30);
    }
}

//! The persistent shard worker runtime: long-lived threads, per-shard
//! work queues, completion barriers.
//!
//! PR 4's [`ShardedGateway`](crate::ShardedGateway) fanned every batched
//! verb out with *scoped* threads — one `thread::spawn` per non-idle
//! shard per call. On the CI kernel a scoped spawn costs ~30 µs, which
//! swamps the per-shard work at realistic batch sizes
//! (`gateway_shard/recover_storm_256sa` isolates it: 55 µs of actual
//! recovery buried under ~90 µs of spawn/join at 4 shards). This module
//! replaces that model: each shard's [`Gateway`] moves into a worker
//! thread **once**, at build time, and lives there until the
//! `ShardedGateway` is dropped.
//!
//! # Moving parts
//!
//! * [`ShardWorker`] — one long-lived thread owning one shard's
//!   `Gateway` outright. Jobs arrive over an spsc [`mpsc::channel`] (a
//!   single producer — the `ShardedGateway` — and the worker as the
//!   single consumer) and execute strictly in submission order, so the
//!   per-shard serialization the determinism argument needs is a
//!   property of the queue, not of locking.
//! * [`Completion`] — one job's pending result. Submitting returns
//!   immediately; [`Completion::wait`] blocks until the worker has run
//!   the job and reports either the job's value or the fact that the
//!   job panicked. Waiting on completions **in shard index order** is
//!   the pool's completion barrier: it reproduces exactly the stable
//!   shard-then-arrival event merge the scoped implementation produced.
//! * [`ShardPanic`] — a job panic, carried back to the submitting
//!   thread. Fallible verbs surface it as
//!   [`IpsecError::WorkerPanicked`](crate::IpsecError::WorkerPanicked);
//!   infallible verbs re-raise it on the caller. Either way the caller
//!   learns immediately — a panicking shard job can never hang the
//!   submitter, because the worker wraps every job in `catch_unwind`
//!   and always answers.
//!
//! # The degenerate single-shard pool
//!
//! A one-shard `ShardedGateway` spawns **no thread at all**:
//! [`ShardWorker::inline`] keeps the `Gateway` on the caller's side and
//! executes each job at submission. That keeps the `shards(1)`
//! configuration bit-identical to a plain `Gateway` in *cost* as well
//! as in output (no queue round-trip, no context switch), which is the
//! baseline every sharding measurement is judged against. The API is
//! indistinguishable — jobs still answer through a [`Completion`] and
//! panics still surface identically — only the execution site differs.
//!
//! # Shutdown
//!
//! Dropping a threaded [`ShardWorker`] closes its job queue and then
//! joins the thread. The worker drains every job already queued (each
//! still gets its answer if someone is waiting) and exits when the
//! queue is empty and disconnected — so dropping a `ShardedGateway`
//! with work in flight is a clean, bounded shutdown, not an abort.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::{self, JoinHandle};

use crate::gateway::Gateway;
use crate::IpsecError;

/// One unit of work executed on a shard's worker thread against the
/// shard's [`Gateway`].
type ShardJob<S> = Box<dyn FnOnce(&mut Gateway<S>) + Send>;

/// What a job left behind: its value, or the payload it panicked with.
type JobResult<R> = Result<R, Box<dyn std::any::Any + Send>>;

/// A shard job panicked (or its worker was already gone). Carried back
/// to the submitting thread by [`Completion::wait`].
#[derive(Debug)]
pub(crate) struct ShardPanic {
    /// Which shard's worker failed.
    pub shard: usize,
    /// The panic message, best-effort stringified.
    pub message: String,
}

impl ShardPanic {
    /// Converts into the public error the fallible verbs return.
    pub fn into_error(self) -> IpsecError {
        IpsecError::WorkerPanicked {
            shard: self.shard,
            message: self.message,
        }
    }

    /// Re-raises on the calling thread (for verbs with no error
    /// channel): the shard's panic becomes the caller's panic.
    pub fn resume(self) -> ! {
        panic!("shard {} worker job panicked: {}", self.shard, self.message)
    }
}

/// Best-effort rendering of a panic payload (panics carry `&str` or
/// `String` in practice; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// A submitted job's result: already computed (inline shard) or
/// pending on the worker (threaded shard). Dropping it without waiting
/// is allowed (the answer is discarded).
pub(crate) enum Completion<R> {
    /// The job already ran (inline single-shard execution).
    Ready {
        /// The job's outcome.
        result: JobResult<R>,
        /// Shard index, for error attribution.
        shard: usize,
    },
    /// The job is queued on (or running on) a worker thread.
    Pending {
        /// Receives the job's outcome from the worker.
        rx: Receiver<JobResult<R>>,
        /// Shard index, for error attribution.
        shard: usize,
    },
}

impl<R> Completion<R> {
    /// Blocks until the job has run. `Err` means the job panicked or
    /// its worker was already down — never a hang: the worker answers
    /// every job it receives, and a dead worker's dropped channel makes
    /// `recv` return immediately.
    pub fn wait(self) -> Result<R, ShardPanic> {
        let (outcome, shard) = match self {
            Completion::Ready { result, shard } => (Ok(result), shard),
            Completion::Pending { rx, shard } => (rx.recv(), shard),
        };
        match outcome {
            Ok(Ok(value)) => Ok(value),
            Ok(Err(payload)) => Err(ShardPanic {
                shard,
                message: panic_message(payload.as_ref()),
            }),
            Err(_) => Err(ShardPanic {
                shard,
                message: "worker exited before answering the job".to_string(),
            }),
        }
    }
}

/// One shard's execution backend. (The inline `Gateway` is boxed only
/// to keep the two variants' sizes comparable; a pool holds one
/// backend per shard, so the indirection is never on a per-packet
/// path.)
enum Backend<S> {
    /// The degenerate single-shard pool: the `Gateway` stays on the
    /// caller's side and jobs execute at submission — zero threads,
    /// zero queue overhead, cost-identical to a plain [`Gateway`].
    Inline(Box<RefCell<Gateway<S>>>),
    /// A persistent worker thread owning the `Gateway`, fed over an
    /// spsc work queue.
    Thread {
        /// Single-producer side of the shard's work queue. `None` only
        /// mid-drop.
        jobs: Option<Sender<ShardJob<S>>>,
        handle: Option<JoinHandle<()>>,
    },
}

/// One persistent worker owning one shard's [`Gateway`] — threaded for
/// real pools, inline for the single-shard degenerate case.
pub(crate) struct ShardWorker<S> {
    backend: Backend<S>,
    index: usize,
}

impl<S: Send + 'static> ShardWorker<S> {
    /// Moves `gateway` into a freshly spawned worker thread that serves
    /// jobs until the queue closes.
    pub fn spawn(index: usize, mut gateway: Gateway<S>) -> Self {
        let (tx, rx) = channel::<ShardJob<S>>();
        let handle = thread::Builder::new()
            .name(format!("ipsec-shard-{index}"))
            .spawn(move || {
                // Jobs run in strict queue order; each job answers its
                // own completion channel (inside the closure), so this
                // loop never panics and never blocks on the submitter.
                while let Ok(job) = rx.recv() {
                    job(&mut gateway);
                }
            })
            .expect("spawn ipsec shard worker thread");
        ShardWorker {
            backend: Backend::Thread {
                jobs: Some(tx),
                handle: Some(handle),
            },
            index,
        }
    }

    /// Keeps `gateway` on the caller's side; jobs execute inline at
    /// submission. Used when the pool has exactly one shard.
    pub fn inline(index: usize, gateway: Gateway<S>) -> Self {
        ShardWorker {
            backend: Backend::Inline(Box::new(RefCell::new(gateway))),
            index,
        }
    }

    /// Enqueues `f` on this shard's worker (or runs it right here for
    /// an inline shard) and returns its [`Completion`]. The job is
    /// wrapped in `catch_unwind`, so a panic inside `f` is reported to
    /// the waiter instead of killing the worker; the shard keeps
    /// serving subsequent jobs (its state is whatever the interrupted
    /// operation left, exactly as a panic mid-call would leave a plain
    /// [`Gateway`]).
    pub fn submit<R: Send + 'static>(
        &self,
        f: impl FnOnce(&mut Gateway<S>) -> R + Send + 'static,
    ) -> Completion<R> {
        match &self.backend {
            Backend::Inline(gateway) => {
                let mut g = gateway.borrow_mut();
                let result = catch_unwind(AssertUnwindSafe(|| f(&mut g)));
                Completion::Ready {
                    result,
                    shard: self.index,
                }
            }
            Backend::Thread { jobs, .. } => {
                let (tx, rx) = channel::<JobResult<R>>();
                let job: ShardJob<S> = Box::new(move |gateway| {
                    let result = catch_unwind(AssertUnwindSafe(|| f(gateway)));
                    // A dropped Completion just discards the answer.
                    let _ = tx.send(result);
                });
                if let Some(jobs) = jobs {
                    // On a closed queue the job (and with it `tx`) is
                    // dropped, so the waiter sees "worker exited" — no
                    // special case.
                    let _ = jobs.send(job);
                }
                Completion::Pending {
                    rx,
                    shard: self.index,
                }
            }
        }
    }

    /// Runs `f` and blocks for its value, re-raising a job panic on
    /// the caller. The synchronous verbs without an error channel go
    /// through this.
    pub fn run<R: Send + 'static>(
        &self,
        f: impl FnOnce(&mut Gateway<S>) -> R + Send + 'static,
    ) -> R {
        self.submit(f).wait().unwrap_or_else(|p| p.resume())
    }

    /// Runs `f` directly against an **inline** shard's `Gateway`,
    /// borrowing whatever the closure captures — no `'static` bound,
    /// no clone of the inputs, no queue. Returns `None` for a threaded
    /// worker (the caller falls back to [`ShardWorker::submit`]).
    /// Panics propagate directly, exactly as a plain [`Gateway`] call
    /// would — which is the single-shard contract.
    pub fn run_borrowed<R>(&self, f: impl FnOnce(&mut Gateway<S>) -> R) -> Option<R> {
        match &self.backend {
            Backend::Inline(gateway) => Some(f(&mut gateway.borrow_mut())),
            Backend::Thread { .. } => None,
        }
    }
}

impl<S> Drop for ShardWorker<S> {
    fn drop(&mut self) {
        if let Backend::Thread { jobs, handle } = &mut self.backend {
            // Close the queue first, then join: the worker drains
            // whatever is still queued and exits — graceful shutdown,
            // bounded by the queued work.
            drop(jobs.take());
            if let Some(handle) = handle.take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateway::GatewayBuilder;
    use reset_stable::MemStable;

    fn worker() -> ShardWorker<MemStable> {
        ShardWorker::spawn(3, GatewayBuilder::in_memory().build())
    }

    #[test]
    fn jobs_run_in_submission_order_on_the_owned_gateway() {
        let w = worker();
        w.run(|g| g.add_peer(7, b"pool-test"));
        let c1 = w.submit(|g| g.protect(7, b"a").unwrap().unwrap().seq.value());
        let c2 = w.submit(|g| g.protect(7, b"b").unwrap().unwrap().seq.value());
        assert_eq!(c1.wait().unwrap(), 1);
        assert_eq!(c2.wait().unwrap(), 2);
    }

    #[test]
    fn panicking_job_reports_and_worker_survives() {
        let w = worker();
        let err = w
            .submit(|_g| -> () { panic!("injected job failure") })
            .wait()
            .unwrap_err();
        assert_eq!(err.shard, 3);
        assert!(err.message.contains("injected job failure"), "{err:?}");
        // The worker is still serving.
        w.run(|g| g.add_peer(9, b"pool-test"));
        assert_eq!(
            w.run(|g| g.protect(9, b"x").unwrap().unwrap().seq.value()),
            1
        );
    }

    #[test]
    fn drop_with_jobs_queued_is_a_clean_drain() {
        let w = worker();
        w.run(|g| g.add_peer(1, b"pool-test"));
        // Queue work and drop without waiting: the worker must drain
        // and join without hanging or panicking.
        for _ in 0..64 {
            let _ = w.submit(|g| g.protect(1, b"queued").unwrap());
        }
        drop(w);
    }

    #[test]
    fn dropped_completion_discards_the_answer() {
        let w = worker();
        w.run(|g| g.add_peer(2, b"pool-test"));
        drop(w.submit(|g| g.protect(2, b"fire-and-forget").unwrap()));
        // A later synchronous job still answers (the discarded send
        // didn't wedge the worker).
        assert_eq!(
            w.run(|g| g.protect(2, b"sync").unwrap().unwrap().seq.value()),
            2
        );
    }

    #[test]
    fn inline_worker_matches_threaded_semantics() {
        let w: ShardWorker<MemStable> = ShardWorker::inline(0, GatewayBuilder::in_memory().build());
        w.run(|g| g.add_peer(5, b"pool-test"));
        let c1 = w.submit(|g| g.protect(5, b"a").unwrap().unwrap().seq.value());
        let c2 = w.submit(|g| g.protect(5, b"b").unwrap().unwrap().seq.value());
        assert_eq!(c1.wait().unwrap(), 1);
        assert_eq!(c2.wait().unwrap(), 2);
        let err = w
            .submit(|_g| -> () { panic!("inline failure") })
            .wait()
            .unwrap_err();
        assert_eq!(err.shard, 0);
        assert!(err.message.contains("inline failure"));
        // Still serving after the caught panic.
        assert_eq!(
            w.run(|g| g.protect(5, b"c").unwrap().unwrap().seq.value()),
            3
        );
    }

    #[test]
    fn panic_payload_stringification() {
        let w = worker();
        let err = w
            .submit(|_g| -> () { std::panic::panic_any(1234u32) })
            .wait()
            .unwrap_err();
        assert_eq!(err.message, "opaque panic payload");
        let e = err.into_error();
        assert!(e.to_string().contains("shard 3"), "{e}");
    }
}

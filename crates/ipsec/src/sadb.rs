//! Security association database (SADB).
//!
//! A host — the paper's example is a gateway with "multiple SAs existing
//! at the same time, either for the same peer or for different peers" —
//! keeps its SAs here. The §3 cost argument is about exactly this
//! object: after a reboot, the IETF remedy renegotiates *every* SA, while
//! SAVE/FETCH wakes them all up with one FETCH + SAVE each.

use std::collections::HashMap;

use bytes::Bytes;
use reset_stable::{StableError, StableStore};

use anti_replay::SeqNum;

use crate::esp::{Inbound, Outbound, RxResult};
use crate::IpsecError;

/// The SA database of one host.
///
/// # Examples
///
/// ```
/// use reset_ipsec::{Sadb, SaKeys, SecurityAssociation};
/// use reset_stable::MemStable;
///
/// let mut sadb: Sadb<MemStable> = Sadb::new();
/// let keys = SaKeys::derive(b"secret", b"out");
/// sadb.install_outbound(SecurityAssociation::new(1, keys), MemStable::new(), 25);
/// assert_eq!(sadb.outbound_count(), 1);
/// let wire = sadb.protect(1, b"data")?.expect("up");
/// # Ok::<(), reset_ipsec::IpsecError>(())
/// ```
#[derive(Debug, Default)]
pub struct Sadb<S> {
    outbound: HashMap<u32, Outbound<S>>,
    inbound: HashMap<u32, Inbound<S>>,
}

impl<S: StableStore> Sadb<S> {
    /// An empty database.
    pub fn new() -> Self {
        Sadb {
            outbound: HashMap::new(),
            inbound: HashMap::new(),
        }
    }

    /// Installs an outbound SA with its persistent store and save
    /// interval. Replaces any previous SA with the same SPI.
    pub fn install_outbound(
        &mut self,
        sa: crate::SecurityAssociation,
        store: S,
        k: u64,
    ) -> &mut Outbound<S> {
        let spi = sa.spi();
        self.outbound.insert(spi, Outbound::new(sa, store, k));
        self.outbound.get_mut(&spi).expect("just inserted")
    }

    /// Installs an inbound SA.
    pub fn install_inbound(
        &mut self,
        sa: crate::SecurityAssociation,
        store: S,
        k: u64,
        w: u64,
    ) -> &mut Inbound<S> {
        let spi = sa.spi();
        self.inbound.insert(spi, Inbound::new(sa, store, k, w));
        self.inbound.get_mut(&spi).expect("just inserted")
    }

    /// Number of outbound SAs.
    pub fn outbound_count(&self) -> usize {
        self.outbound.len()
    }

    /// Number of inbound SAs.
    pub fn inbound_count(&self) -> usize {
        self.inbound.len()
    }

    /// Looks up an outbound SA.
    pub fn outbound_mut(&mut self, spi: u32) -> Option<&mut Outbound<S>> {
        self.outbound.get_mut(&spi)
    }

    /// Looks up an inbound SA.
    pub fn inbound_mut(&mut self, spi: u32) -> Option<&mut Inbound<S>> {
        self.inbound.get_mut(&spi)
    }

    /// Removes both directions of `spi` (SA teardown). Returns whether
    /// anything was removed.
    pub fn remove(&mut self, spi: u32) -> bool {
        let a = self.outbound.remove(&spi).is_some();
        let b = self.inbound.remove(&spi).is_some();
        a || b
    }

    /// Protects a payload on the outbound SA `spi`.
    ///
    /// # Errors
    ///
    /// [`IpsecError::UnknownSa`] if no such SA; datapath errors otherwise.
    pub fn protect(&mut self, spi: u32, payload: &[u8]) -> Result<Option<Bytes>, IpsecError> {
        self.outbound
            .get_mut(&spi)
            .ok_or(IpsecError::UnknownSa { spi })?
            .protect(payload)
    }

    /// Dispatches an inbound wire packet to its SA by SPI.
    ///
    /// # Errors
    ///
    /// [`IpsecError::UnknownSa`] for an unknown SPI; datapath errors
    /// otherwise.
    pub fn process(&mut self, wire: &[u8]) -> Result<RxResult, IpsecError> {
        if wire.len() < 4 {
            return Err(IpsecError::Wire(reset_wire::WireError::Truncated {
                needed: 4,
                got: wire.len(),
            }));
        }
        let spi = u32::from_be_bytes(wire[0..4].try_into().expect("fixed"));
        self.inbound
            .get_mut(&spi)
            .ok_or(IpsecError::UnknownSa { spi })?
            .process(wire)
    }

    /// A host-wide reset: every SA loses its volatile counters.
    pub fn reset_all(&mut self) {
        for o in self.outbound.values_mut() {
            o.reset();
        }
        for i in self.inbound.values_mut() {
            i.reset();
        }
    }

    /// SAVE/FETCH wake-up of the whole database; returns the number of
    /// SAs recovered (the t5 experiment's cheap path — compare with one
    /// full IKE handshake *per SA* for the IETF remedy).
    ///
    /// # Errors
    ///
    /// First store failure aborts the sweep.
    pub fn recover_all(&mut self) -> Result<usize, StableError> {
        let mut n = 0;
        for o in self.outbound.values_mut() {
            o.wake_up()?;
            n += 1;
        }
        for i in self.inbound.values_mut() {
            i.wake_up()?;
            n += 1;
        }
        Ok(n)
    }

    /// Iterates over outbound `(spi, next_seq)` pairs.
    pub fn outbound_seqs(&self) -> impl Iterator<Item = (u32, SeqNum)> + '_ {
        self.outbound
            .iter()
            .map(|(&spi, o)| (spi, o.seq_state().next_seq()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::{SaKeys, SecurityAssociation};
    use reset_stable::MemStable;

    fn sa(spi: u32) -> SecurityAssociation {
        SecurityAssociation::new(spi, SaKeys::derive(b"secret", &spi.to_be_bytes()))
    }

    fn sadb_with(n: u32) -> Sadb<MemStable> {
        let mut db = Sadb::new();
        for spi in 1..=n {
            db.install_outbound(sa(spi), MemStable::new(), 10);
            db.install_inbound(sa(spi), MemStable::new(), 10, 64);
        }
        db
    }

    #[test]
    fn install_and_count() {
        let db = sadb_with(5);
        assert_eq!(db.outbound_count(), 5);
        assert_eq!(db.inbound_count(), 5);
    }

    #[test]
    fn protect_and_process_dispatch_by_spi() {
        let mut db = sadb_with(3);
        let wire = db.protect(2, b"to sa 2").unwrap().unwrap();
        match db.process(&wire).unwrap() {
            RxResult::Delivered { payload, .. } => assert_eq!(&payload[..], b"to sa 2"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_spi_errors() {
        let mut db = sadb_with(1);
        assert!(matches!(
            db.protect(99, b"x"),
            Err(IpsecError::UnknownSa { spi: 99 })
        ));
        let wire = db.protect(1, b"x").unwrap().unwrap();
        let mut foreign = wire.to_vec();
        foreign[3] = 42; // SPI 42 unknown — rejected before any crypto
        assert!(matches!(
            db.process(&foreign),
            Err(IpsecError::UnknownSa { spi: 42 })
        ));
    }

    #[test]
    fn remove_tears_down_both_directions() {
        let mut db = sadb_with(2);
        assert!(db.remove(1));
        assert!(!db.remove(1), "second remove is a no-op");
        assert_eq!(db.outbound_count(), 1);
        assert!(db.protect(1, b"x").is_err());
    }

    #[test]
    fn gateway_reboot_recover_all() {
        let mut db = sadb_with(10);
        // Traffic on every SA; saves made durable.
        for spi in 1..=10u32 {
            for _ in 0..15 {
                let w = db.protect(spi, b"data").unwrap().unwrap();
                db.process(&w).unwrap();
            }
            db.outbound_mut(spi).unwrap().save_completed().unwrap();
            db.inbound_mut(spi).unwrap().save_completed().unwrap();
        }
        db.reset_all();
        // Every SA is down.
        assert!(db.protect(3, b"x").unwrap().is_none());
        let recovered = db.recover_all().unwrap();
        assert_eq!(recovered, 20, "10 SAs × 2 directions");
        // Traffic flows again on all SAs; old replays bounce.
        for spi in 1..=10u32 {
            let w = db.protect(spi, b"fresh").unwrap().unwrap();
            // Sender leaped above receiver edge: delivered or (for the
            // sacrificed ≤2K range) rejected — never an error. Drive a
            // few packets to cross the leap.
            let mut delivered = false;
            let mut wire = w;
            for _ in 0..25 {
                if db.process(&wire).unwrap().is_delivered() {
                    delivered = true;
                    break;
                }
                wire = db.protect(spi, b"fresh").unwrap().unwrap();
            }
            assert!(delivered, "spi {spi} never resumed");
        }
    }

    #[test]
    fn outbound_seqs_iterates() {
        let mut db = sadb_with(3);
        db.protect(1, b"x").unwrap();
        let seqs: HashMap<u32, SeqNum> = db.outbound_seqs().collect();
        assert_eq!(seqs.len(), 3);
        assert_eq!(seqs[&1], SeqNum::new(2));
        assert_eq!(seqs[&2], SeqNum::new(1));
    }
}

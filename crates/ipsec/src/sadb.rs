//! Security association database (SADB).
//!
//! A host — the paper's example is a gateway with "multiple SAs existing
//! at the same time, either for the same peer or for different peers" —
//! keeps its SAs here. The §3 cost argument is about exactly this
//! object: after a reboot, the IETF remedy renegotiates *every* SA, while
//! SAVE/FETCH wakes them all up with one FETCH + SAVE each.

use std::collections::BTreeMap;

use bytes::Bytes;
use reset_stable::{StableError, StableStore};

use anti_replay::{Phase, SeqNum};

use crate::esp::{Inbound, Outbound, RxReject, RxResult};
use crate::IpsecError;

/// Both directional endpoints torn out of the database by
/// [`Sadb::remove`] — whichever of the two existed for the SPI.
#[derive(Debug)]
pub struct RemovedSa<S> {
    /// The outbound endpoint, if one was installed.
    pub outbound: Option<Outbound<S>>,
    /// The inbound endpoint, if one was installed.
    pub inbound: Option<Inbound<S>>,
}

/// The SA database of one host.
///
/// SPIs are kept ordered (`BTreeMap`), so every whole-database sweep —
/// [`Sadb::recover_all`], [`Sadb::iter_outbound`], the wake-up event
/// order a [`crate::Gateway`] reports — is deterministic, which the
/// seeded harness scenarios rely on.
///
/// # Examples
///
/// ```
/// use reset_ipsec::{Sadb, SaKeys, SecurityAssociation};
/// use reset_stable::MemStable;
///
/// let mut sadb: Sadb<MemStable> = Sadb::new();
/// let keys = SaKeys::derive(b"secret", b"out");
/// sadb.install_outbound(SecurityAssociation::new(1, keys), MemStable::new(), 25);
/// assert_eq!(sadb.outbound_count(), 1);
/// let wire = sadb.protect(1, b"data")?.expect("up");
/// # Ok::<(), reset_ipsec::IpsecError>(())
/// ```
#[derive(Debug, Default)]
pub struct Sadb<S> {
    outbound: BTreeMap<u32, Outbound<S>>,
    inbound: BTreeMap<u32, Inbound<S>>,
}

impl<S> Sadb<S> {
    /// Total number of installed SA endpoints (outbound + inbound; an SA
    /// pair installed in both directions counts twice, matching what
    /// [`Sadb::recover_all`] reports).
    pub fn len(&self) -> usize {
        self.outbound.len() + self.inbound.len()
    }

    /// True iff no SA is installed in either direction.
    pub fn is_empty(&self) -> bool {
        self.outbound.is_empty() && self.inbound.is_empty()
    }
}

impl<S: StableStore> Sadb<S> {
    /// An empty database.
    pub fn new() -> Self {
        Sadb {
            outbound: BTreeMap::new(),
            inbound: BTreeMap::new(),
        }
    }

    /// Installs an outbound SA with its persistent store and save
    /// interval. Replaces any previous SA with the same SPI.
    pub fn install_outbound(
        &mut self,
        sa: crate::SecurityAssociation,
        store: S,
        k: u64,
    ) -> &mut Outbound<S> {
        let spi = sa.spi();
        self.outbound.insert(spi, Outbound::new(sa, store, k));
        self.outbound.get_mut(&spi).expect("just inserted")
    }

    /// Installs an inbound SA.
    pub fn install_inbound(
        &mut self,
        sa: crate::SecurityAssociation,
        store: S,
        k: u64,
        w: u64,
    ) -> &mut Inbound<S> {
        let spi = sa.spi();
        self.inbound.insert(spi, Inbound::new(sa, store, k, w));
        self.inbound.get_mut(&spi).expect("just inserted")
    }

    /// Number of outbound SAs.
    pub fn outbound_count(&self) -> usize {
        self.outbound.len()
    }

    /// Number of inbound SAs.
    pub fn inbound_count(&self) -> usize {
        self.inbound.len()
    }

    /// Looks up an outbound SA (read-only).
    pub fn outbound(&self, spi: u32) -> Option<&Outbound<S>> {
        self.outbound.get(&spi)
    }

    /// Looks up an inbound SA (read-only).
    pub fn inbound(&self, spi: u32) -> Option<&Inbound<S>> {
        self.inbound.get(&spi)
    }

    /// Looks up an outbound SA.
    pub fn outbound_mut(&mut self, spi: u32) -> Option<&mut Outbound<S>> {
        self.outbound.get_mut(&spi)
    }

    /// Looks up an inbound SA.
    pub fn inbound_mut(&mut self, spi: u32) -> Option<&mut Inbound<S>> {
        self.inbound.get_mut(&spi)
    }

    /// Iterates over outbound endpoints in SPI order.
    pub fn iter_outbound(&self) -> impl Iterator<Item = (u32, &Outbound<S>)> {
        self.outbound.iter().map(|(&spi, o)| (spi, o))
    }

    /// Iterates over inbound endpoints in SPI order.
    pub fn iter_inbound(&self) -> impl Iterator<Item = (u32, &Inbound<S>)> {
        self.inbound.iter().map(|(&spi, i)| (spi, i))
    }

    /// Mutably iterates over outbound endpoints in SPI order (save
    /// completion sweeps, fault injection).
    pub fn iter_outbound_mut(&mut self) -> impl Iterator<Item = (u32, &mut Outbound<S>)> {
        self.outbound.iter_mut().map(|(&spi, o)| (spi, o))
    }

    /// Mutably iterates over inbound endpoints in SPI order.
    pub fn iter_inbound_mut(&mut self) -> impl Iterator<Item = (u32, &mut Inbound<S>)> {
        self.inbound.iter_mut().map(|(&spi, i)| (spi, i))
    }

    /// Removes both directions of `spi` (SA teardown). Returns the
    /// removed endpoints — e.g. to erase their persistent slots, which a
    /// correct teardown must do before the SPI can be reused — or `None`
    /// if the SPI was not installed in either direction.
    pub fn remove(&mut self, spi: u32) -> Option<RemovedSa<S>> {
        let outbound = self.outbound.remove(&spi);
        let inbound = self.inbound.remove(&spi);
        if outbound.is_none() && inbound.is_none() {
            return None;
        }
        Some(RemovedSa { outbound, inbound })
    }

    /// Protects a payload on the outbound SA `spi`.
    ///
    /// # Errors
    ///
    /// [`IpsecError::UnknownSa`] if no such SA; datapath errors otherwise.
    pub fn protect(&mut self, spi: u32, payload: &[u8]) -> Result<Option<Bytes>, IpsecError> {
        self.outbound
            .get_mut(&spi)
            .ok_or(IpsecError::UnknownSa { spi })?
            .protect(payload)
    }

    /// Dispatches an inbound wire packet to its SA by SPI.
    ///
    /// # Errors
    ///
    /// [`IpsecError::UnknownSa`] for an unknown SPI; datapath errors
    /// otherwise.
    pub fn process(&mut self, wire: &[u8]) -> Result<RxResult, IpsecError> {
        let spi = reset_wire::peek_spi(wire).ok_or(IpsecError::Wire(
            reset_wire::WireError::Truncated {
                needed: 4,
                got: wire.len(),
            },
        ))?;
        self.inbound
            .get_mut(&spi)
            .ok_or(IpsecError::UnknownSa { spi })?
            .process(wire)
    }

    /// [`Sadb::process`] for shared buffers: auth-only payloads come
    /// back as zero-copy slices of `wire` and wake-up buffering is a
    /// reference-count bump (see [`Inbound::process_bytes`]).
    ///
    /// # Errors
    ///
    /// Same as [`Sadb::process`].
    pub fn process_bytes(&mut self, wire: &Bytes) -> Result<RxResult, IpsecError> {
        let spi = reset_wire::peek_spi(wire).ok_or(IpsecError::Wire(
            reset_wire::WireError::Truncated {
                needed: 4,
                got: wire.len(),
            },
        ))?;
        self.inbound
            .get_mut(&spi)
            .ok_or(IpsecError::UnknownSa { spi })?
            .process_bytes(wire)
    }

    /// Drains a queue of inbound packets, in arrival order, with one
    /// result per packet.
    ///
    /// Packets are dispatched in runs of equal SPI so the SA lookup (and
    /// the run's shared decryption arena inside
    /// [`Inbound::process_batch`]) is amortized across each run rather
    /// than paid per packet. Per-packet failures — unknown SPI, bad
    /// framing, failed authentication — come back in-line as
    /// [`RxResult::Rejected`] instead of aborting the drain. Wall-clock
    /// is on par with per-packet [`Sadb::process`] today (the pipeline
    /// is crypto-bound); the batch form's win is its allocation profile
    /// — see `BENCH_datapath.json` and the memory caveat on
    /// [`Inbound::process_batch`].
    ///
    /// # Errors
    ///
    /// Reserved for non-per-packet infrastructure failures; today all
    /// failures are reported in-line and the call returns `Ok`.
    ///
    /// # Examples
    ///
    /// ```
    /// use reset_ipsec::{Sadb, SaKeys, SecurityAssociation};
    /// use reset_stable::MemStable;
    ///
    /// let mut sadb: Sadb<MemStable> = Sadb::new();
    /// let keys = SaKeys::derive(b"secret", b"pair");
    /// sadb.install_outbound(SecurityAssociation::new(1, keys.clone()), MemStable::new(), 25);
    /// sadb.install_inbound(SecurityAssociation::new(1, keys), MemStable::new(), 25, 64);
    /// let queue: Vec<_> = (0..4)
    ///     .map(|i| sadb.protect(1, format!("pkt {i}").as_bytes()).unwrap().unwrap())
    ///     .collect();
    /// let results = sadb.process_batch(&queue)?;
    /// assert!(results.iter().all(|r| r.is_delivered()));
    /// # Ok::<(), reset_ipsec::IpsecError>(())
    /// ```
    pub fn process_batch(&mut self, wires: &[Bytes]) -> Result<Vec<RxResult>, IpsecError> {
        let mut out = Vec::with_capacity(wires.len());
        let mut i = 0;
        while i < wires.len() {
            let Some(spi) = reset_wire::peek_spi(&wires[i]) else {
                out.push(RxResult::Rejected(RxReject::Wire(
                    reset_wire::WireError::Truncated {
                        needed: 4,
                        got: wires[i].len(),
                    },
                )));
                i += 1;
                continue;
            };
            // Extend the run of consecutive packets for the same SA.
            let mut j = i + 1;
            while j < wires.len() && wires[j].len() >= 4 && wires[j][0..4] == wires[i][0..4] {
                j += 1;
            }
            match self.inbound.get_mut(&spi) {
                Some(inbound) => out.extend(inbound.process_batch(&wires[i..j])?),
                None => {
                    out.extend((i..j).map(|_| RxResult::Rejected(RxReject::UnknownSa { spi })));
                }
            }
            i = j;
        }
        Ok(out)
    }

    /// A host-wide reset: every SA loses its volatile counters.
    pub fn reset_all(&mut self) {
        for o in self.outbound.values_mut() {
            o.reset();
        }
        for i in self.inbound.values_mut() {
            i.reset();
        }
    }

    /// SAVE/FETCH wake-up of the whole database; returns the number of
    /// SAs recovered (the t5 experiment's cheap path — compare with one
    /// full IKE handshake *per SA* for the IETF remedy).
    ///
    /// # Errors
    ///
    /// First store failure aborts the sweep.
    pub fn recover_all(&mut self) -> Result<usize, StableError> {
        let mut n = 0;
        for o in self.outbound.values_mut() {
            o.wake_up()?;
            n += 1;
        }
        for i in self.inbound.values_mut() {
            i.wake_up()?;
            n += 1;
        }
        Ok(n)
    }

    /// First half of [`Sadb::recover_all`] for timed drivers: FETCH +
    /// leap + issue the synchronous wake-up SAVE on every SA that is
    /// down. Inbound traffic arriving before
    /// [`Sadb::finish_recover_all`] is buffered per SA.
    ///
    /// A FETCH failure — a corrupt record, or a generation rollback
    /// caught by the store witness — no longer aborts the sweep: the
    /// failing SA direction stays `Down` and is reported in the returned
    /// list, while every healthy SA proceeds with its wake-up. The layer
    /// above ([`crate::Gateway`]) **fails the reported SAs closed**:
    /// no window leaped from untrusted state is safe, so the SA is
    /// replaced rather than resumed.
    pub fn begin_recover_all(&mut self) -> Vec<(u32, StableError)> {
        let mut failed = Vec::new();
        for (&spi, o) in self.outbound.iter_mut() {
            if o.phase() == Phase::Down {
                if let Err(e) = o.begin_wakeup() {
                    failed.push((spi, e));
                }
            }
        }
        for (&spi, i) in self.inbound.iter_mut() {
            if i.phase() == Phase::Down {
                if let Err(e) = i.begin_wakeup() {
                    failed.push((spi, e));
                }
            }
        }
        failed
    }

    /// Second half of [`Sadb::recover_all`]: completes the wake-up SAVE
    /// on every waking SA, rebuilds the windows at the leaped edges and
    /// classifies the packets buffered in between. Returns the number of
    /// SA directions recovered and, per inbound SA in SPI order, the
    /// buffered packets' outcomes in arrival order.
    ///
    /// # Errors
    ///
    /// First store failure aborts the sweep.
    #[allow(clippy::type_complexity)]
    pub fn finish_recover_all(&mut self) -> Result<(usize, Vec<(u32, RxResult)>), StableError> {
        let mut n = 0;
        for o in self.outbound.values_mut() {
            if o.phase() == Phase::Waking {
                o.finish_wakeup()?;
                n += 1;
            }
        }
        let mut buffered = Vec::new();
        for (&spi, i) in self.inbound.iter_mut() {
            if i.phase() == Phase::Waking {
                let outcomes = i.finish_wakeup()?;
                buffered.extend(outcomes.into_iter().map(|r| (spi, r)));
                n += 1;
            }
        }
        Ok((n, buffered))
    }

    /// Every installed SPI (either direction), ascending and deduplicated
    /// — the sweep order fleet-wide operations (sharded recovery
    /// accounting, per-SA scenario bookkeeping) iterate in.
    pub fn spis(&self) -> Vec<u32> {
        let mut spis: Vec<u32> = self
            .outbound
            .keys()
            .chain(self.inbound.keys())
            .copied()
            .collect();
        spis.sort_unstable();
        spis.dedup();
        spis
    }

    /// Iterates over outbound `(spi, next_seq)` pairs.
    pub fn outbound_seqs(&self) -> impl Iterator<Item = (u32, SeqNum)> + '_ {
        self.outbound
            .iter()
            .map(|(&spi, o)| (spi, o.seq_state().next_seq()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sa::{SaKeys, SecurityAssociation};
    use reset_stable::MemStable;

    fn sa(spi: u32) -> SecurityAssociation {
        SecurityAssociation::new(spi, SaKeys::derive(b"secret", &spi.to_be_bytes()))
    }

    fn sadb_with(n: u32) -> Sadb<MemStable> {
        let mut db = Sadb::new();
        for spi in 1..=n {
            db.install_outbound(sa(spi), MemStable::new(), 10);
            db.install_inbound(sa(spi), MemStable::new(), 10, 64);
        }
        db
    }

    #[test]
    fn install_and_count() {
        let db = sadb_with(5);
        assert_eq!(db.outbound_count(), 5);
        assert_eq!(db.inbound_count(), 5);
    }

    #[test]
    fn protect_and_process_dispatch_by_spi() {
        let mut db = sadb_with(3);
        let wire = db.protect(2, b"to sa 2").unwrap().unwrap();
        match db.process(&wire).unwrap() {
            RxResult::Delivered { payload, .. } => assert_eq!(&payload[..], b"to sa 2"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_spi_errors() {
        let mut db = sadb_with(1);
        assert!(matches!(
            db.protect(99, b"x"),
            Err(IpsecError::UnknownSa { spi: 99 })
        ));
        let wire = db.protect(1, b"x").unwrap().unwrap();
        let mut foreign = wire.to_vec();
        foreign[3] = 42; // SPI 42 unknown — rejected before any crypto
        assert!(matches!(
            db.process(&foreign),
            Err(IpsecError::UnknownSa { spi: 42 })
        ));
    }

    #[test]
    fn remove_tears_down_both_directions() {
        let mut db = sadb_with(2);
        assert_eq!(db.len(), 4);
        let removed = db.remove(1).expect("spi 1 installed");
        assert_eq!(removed.outbound.expect("outbound half").sa().spi(), 1);
        assert_eq!(removed.inbound.expect("inbound half").sa().spi(), 1);
        assert!(db.remove(1).is_none(), "second remove is a no-op");
        assert_eq!(db.outbound_count(), 1);
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert!(db.protect(1, b"x").is_err());
    }

    #[test]
    fn gateway_reboot_recover_all() {
        let mut db = sadb_with(10);
        // Traffic on every SA; saves made durable.
        for spi in 1..=10u32 {
            for _ in 0..15 {
                let w = db.protect(spi, b"data").unwrap().unwrap();
                db.process(&w).unwrap();
            }
            db.outbound_mut(spi).unwrap().save_completed().unwrap();
            db.inbound_mut(spi).unwrap().save_completed().unwrap();
        }
        db.reset_all();
        // Every SA is down.
        assert!(db.protect(3, b"x").unwrap().is_none());
        let recovered = db.recover_all().unwrap();
        assert_eq!(recovered, 20, "10 SAs × 2 directions");
        // Traffic flows again on all SAs; old replays bounce.
        for spi in 1..=10u32 {
            let w = db.protect(spi, b"fresh").unwrap().unwrap();
            // Sender leaped above receiver edge: delivered or (for the
            // sacrificed ≤2K range) rejected — never an error. Drive a
            // few packets to cross the leap.
            let mut delivered = false;
            let mut wire = w;
            for _ in 0..25 {
                if db.process(&wire).unwrap().is_delivered() {
                    delivered = true;
                    break;
                }
                wire = db.protect(spi, b"fresh").unwrap().unwrap();
            }
            assert!(delivered, "spi {spi} never resumed");
        }
    }

    #[test]
    fn process_batch_dispatches_runs_and_reports_unknown_spis() {
        let mut db = sadb_with(3);
        // Interleaved SPI runs + one unknown SPI + one runt packet.
        let mut queue: Vec<Bytes> = Vec::new();
        for _ in 0..4 {
            queue.push(db.protect(1, b"one").unwrap().unwrap());
        }
        for _ in 0..3 {
            queue.push(db.protect(2, b"two").unwrap().unwrap());
        }
        let mut foreign = db.protect(3, b"three").unwrap().unwrap().to_vec();
        foreign[3] = 99; // SPI 99 unknown
        queue.push(Bytes::from(foreign));
        queue.push(Bytes::copy_from_slice(&[0xAB; 2])); // runt
        for _ in 0..2 {
            queue.push(db.protect(1, b"one again").unwrap().unwrap());
        }

        let results = db.process_batch(&queue).unwrap();
        assert_eq!(results.len(), queue.len());
        assert!(results[..7].iter().all(|r| r.is_delivered()));
        assert!(matches!(
            results[7],
            RxResult::Rejected(RxReject::UnknownSa { spi: 99 })
        ));
        assert!(matches!(results[8], RxResult::Rejected(RxReject::Wire(_))));
        assert!(results[9..].iter().all(|r| r.is_delivered()));
    }

    #[test]
    fn process_batch_agrees_with_process() {
        let mut db_a = sadb_with(4);
        let mut db_b = sadb_with(4);
        let mut queue: Vec<Bytes> = Vec::new();
        for round in 0..10u32 {
            for spi in 1..=4u32 {
                queue.push(
                    db_a.protect(spi, format!("r{round} s{spi}").as_bytes())
                        .unwrap()
                        .unwrap(),
                );
            }
        }
        // Duplicate a slice of the queue: replays.
        queue.extend(queue[5..15].to_vec());
        // Keep db_b's outbound counters in sync (unused, but symmetric).
        let batch = db_a.process_batch(&queue).unwrap();
        for (i, wire) in queue.iter().enumerate() {
            let single = db_b.process(wire).unwrap();
            assert_eq!(batch[i], single, "packet {i}");
        }
    }

    #[test]
    fn outbound_seqs_iterates() {
        let mut db = sadb_with(3);
        db.protect(1, b"x").unwrap();
        let seqs: std::collections::HashMap<u32, SeqNum> = db.outbound_seqs().collect();
        assert_eq!(seqs.len(), 3);
        assert_eq!(seqs[&1], SeqNum::new(2));
        assert_eq!(seqs[&2], SeqNum::new(1));
    }

    #[test]
    fn spis_unions_both_directions_sorted_deduped() {
        let mut db: Sadb<MemStable> = Sadb::new();
        db.install_outbound(sa(9), MemStable::new(), 10);
        db.install_outbound(sa(3), MemStable::new(), 10);
        db.install_inbound(sa(3), MemStable::new(), 10, 64);
        db.install_inbound(sa(7), MemStable::new(), 10, 64);
        assert_eq!(db.spis(), vec![3, 7, 9]);
        assert!(Sadb::<MemStable>::new().spis().is_empty());
    }

    #[test]
    fn iterators_walk_spis_in_order() {
        let mut db = Sadb::new();
        for &spi in &[9u32, 3, 7, 1] {
            db.install_outbound(sa(spi), MemStable::new(), 10);
            db.install_inbound(sa(spi), MemStable::new(), 10, 64);
        }
        let outs: Vec<u32> = db.iter_outbound().map(|(spi, _)| spi).collect();
        let ins: Vec<u32> = db.iter_inbound().map(|(spi, _)| spi).collect();
        assert_eq!(outs, vec![1, 3, 7, 9], "deterministic SPI order");
        assert_eq!(ins, outs);
    }

    #[test]
    fn begin_recover_collects_failures_and_wakes_the_rest() {
        use reset_stable::{Fault, FaultyStable};
        let mut db: Sadb<FaultyStable<MemStable>> = Sadb::new();
        for spi in 1..=3u32 {
            db.install_outbound(sa(spi), FaultyStable::new(MemStable::new()), 10);
            db.install_inbound(sa(spi), FaultyStable::new(MemStable::new()), 10, 64);
        }
        for spi in 1..=3u32 {
            for _ in 0..15 {
                let w = db.protect(spi, b"data").unwrap().unwrap();
                db.process(&w).unwrap();
            }
            db.outbound_mut(spi).unwrap().save_completed().unwrap();
            db.inbound_mut(spi).unwrap().save_completed().unwrap();
        }
        db.reset_all();
        // SA 2's inbound FETCH will come back corrupt.
        db.inbound_mut(2)
            .unwrap()
            .store_mut()
            .push_fault(Fault::CorruptLoad);
        let failed = db.begin_recover_all();
        assert_eq!(failed.len(), 1, "{failed:?}");
        assert_eq!(failed[0].0, 2);
        // The sweep did not abort: the other five directions woke.
        let (recovered, _) = db.finish_recover_all().unwrap();
        assert_eq!(recovered, 5, "3 outbound + 2 healthy inbound");
        assert_eq!(db.inbound(2).unwrap().phase(), Phase::Down);
    }

    #[test]
    fn split_recovery_matches_atomic_recover_all() {
        let mut db = sadb_with(4);
        for spi in 1..=4u32 {
            for _ in 0..15 {
                let w = db.protect(spi, b"data").unwrap().unwrap();
                db.process(&w).unwrap();
            }
            db.outbound_mut(spi).unwrap().save_completed().unwrap();
            db.inbound_mut(spi).unwrap().save_completed().unwrap();
        }
        db.reset_all();
        assert!(db.begin_recover_all().is_empty(), "healthy stores");
        // A packet arriving mid-recovery is buffered, then classified.
        let w = {
            let mut other = sadb_with(4);
            for _ in 0..40 {
                other.protect(2, b"ahead").unwrap();
            }
            other.protect(2, b"fresh").unwrap().unwrap()
        };
        assert_eq!(db.process(&w).unwrap(), RxResult::Buffered);
        let (recovered, buffered) = db.finish_recover_all().unwrap();
        assert_eq!(recovered, 8, "4 SAs x 2 directions");
        assert_eq!(buffered.len(), 1);
        assert_eq!(buffered[0].0, 2);
        assert!(buffered[0].1.is_delivered(), "{buffered:?}");
    }
}
